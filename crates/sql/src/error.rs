//! Error types for lexing and parsing SQL.

use std::fmt;

/// Byte offset + human 1-based line/column of an error site in the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Byte offset into the source string.
    pub offset: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters).
    pub column: u32,
}

impl Location {
    /// Location of the very first character.
    pub const START: Location = Location { offset: 0, line: 1, column: 1 };
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, column {}", self.line, self.column)
    }
}

/// An error produced while tokenizing or parsing a query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub kind: ParseErrorKind,
    /// Where it went wrong.
    pub location: Location,
}

/// The category of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A character that can never begin a token.
    UnexpectedChar(char),
    /// A string literal without a closing quote.
    UnterminatedString,
    /// A quoted identifier without a closing quote.
    UnterminatedIdentifier,
    /// A numeric literal that could not be interpreted.
    InvalidNumber(String),
    /// The parser met a token it did not expect.
    UnexpectedToken {
        /// Token actually found (rendered).
        found: String,
        /// What the parser was looking for.
        expected: String,
    },
    /// Input ended while the parser still expected something.
    UnexpectedEof {
        /// What the parser was looking for.
        expected: String,
    },
    /// Structurally valid but semantically rejected constructs
    /// (e.g. `LIMIT` with a negative count).
    Semantic(String),
}

impl ParseError {
    pub(crate) fn new(kind: ParseErrorKind, location: Location) -> Self {
        ParseError { kind, location }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character {c:?} at {}", self.location)
            }
            ParseErrorKind::UnterminatedString => {
                write!(f, "unterminated string literal starting at {}", self.location)
            }
            ParseErrorKind::UnterminatedIdentifier => {
                write!(f, "unterminated quoted identifier starting at {}", self.location)
            }
            ParseErrorKind::InvalidNumber(s) => {
                write!(f, "invalid numeric literal {s:?} at {}", self.location)
            }
            ParseErrorKind::UnexpectedToken { found, expected } => {
                write!(f, "expected {expected}, found {found} at {}", self.location)
            }
            ParseErrorKind::UnexpectedEof { expected } => {
                write!(f, "expected {expected}, found end of input at {}", self.location)
            }
            ParseErrorKind::Semantic(msg) => write!(f, "{msg} at {}", self.location),
        }
    }
}

impl std::error::Error for ParseError {}

/// Convenient result alias used throughout the crate.
pub type ParseResult<T> = Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_displays_line_and_column() {
        let loc = Location { offset: 10, line: 2, column: 5 };
        assert_eq!(loc.to_string(), "line 2, column 5");
    }

    #[test]
    fn error_display_unexpected_token() {
        let err = ParseError::new(
            ParseErrorKind::UnexpectedToken { found: "','".into(), expected: "expression".into() },
            Location::START,
        );
        assert_eq!(err.to_string(), "expected expression, found ',' at line 1, column 1");
    }

    #[test]
    fn error_display_eof() {
        let err = ParseError::new(
            ParseErrorKind::UnexpectedEof { expected: "FROM".into() },
            Location { offset: 3, line: 1, column: 4 },
        );
        assert!(err.to_string().contains("end of input"));
    }
}
