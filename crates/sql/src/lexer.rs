//! A hand-rolled lexer for the SQL subset.
//!
//! The lexer is a straightforward single-pass scanner over the input
//! `&str`. It tracks line/column positions so parse errors can point at the
//! offending character, skips `--` line comments and `/* */` block comments,
//! and folds keywords case-insensitively.

use crate::error::{Location, ParseError, ParseErrorKind, ParseResult};
use crate::token::{Keyword, Token, TokenKind};

/// Streaming tokenizer over a SQL source string.
pub struct Lexer<'a> {
    src: &'a str,
    /// Byte offset of the next unread character.
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer { src, pos: 0, line: 1, column: 1 }
    }

    /// Tokenize the whole input eagerly. The token vector is reserved
    /// from the input length: SQL averages ~3 bytes per token including
    /// whitespace, so `len/3` avoids the tail reallocation that `len/4`
    /// forced on typical queries.
    pub fn tokenize(src: &'a str) -> ParseResult<Vec<Token>> {
        let mut lexer = Lexer::new(src);
        let mut tokens = Vec::with_capacity(src.len() / 3 + 4);
        while let Some(token) = lexer.next_token()? {
            tokens.push(token);
        }
        Ok(tokens)
    }

    fn location(&self) -> Location {
        Location { offset: self.pos, line: self.line, column: self.column }
    }

    /// Next unread byte when it is ASCII — the branch-free fast path
    /// the scanning loops dispatch on (SQL source is overwhelmingly
    /// ASCII; only string literals and quoted identifiers routinely
    /// carry multi-byte characters).
    #[inline]
    fn peek_ascii(&self) -> Option<u8> {
        match self.src.as_bytes().get(self.pos) {
            Some(&b) if b < 0x80 => Some(b),
            _ => None,
        }
    }

    fn peek(&self) -> Option<char> {
        match self.src.as_bytes().get(self.pos) {
            Some(&b) if b < 0x80 => Some(b as char),
            Some(_) => self.src[self.pos..].chars().next(),
            None => None,
        }
    }

    fn peek2(&self) -> Option<char> {
        let mut chars = self.src[self.pos..].chars();
        chars.next();
        chars.next()
    }

    /// Advance one ASCII byte (caller has already peeked it) without
    /// re-decoding.
    #[inline]
    fn bump_ascii(&mut self, b: u8) {
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) -> ParseResult<()> {
        loop {
            // Tight byte loop over ASCII whitespace — the dominant
            // trivia. Non-ASCII whitespace falls through to the char
            // decoder below.
            while let Some(b @ (b' ' | b'\t' | b'\r' | b'\n')) = self.peek_ascii() {
                self.bump_ascii(b);
            }
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('-') if self.peek2() == Some('-') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.location();
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == '*' && self.peek() == Some('/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(ParseError::new(
                            ParseErrorKind::Semantic("unterminated block comment".into()),
                            start,
                        ));
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Produce the next token, or `None` at end of input.
    pub fn next_token(&mut self) -> ParseResult<Option<Token>> {
        self.skip_trivia()?;
        let location = self.location();
        let Some(c) = self.peek() else { return Ok(None) };

        let kind = match c {
            '0'..='9' => self.lex_number(location)?,
            '\'' => self.lex_string(location)?,
            '"' => self.lex_quoted_ident(location)?,
            c if is_ident_start(c) => self.lex_word(),
            ',' => self.single(TokenKind::Comma),
            '.' => {
                // `.5` style floats are not supported; a dot is always a
                // qualifier separator here.
                self.single(TokenKind::Dot)
            }
            '(' => self.single(TokenKind::LParen),
            ')' => self.single(TokenKind::RParen),
            '*' => self.single(TokenKind::Star),
            '+' => self.single(TokenKind::Plus),
            '-' => self.single(TokenKind::Minus),
            '/' => self.single(TokenKind::Slash),
            '%' => self.single(TokenKind::Percent),
            ';' => self.single(TokenKind::Semicolon),
            '=' => self.single(TokenKind::Eq),
            '<' => {
                self.bump();
                match self.peek() {
                    Some('=') => {
                        self.bump();
                        TokenKind::LtEq
                    }
                    Some('>') => {
                        self.bump();
                        TokenKind::NotEq
                    }
                    _ => TokenKind::Lt,
                }
            }
            '>' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            '!' => {
                self.bump();
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::NotEq
                } else {
                    return Err(ParseError::new(ParseErrorKind::UnexpectedChar('!'), location));
                }
            }
            '|' => {
                self.bump();
                if self.peek() == Some('|') {
                    self.bump();
                    TokenKind::Concat
                } else {
                    return Err(ParseError::new(ParseErrorKind::UnexpectedChar('|'), location));
                }
            }
            other => {
                return Err(ParseError::new(ParseErrorKind::UnexpectedChar(other), location));
            }
        };
        Ok(Some(Token { kind, location }))
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn lex_word(&mut self) -> TokenKind {
        let start = self.pos;
        loop {
            // ASCII identifier bytes advance without UTF-8 decoding;
            // only a non-ASCII continuation (Unicode identifiers stay
            // legal) drops to the char-at-a-time path.
            while let Some(b) = self.peek_ascii() {
                if b.is_ascii_alphanumeric() || b == b'_' || b == b'$' {
                    self.bump_ascii(b);
                } else {
                    break;
                }
            }
            match self.peek() {
                Some(c) if !c.is_ascii() && is_ident_continue(c) => {
                    self.bump();
                }
                _ => break,
            }
        }
        let word = &self.src[start..self.pos];
        match Keyword::lookup(word) {
            Some(k) => TokenKind::Keyword(k),
            None => TokenKind::Ident(word.to_string()),
        }
    }

    fn lex_number(&mut self, location: Location) -> ParseResult<TokenKind> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                '0'..='9' => {
                    self.bump();
                }
                '.' if !is_float && matches!(self.peek2(), Some('0'..='9')) => {
                    is_float = true;
                    self.bump();
                }
                'e' | 'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some('+') | Some('-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| ParseError::new(ParseErrorKind::InvalidNumber(text.into()), location))
        } else {
            // Fall back to float on i64 overflow so giant literals still work.
            match text.parse::<i64>() {
                Ok(v) => Ok(TokenKind::Integer(v)),
                Err(_) => text.parse::<f64>().map(TokenKind::Float).map_err(|_| {
                    ParseError::new(ParseErrorKind::InvalidNumber(text.into()), location)
                }),
            }
        }
    }

    fn lex_string(&mut self, location: Location) -> ParseResult<TokenKind> {
        self.bump(); // opening quote
        // distance to the next quote is the exact length for the common
        // escape-free literal (and a close lower bound otherwise)
        let cap = self.src[self.pos..].find('\'').unwrap_or(0);
        let mut value = String::with_capacity(cap);
        loop {
            match self.bump() {
                None => {
                    return Err(ParseError::new(ParseErrorKind::UnterminatedString, location));
                }
                Some('\'') => {
                    // '' is an escaped quote
                    if self.peek() == Some('\'') {
                        self.bump();
                        value.push('\'');
                    } else {
                        return Ok(TokenKind::String(value));
                    }
                }
                Some(c) => value.push(c),
            }
        }
    }

    fn lex_quoted_ident(&mut self, location: Location) -> ParseResult<TokenKind> {
        self.bump(); // opening quote
        let cap = self.src[self.pos..].find('"').unwrap_or(0);
        let mut value = String::with_capacity(cap);
        loop {
            match self.bump() {
                None => {
                    return Err(ParseError::new(ParseErrorKind::UnterminatedIdentifier, location));
                }
                Some('"') => {
                    if self.peek() == Some('"') {
                        self.bump();
                        value.push('"');
                    } else {
                        return Ok(TokenKind::QuotedIdent(value));
                    }
                }
                Some(c) => value.push(c),
            }
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '$'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let toks = kinds("SELECT x, y FROM d1 WHERE x > y");
        assert_eq!(
            toks,
            vec![
                TokenKind::Keyword(Keyword::Select),
                TokenKind::Ident("x".into()),
                TokenKind::Comma,
                TokenKind::Ident("y".into()),
                TokenKind::Keyword(Keyword::From),
                TokenKind::Ident("d1".into()),
                TokenKind::Keyword(Keyword::Where),
                TokenKind::Ident("x".into()),
                TokenKind::Gt,
                TokenKind::Ident("y".into()),
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42"), vec![TokenKind::Integer(42)]);
        assert_eq!(kinds("3.5"), vec![TokenKind::Float(3.5)]);
        assert_eq!(kinds("1e3"), vec![TokenKind::Float(1000.0)]);
        assert_eq!(kinds("2.5e-1"), vec![TokenKind::Float(0.25)]);
    }

    #[test]
    fn integer_overflow_becomes_float() {
        let toks = kinds("99999999999999999999");
        assert!(matches!(toks[0], TokenKind::Float(_)));
    }

    #[test]
    fn dot_is_qualifier_not_float() {
        let toks = kinds("t.x");
        assert_eq!(
            toks,
            vec![TokenKind::Ident("t".into()), TokenKind::Dot, TokenKind::Ident("x".into())]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(kinds("'walk'"), vec![TokenKind::String("walk".into())]);
        assert_eq!(kinds("'it''s'"), vec![TokenKind::String("it's".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        let err = Lexer::tokenize("'oops").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnterminatedString);
    }

    #[test]
    fn lexes_quoted_identifiers() {
        assert_eq!(kinds("\"weird name\""), vec![TokenKind::QuotedIdent("weird name".into())]);
        assert_eq!(kinds("\"a\"\"b\""), vec![TokenKind::QuotedIdent("a\"b".into())]);
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= = <> !="),
            vec![
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        let toks = kinds("SELECT -- the projection\n x");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn skips_block_comments() {
        let toks = kinds("SELECT /* multi\nline */ x");
        assert_eq!(toks.len(), 2);
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(Lexer::tokenize("SELECT /* never closed").is_err());
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = Lexer::tokenize("SELECT\n  x").unwrap();
        assert_eq!(toks[1].location.line, 2);
        assert_eq!(toks[1].location.column, 3);
    }

    #[test]
    fn bang_alone_is_error() {
        assert!(Lexer::tokenize("x ! y").is_err());
    }

    #[test]
    fn pipe_alone_is_error() {
        assert!(Lexer::tokenize("x | y").is_err());
    }

    #[test]
    fn concat_token() {
        assert_eq!(kinds("a || b")[1], TokenKind::Concat);
    }

    #[test]
    fn keywords_fold_case() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(kinds("Group")[0], TokenKind::Keyword(Keyword::Group));
    }

    #[test]
    fn identifier_with_underscore_and_digits() {
        assert_eq!(kinds("regr_intercept2")[0], TokenKind::Ident("regr_intercept2".into()));
    }

    #[test]
    fn empty_input_is_no_tokens() {
        assert!(kinds("").is_empty());
        assert!(kinds("   \n\t ").is_empty());
    }
}
