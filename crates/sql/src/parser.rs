//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (informal):
//!
//! ```text
//! query      := select (UNION [ALL] select)* [';']
//! select     := SELECT [DISTINCT|ALL] items [FROM table] [WHERE expr]
//!               [GROUP BY exprs] [HAVING expr] [ORDER BY order_items]
//!               [LIMIT n] [OFFSET n]
//! items      := item (',' item)*
//! item       := '*' | ident '.' '*' | expr [[AS] ident]
//! table      := factor (join_clause)*
//! factor     := ident [[AS] ident] | '(' query ')' [[AS] ident]
//! join       := [INNER|LEFT [OUTER]|RIGHT [OUTER]|FULL [OUTER]|CROSS] JOIN
//!               factor [ON expr | USING '(' idents ')']
//! expr       := precedence-climbing over OR < AND < NOT < comparison
//!               < additive < multiplicative < unary < postfix < primary
//! ```

use crate::ast::{
    BinaryOp, CaseBranch, ColumnRef, Expr, FunctionCall, JoinKind, Literal, OrderByItem, Query,
    SelectItem, SortOrder, TableRef, UnaryOp, WindowSpec,
};
use crate::error::{Location, ParseError, ParseErrorKind, ParseResult};
use crate::lexer::Lexer;
use crate::token::{Keyword, Token, TokenKind};

/// Parse a single `SELECT` query (optionally `UNION`-chained, optionally
/// terminated by `;`) from `src`.
pub fn parse_query(src: &str) -> ParseResult<Query> {
    let mut parser = Parser::new(src)?;
    let query = parser.parse_query()?;
    parser.eat_kind(&TokenKind::Semicolon);
    parser.expect_eof()?;
    Ok(query)
}

/// Parse a standalone scalar/boolean expression (used for policy
/// conditions such as `x > y` or `SUM(z) > 100`).
pub fn parse_expr(src: &str) -> ParseResult<Expr> {
    let mut parser = Parser::new(src)?;
    let expr = parser.parse_expr()?;
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Location of the end of input, for EOF errors.
    end: Location,
}

impl Parser {
    fn new(src: &str) -> ParseResult<Self> {
        let tokens = Lexer::tokenize(src)?;
        let end = tokens
            .last()
            .map(|t| t.location)
            .unwrap_or(Location::START);
        Ok(Parser { tokens, pos: 0, end })
    }

    // ------------------------------------------------------------------
    // token helpers
    // ------------------------------------------------------------------

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    /// Unconsumed token count — the input-length signal the AST list
    /// vectors reserve their capacity from.
    fn remaining(&self) -> usize {
        self.tokens.len() - self.pos
    }

    fn peek_at(&self, n: usize) -> Option<&TokenKind> {
        self.tokens.get(self.pos + n).map(|t| &t.kind)
    }

    fn location(&self) -> Location {
        self.tokens.get(self.pos).map(|t| t.location).unwrap_or(self.end)
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, k: Keyword) -> bool {
        matches!(self.peek(), Some(TokenKind::Keyword(kk)) if *kk == k)
    }

    fn eat_keyword(&mut self, k: Keyword) -> bool {
        if self.at_keyword(k) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kind(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, k: Keyword) -> ParseResult<()> {
        if self.eat_keyword(k) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {}", k.as_str())))
        }
    }

    fn expect_kind(&mut self, kind: TokenKind) -> ParseResult<()> {
        if self.eat_kind(&kind) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("'{kind}'")))
        }
    }

    fn expect_eof(&self) -> ParseResult<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(ParseError::new(
                ParseErrorKind::UnexpectedToken {
                    found: t.describe(),
                    expected: "end of input".into(),
                },
                self.location(),
            )),
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::new(
                ParseErrorKind::UnexpectedToken {
                    found: t.describe(),
                    expected: expected.to_string(),
                },
                self.location(),
            ),
            None => ParseError::new(
                ParseErrorKind::UnexpectedEof { expected: expected.to_string() },
                self.end,
            ),
        }
    }

    /// Accept an identifier (bare or quoted). Keywords are not identifiers.
    ///
    /// The token's `String` is *moved* into the AST (tokens are consumed
    /// strictly left-to-right, never re-read), so an identifier costs
    /// exactly the one allocation made by the lexer.
    fn parse_ident(&mut self) -> ParseResult<String> {
        match self.peek() {
            Some(TokenKind::Ident(_)) | Some(TokenKind::QuotedIdent(_)) => {
                let pos = self.pos;
                self.pos += 1;
                match &mut self.tokens[pos].kind {
                    TokenKind::Ident(s) | TokenKind::QuotedIdent(s) => Ok(std::mem::take(s)),
                    _ => unreachable!(),
                }
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    // ------------------------------------------------------------------
    // query
    // ------------------------------------------------------------------

    fn parse_query(&mut self) -> ParseResult<Query> {
        let mut query = self.parse_select()?;
        while self.eat_keyword(Keyword::Union) {
            let all = self.eat_keyword(Keyword::All);
            let next = self.parse_select()?;
            query.unions.push((all, next));
        }
        Ok(query)
    }

    fn parse_select(&mut self) -> ParseResult<Query> {
        self.expect_keyword(Keyword::Select)?;
        let distinct = if self.eat_keyword(Keyword::Distinct) {
            true
        } else {
            self.eat_keyword(Keyword::All);
            false
        };

        // reserve the AST list vectors from the unconsumed token count:
        // a select item costs at least ~2 tokens, so `remaining / 8` is
        // a conservative lower-bound guess that kills the 0→1→2→4
        // realloc ladder without over-allocating short queries
        let mut items = Vec::with_capacity((self.remaining() / 8).clamp(1, 16));
        items.push(self.parse_select_item()?);
        while self.eat_kind(&TokenKind::Comma) {
            items.push(self.parse_select_item()?);
        }

        let from = if self.eat_keyword(Keyword::From) {
            Some(self.parse_table_ref()?)
        } else {
            None
        };

        let where_clause =
            if self.eat_keyword(Keyword::Where) { Some(self.parse_expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.eat_keyword(Keyword::Group) {
            self.expect_keyword(Keyword::By)?;
            group_by.reserve((self.remaining() / 4).clamp(1, 8));
            group_by.push(self.parse_expr()?);
            while self.eat_kind(&TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }

        let having =
            if self.eat_keyword(Keyword::Having) { Some(self.parse_expr()?) } else { None };

        let mut order_by = Vec::new();
        if self.eat_keyword(Keyword::Order) {
            self.expect_keyword(Keyword::By)?;
            order_by.reserve((self.remaining() / 4).clamp(1, 8));
            order_by.push(self.parse_order_item()?);
            while self.eat_kind(&TokenKind::Comma) {
                order_by.push(self.parse_order_item()?);
            }
        }

        let limit = if self.eat_keyword(Keyword::Limit) { Some(self.parse_count()?) } else { None };
        let offset =
            if self.eat_keyword(Keyword::Offset) { Some(self.parse_count()?) } else { None };

        Ok(Query {
            distinct,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            offset,
            unions: Vec::new(),
        })
    }

    fn parse_count(&mut self) -> ParseResult<u64> {
        let location = self.location();
        match self.peek() {
            Some(TokenKind::Integer(v)) => {
                let v = *v;
                self.advance();
                u64::try_from(v).map_err(|_| {
                    ParseError::new(
                        ParseErrorKind::Semantic("LIMIT/OFFSET must be non-negative".into()),
                        location,
                    )
                })
            }
            _ => Err(self.unexpected("non-negative integer")),
        }
    }

    fn parse_select_item(&mut self) -> ParseResult<SelectItem> {
        if self.eat_kind(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // qualified wildcard: ident '.' '*'
        if matches!(self.peek(), Some(TokenKind::Ident(_)) | Some(TokenKind::QuotedIdent(_)))
            && self.peek_at(1) == Some(&TokenKind::Dot)
            && self.peek_at(2) == Some(&TokenKind::Star)
        {
            let qualifier = self.parse_ident()?;
            self.advance(); // '.'
            self.advance(); // '*'
            return Ok(SelectItem::QualifiedWildcard(qualifier));
        }
        let expr = self.parse_expr()?;
        let alias = self.parse_alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    /// `[AS] ident` — AS is optional, but a bare keyword never becomes an
    /// implicit alias.
    fn parse_alias(&mut self) -> ParseResult<Option<String>> {
        if self.eat_keyword(Keyword::As) {
            return self.parse_ident().map(Some);
        }
        match self.peek() {
            Some(TokenKind::Ident(_)) | Some(TokenKind::QuotedIdent(_)) => {
                self.parse_ident().map(Some)
            }
            _ => Ok(None),
        }
    }

    fn parse_order_item(&mut self) -> ParseResult<OrderByItem> {
        let expr = self.parse_expr()?;
        let order = if self.eat_keyword(Keyword::Desc) {
            SortOrder::Desc
        } else {
            self.eat_keyword(Keyword::Asc);
            SortOrder::Asc
        };
        Ok(OrderByItem { expr, order })
    }

    // ------------------------------------------------------------------
    // FROM clause
    // ------------------------------------------------------------------

    fn parse_table_ref(&mut self) -> ParseResult<TableRef> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.eat_keyword(Keyword::Cross) {
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Cross)
            } else if self.eat_keyword(Keyword::Inner) {
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Inner)
            } else if self.eat_keyword(Keyword::Left) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Left)
            } else if self.eat_keyword(Keyword::Right) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Right)
            } else if self.eat_keyword(Keyword::Full) {
                self.eat_keyword(Keyword::Outer);
                self.expect_keyword(Keyword::Join)?;
                Some(JoinKind::Full)
            } else if self.eat_keyword(Keyword::Join) {
                Some(JoinKind::Inner)
            } else {
                None
            };
            let Some(kind) = kind else { break };
            let right = self.parse_table_factor()?;
            let on = if kind == JoinKind::Cross {
                None
            } else if self.eat_keyword(Keyword::On) {
                Some(self.parse_expr()?)
            } else if self.eat_keyword(Keyword::Using) {
                // Desugar USING (a, b) into left.a = right.a AND left.b = right.b
                self.expect_kind(TokenKind::LParen)?;
                let mut cols = vec![self.parse_ident()?];
                while self.eat_kind(&TokenKind::Comma) {
                    cols.push(self.parse_ident()?);
                }
                self.expect_kind(TokenKind::RParen)?;
                let lname = left.visible_name().map(str::to_string);
                let rname = right.visible_name().map(str::to_string);
                let mut pred: Option<Expr> = None;
                for c in cols {
                    let l = match &lname {
                        Some(q) => ColumnRef::qualified(q.clone(), c.clone()),
                        None => ColumnRef::bare(c.clone()),
                    };
                    let r = match &rname {
                        Some(q) => ColumnRef::qualified(q.clone(), c.clone()),
                        None => ColumnRef::bare(c.clone()),
                    };
                    let eq = Expr::binary(Expr::Column(l), BinaryOp::Eq, Expr::Column(r));
                    pred = Expr::and_maybe(pred, Some(eq));
                }
                pred
            } else {
                return Err(self.unexpected("ON or USING"));
            };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn parse_table_factor(&mut self) -> ParseResult<TableRef> {
        if self.eat_kind(&TokenKind::LParen) {
            // Either a derived table `(SELECT …)` or a parenthesised join.
            if self.at_keyword(Keyword::Select) {
                let query = self.parse_query()?;
                self.expect_kind(TokenKind::RParen)?;
                let alias = self.parse_alias()?;
                return Ok(TableRef::Subquery { query: Box::new(query), alias });
            }
            let inner = self.parse_table_ref()?;
            self.expect_kind(TokenKind::RParen)?;
            return Ok(inner);
        }
        let name = self.parse_ident()?;
        let alias = self.parse_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    // ------------------------------------------------------------------
    // expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> ParseResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_keyword(Keyword::Or) {
            let right = self.parse_and()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_keyword(Keyword::And) {
            let right = self.parse_not()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> ParseResult<Expr> {
        if self.eat_keyword(Keyword::Not) {
            let inner = self.parse_not()?;
            Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) })
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> ParseResult<Expr> {
        let left = self.parse_additive()?;

        // postfix predicates: IS [NOT] NULL, [NOT] BETWEEN, [NOT] IN, LIKE
        if self.eat_keyword(Keyword::Is) {
            let negated = self.eat_keyword(Keyword::Not);
            self.expect_keyword(Keyword::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let negated = self.eat_keyword(Keyword::Not);
        if self.eat_keyword(Keyword::Between) {
            let low = self.parse_additive()?;
            self.expect_keyword(Keyword::And)?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword(Keyword::In) {
            self.expect_kind(TokenKind::LParen)?;
            let mut list = vec![self.parse_expr()?];
            while self.eat_kind(&TokenKind::Comma) {
                list.push(self.parse_expr()?);
            }
            self.expect_kind(TokenKind::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_keyword(Keyword::Like) {
            let pattern = self.parse_additive()?;
            let like = Expr::binary(left, BinaryOp::Like, pattern);
            return Ok(if negated {
                Expr::Unary { op: UnaryOp::Not, expr: Box::new(like) }
            } else {
                like
            });
        }
        if negated {
            return Err(self.unexpected("BETWEEN, IN or LIKE after NOT"));
        }

        let op = match self.peek() {
            Some(TokenKind::Eq) => Some(BinaryOp::Eq),
            Some(TokenKind::NotEq) => Some(BinaryOp::NotEq),
            Some(TokenKind::Lt) => Some(BinaryOp::Lt),
            Some(TokenKind::LtEq) => Some(BinaryOp::LtEq),
            Some(TokenKind::Gt) => Some(BinaryOp::Gt),
            Some(TokenKind::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinaryOp::Plus,
                Some(TokenKind::Minus) => BinaryOp::Minus,
                Some(TokenKind::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> ParseResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinaryOp::Multiply,
                Some(TokenKind::Slash) => BinaryOp::Divide,
                Some(TokenKind::Percent) => BinaryOp::Modulo,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> ParseResult<Expr> {
        if self.eat_kind(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            // fold `-<numeric literal>` into a negative literal so that
            // rendering round-trips (`-1` ≡ Literal(-1))
            return Ok(match inner {
                Expr::Literal(Literal::Integer(v)) => Expr::Literal(Literal::Integer(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Unary { op: UnaryOp::Minus, expr: Box::new(other) },
            });
        }
        if self.eat_kind(&TokenKind::Plus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Plus, expr: Box::new(inner) });
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> ParseResult<Expr> {
        match self.peek() {
            Some(TokenKind::Integer(v)) => {
                let v = *v;
                self.advance();
                Ok(Expr::Literal(Literal::Integer(v)))
            }
            Some(TokenKind::Float(v)) => {
                let v = *v;
                self.advance();
                Ok(Expr::Literal(Literal::Float(v)))
            }
            Some(TokenKind::String(_)) => {
                let pos = self.pos;
                self.pos += 1;
                let TokenKind::String(s) = &mut self.tokens[pos].kind else { unreachable!() };
                Ok(Expr::Literal(Literal::String(std::mem::take(s))))
            }
            Some(TokenKind::Keyword(Keyword::Null)) => {
                self.advance();
                Ok(Expr::Literal(Literal::Null))
            }
            Some(TokenKind::Keyword(Keyword::True)) => {
                self.advance();
                Ok(Expr::Literal(Literal::Boolean(true)))
            }
            Some(TokenKind::Keyword(Keyword::False)) => {
                self.advance();
                Ok(Expr::Literal(Literal::Boolean(false)))
            }
            Some(TokenKind::Keyword(Keyword::Case)) => self.parse_case(),
            Some(TokenKind::Keyword(Keyword::Cast)) => self.parse_cast(),
            Some(TokenKind::Keyword(Keyword::Exists)) => {
                self.advance();
                self.expect_kind(TokenKind::LParen)?;
                let q = self.parse_query()?;
                self.expect_kind(TokenKind::RParen)?;
                Ok(Expr::Exists(Box::new(q)))
            }
            Some(TokenKind::LParen) => {
                self.advance();
                if self.at_keyword(Keyword::Select) {
                    let q = self.parse_query()?;
                    self.expect_kind(TokenKind::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let inner = self.parse_expr()?;
                self.expect_kind(TokenKind::RParen)?;
                Ok(inner)
            }
            Some(TokenKind::Ident(_)) | Some(TokenKind::QuotedIdent(_)) => {
                self.parse_ident_expr()
            }
            _ => Err(self.unexpected("expression")),
        }
    }

    /// identifier-led expressions: column refs, qualified refs, function
    /// calls (with optional DISTINCT and OVER).
    fn parse_ident_expr(&mut self) -> ParseResult<Expr> {
        let first = self.parse_ident()?;

        if self.eat_kind(&TokenKind::LParen) {
            return self.parse_function_rest(first);
        }

        if self.eat_kind(&TokenKind::Dot) {
            let second = self.parse_ident()?;
            return Ok(Expr::Column(ColumnRef::qualified(first, second)));
        }

        Ok(Expr::Column(ColumnRef::bare(first)))
    }

    fn parse_function_rest(&mut self, name: String) -> ParseResult<Expr> {
        let mut distinct = false;
        // almost every call has 1–2 arguments (AVG(z), regr_intercept(y, x))
        let mut args = Vec::with_capacity(2);
        if !self.eat_kind(&TokenKind::RParen) {
            if self.eat_keyword(Keyword::Distinct) {
                distinct = true;
            }
            if self.eat_kind(&TokenKind::Star) {
                args.push(Expr::Wildcard);
            } else {
                args.push(self.parse_expr()?);
                while self.eat_kind(&TokenKind::Comma) {
                    args.push(self.parse_expr()?);
                }
            }
            self.expect_kind(TokenKind::RParen)?;
        }

        let over = if self.eat_keyword(Keyword::Over) {
            self.expect_kind(TokenKind::LParen)?;
            let mut spec = WindowSpec::default();
            if self.eat_keyword(Keyword::Partition) {
                self.expect_keyword(Keyword::By)?;
                spec.partition_by.push(self.parse_expr()?);
                while self.eat_kind(&TokenKind::Comma) {
                    spec.partition_by.push(self.parse_expr()?);
                }
            }
            if self.eat_keyword(Keyword::Order) {
                self.expect_keyword(Keyword::By)?;
                spec.order_by.push(self.parse_order_item()?);
                while self.eat_kind(&TokenKind::Comma) {
                    spec.order_by.push(self.parse_order_item()?);
                }
            }
            self.expect_kind(TokenKind::RParen)?;
            Some(spec)
        } else {
            None
        };

        Ok(Expr::Function(FunctionCall { name, args, distinct, over }))
    }

    fn parse_case(&mut self) -> ParseResult<Expr> {
        self.expect_keyword(Keyword::Case)?;
        let operand = if self.at_keyword(Keyword::When) {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_keyword(Keyword::When) {
            let when = self.parse_expr()?;
            self.expect_keyword(Keyword::Then)?;
            let then = self.parse_expr()?;
            branches.push(CaseBranch { when, then });
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let else_result = if self.eat_keyword(Keyword::Else) {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword(Keyword::End)?;
        Ok(Expr::Case { operand, branches, else_result })
    }

    fn parse_cast(&mut self) -> ParseResult<Expr> {
        self.expect_keyword(Keyword::Cast)?;
        self.expect_kind(TokenKind::LParen)?;
        let expr = self.parse_expr()?;
        self.expect_keyword(Keyword::As)?;
        let type_name = self.parse_ident()?;
        self.expect_kind(TokenKind::RParen)?;
        Ok(Expr::Cast { expr: Box::new(expr), type_name })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_select() {
        let q = parse_query("SELECT 1").unwrap();
        assert_eq!(q.items.len(), 1);
        assert!(q.from.is_none());
    }

    #[test]
    fn parses_select_star() {
        let q = parse_query("SELECT * FROM stream").unwrap();
        assert!(q.has_wildcard());
        assert_eq!(q.from.as_ref().unwrap().visible_name(), Some("stream"));
    }

    #[test]
    fn parses_sensor_query_from_paper() {
        let q = parse_query("SELECT * FROM stream WHERE z < 2").unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w, Expr::binary(Expr::col("z"), BinaryOp::Lt, Expr::int(2)));
    }

    #[test]
    fn parses_appliance_query_from_paper() {
        let q = parse_query("SELECT x, y, z, t FROM d1 WHERE x > y").unwrap();
        assert_eq!(q.items.len(), 4);
        let w = q.where_clause.unwrap();
        assert_eq!(w, Expr::binary(Expr::col("x"), BinaryOp::Gt, Expr::col("y")));
    }

    #[test]
    fn parses_media_center_query_from_paper() {
        let q = parse_query(
            "SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y HAVING SUM(z) > 100",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 2);
        assert!(q.having.is_some());
        assert_eq!(q.items[2].output_name(), Some("zAVG"));
    }

    #[test]
    fn parses_window_query_from_paper() {
        let q = parse_query(
            "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) FROM d3",
        )
        .unwrap();
        let SelectItem::Expr { expr: Expr::Function(f), .. } = &q.items[0] else {
            panic!("expected function item");
        };
        assert_eq!(f.name, "regr_intercept");
        assert_eq!(f.args.len(), 2);
        let over = f.over.as_ref().unwrap();
        assert_eq!(over.partition_by, vec![Expr::col("zAVG")]);
        assert_eq!(over.order_by.len(), 1);
    }

    #[test]
    fn parses_full_nested_query_from_paper() {
        let q = parse_query(
            "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) \
             FROM (SELECT x, y, AVG(z) AS zAVG, t FROM d \
                   WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100)",
        )
        .unwrap();
        assert_eq!(q.nesting_depth(), 2);
        let inner = q.innermost();
        assert_eq!(inner.group_by.len(), 2);
        let conjuncts = inner.where_clause.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjuncts, 2);
    }

    #[test]
    fn parses_count_star() {
        let q = parse_query("SELECT COUNT(*) FROM d").unwrap();
        let SelectItem::Expr { expr: Expr::Function(f), .. } = &q.items[0] else {
            panic!();
        };
        assert_eq!(f.args, vec![Expr::Wildcard]);
    }

    #[test]
    fn parses_count_distinct() {
        let q = parse_query("SELECT COUNT(DISTINCT tag) FROM ubisense").unwrap();
        let SelectItem::Expr { expr: Expr::Function(f), .. } = &q.items[0] else {
            panic!();
        };
        assert!(f.distinct);
    }

    #[test]
    fn parses_joins() {
        let q = parse_query(
            "SELECT u.x, s.pressure FROM ubisense u JOIN sensfloor s ON u.t = s.t",
        )
        .unwrap();
        let TableRef::Join { kind, on, .. } = q.from.as_ref().unwrap() else {
            panic!("expected join");
        };
        assert_eq!(*kind, JoinKind::Inner);
        assert!(on.is_some());
    }

    #[test]
    fn parses_left_outer_join() {
        let q = parse_query("SELECT * FROM a LEFT OUTER JOIN b ON a.k = b.k").unwrap();
        let TableRef::Join { kind, .. } = q.from.as_ref().unwrap() else { panic!() };
        assert_eq!(*kind, JoinKind::Left);
    }

    #[test]
    fn parses_cross_join_without_on() {
        let q = parse_query("SELECT * FROM a CROSS JOIN b").unwrap();
        let TableRef::Join { kind, on, .. } = q.from.as_ref().unwrap() else { panic!() };
        assert_eq!(*kind, JoinKind::Cross);
        assert!(on.is_none());
    }

    #[test]
    fn desugars_using_join() {
        let q = parse_query("SELECT * FROM a JOIN b USING (k)").unwrap();
        let TableRef::Join { on, .. } = q.from.as_ref().unwrap() else { panic!() };
        let on = on.as_ref().unwrap();
        assert_eq!(
            *on,
            Expr::binary(
                Expr::Column(ColumnRef::qualified("a", "k")),
                BinaryOp::Eq,
                Expr::Column(ColumnRef::qualified("b", "k")),
            )
        );
    }

    #[test]
    fn join_missing_on_is_error() {
        assert!(parse_query("SELECT * FROM a JOIN b").is_err());
    }

    #[test]
    fn parses_order_limit_offset() {
        let q = parse_query("SELECT x FROM d ORDER BY x DESC, y LIMIT 10 OFFSET 5").unwrap();
        assert_eq!(q.order_by.len(), 2);
        assert_eq!(q.order_by[0].order, SortOrder::Desc);
        assert_eq!(q.order_by[1].order, SortOrder::Asc);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
    }

    #[test]
    fn negative_limit_is_error() {
        // `-1` lexes as minus then integer; parser rejects non-integer LIMIT.
        assert!(parse_query("SELECT x FROM d LIMIT -1").is_err());
    }

    #[test]
    fn parses_between_and_in() {
        let e = parse_expr("x BETWEEN 1 AND 5").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expr("x NOT IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }

    #[test]
    fn parses_is_null() {
        let e = parse_expr("valid IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn parses_case_expression() {
        let e = parse_expr(
            "CASE WHEN z < 1 THEN 'low' WHEN z < 2 THEN 'mid' ELSE 'high' END",
        )
        .unwrap();
        let Expr::Case { operand, branches, else_result } = e else { panic!() };
        assert!(operand.is_none());
        assert_eq!(branches.len(), 2);
        assert!(else_result.is_some());
    }

    #[test]
    fn parses_case_with_operand() {
        let e = parse_expr("CASE action WHEN 'walk' THEN 1 ELSE 0 END").unwrap();
        let Expr::Case { operand, .. } = e else { panic!() };
        assert!(operand.is_some());
    }

    #[test]
    fn parses_cast() {
        let e = parse_expr("CAST(z AS INTEGER)").unwrap();
        let Expr::Cast { type_name, .. } = e else { panic!() };
        assert_eq!(type_name, "INTEGER");
    }

    #[test]
    fn precedence_or_and() {
        // a OR b AND c == a OR (b AND c)
        let e = parse_expr("a OR b AND c").unwrap();
        let Expr::Binary { op: BinaryOp::Or, right, .. } = e else { panic!() };
        assert!(matches!(*right, Expr::Binary { op: BinaryOp::And, .. }));
    }

    #[test]
    fn precedence_arithmetic() {
        // 1 + 2 * 3 == 1 + (2 * 3)
        let e = parse_expr("1 + 2 * 3").unwrap();
        let Expr::Binary { op: BinaryOp::Plus, right, .. } = e else { panic!() };
        assert!(matches!(*right, Expr::Binary { op: BinaryOp::Multiply, .. }));
    }

    #[test]
    fn precedence_not_binds_tighter_than_and() {
        let e = parse_expr("NOT a AND b").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinaryOp::And, .. }));
    }

    #[test]
    fn parenthesised_expressions() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        let Expr::Binary { op: BinaryOp::Multiply, left, .. } = e else { panic!() };
        assert!(matches!(*left, Expr::Binary { op: BinaryOp::Plus, .. }));
    }

    #[test]
    fn parses_scalar_subquery() {
        let e = parse_expr("x > (SELECT AVG(z) FROM d)").unwrap();
        let Expr::Binary { right, .. } = e else { panic!() };
        assert!(matches!(*right, Expr::Subquery(_)));
    }

    #[test]
    fn parses_exists() {
        let e = parse_expr("EXISTS (SELECT 1 FROM d WHERE z < 2)").unwrap();
        assert!(matches!(e, Expr::Exists(_)));
    }

    #[test]
    fn parses_union() {
        let q = parse_query("SELECT x FROM a UNION ALL SELECT x FROM b UNION SELECT x FROM c")
            .unwrap();
        assert_eq!(q.unions.len(), 2);
        assert!(q.unions[0].0);
        assert!(!q.unions[1].0);
    }

    #[test]
    fn parses_qualified_wildcard() {
        let q = parse_query("SELECT u.* FROM ubisense u").unwrap();
        assert!(matches!(&q.items[0], SelectItem::QualifiedWildcard(s) if s == "u"));
    }

    #[test]
    fn alias_without_as() {
        let q = parse_query("SELECT AVG(z) zavg FROM d").unwrap();
        assert_eq!(q.items[0].output_name(), Some("zavg"));
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse_query("SELECT x FROM d garbage garbage").is_err());
        assert!(parse_query("SELECT x FROM d;").is_ok());
    }

    #[test]
    fn error_reports_position() {
        let err = parse_query("SELECT FROM d").unwrap_err();
        assert_eq!(err.location.line, 1);
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn missing_from_after_comma_is_error() {
        assert!(parse_query("SELECT x, FROM d").is_err());
    }

    #[test]
    fn keywords_cannot_be_aliases() {
        // `FROM` must not be swallowed as an implicit alias.
        let q = parse_query("SELECT x FROM d").unwrap();
        assert_eq!(q.items[0].output_name(), Some("x"));
    }

    #[test]
    fn parses_quoted_identifiers() {
        let q = parse_query("SELECT \"weird col\" FROM \"weird table\"").unwrap();
        assert_eq!(q.items[0].output_name(), Some("weird col"));
    }

    #[test]
    fn parses_deeply_nested_subqueries() {
        let q = parse_query(
            "SELECT * FROM (SELECT * FROM (SELECT * FROM (SELECT * FROM d1)))",
        )
        .unwrap();
        assert_eq!(q.nesting_depth(), 4);
        assert_eq!(q.innermost().from.as_ref().unwrap().visible_name(), Some("d1"));
    }

    #[test]
    fn window_without_partition() {
        let q = parse_query("SELECT SUM(z) OVER (ORDER BY t) FROM d").unwrap();
        let SelectItem::Expr { expr: Expr::Function(f), .. } = &q.items[0] else { panic!() };
        let over = f.over.as_ref().unwrap();
        assert!(over.partition_by.is_empty());
        assert_eq!(over.order_by.len(), 1);
    }

    #[test]
    fn empty_over_clause() {
        let q = parse_query("SELECT SUM(z) OVER () FROM d").unwrap();
        let SelectItem::Expr { expr: Expr::Function(f), .. } = &q.items[0] else { panic!() };
        let over = f.over.as_ref().unwrap();
        assert!(over.partition_by.is_empty() && over.order_by.is_empty());
    }
}
