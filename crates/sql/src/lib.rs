//! # paradise-sql
//!
//! SQL frontend for the PArADISE reproduction: a hand-rolled lexer,
//! recursive-descent parser, AST, SQL renderer and static analyses for the
//! SQL subset used by *Privacy Protection through Query Rewriting in Smart
//! Environments* (Grunert & Heuer, EDBT 2016).
//!
//! The subset covers everything the paper's running example and evaluation
//! need: nested `SELECT` blocks, joins, `WHERE`/`GROUP BY`/`HAVING`/
//! `ORDER BY`/`LIMIT`, window functions (`OVER (PARTITION BY … ORDER BY …)`),
//! the SQL:2011 regression aggregates (`regr_intercept`, …), `CASE`,
//! `BETWEEN`/`IN`/`IS NULL`, `UNION [ALL]`, and `SELECT *` stream scans.
//!
//! ```
//! use paradise_sql::parse_query;
//!
//! let q = parse_query("SELECT x, y, AVG(z) AS zAVG, t FROM d2 \
//!                      GROUP BY x, y HAVING SUM(z) > 100").unwrap();
//! assert_eq!(q.group_by.len(), 2);
//! // rendering round-trips
//! let again = parse_query(&q.to_string()).unwrap();
//! assert_eq!(q, again);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod builder;
pub mod display;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod visit;

pub use ast::{
    BinaryOp, CaseBranch, ColumnRef, Expr, FunctionCall, JoinKind, Literal, OrderByItem, Query,
    SelectItem, SortOrder, TableRef, UnaryOp, WindowSpec,
};
pub use error::{Location, ParseError, ParseErrorKind, ParseResult};
pub use parser::{parse_expr, parse_query};
