//! A fluent builder for programmatic query construction — rewriters and
//! tests assemble queries without going through SQL text.
//!
//! ```
//! use paradise_sql::builder::QueryBuilder;
//! use paradise_sql::parse_expr;
//!
//! let q = QueryBuilder::from_table("stream")
//!     .column("x")
//!     .column("y")
//!     .aggregate("AVG", "z", Some("zAVG"))
//!     .column("t")
//!     .filter(parse_expr("x > y").unwrap())
//!     .filter(parse_expr("z < 2").unwrap())
//!     .group_by(&["x", "y"])
//!     .having(parse_expr("SUM(z) > 100").unwrap())
//!     .build();
//! assert_eq!(
//!     q.to_string(),
//!     "SELECT x, y, AVG(z) AS zAVG, t FROM stream \
//!      WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100"
//! );
//! ```

use crate::ast::{
    ColumnRef, Expr, FunctionCall, OrderByItem, Query, SelectItem, SortOrder, TableRef,
};

/// Builder for a single `SELECT` block.
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    query: Query,
}

impl QueryBuilder {
    /// Start from a base table.
    pub fn from_table(name: impl Into<String>) -> Self {
        QueryBuilder {
            query: Query { from: Some(TableRef::table(name.into())), ..Query::default() },
        }
    }

    /// Start from a derived table (nested query).
    pub fn from_subquery(inner: Query) -> Self {
        QueryBuilder {
            query: Query { from: Some(TableRef::subquery(inner)), ..Query::default() },
        }
    }

    /// Project everything (`SELECT *`).
    #[must_use]
    pub fn wildcard(mut self) -> Self {
        self.query.items.push(SelectItem::Wildcard);
        self
    }

    /// Project a plain column.
    #[must_use]
    pub fn column(mut self, name: impl Into<String>) -> Self {
        self.query.items.push(SelectItem::expr(Expr::Column(ColumnRef::bare(name))));
        self
    }

    /// Project an arbitrary expression with an optional alias.
    #[must_use]
    pub fn expr(mut self, expr: Expr, alias: Option<&str>) -> Self {
        self.query.items.push(SelectItem::Expr { expr, alias: alias.map(str::to_string) });
        self
    }

    /// Project `FUNC(column) [AS alias]`.
    #[must_use]
    pub fn aggregate(
        mut self,
        function: impl Into<String>,
        column: impl Into<String>,
        alias: Option<&str>,
    ) -> Self {
        let call = FunctionCall::new(
            function,
            vec![Expr::Column(ColumnRef::bare(column))],
        );
        self.query.items.push(SelectItem::Expr {
            expr: Expr::Function(call),
            alias: alias.map(str::to_string),
        });
        self
    }

    /// Conjoin a predicate into the `WHERE` clause.
    #[must_use]
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.query.where_clause =
            Expr::and_maybe(self.query.where_clause.take(), Some(predicate));
        self
    }

    /// Add grouping columns.
    #[must_use]
    pub fn group_by(mut self, columns: &[&str]) -> Self {
        for c in columns {
            self.query.group_by.push(Expr::Column(ColumnRef::bare(*c)));
        }
        self
    }

    /// Conjoin a `HAVING` predicate.
    #[must_use]
    pub fn having(mut self, predicate: Expr) -> Self {
        self.query.having = Expr::and_maybe(self.query.having.take(), Some(predicate));
        self
    }

    /// `SELECT DISTINCT`.
    #[must_use]
    pub fn distinct(mut self) -> Self {
        self.query.distinct = true;
        self
    }

    /// Add an `ORDER BY` key.
    #[must_use]
    pub fn order_by(mut self, column: impl Into<String>, order: SortOrder) -> Self {
        self.query
            .order_by
            .push(OrderByItem { expr: Expr::Column(ColumnRef::bare(column)), order });
        self
    }

    /// Set `LIMIT`.
    #[must_use]
    pub fn limit(mut self, n: u64) -> Self {
        self.query.limit = Some(n);
        self
    }

    /// Set `OFFSET`.
    #[must_use]
    pub fn offset(mut self, n: u64) -> Self {
        self.query.offset = Some(n);
        self
    }

    /// Finish. Defaults to `SELECT *` when nothing was projected.
    pub fn build(mut self) -> Query {
        if self.query.items.is_empty() {
            self.query.items.push(SelectItem::Wildcard);
        }
        self.query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_query};

    #[test]
    fn builds_the_papers_inner_block() {
        let q = QueryBuilder::from_table("stream")
            .column("x")
            .column("y")
            .aggregate("AVG", "z", Some("zAVG"))
            .column("t")
            .filter(parse_expr("x > y").unwrap())
            .filter(parse_expr("z < 2").unwrap())
            .group_by(&["x", "y"])
            .having(parse_expr("SUM(z) > 100").unwrap())
            .build();
        let expected = parse_query(
            "SELECT x, y, AVG(z) AS zAVG, t FROM stream \
             WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100",
        )
        .unwrap();
        assert_eq!(q, expected);
    }

    #[test]
    fn builds_nested_queries() {
        let inner = QueryBuilder::from_table("stream").wildcard().build();
        let outer = QueryBuilder::from_subquery(inner)
            .column("x")
            .order_by("x", SortOrder::Desc)
            .limit(10)
            .offset(2)
            .build();
        assert_eq!(
            outer.to_string(),
            "SELECT x FROM (SELECT * FROM stream) ORDER BY x DESC LIMIT 10 OFFSET 2"
        );
    }

    #[test]
    fn empty_projection_defaults_to_wildcard() {
        let q = QueryBuilder::from_table("s").build();
        assert!(q.has_wildcard());
    }

    #[test]
    fn distinct_and_expr_items() {
        let q = QueryBuilder::from_table("s")
            .distinct()
            .expr(parse_expr("x + 1").unwrap(), Some("xp"))
            .build();
        assert_eq!(q.to_string(), "SELECT DISTINCT x + 1 AS xp FROM s");
    }

    #[test]
    fn filters_conjoin_in_order() {
        let q = QueryBuilder::from_table("s")
            .wildcard()
            .filter(parse_expr("a > 1").unwrap())
            .filter(parse_expr("b < 2").unwrap())
            .filter(parse_expr("c = 3").unwrap())
            .build();
        let conjuncts: Vec<String> = q
            .where_clause
            .as_ref()
            .unwrap()
            .conjuncts()
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(conjuncts, vec!["a > 1", "b < 2", "c = 3"]);
    }
}
