//! Token model for the SQL lexer.

use std::fmt;

use crate::error::Location;

/// A lexical token together with the location where it starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// Start position of the token in the source.
    pub location: Location,
}

/// All token categories produced by the lexer.
///
/// Keywords are recognised case-insensitively and carried as a dedicated
/// [`Keyword`] value; everything alphabetic that is not a keyword becomes an
/// [`TokenKind::Ident`].
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // punctuation variants are self-describing
pub enum TokenKind {
    /// A reserved word such as `SELECT`.
    Keyword(Keyword),
    /// A bare (unquoted) identifier. Original spelling is preserved.
    Ident(String),
    /// A `"quoted"` identifier; may contain arbitrary characters.
    QuotedIdent(String),
    /// An integer literal that fits in `i64`.
    Integer(i64),
    /// A floating point literal.
    Float(f64),
    /// A `'single quoted'` string literal with `''` escapes resolved.
    String(String),

    // punctuation & operators
    Comma,
    Dot,
    LParen,
    RParen,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    /// `<>` or `!=`.
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    /// `||` string concatenation.
    Concat,
    Semicolon,
}

impl TokenKind {
    /// Render the token the way an error message should show it.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Keyword(k) => format!("keyword {}", k.as_str()),
            TokenKind::Ident(s) => format!("identifier {s:?}"),
            TokenKind::QuotedIdent(s) => format!("identifier \"{s}\""),
            TokenKind::Integer(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("number {v}"),
            TokenKind::String(s) => format!("string {s:?}"),
            other => format!("'{other}'"),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => f.write_str(k.as_str()),
            TokenKind::Ident(s) => f.write_str(s),
            TokenKind::QuotedIdent(s) => write!(f, "\"{s}\""),
            TokenKind::Integer(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::String(s) => write!(f, "'{s}'"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Percent => f.write_str("%"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::NotEq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::LtEq => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::GtEq => f.write_str(">="),
            TokenKind::Concat => f.write_str("||"),
            TokenKind::Semicolon => f.write_str(";"),
        }
    }
}

macro_rules! keywords {
    ($($variant:ident => $text:literal),+ $(,)?) => {
        /// Reserved words of the supported SQL subset.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($variant),+
        }

        impl Keyword {
            /// Canonical upper-case spelling.
            pub fn as_str(&self) -> &'static str {
                match self {
                    $(Keyword::$variant => $text),+
                }
            }

            /// Look a word up case-insensitively.
            pub fn lookup(word: &str) -> Option<Keyword> {
                // Allocation-free probe: `eq_ignore_ascii_case` rejects on
                // length/first byte immediately, so scanning the small
                // static table beats building an uppercased copy of every
                // word the lexer sees (the old implementation allocated a
                // `String` per identifier/keyword token).
                $(
                    if word.eq_ignore_ascii_case($text) {
                        return Some(Keyword::$variant);
                    }
                )+
                None
            }
        }

        impl fmt::Display for Keyword {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

keywords! {
    Select => "SELECT",
    From => "FROM",
    Where => "WHERE",
    Group => "GROUP",
    By => "BY",
    Having => "HAVING",
    Order => "ORDER",
    Limit => "LIMIT",
    Offset => "OFFSET",
    As => "AS",
    And => "AND",
    Or => "OR",
    Not => "NOT",
    In => "IN",
    Is => "IS",
    Null => "NULL",
    True => "TRUE",
    False => "FALSE",
    Between => "BETWEEN",
    Like => "LIKE",
    Distinct => "DISTINCT",
    All => "ALL",
    Asc => "ASC",
    Desc => "DESC",
    Join => "JOIN",
    Inner => "INNER",
    Left => "LEFT",
    Right => "RIGHT",
    Full => "FULL",
    Outer => "OUTER",
    Cross => "CROSS",
    On => "ON",
    Using => "USING",
    Over => "OVER",
    Partition => "PARTITION",
    Case => "CASE",
    When => "WHEN",
    Then => "THEN",
    Else => "ELSE",
    End => "END",
    Exists => "EXISTS",
    Union => "UNION",
    Cast => "CAST",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::lookup("select"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("PARTITION"), Some(Keyword::Partition));
        assert_eq!(Keyword::lookup("zavg"), None);
    }

    #[test]
    fn keyword_display_is_canonical() {
        assert_eq!(Keyword::Select.to_string(), "SELECT");
        assert_eq!(Keyword::Over.to_string(), "OVER");
    }

    #[test]
    fn token_display_roundtrips_punctuation() {
        assert_eq!(TokenKind::NotEq.to_string(), "<>");
        assert_eq!(TokenKind::Concat.to_string(), "||");
        assert_eq!(TokenKind::LtEq.to_string(), "<=");
    }

    #[test]
    fn describe_distinguishes_kinds() {
        assert_eq!(TokenKind::Ident("x".into()).describe(), "identifier \"x\"");
        assert_eq!(TokenKind::Integer(3).describe(), "integer 3");
        assert!(TokenKind::Comma.describe().contains(','));
    }
}
