//! Walkers over the AST: immutable visits and in-place transformations.
//!
//! Rewriters in `paradise-core` are built on [`rewrite_block_exprs`] /
//! [`transform_expr`]; analyses use [`walk_exprs`].

use crate::ast::{Expr, Query, SelectItem, TableRef};

/// Visit every expression in the query **including** expressions nested in
/// subqueries of `FROM`, in `JOIN … ON`, window specs, and set operations.
pub fn walk_exprs<'q>(query: &'q Query, visit: &mut dyn FnMut(&'q Expr)) {
    for item in &query.items {
        if let SelectItem::Expr { expr, .. } = item {
            walk_expr(expr, visit);
        }
    }
    if let Some(from) = &query.from {
        walk_table_exprs(from, visit);
    }
    if let Some(w) = &query.where_clause {
        walk_expr(w, visit);
    }
    for g in &query.group_by {
        walk_expr(g, visit);
    }
    if let Some(h) = &query.having {
        walk_expr(h, visit);
    }
    for o in &query.order_by {
        walk_expr(&o.expr, visit);
    }
    for (_, q) in &query.unions {
        walk_exprs(q, visit);
    }
}

fn walk_table_exprs<'q>(table: &'q TableRef, visit: &mut dyn FnMut(&'q Expr)) {
    match table {
        TableRef::Table { .. } => {}
        TableRef::Subquery { query, .. } => walk_exprs(query, visit),
        TableRef::Join { left, right, on, .. } => {
            walk_table_exprs(left, visit);
            walk_table_exprs(right, visit);
            if let Some(on) = on {
                walk_expr(on, visit);
            }
        }
    }
}

/// Depth-first visit of one expression tree (children before the node
/// itself is *not* guaranteed; parents are visited first).
pub fn walk_expr<'e>(expr: &'e Expr, visit: &mut dyn FnMut(&'e Expr)) {
    visit(expr);
    match expr {
        Expr::Unary { expr, .. } => walk_expr(expr, visit),
        Expr::Binary { left, right, .. } => {
            walk_expr(left, visit);
            walk_expr(right, visit);
        }
        Expr::Function(f) => {
            for a in &f.args {
                walk_expr(a, visit);
            }
            if let Some(over) = &f.over {
                for p in &over.partition_by {
                    walk_expr(p, visit);
                }
                for o in &over.order_by {
                    walk_expr(&o.expr, visit);
                }
            }
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                walk_expr(op, visit);
            }
            for b in branches {
                walk_expr(&b.when, visit);
                walk_expr(&b.then, visit);
            }
            if let Some(e) = else_result {
                walk_expr(e, visit);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            walk_expr(expr, visit);
            walk_expr(low, visit);
            walk_expr(high, visit);
        }
        Expr::InList { expr, list, .. } => {
            walk_expr(expr, visit);
            for e in list {
                walk_expr(e, visit);
            }
        }
        Expr::IsNull { expr, .. } => walk_expr(expr, visit),
        Expr::Cast { expr, .. } => walk_expr(expr, visit),
        Expr::Subquery(q) | Expr::Exists(q) => walk_exprs(q, visit),
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
    }
}

/// Rewrite one expression tree bottom-up: children are transformed first,
/// then `f` is applied to the rebuilt node. `f` returning `None` keeps the
/// node; returning `Some(e)` replaces it.
pub fn transform_expr(expr: Expr, f: &mut dyn FnMut(Expr) -> Option<Expr>) -> Expr {
    let rebuilt = match expr {
        Expr::Unary { op, expr } => {
            Expr::Unary { op, expr: Box::new(transform_expr(*expr, f)) }
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(transform_expr(*left, f)),
            op,
            right: Box::new(transform_expr(*right, f)),
        },
        Expr::Function(mut call) => {
            call.args = call.args.into_iter().map(|a| transform_expr(a, f)).collect();
            if let Some(over) = call.over.take() {
                let partition_by =
                    over.partition_by.into_iter().map(|p| transform_expr(p, f)).collect();
                let order_by = over
                    .order_by
                    .into_iter()
                    .map(|mut o| {
                        o.expr = transform_expr(o.expr, f);
                        o
                    })
                    .collect();
                call.over = Some(crate::ast::WindowSpec { partition_by, order_by });
            }
            Expr::Function(call)
        }
        Expr::Case { operand, branches, else_result } => Expr::Case {
            operand: operand.map(|o| Box::new(transform_expr(*o, f))),
            branches: branches
                .into_iter()
                .map(|b| crate::ast::CaseBranch {
                    when: transform_expr(b.when, f),
                    then: transform_expr(b.then, f),
                })
                .collect(),
            else_result: else_result.map(|e| Box::new(transform_expr(*e, f))),
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(transform_expr(*expr, f)),
            low: Box::new(transform_expr(*low, f)),
            high: Box::new(transform_expr(*high, f)),
            negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(transform_expr(*expr, f)),
            list: list.into_iter().map(|e| transform_expr(e, f)).collect(),
            negated,
        },
        Expr::IsNull { expr, negated } => {
            Expr::IsNull { expr: Box::new(transform_expr(*expr, f)), negated }
        }
        Expr::Cast { expr, type_name } => {
            Expr::Cast { expr: Box::new(transform_expr(*expr, f)), type_name }
        }
        leaf @ (Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard) => leaf,
        sub @ (Expr::Subquery(_) | Expr::Exists(_)) => sub,
    };
    f(rebuilt.clone()).unwrap_or(rebuilt)
}

/// Apply `f` to every expression position of this query block only (not
/// descending into FROM subqueries — rewriters usually control recursion
/// themselves via [`Query::innermost_mut`]).
pub fn rewrite_block_exprs(query: &mut Query, f: &mut dyn FnMut(Expr) -> Option<Expr>) {
    for item in &mut query.items {
        if let SelectItem::Expr { expr, .. } = item {
            let owned = std::mem::replace(expr, Expr::Wildcard);
            *expr = transform_expr(owned, f);
        }
    }
    if let Some(w) = query.where_clause.take() {
        query.where_clause = Some(transform_expr(w, f));
    }
    query.group_by = std::mem::take(&mut query.group_by)
        .into_iter()
        .map(|g| transform_expr(g, f))
        .collect();
    if let Some(h) = query.having.take() {
        query.having = Some(transform_expr(h, f));
    }
    for o in &mut query.order_by {
        let owned = std::mem::replace(&mut o.expr, Expr::Wildcard);
        o.expr = transform_expr(owned, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinaryOp, ColumnRef};
    use crate::parser::parse_query;

    #[test]
    fn walk_exprs_reaches_all_clauses() {
        let q = parse_query(
            "SELECT AVG(z) AS za FROM (SELECT * FROM d WHERE z < 2) \
             WHERE x > y GROUP BY x HAVING SUM(z) > 100 ORDER BY t",
        )
        .unwrap();
        let mut columns = Vec::new();
        walk_exprs(&q, &mut |e| {
            if let Expr::Column(c) = e {
                columns.push(c.name.clone());
            }
        });
        for expected in ["z", "x", "y", "t"] {
            assert!(columns.iter().any(|c| c == expected), "missing {expected}: {columns:?}");
        }
    }

    #[test]
    fn walk_reaches_join_on() {
        let q = parse_query("SELECT 1 FROM a JOIN b ON a.k = b.k2").unwrap();
        let mut found = false;
        walk_exprs(&q, &mut |e| {
            if let Expr::Column(c) = e {
                found |= c.name == "k2";
            }
        });
        assert!(found);
    }

    #[test]
    fn walk_reaches_window_spec() {
        let q =
            parse_query("SELECT SUM(z) OVER (PARTITION BY p ORDER BY t2) FROM d").unwrap();
        let mut names = Vec::new();
        walk_exprs(&q, &mut |e| {
            if let Expr::Column(c) = e {
                names.push(c.name.clone());
            }
        });
        assert!(names.contains(&"p".to_string()));
        assert!(names.contains(&"t2".to_string()));
    }

    #[test]
    fn transform_renames_column() {
        let q = parse_query("SELECT z FROM d WHERE z < 2").unwrap();
        let mut q = q;
        rewrite_block_exprs(&mut q, &mut |e| match e {
            Expr::Column(c) if c.name == "z" => {
                Some(Expr::Column(ColumnRef::bare("zAVG")))
            }
            _ => None,
        });
        let rendered = q.to_string();
        assert_eq!(rendered, "SELECT zAVG FROM d WHERE zAVG < 2");
    }

    #[test]
    fn transform_is_bottom_up() {
        // rewrite z -> 1, then constant-fold 1 < 2 -> TRUE in one pass
        let q = parse_query("SELECT * FROM d WHERE z < 2").unwrap();
        let mut q = q;
        rewrite_block_exprs(&mut q, &mut |e| match &e {
            Expr::Column(c) if c.name == "z" => Some(Expr::int(1)),
            Expr::Binary { left, op: BinaryOp::Lt, right } => {
                if let (Expr::Literal(crate::ast::Literal::Integer(a)),
                        Expr::Literal(crate::ast::Literal::Integer(b))) =
                    (left.as_ref(), right.as_ref())
                {
                    Some(Expr::Literal(crate::ast::Literal::Boolean(a < b)))
                } else {
                    None
                }
            }
            _ => None,
        });
        assert_eq!(q.to_string(), "SELECT * FROM d WHERE TRUE");
    }

    #[test]
    fn walk_reaches_union_branches() {
        let q = parse_query("SELECT a FROM x UNION SELECT b FROM y").unwrap();
        let mut names = Vec::new();
        walk_exprs(&q, &mut |e| {
            if let Expr::Column(c) = e {
                names.push(c.name.clone());
            }
        });
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }
}
