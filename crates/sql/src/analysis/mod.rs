//! Static analyses over the AST: feature detection, attribute usage and
//! predicate shape classification.

pub mod attrs;
pub mod features;
pub mod functions;
pub mod predicates;

pub use attrs::{
    base_relations, expr_attributes, output_columns, projected_attributes,
    referenced_attributes, OutputColumns,
};
pub use features::{block_features, deep_features, FeatureSet, SqlFeature};
pub use functions::{
    is_aggregate_function, is_known_function, is_regression_function, is_scalar_function,
};
pub use predicates::{classify_predicate, split_conjuncts_by_shape, PredicateShape, SplitPredicates};
