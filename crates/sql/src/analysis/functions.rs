//! Classification of function names shared by the analyses, the rewriter
//! and the execution engine.

/// Aggregate functions of the subset (matched case-insensitively).
///
/// `regr_intercept` / `regr_slope` / `regr_r2` are the SQL:2011 linear
/// regression aggregates used by the paper's running example.
pub const AGGREGATE_FUNCTIONS: &[&str] = &[
    "AVG",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "STDDEV",
    "VAR_SAMP",
    "REGR_INTERCEPT",
    "REGR_SLOPE",
    "REGR_R2",
    "REGR_COUNT",
];

/// Scalar functions of the subset (matched case-insensitively).
pub const SCALAR_FUNCTIONS: &[&str] = &[
    "ABS", "ROUND", "FLOOR", "CEIL", "SQRT", "POWER", "LN", "EXP", "LOWER", "UPPER", "LENGTH",
    "COALESCE", "NULLIF", "CLAMP",
];

/// Is `name` an aggregate function?
pub fn is_aggregate_function(name: &str) -> bool {
    let upper = name.to_ascii_uppercase();
    AGGREGATE_FUNCTIONS.contains(&upper.as_str())
}

/// Is `name` one of the regression aggregates (SQL:2011 statistical
/// functions, beyond "SQL light")?
pub fn is_regression_function(name: &str) -> bool {
    name.to_ascii_uppercase().starts_with("REGR_")
}

/// Is `name` a known scalar function?
pub fn is_scalar_function(name: &str) -> bool {
    let upper = name.to_ascii_uppercase();
    SCALAR_FUNCTIONS.contains(&upper.as_str())
}

/// Is `name` known at all (scalar or aggregate)?
pub fn is_known_function(name: &str) -> bool {
    is_aggregate_function(name) || is_scalar_function(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_are_case_insensitive() {
        assert!(is_aggregate_function("avg"));
        assert!(is_aggregate_function("AVG"));
        assert!(is_aggregate_function("regr_intercept"));
        assert!(!is_aggregate_function("abs"));
    }

    #[test]
    fn regression_detection() {
        assert!(is_regression_function("regr_intercept"));
        assert!(is_regression_function("REGR_SLOPE"));
        assert!(!is_regression_function("avg"));
    }

    #[test]
    fn scalar_detection() {
        assert!(is_scalar_function("round"));
        assert!(!is_scalar_function("sum"));
    }

    #[test]
    fn known_covers_both() {
        assert!(is_known_function("sum"));
        assert!(is_known_function("coalesce"));
        assert!(!is_known_function("filterByClass"));
    }
}
