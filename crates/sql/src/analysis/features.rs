//! SQL feature detection.
//!
//! [`FeatureSet`] describes what language constructs a query block uses.
//! The vertical fragmenter matches these against per-level
//! capability sets (paper Table 1) to decide how far down a fragment can
//! be pushed.

use std::fmt;

use crate::analysis::functions::{is_aggregate_function, is_regression_function};
use crate::ast::{BinaryOp, Expr, Query, SelectItem, TableRef};
use crate::visit::walk_expr;

/// Individual SQL capabilities a node may or may not support.
///
/// The granularity follows the paper: sensors (E4) do `SELECT *` over a
/// stream with constant comparisons and stream aggregates; appliances (E3)
/// add projection, attribute↔attribute comparisons, grouping and joins;
/// PCs (E2) add full SQL-92 (subqueries, set operations…); the cloud (E1)
/// adds window functions with regression aggregates and arbitrary UDFs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SqlFeature {
    /// Choosing a subset of columns (a sensor cannot even do this).
    Projection,
    /// Renaming output columns with `AS`.
    Aliasing,
    /// Comparison of an attribute against a constant (`z < 2`).
    ConstComparison,
    /// Comparison between two attributes (`x > y`).
    AttrComparison,
    /// Arithmetic in expressions.
    Arithmetic,
    /// Scalar function calls.
    ScalarFunctions,
    /// `LIKE`, `BETWEEN`, `IN`, `IS NULL` predicates.
    ExtendedPredicates,
    /// Plain aggregation (`AVG`, `SUM`, …) possibly with `GROUP BY`/`HAVING`.
    Aggregation,
    /// `GROUP BY` clause present.
    GroupBy,
    /// `HAVING` clause present.
    Having,
    /// `DISTINCT`.
    Distinct,
    /// `ORDER BY` / `LIMIT` / `OFFSET`.
    Ordering,
    /// Joins of any kind.
    Join,
    /// Derived tables / nested subqueries in `FROM`.
    Subquery,
    /// Scalar subqueries or `EXISTS` in expressions.
    ExprSubquery,
    /// `UNION` set operations.
    SetOperation,
    /// Window functions (`OVER` clauses) — SQL:2003.
    WindowFunctions,
    /// Regression aggregates (`regr_*`) — SQL:2011 statistics package.
    RegressionAggregates,
    /// `CASE` expressions.
    CaseExpression,
    /// `CAST` expressions.
    Cast,
    /// Functions unknown to the catalog — treated as user-defined.
    UserDefinedFunctions,
}

impl SqlFeature {
    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SqlFeature::Projection => "projection",
            SqlFeature::Aliasing => "aliasing",
            SqlFeature::ConstComparison => "attr-const comparison",
            SqlFeature::AttrComparison => "attr-attr comparison",
            SqlFeature::Arithmetic => "arithmetic",
            SqlFeature::ScalarFunctions => "scalar functions",
            SqlFeature::ExtendedPredicates => "extended predicates",
            SqlFeature::Aggregation => "aggregation",
            SqlFeature::GroupBy => "GROUP BY",
            SqlFeature::Having => "HAVING",
            SqlFeature::Distinct => "DISTINCT",
            SqlFeature::Ordering => "ORDER BY/LIMIT",
            SqlFeature::Join => "join",
            SqlFeature::Subquery => "FROM subquery",
            SqlFeature::ExprSubquery => "expression subquery",
            SqlFeature::SetOperation => "set operation",
            SqlFeature::WindowFunctions => "window functions",
            SqlFeature::RegressionAggregates => "regression aggregates",
            SqlFeature::CaseExpression => "CASE",
            SqlFeature::Cast => "CAST",
            SqlFeature::UserDefinedFunctions => "UDF",
        }
    }

    /// Every feature, for iteration in reports.
    pub const ALL: &'static [SqlFeature] = &[
        SqlFeature::Projection,
        SqlFeature::Aliasing,
        SqlFeature::ConstComparison,
        SqlFeature::AttrComparison,
        SqlFeature::Arithmetic,
        SqlFeature::ScalarFunctions,
        SqlFeature::ExtendedPredicates,
        SqlFeature::Aggregation,
        SqlFeature::GroupBy,
        SqlFeature::Having,
        SqlFeature::Distinct,
        SqlFeature::Ordering,
        SqlFeature::Join,
        SqlFeature::Subquery,
        SqlFeature::ExprSubquery,
        SqlFeature::SetOperation,
        SqlFeature::WindowFunctions,
        SqlFeature::RegressionAggregates,
        SqlFeature::CaseExpression,
        SqlFeature::Cast,
        SqlFeature::UserDefinedFunctions,
    ];
}

/// A set of [`SqlFeature`]s, stored as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct FeatureSet(u32);

impl FeatureSet {
    /// The empty set.
    pub const EMPTY: FeatureSet = FeatureSet(0);

    /// Set with a single feature.
    pub fn only(feature: SqlFeature) -> FeatureSet {
        FeatureSet(1 << feature as u32)
    }

    /// Build from a slice of features.
    pub fn from_slice(features: &[SqlFeature]) -> FeatureSet {
        features.iter().fold(FeatureSet::EMPTY, |acc, f| acc.with(*f))
    }

    /// A set containing every feature.
    pub fn all() -> FeatureSet {
        FeatureSet::from_slice(SqlFeature::ALL)
    }

    /// Add a feature (builder style).
    #[must_use]
    pub fn with(mut self, feature: SqlFeature) -> FeatureSet {
        self.insert(feature);
        self
    }

    /// Add a feature in place.
    pub fn insert(&mut self, feature: SqlFeature) {
        self.0 |= 1 << feature as u32;
    }

    /// Remove a feature in place.
    pub fn remove(&mut self, feature: SqlFeature) {
        self.0 &= !(1 << feature as u32);
    }

    /// Membership test.
    pub fn contains(&self, feature: SqlFeature) -> bool {
        self.0 & (1 << feature as u32) != 0
    }

    /// Is every feature of `other` also in `self`?
    pub fn is_superset_of(&self, other: &FeatureSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union.
    #[must_use]
    pub fn union(&self, other: &FeatureSet) -> FeatureSet {
        FeatureSet(self.0 | other.0)
    }

    /// Features in `self` that are missing from `other` (i.e. what a node
    /// lacks to run this query).
    #[must_use]
    pub fn difference(&self, other: &FeatureSet) -> FeatureSet {
        FeatureSet(self.0 & !other.0)
    }

    /// Number of features present.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterate over contained features.
    pub fn iter(&self) -> impl Iterator<Item = SqlFeature> + '_ {
        SqlFeature::ALL.iter().copied().filter(|f| self.contains(*f))
    }
}

impl fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for feature in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            f.write_str(feature.label())?;
            first = false;
        }
        if first {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

impl FromIterator<SqlFeature> for FeatureSet {
    fn from_iter<T: IntoIterator<Item = SqlFeature>>(iter: T) -> Self {
        iter.into_iter().fold(FeatureSet::EMPTY, |acc, f| acc.with(f))
    }
}

/// Detect the features used by this query block **only** (subqueries in
/// FROM contribute [`SqlFeature::Subquery`] but their internals are scored
/// separately — the fragmenter places each block on its own node).
pub fn block_features(query: &Query) -> FeatureSet {
    let mut set = FeatureSet::EMPTY;

    if !query.has_wildcard() {
        set.insert(SqlFeature::Projection);
    }
    for item in &query.items {
        if let SelectItem::Expr { alias, expr } = item {
            if alias.is_some() {
                set.insert(SqlFeature::Aliasing);
            }
            expr_features(expr, &mut set);
        }
    }
    if let Some(from) = &query.from {
        table_features(from, &mut set);
    }
    if let Some(w) = &query.where_clause {
        expr_features(w, &mut set);
    }
    for g in &query.group_by {
        expr_features(g, &mut set);
    }
    if !query.group_by.is_empty() {
        set.insert(SqlFeature::GroupBy);
        set.insert(SqlFeature::Aggregation);
    }
    if let Some(h) = &query.having {
        set.insert(SqlFeature::Having);
        set.insert(SqlFeature::Aggregation);
        expr_features(h, &mut set);
    }
    if query.is_aggregating(&is_aggregate_function) {
        set.insert(SqlFeature::Aggregation);
    }
    if query.distinct {
        set.insert(SqlFeature::Distinct);
    }
    if !query.order_by.is_empty() || query.limit.is_some() || query.offset.is_some() {
        set.insert(SqlFeature::Ordering);
        for o in &query.order_by {
            expr_features(&o.expr, &mut set);
        }
    }
    if !query.unions.is_empty() {
        set.insert(SqlFeature::SetOperation);
    }
    set
}

/// Features of the query *and* every nested block, unioned. This is what
/// a single node would need to run the whole thing unfragmented.
pub fn deep_features(query: &Query) -> FeatureSet {
    let mut set = block_features(query);
    fn descend(t: &TableRef, set: &mut FeatureSet) {
        match t {
            TableRef::Table { .. } => {}
            TableRef::Subquery { query, .. } => {
                *set = set.union(&deep_features(query));
            }
            TableRef::Join { left, right, .. } => {
                descend(left, set);
                descend(right, set);
            }
        }
    }
    if let Some(from) = &query.from {
        descend(from, &mut set);
    }
    for (_, q) in &query.unions {
        set = set.union(&deep_features(q));
    }
    set
}

fn table_features(table: &TableRef, set: &mut FeatureSet) {
    match table {
        TableRef::Table { .. } => {}
        TableRef::Subquery { .. } => {
            set.insert(SqlFeature::Subquery);
        }
        TableRef::Join { left, right, on, .. } => {
            set.insert(SqlFeature::Join);
            table_features(left, set);
            table_features(right, set);
            if let Some(on) = on {
                expr_features(on, set);
            }
        }
    }
}

fn expr_features(expr: &Expr, set: &mut FeatureSet) {
    walk_expr(expr, &mut |e| match e {
        Expr::Binary { left, op, right } => {
            if op.is_comparison() {
                let l_col = matches!(left.as_ref(), Expr::Column(_));
                let r_col = matches!(right.as_ref(), Expr::Column(_));
                if l_col && r_col {
                    set.insert(SqlFeature::AttrComparison);
                } else if l_col || r_col {
                    set.insert(SqlFeature::ConstComparison);
                } else {
                    set.insert(SqlFeature::Arithmetic);
                }
            } else if op.is_arithmetic() || *op == BinaryOp::Concat {
                set.insert(SqlFeature::Arithmetic);
            } else if *op == BinaryOp::Like {
                set.insert(SqlFeature::ExtendedPredicates);
            }
        }
        Expr::Function(f) => {
            if let Some(_over) = &f.over {
                set.insert(SqlFeature::WindowFunctions);
            }
            if is_regression_function(&f.name) {
                set.insert(SqlFeature::RegressionAggregates);
                set.insert(SqlFeature::Aggregation);
            } else if is_aggregate_function(&f.name) {
                set.insert(SqlFeature::Aggregation);
            } else if crate::analysis::functions::is_scalar_function(&f.name) {
                set.insert(SqlFeature::ScalarFunctions);
            } else {
                set.insert(SqlFeature::UserDefinedFunctions);
            }
        }
        Expr::Between { .. } | Expr::InList { .. } | Expr::IsNull { .. } => {
            set.insert(SqlFeature::ExtendedPredicates);
        }
        Expr::Case { .. } => {
            set.insert(SqlFeature::CaseExpression);
        }
        Expr::Cast { .. } => {
            set.insert(SqlFeature::Cast);
        }
        Expr::Subquery(_) | Expr::Exists(_) => {
            set.insert(SqlFeature::ExprSubquery);
        }
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn features(sql: &str) -> FeatureSet {
        block_features(&parse_query(sql).unwrap())
    }

    #[test]
    fn sensor_query_features() {
        let f = features("SELECT * FROM stream WHERE z < 2");
        assert!(f.contains(SqlFeature::ConstComparison));
        assert!(!f.contains(SqlFeature::Projection));
        assert!(!f.contains(SqlFeature::AttrComparison));
        assert!(!f.contains(SqlFeature::Aggregation));
    }

    #[test]
    fn appliance_query_features() {
        let f = features("SELECT x, y, z, t FROM d1 WHERE x > y");
        assert!(f.contains(SqlFeature::Projection));
        assert!(f.contains(SqlFeature::AttrComparison));
        assert!(!f.contains(SqlFeature::GroupBy));
    }

    #[test]
    fn media_center_query_features() {
        let f = features("SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y HAVING SUM(z) > 100");
        assert!(f.contains(SqlFeature::GroupBy));
        assert!(f.contains(SqlFeature::Having));
        assert!(f.contains(SqlFeature::Aggregation));
        assert!(f.contains(SqlFeature::Aliasing));
        assert!(!f.contains(SqlFeature::WindowFunctions));
    }

    #[test]
    fn window_query_features() {
        let f = features(
            "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) FROM d3",
        );
        assert!(f.contains(SqlFeature::WindowFunctions));
        assert!(f.contains(SqlFeature::RegressionAggregates));
    }

    #[test]
    fn block_vs_deep_features() {
        let q = parse_query(
            "SELECT x FROM (SELECT x, y FROM d WHERE x > y) WHERE x < 10",
        )
        .unwrap();
        let block = block_features(&q);
        assert!(block.contains(SqlFeature::Subquery));
        assert!(!block.contains(SqlFeature::AttrComparison));
        let deep = deep_features(&q);
        assert!(deep.contains(SqlFeature::AttrComparison));
    }

    #[test]
    fn udf_detection() {
        let f = features("SELECT filterByClass(x) FROM d");
        assert!(f.contains(SqlFeature::UserDefinedFunctions));
    }

    #[test]
    fn join_features() {
        let f = features("SELECT a.x FROM a JOIN b ON a.k = b.k");
        assert!(f.contains(SqlFeature::Join));
        assert!(f.contains(SqlFeature::AttrComparison)); // a.k = b.k
    }

    #[test]
    fn set_operations() {
        let f = features("SELECT x FROM a UNION SELECT x FROM b");
        assert!(f.contains(SqlFeature::SetOperation));
    }

    #[test]
    fn feature_set_algebra() {
        let a = FeatureSet::from_slice(&[SqlFeature::Projection, SqlFeature::Join]);
        let b = FeatureSet::only(SqlFeature::Projection);
        assert!(a.is_superset_of(&b));
        assert!(!b.is_superset_of(&a));
        assert_eq!(a.difference(&b).len(), 1);
        assert!(a.difference(&b).contains(SqlFeature::Join));
        assert_eq!(a.union(&b), a);
        assert_eq!(FeatureSet::all().len(), SqlFeature::ALL.len());
    }

    #[test]
    fn feature_set_display() {
        let a = FeatureSet::only(SqlFeature::GroupBy);
        assert_eq!(a.to_string(), "GROUP BY");
        assert_eq!(FeatureSet::EMPTY.to_string(), "(none)");
    }

    #[test]
    fn ordering_feature() {
        let f = features("SELECT x FROM d ORDER BY x LIMIT 5");
        assert!(f.contains(SqlFeature::Ordering));
    }

    #[test]
    fn distinct_feature() {
        let f = features("SELECT DISTINCT x FROM d");
        assert!(f.contains(SqlFeature::Distinct));
    }

    #[test]
    fn arithmetic_comparison_counts_as_arithmetic() {
        let f = features("SELECT * FROM d WHERE x + 1 > 2");
        assert!(f.contains(SqlFeature::Arithmetic));
    }
}
