//! Predicate shape classification for the fragmenter.
//!
//! The paper pushes `WHERE` conjuncts down according to what each node can
//! evaluate: a sensor "can only compare an attribute against a constant",
//! an appliance can also do "basic comparison operations, like less-than or
//! equals between two attributes". This module classifies each conjunct.

use crate::analysis::functions::is_aggregate_function;
use crate::ast::query::expr_has_aggregate;
use crate::ast::{Expr, Literal};

/// The shape of a single predicate (a conjunct of a `WHERE` clause).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredicateShape {
    /// `attr op constant` or `constant op attr` — executable on a sensor.
    AttrConst,
    /// `attr op attr` — needs an appliance.
    AttrAttr,
    /// Anything containing aggregates — a `HAVING`-style predicate.
    Aggregate,
    /// Arbitrary predicates (arithmetic, functions, subqueries…).
    Complex,
}

/// Classify one predicate expression.
pub fn classify_predicate(expr: &Expr) -> PredicateShape {
    // Aggregates at this block's level force HAVING placement (aggregates
    // inside scalar subqueries belong to the subquery, not this predicate).
    if expr_has_aggregate(expr, &is_aggregate_function) {
        return PredicateShape::Aggregate;
    }

    if let Expr::Binary { left, op, right } = expr {
        if op.is_comparison() {
            let l = operand_kind(left);
            let r = operand_kind(right);
            return match (l, r) {
                (OperandKind::Column, OperandKind::Constant)
                | (OperandKind::Constant, OperandKind::Column) => PredicateShape::AttrConst,
                (OperandKind::Column, OperandKind::Column) => PredicateShape::AttrAttr,
                _ => PredicateShape::Complex,
            };
        }
    }
    // `z BETWEEN 1 AND 2` and `z IN (…)` over constants count as
    // attr-const shapes: they desugar to constant comparisons.
    match expr {
        Expr::Between { expr, low, high, .. }
            if operand_kind(expr) == OperandKind::Column
                && operand_kind(low) == OperandKind::Constant
                && operand_kind(high) == OperandKind::Constant =>
        {
            PredicateShape::AttrConst
        }
        Expr::InList { expr, list, .. }
            if operand_kind(expr) == OperandKind::Column
                && list.iter().all(|e| operand_kind(e) == OperandKind::Constant) =>
        {
            PredicateShape::AttrConst
        }
        Expr::IsNull { expr, .. } if operand_kind(expr) == OperandKind::Column => {
            PredicateShape::AttrConst
        }
        _ => PredicateShape::Complex,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OperandKind {
    Column,
    Constant,
    Other,
}

fn operand_kind(e: &Expr) -> OperandKind {
    match e {
        Expr::Column(_) => OperandKind::Column,
        Expr::Literal(Literal::Null) => OperandKind::Other,
        Expr::Literal(_) => OperandKind::Constant,
        Expr::Unary { op: crate::ast::UnaryOp::Minus, expr }
            if matches!(
                expr.as_ref(),
                Expr::Literal(Literal::Integer(_)) | Expr::Literal(Literal::Float(_))
            ) =>
        {
            OperandKind::Constant
        }
        _ => OperandKind::Other,
    }
}

/// A `WHERE` clause's conjuncts split by shape, preserving order within
/// each bucket.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SplitPredicates {
    /// Sensor-executable conjuncts.
    pub attr_const: Vec<Expr>,
    /// Appliance-executable conjuncts.
    pub attr_attr: Vec<Expr>,
    /// Aggregate (HAVING-bound) conjuncts.
    pub aggregate: Vec<Expr>,
    /// Everything else.
    pub complex: Vec<Expr>,
}

impl SplitPredicates {
    /// Total number of conjuncts.
    pub fn len(&self) -> usize {
        self.attr_const.len() + self.attr_attr.len() + self.aggregate.len() + self.complex.len()
    }

    /// Any conjuncts at all?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Split an optional predicate into classified conjuncts.
pub fn split_conjuncts_by_shape(predicate: Option<&Expr>) -> SplitPredicates {
    let mut out = SplitPredicates::default();
    let Some(predicate) = predicate else { return out };
    for conjunct in predicate.conjuncts() {
        match classify_predicate(conjunct) {
            PredicateShape::AttrConst => out.attr_const.push(conjunct.clone()),
            PredicateShape::AttrAttr => out.attr_attr.push(conjunct.clone()),
            PredicateShape::Aggregate => out.aggregate.push(conjunct.clone()),
            PredicateShape::Complex => out.complex.push(conjunct.clone()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    fn classify(src: &str) -> PredicateShape {
        classify_predicate(&parse_expr(src).unwrap())
    }

    #[test]
    fn attr_const_shapes() {
        assert_eq!(classify("z < 2"), PredicateShape::AttrConst);
        assert_eq!(classify("2 > z"), PredicateShape::AttrConst);
        assert_eq!(classify("action = 'walk'"), PredicateShape::AttrConst);
        assert_eq!(classify("z < -5"), PredicateShape::AttrConst);
    }

    #[test]
    fn attr_attr_shapes() {
        assert_eq!(classify("x > y"), PredicateShape::AttrAttr);
        assert_eq!(classify("x = y"), PredicateShape::AttrAttr);
    }

    #[test]
    fn aggregate_shapes() {
        assert_eq!(classify("SUM(z) > 100"), PredicateShape::Aggregate);
        assert_eq!(classify("AVG(z) < 2"), PredicateShape::Aggregate);
    }

    #[test]
    fn complex_shapes() {
        assert_eq!(classify("x + 1 > y"), PredicateShape::Complex);
        assert_eq!(classify("ABS(x) > 2"), PredicateShape::Complex);
        assert_eq!(classify("x > (SELECT AVG(z) FROM d)"), PredicateShape::Complex);
    }

    #[test]
    fn between_and_in_over_constants_are_sensor_friendly() {
        assert_eq!(classify("z BETWEEN 1 AND 2"), PredicateShape::AttrConst);
        assert_eq!(classify("z IN (1, 2, 3)"), PredicateShape::AttrConst);
        assert_eq!(classify("valid IS NULL"), PredicateShape::AttrConst);
    }

    #[test]
    fn between_over_columns_is_complex() {
        assert_eq!(classify("z BETWEEN low AND high"), PredicateShape::Complex);
    }

    #[test]
    fn null_comparison_is_complex() {
        // `z = NULL` is never true; classify as complex so it is not
        // pushed to a sensor that may mis-handle it.
        assert_eq!(classify("z = NULL"), PredicateShape::Complex);
    }

    #[test]
    fn split_the_paper_where_clause() {
        let pred = parse_expr("x > y AND z < 2").unwrap();
        let split = split_conjuncts_by_shape(Some(&pred));
        assert_eq!(split.attr_attr.len(), 1);
        assert_eq!(split.attr_const.len(), 1);
        assert_eq!(split.len(), 2);
        assert_eq!(split.attr_attr[0].to_string(), "x > y");
        assert_eq!(split.attr_const[0].to_string(), "z < 2");
    }

    #[test]
    fn split_none_is_empty() {
        assert!(split_conjuncts_by_shape(None).is_empty());
    }

    #[test]
    fn windowed_aggregate_is_not_aggregate_shape() {
        // A window call is not a HAVING-style aggregate predicate.
        let shape = classify("SUM(z) OVER (ORDER BY t) > 5");
        assert_eq!(shape, PredicateShape::Complex);
    }
}
