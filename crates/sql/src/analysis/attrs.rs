//! Attribute (column) usage analysis.
//!
//! The preprocessor needs to know which attributes a query *reveals*
//! (its output columns) and which it merely *touches* (anywhere in the
//! tree) to check both against the privacy policy.

use std::collections::BTreeSet;

use crate::ast::{Expr, Query, SelectItem, TableRef};
use crate::visit::{walk_expr, walk_exprs};

/// All column names referenced anywhere in the query (including nested
/// blocks, join conditions and window specs). Qualifiers are stripped:
/// the policy model of the paper is attribute-name based.
pub fn referenced_attributes(query: &Query) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    walk_exprs(query, &mut |e| {
        if let Expr::Column(c) = e {
            out.insert(c.name.clone());
        }
    });
    out
}

/// Column names referenced by one expression.
pub fn expr_attributes(expr: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    walk_expr(expr, &mut |e| {
        if let Expr::Column(c) = e {
            out.insert(c.name.clone());
        }
    });
    out
}

/// The output column names of the top-most block, where statically known.
///
/// * expression items yield their alias, else the bare column name;
/// * complex unaliased expressions yield a synthesised `?column?` marker;
/// * a wildcard yields [`OutputColumns::Wildcard`] because the real set
///   depends on the source schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutputColumns {
    /// `SELECT *` — output is whatever the input provides.
    Wildcard,
    /// Known list of output names in order.
    Named(Vec<String>),
}

impl OutputColumns {
    /// The named columns, or `None` for wildcard output.
    pub fn names(&self) -> Option<&[String]> {
        match self {
            OutputColumns::Wildcard => None,
            OutputColumns::Named(names) => Some(names),
        }
    }
}

/// Compute the output columns of a query block.
pub fn output_columns(query: &Query) -> OutputColumns {
    if query.has_wildcard() {
        return OutputColumns::Wildcard;
    }
    let names = query
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Expr { alias: Some(a), .. } => a.clone(),
            SelectItem::Expr { expr: Expr::Column(c), .. } => c.name.clone(),
            SelectItem::Expr { expr: Expr::Function(f), alias: None } => {
                // unaliased aggregate: synthesise `avg(z)`-style name
                format!("{}", Expr::Function(f.clone())).to_lowercase()
            }
            SelectItem::Expr { .. } => "?column?".to_string(),
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => unreachable!(),
        })
        .collect();
    OutputColumns::Named(names)
}

/// Attributes that appear in the outermost projection — i.e. are shipped
/// to the requester. For wildcard queries this is unknown (`None`).
pub fn projected_attributes(query: &Query) -> Option<BTreeSet<String>> {
    if query.has_wildcard() {
        return None;
    }
    let mut out = BTreeSet::new();
    for item in &query.items {
        if let SelectItem::Expr { expr, .. } = item {
            out.extend(expr_attributes(expr));
        }
    }
    Some(out)
}

/// All base relation (or stream) names mentioned in FROM clauses at any
/// depth, in first-appearance order.
pub fn base_relations(query: &Query) -> Vec<String> {
    let mut out = Vec::new();
    fn from_table(t: &TableRef, out: &mut Vec<String>) {
        match t {
            TableRef::Table { name, .. } => {
                if !out.iter().any(|n| n == name) {
                    out.push(name.clone());
                }
            }
            TableRef::Subquery { query, .. } => from_query(query, out),
            TableRef::Join { left, right, .. } => {
                from_table(left, out);
                from_table(right, out);
            }
        }
    }
    fn from_query(q: &Query, out: &mut Vec<String>) {
        if let Some(f) = &q.from {
            from_table(f, out);
        }
        for (_, u) in &q.unions {
            from_query(u, out);
        }
    }
    from_query(query, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn referenced_includes_all_clauses() {
        let q = parse_query(
            "SELECT x FROM (SELECT * FROM d WHERE z < 2) WHERE y > 1 ORDER BY t",
        )
        .unwrap();
        let attrs = referenced_attributes(&q);
        assert_eq!(
            attrs.iter().map(String::as_str).collect::<Vec<_>>(),
            vec!["t", "x", "y", "z"]
        );
    }

    #[test]
    fn output_columns_with_aliases() {
        let q = parse_query("SELECT x, AVG(z) AS zAVG, y + 1 FROM d GROUP BY x").unwrap();
        let OutputColumns::Named(names) = output_columns(&q) else { panic!() };
        assert_eq!(names, vec!["x", "zAVG", "?column?"]);
    }

    #[test]
    fn output_columns_wildcard() {
        let q = parse_query("SELECT * FROM d").unwrap();
        assert_eq!(output_columns(&q), OutputColumns::Wildcard);
        assert!(output_columns(&q).names().is_none());
    }

    #[test]
    fn unaliased_aggregate_gets_synthetic_name() {
        let q = parse_query("SELECT AVG(z) FROM d").unwrap();
        let OutputColumns::Named(names) = output_columns(&q) else { panic!() };
        assert_eq!(names, vec!["avg(z)"]);
    }

    #[test]
    fn projected_attributes_only_projection() {
        let q = parse_query("SELECT x, AVG(z) FROM d WHERE secret > 1 GROUP BY x").unwrap();
        let attrs = projected_attributes(&q).unwrap();
        assert!(attrs.contains("x"));
        assert!(attrs.contains("z"));
        assert!(!attrs.contains("secret"));
    }

    #[test]
    fn projected_is_none_for_wildcard() {
        let q = parse_query("SELECT * FROM stream").unwrap();
        assert!(projected_attributes(&q).is_none());
    }

    #[test]
    fn base_relations_in_order_without_dups() {
        let q = parse_query(
            "SELECT * FROM a JOIN (SELECT * FROM b JOIN a ON b.k = a.k) s ON a.k = s.k",
        )
        .unwrap();
        assert_eq!(base_relations(&q), vec!["a", "b"]);
    }

    #[test]
    fn base_relations_in_unions() {
        let q = parse_query("SELECT x FROM a UNION SELECT x FROM b").unwrap();
        assert_eq!(base_relations(&q), vec!["a", "b"]);
    }

    #[test]
    fn expr_attributes_collects() {
        let e = crate::parser::parse_expr("x > y AND z < 2").unwrap();
        let attrs = expr_attributes(&e);
        assert_eq!(attrs.len(), 3);
    }
}
