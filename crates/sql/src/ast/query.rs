//! Query-level AST nodes: `SELECT` blocks, table references, joins.

use crate::ast::expr::Expr;

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Bare `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// An expression with an optional `AS alias`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional output name.
        alias: Option<String>,
    },
}

impl SelectItem {
    /// Expression item without alias.
    pub fn expr(expr: Expr) -> Self {
        SelectItem::Expr { expr, alias: None }
    }

    /// Expression item with alias.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        SelectItem::Expr { expr, alias: Some(alias.into()) }
    }

    /// The output column name this item produces, if statically known:
    /// the alias if present, else the column name for plain column refs.
    pub fn output_name(&self) -> Option<&str> {
        match self {
            SelectItem::Expr { alias: Some(a), .. } => Some(a),
            SelectItem::Expr { expr: Expr::Column(c), .. } => Some(&c.name),
            _ => None,
        }
    }
}

/// Join flavours of the supported subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
}

impl JoinKind {
    /// SQL spelling (`INNER JOIN`, …).
    pub fn as_str(&self) -> &'static str {
        match self {
            JoinKind::Inner => "INNER JOIN",
            JoinKind::Left => "LEFT JOIN",
            JoinKind::Right => "RIGHT JOIN",
            JoinKind::Full => "FULL JOIN",
            JoinKind::Cross => "CROSS JOIN",
        }
    }
}

/// A table expression in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named base relation (or stream), optionally aliased.
    Table {
        /// Relation name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A parenthesised subquery, optionally aliased.
    Subquery {
        /// Inner query.
        query: Box<Query>,
        /// Optional alias.
        alias: Option<String>,
    },
    /// A join of two table expressions.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join flavour.
        kind: JoinKind,
        /// `ON` predicate; `None` for `CROSS JOIN` or `USING` joins that
        /// were desugared by the parser into an equality predicate.
        on: Option<Expr>,
    },
}

impl TableRef {
    /// Plain named table.
    pub fn table(name: impl Into<String>) -> Self {
        TableRef::Table { name: name.into(), alias: None }
    }

    /// Named table with alias.
    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef::Table { name: name.into(), alias: Some(alias.into()) }
    }

    /// Derived table from a subquery.
    pub fn subquery(query: Query) -> Self {
        TableRef::Subquery { query: Box::new(query), alias: None }
    }

    /// The visible name of this table expression (alias, else base name).
    pub fn visible_name(&self) -> Option<&str> {
        match self {
            TableRef::Table { alias: Some(a), .. } => Some(a),
            TableRef::Table { name, .. } => Some(name),
            TableRef::Subquery { alias: Some(a), .. } => Some(a),
            _ => None,
        }
    }

    /// All base relation names referenced anywhere under this node.
    pub fn base_tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_base_tables(&mut out);
        out
    }

    fn collect_base_tables<'t>(&'t self, out: &mut Vec<&'t str>) {
        match self {
            TableRef::Table { name, .. } => out.push(name),
            TableRef::Subquery { query, .. } => {
                if let Some(from) = &query.from {
                    from.collect_base_tables(out);
                }
            }
            TableRef::Join { left, right, .. } => {
                left.collect_base_tables(out);
                right.collect_base_tables(out);
            }
        }
    }
}

/// Sort direction of an `ORDER BY` item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SortOrder {
    /// Ascending (the default).
    #[default]
    Asc,
    /// Descending.
    Desc,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// Sort key expression.
    pub expr: Expr,
    /// Direction.
    pub order: SortOrder,
}

impl OrderByItem {
    /// Ascending sort on `expr`.
    pub fn asc(expr: Expr) -> Self {
        OrderByItem { expr, order: SortOrder::Asc }
    }

    /// Descending sort on `expr`.
    pub fn desc(expr: Expr) -> Self {
        OrderByItem { expr, order: SortOrder::Desc }
    }
}

/// A single `SELECT` block (the only statement kind of the subset, plus
/// `UNION [ALL]` chaining).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Query {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list. Never empty for a parsed query.
    pub items: Vec<SelectItem>,
    /// `FROM` clause; `None` allows constant queries (`SELECT 1`).
    pub from: Option<TableRef>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
    /// `OFFSET` row count.
    pub offset: Option<u64>,
    /// `UNION [ALL]` continuation: `(all, query)` pairs applied in order.
    pub unions: Vec<(bool, Query)>,
}

impl Query {
    /// A `SELECT *` skeleton over the given table.
    pub fn select_star(table: impl Into<String>) -> Self {
        Query {
            items: vec![SelectItem::Wildcard],
            from: Some(TableRef::table(table)),
            ..Query::default()
        }
    }

    /// Does the projection contain a bare or qualified wildcard?
    pub fn has_wildcard(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i, SelectItem::Wildcard | SelectItem::QualifiedWildcard(_)))
    }

    /// Is any aggregation present (GROUP BY, HAVING, or aggregate calls in
    /// the projection)?
    pub fn is_aggregating(&self, is_aggregate_fn: &dyn Fn(&str) -> bool) -> bool {
        if !self.group_by.is_empty() || self.having.is_some() {
            return true;
        }
        self.items.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => expr_has_aggregate(expr, is_aggregate_fn),
            _ => false,
        })
    }

    /// Depth of `FROM`-nesting: 1 for a flat query, +1 per derived table
    /// level. Constant queries have depth 0.
    pub fn nesting_depth(&self) -> usize {
        fn table_depth(t: &TableRef) -> usize {
            match t {
                TableRef::Table { .. } => 1,
                TableRef::Subquery { query, .. } => 1 + query.nesting_depth(),
                TableRef::Join { left, right, .. } => table_depth(left).max(table_depth(right)),
            }
        }
        self.from.as_ref().map(table_depth).unwrap_or(0)
    }

    /// The innermost query block reachable by descending through single
    /// derived tables. Returns `self` when `FROM` is a base table or join.
    pub fn innermost(&self) -> &Query {
        match &self.from {
            Some(TableRef::Subquery { query, .. }) => query.innermost(),
            _ => self,
        }
    }

    /// Mutable variant of [`Query::innermost`].
    pub fn innermost_mut(&mut self) -> &mut Query {
        // Written with a raw loop to appease the borrow checker.
        let mut current: *mut Query = self;
        loop {
            // SAFETY: `current` always points into the same tree which we
            // hold exclusively via `&mut self`; each iteration moves strictly
            // deeper, never aliasing.
            let q = unsafe { &mut *current };
            match &mut q.from {
                Some(TableRef::Subquery { query, .. }) => {
                    current = &mut **query;
                }
                _ => return q,
            }
        }
    }
}

/// Does `expr` contain a non-windowed aggregate call?
pub fn expr_has_aggregate(expr: &Expr, is_aggregate_fn: &dyn Fn(&str) -> bool) -> bool {
    match expr {
        Expr::Function(f) => {
            (f.over.is_none() && is_aggregate_fn(&f.name))
                || f.args.iter().any(|a| expr_has_aggregate(a, is_aggregate_fn))
        }
        Expr::Unary { expr, .. } => expr_has_aggregate(expr, is_aggregate_fn),
        Expr::Binary { left, right, .. } => {
            expr_has_aggregate(left, is_aggregate_fn) || expr_has_aggregate(right, is_aggregate_fn)
        }
        Expr::Case { operand, branches, else_result } => {
            operand.as_deref().map(|e| expr_has_aggregate(e, is_aggregate_fn)).unwrap_or(false)
                || branches.iter().any(|b| {
                    expr_has_aggregate(&b.when, is_aggregate_fn)
                        || expr_has_aggregate(&b.then, is_aggregate_fn)
                })
                || else_result
                    .as_deref()
                    .map(|e| expr_has_aggregate(e, is_aggregate_fn))
                    .unwrap_or(false)
        }
        Expr::Between { expr, low, high, .. } => {
            expr_has_aggregate(expr, is_aggregate_fn)
                || expr_has_aggregate(low, is_aggregate_fn)
                || expr_has_aggregate(high, is_aggregate_fn)
        }
        Expr::InList { expr, list, .. } => {
            expr_has_aggregate(expr, is_aggregate_fn)
                || list.iter().any(|e| expr_has_aggregate(e, is_aggregate_fn))
        }
        Expr::IsNull { expr, .. } => expr_has_aggregate(expr, is_aggregate_fn),
        Expr::Cast { expr, .. } => expr_has_aggregate(expr, is_aggregate_fn),
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => false,
        Expr::Subquery(_) | Expr::Exists(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::expr::FunctionCall;

    fn is_agg(name: &str) -> bool {
        matches!(name.to_ascii_uppercase().as_str(), "AVG" | "SUM" | "COUNT" | "MIN" | "MAX")
    }

    #[test]
    fn select_star_shape() {
        let q = Query::select_star("stream");
        assert!(q.has_wildcard());
        assert_eq!(q.from.as_ref().unwrap().visible_name(), Some("stream"));
        assert_eq!(q.nesting_depth(), 1);
    }

    #[test]
    fn nesting_depth_counts_derived_tables() {
        let inner = Query::select_star("d1");
        let mid = Query {
            items: vec![SelectItem::Wildcard],
            from: Some(TableRef::subquery(inner)),
            ..Query::default()
        };
        let outer = Query {
            items: vec![SelectItem::Wildcard],
            from: Some(TableRef::subquery(mid)),
            ..Query::default()
        };
        assert_eq!(outer.nesting_depth(), 3);
    }

    #[test]
    fn innermost_descends() {
        let inner = Query::select_star("d1");
        let outer = Query {
            items: vec![SelectItem::expr(Expr::col("x"))],
            from: Some(TableRef::subquery(inner)),
            ..Query::default()
        };
        assert_eq!(outer.innermost().from.as_ref().unwrap().visible_name(), Some("d1"));
    }

    #[test]
    fn innermost_mut_matches_innermost() {
        let inner = Query::select_star("d1");
        let mut outer = Query {
            items: vec![SelectItem::expr(Expr::col("x"))],
            from: Some(TableRef::subquery(inner)),
            ..Query::default()
        };
        outer.innermost_mut().limit = Some(7);
        assert_eq!(outer.innermost().limit, Some(7));
    }

    #[test]
    fn aggregation_detection_via_group_by() {
        let mut q = Query::select_star("d");
        assert!(!q.is_aggregating(&is_agg));
        q.group_by.push(Expr::col("x"));
        assert!(q.is_aggregating(&is_agg));
    }

    #[test]
    fn aggregation_detection_via_projection() {
        let q = Query {
            items: vec![SelectItem::expr(Expr::Function(FunctionCall::new(
                "AVG",
                vec![Expr::col("z")],
            )))],
            from: Some(TableRef::table("d")),
            ..Query::default()
        };
        assert!(q.is_aggregating(&is_agg));
    }

    #[test]
    fn windowed_aggregate_is_not_plain_aggregation() {
        let mut f = FunctionCall::new("AVG", vec![Expr::col("z")]);
        f.over = Some(crate::ast::expr::WindowSpec::default());
        let q = Query {
            items: vec![SelectItem::expr(Expr::Function(f))],
            from: Some(TableRef::table("d")),
            ..Query::default()
        };
        assert!(!q.is_aggregating(&is_agg));
    }

    #[test]
    fn base_tables_through_joins_and_subqueries() {
        let join = TableRef::Join {
            left: Box::new(TableRef::table("ubisense")),
            right: Box::new(TableRef::subquery(Query::select_star("sensfloor"))),
            kind: JoinKind::Inner,
            on: None,
        };
        assert_eq!(join.base_tables(), vec!["ubisense", "sensfloor"]);
    }

    #[test]
    fn output_name_prefers_alias() {
        let item = SelectItem::aliased(Expr::col("z"), "zAVG");
        assert_eq!(item.output_name(), Some("zAVG"));
        let plain = SelectItem::expr(Expr::col("x"));
        assert_eq!(plain.output_name(), Some("x"));
        assert_eq!(SelectItem::Wildcard.output_name(), None);
    }
}
