//! Abstract syntax tree for the supported SQL subset.
//!
//! The tree is deliberately owned and `Clone` — the whole point of
//! PArADISE is to *rewrite* queries, so rewriters freely take apart and
//! reassemble these values.

pub mod expr;
pub mod query;

pub use expr::{
    BinaryOp, CaseBranch, ColumnRef, Expr, FunctionCall, Literal, UnaryOp, WindowSpec,
};
pub use query::{
    expr_has_aggregate, JoinKind, OrderByItem, Query, SelectItem, SortOrder, TableRef,
};
