//! Expression AST nodes.

use crate::ast::query::{OrderByItem, Query};

/// A literal value appearing in a query.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// SQL `NULL`.
    Null,
    /// `TRUE` / `FALSE`.
    Boolean(bool),
    /// Integer literal.
    Integer(i64),
    /// Floating point literal.
    Float(f64),
    /// String literal.
    String(String),
}

impl Literal {
    /// Whether two literals are equal, treating floats bitwise so the AST
    /// can implement `Eq`-like semantics in tests.
    pub fn same_as(&self, other: &Literal) -> bool {
        match (self, other) {
            (Literal::Float(a), Literal::Float(b)) => a.to_bits() == b.to_bits(),
            (a, b) => a == b,
        }
    }
}

/// A (possibly qualified) column reference, e.g. `x` or `t.x`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Optional table qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColumnRef {
    /// Unqualified column.
    pub fn bare(name: impl Into<String>) -> Self {
        ColumnRef { qualifier: None, name: name.into() }
    }

    /// Qualified column `qualifier.name`.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        ColumnRef { qualifier: Some(qualifier.into()), name: name.into() }
    }
}

/// Binary operators, in SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinaryOp {
    And,
    Or,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Like,
    Concat,
}

impl BinaryOp {
    /// SQL spelling of the operator.
    pub fn as_str(&self) -> &'static str {
        match self {
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::Like => "LIKE",
            BinaryOp::Concat => "||",
        }
    }

    /// Is this a comparison operator (`=`, `<>`, `<`, `<=`, `>`, `>=`)?
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// Is this a logical connective (`AND` / `OR`)?
    pub fn is_logical(&self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// Is this an arithmetic operator?
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            BinaryOp::Plus
                | BinaryOp::Minus
                | BinaryOp::Multiply
                | BinaryOp::Divide
                | BinaryOp::Modulo
        )
    }

    /// The mirrored comparison (`<` ↔ `>`), used when normalising
    /// predicates such as `5 < x` into `x > 5`.
    pub fn mirrored(&self) -> Option<BinaryOp> {
        Some(match self {
            BinaryOp::Eq => BinaryOp::Eq,
            BinaryOp::NotEq => BinaryOp::NotEq,
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            _ => return None,
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnaryOp {
    Not,
    Minus,
    Plus,
}

impl UnaryOp {
    /// SQL spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            UnaryOp::Not => "NOT",
            UnaryOp::Minus => "-",
            UnaryOp::Plus => "+",
        }
    }
}

/// `OVER (PARTITION BY … ORDER BY …)` window specification.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowSpec {
    /// `PARTITION BY` expressions.
    pub partition_by: Vec<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
}

/// A function call, scalar (`ABS(x)`), aggregate (`AVG(z)`,
/// `regr_intercept(y, x)`), or windowed (aggregate + [`WindowSpec`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionCall {
    /// Function name as written (case preserved; matched case-insensitively).
    pub name: String,
    /// Arguments; `COUNT(*)` is represented by a single [`Expr::Wildcard`].
    pub args: Vec<Expr>,
    /// `DISTINCT` inside the call, e.g. `COUNT(DISTINCT x)`.
    pub distinct: bool,
    /// Window clause, if any.
    pub over: Option<WindowSpec>,
}

impl FunctionCall {
    /// A plain call without DISTINCT or OVER.
    pub fn new(name: impl Into<String>, args: Vec<Expr>) -> Self {
        FunctionCall { name: name.into(), args, distinct: false, over: None }
    }
}

/// One `WHEN … THEN …` branch of a `CASE` expression.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseBranch {
    /// Condition (or comparand in the operand form).
    pub when: Expr,
    /// Result expression.
    pub then: Expr,
}

/// Expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Literal),
    /// `*` as a function argument (only valid inside e.g. `COUNT(*)`).
    Wildcard,
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Function call (scalar, aggregate, or windowed).
    Function(FunctionCall),
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`.
    Case {
        /// Optional operand (the `CASE x WHEN v` form).
        operand: Option<Box<Expr>>,
        /// The branches in order.
        branches: Vec<CaseBranch>,
        /// Optional `ELSE`.
        else_result: Option<Box<Expr>>,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`.
        negated: bool,
    },
    /// `CAST(expr AS type)`; the target type is kept as its source text.
    Cast {
        /// Expression being cast.
        expr: Box<Expr>,
        /// Target type name, e.g. `INTEGER`.
        type_name: String,
    },
    /// Scalar subquery `(SELECT …)`.
    Subquery(Box<Query>),
    /// `EXISTS (SELECT …)`.
    Exists(Box<Query>),
}

impl Expr {
    /// Convenience: column reference expression.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::bare(name))
    }

    /// Convenience: integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Literal::Integer(v))
    }

    /// Convenience: float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Literal(Literal::Float(v))
    }

    /// Convenience: string literal.
    pub fn string(v: impl Into<String>) -> Expr {
        Expr::Literal(Literal::String(v.into()))
    }

    /// Convenience: binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// `self AND other`, but if either side is absent return the other;
    /// the canonical way to conjoin optional predicates.
    pub fn and_maybe(a: Option<Expr>, b: Option<Expr>) -> Option<Expr> {
        match (a, b) {
            (None, None) => None,
            (Some(x), None) | (None, Some(x)) => Some(x),
            (Some(x), Some(y)) => Some(Expr::binary(x, BinaryOp::And, y)),
        }
    }

    /// Split a predicate into its top-level conjuncts:
    /// `a AND (b AND c)` → `[a, b, c]`.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
            match e {
                Expr::Binary { left, op: BinaryOp::And, right } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Rebuild a conjunction from parts; `None` if the slice is empty.
    pub fn conjoin(parts: Vec<Expr>) -> Option<Expr> {
        let mut iter = parts.into_iter();
        let first = iter.next()?;
        Some(iter.fold(first, |acc, e| Expr::binary(acc, BinaryOp::And, e)))
    }

    /// Is this expression a direct function call with an `OVER` clause?
    pub fn is_window_call(&self) -> bool {
        matches!(self, Expr::Function(f) if f.over.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::binary(
            Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::col("b")),
            BinaryOp::And,
            Expr::binary(
                Expr::binary(Expr::col("z"), BinaryOp::Lt, Expr::int(2)),
                BinaryOp::And,
                Expr::col("flag"),
            ),
        );
        let parts = e.conjuncts();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn conjuncts_of_leaf_is_itself() {
        let e = Expr::col("x");
        assert_eq!(e.conjuncts(), vec![&Expr::col("x")]);
    }

    #[test]
    fn conjoin_inverts_conjuncts() {
        let parts = vec![
            Expr::binary(Expr::col("a"), BinaryOp::Gt, Expr::col("b")),
            Expr::binary(Expr::col("z"), BinaryOp::Lt, Expr::int(2)),
        ];
        let joined = Expr::conjoin(parts.clone()).unwrap();
        let split: Vec<Expr> = joined.conjuncts().into_iter().cloned().collect();
        assert_eq!(split, parts);
    }

    #[test]
    fn conjoin_empty_is_none() {
        assert_eq!(Expr::conjoin(vec![]), None);
    }

    #[test]
    fn and_maybe_combines() {
        assert_eq!(Expr::and_maybe(None, None), None);
        let a = Expr::col("a");
        assert_eq!(Expr::and_maybe(Some(a.clone()), None), Some(a.clone()));
        let combined = Expr::and_maybe(Some(a.clone()), Some(Expr::col("b"))).unwrap();
        assert_eq!(combined.conjuncts().len(), 2);
    }

    #[test]
    fn mirrored_comparisons() {
        assert_eq!(BinaryOp::Lt.mirrored(), Some(BinaryOp::Gt));
        assert_eq!(BinaryOp::GtEq.mirrored(), Some(BinaryOp::LtEq));
        assert_eq!(BinaryOp::Eq.mirrored(), Some(BinaryOp::Eq));
        assert_eq!(BinaryOp::Plus.mirrored(), None);
    }

    #[test]
    fn op_classification() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Lt.is_logical());
        assert!(BinaryOp::And.is_logical());
        assert!(BinaryOp::Multiply.is_arithmetic());
        assert!(!BinaryOp::Like.is_comparison());
    }

    #[test]
    fn float_literals_compare_bitwise() {
        assert!(Literal::Float(1.5).same_as(&Literal::Float(1.5)));
        assert!(!Literal::Float(1.5).same_as(&Literal::Float(2.5)));
        assert!(Literal::Null.same_as(&Literal::Null));
    }

    #[test]
    fn window_call_detection() {
        let mut f = FunctionCall::new("AVG", vec![Expr::col("z")]);
        assert!(!Expr::Function(f.clone()).is_window_call());
        f.over = Some(WindowSpec::default());
        assert!(Expr::Function(f).is_window_call());
    }
}
