//! Rendering ASTs back to SQL text.
//!
//! The renderer produces canonical single-line SQL. Rendering a parsed
//! query and re-parsing the output yields the same AST (round-trip
//! property, tested here and with proptest in `tests/`).

use std::fmt;

use crate::ast::{
    CaseBranch, ColumnRef, Expr, FunctionCall, Literal, OrderByItem, Query, SelectItem, SortOrder,
    TableRef, WindowSpec,
};

/// Quote an identifier only when necessary (non-alphanumeric characters or
/// keyword collision).
fn write_ident(f: &mut fmt::Formatter<'_>, ident: &str) -> fmt::Result {
    let plain = !ident.is_empty()
        && ident.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
        && ident.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '$')
        && crate::token::Keyword::lookup(ident).is_none();
    if plain {
        f.write_str(ident)
    } else {
        write!(f, "\"{}\"", ident.replace('"', "\"\""))
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(q) = &self.qualifier {
            write_ident(f, q)?;
            f.write_str(".")?;
        }
        write_ident(f, &self.name)
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Null => f.write_str("NULL"),
            Literal::Boolean(true) => f.write_str("TRUE"),
            Literal::Boolean(false) => f.write_str("FALSE"),
            Literal::Integer(v) => write!(f, "{v}"),
            Literal::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    // keep it recognisable as a float
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Literal::String(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        let mut needs_space = false;
        if !self.partition_by.is_empty() {
            f.write_str("PARTITION BY ")?;
            write_comma_list(f, &self.partition_by)?;
            needs_space = true;
        }
        if !self.order_by.is_empty() {
            if needs_space {
                f.write_str(" ")?;
            }
            f.write_str("ORDER BY ")?;
            write_comma_list(f, &self.order_by)?;
        }
        f.write_str(")")
    }
}

impl fmt::Display for FunctionCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        write_comma_list(f, &self.args)?;
        f.write_str(")")?;
        if let Some(over) = &self.over {
            write!(f, " OVER {over}")?;
        }
        Ok(())
    }
}

/// Operator precedence used to decide where parentheses are required when
/// rendering nested binary expressions.
fn precedence(e: &Expr) -> u8 {
    match e {
        Expr::Binary { op, .. } => match op {
            crate::ast::BinaryOp::Or => 1,
            crate::ast::BinaryOp::And => 2,
            op if op.is_comparison() => 4,
            crate::ast::BinaryOp::Like => 4,
            crate::ast::BinaryOp::Plus | crate::ast::BinaryOp::Minus => 5,
            crate::ast::BinaryOp::Concat => 5,
            _ => 6,
        },
        Expr::Unary { op: crate::ast::UnaryOp::Not, .. } => 3,
        Expr::Between { .. } | Expr::InList { .. } | Expr::IsNull { .. } => 4,
        _ => 10,
    }
}

fn write_child(f: &mut fmt::Formatter<'_>, child: &Expr, parent_prec: u8) -> fmt::Result {
    if precedence(child) < parent_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Wildcard => f.write_str("*"),
            Expr::Unary { op, expr } => match op {
                crate::ast::UnaryOp::Not => {
                    f.write_str("NOT ")?;
                    write_child(f, expr, 3)
                }
                _ => {
                    f.write_str(op.as_str())?;
                    write_child(f, expr, 7)
                }
            },
            Expr::Binary { left, op, right } => {
                let prec = precedence(self);
                // comparisons and LIKE are non-associative: equal-precedence
                // children need parentheses on BOTH sides; left-associative
                // operators only need them on the right
                let non_assoc = op.is_comparison() || *op == crate::ast::BinaryOp::Like;
                write_child(f, left, prec + u8::from(non_assoc))?;
                write!(f, " {} ", op.as_str())?;
                // the parser is left-associative, so a right child of equal
                // precedence always needs parentheses to round-trip
                write_child(f, right, prec + 1)?;
                Ok(())
            }
            Expr::Function(call) => write!(f, "{call}"),
            Expr::Case { operand, branches, else_result } => {
                f.write_str("CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for CaseBranch { when, then } in branches {
                    write!(f, " WHEN {when} THEN {then}")?;
                }
                if let Some(e) = else_result {
                    write!(f, " ELSE {e}")?;
                }
                f.write_str(" END")
            }
            Expr::Between { expr, low, high, negated } => {
                write_child(f, expr, 5)?;
                if *negated {
                    f.write_str(" NOT")?;
                }
                write!(f, " BETWEEN ")?;
                write_child(f, low, 5)?;
                f.write_str(" AND ")?;
                write_child(f, high, 5)
            }
            Expr::InList { expr, list, negated } => {
                write_child(f, expr, 5)?;
                if *negated {
                    f.write_str(" NOT")?;
                }
                f.write_str(" IN (")?;
                write_comma_list(f, list)?;
                f.write_str(")")
            }
            Expr::IsNull { expr, negated } => {
                write_child(f, expr, 5)?;
                if *negated {
                    f.write_str(" IS NOT NULL")
                } else {
                    f.write_str(" IS NULL")
                }
            }
            Expr::Cast { expr, type_name } => write!(f, "CAST({expr} AS {type_name})"),
            Expr::Subquery(q) => write!(f, "({q})"),
            Expr::Exists(q) => write!(f, "EXISTS ({q})"),
        }
    }
}

fn write_comma_list<T: fmt::Display>(f: &mut fmt::Formatter<'_>, items: &[T]) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

impl fmt::Display for OrderByItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.expr)?;
        if self.order == SortOrder::Desc {
            f.write_str(" DESC")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => f.write_str("*"),
            SelectItem::QualifiedWildcard(q) => {
                write_ident(f, q)?;
                f.write_str(".*")
            }
            SelectItem::Expr { expr, alias } => {
                write!(f, "{expr}")?;
                if let Some(a) = alias {
                    f.write_str(" AS ")?;
                    write_ident(f, a)?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias } => {
                write_ident(f, name)?;
                if let Some(a) = alias {
                    f.write_str(" AS ")?;
                    write_ident(f, a)?;
                }
                Ok(())
            }
            TableRef::Subquery { query, alias } => {
                write!(f, "({query})")?;
                if let Some(a) = alias {
                    f.write_str(" AS ")?;
                    write_ident(f, a)?;
                }
                Ok(())
            }
            TableRef::Join { left, right, kind, on } => {
                write!(f, "{left} {} ", kind.as_str())?;
                // Parenthesise nested joins on the right for unambiguity.
                match right.as_ref() {
                    TableRef::Join { .. } => write!(f, "({right})")?,
                    other => write!(f, "{other}")?,
                }
                if let Some(on) = on {
                    write!(f, " ON {on}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct {
            f.write_str("DISTINCT ")?;
        }
        write_comma_list(f, &self.items)?;
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            write_comma_list(f, &self.group_by)?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            write_comma_list(f, &self.order_by)?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(o) = self.offset {
            write!(f, " OFFSET {o}")?;
        }
        for (all, q) in &self.unions {
            write!(f, " UNION {}{q}", if *all { "ALL " } else { "" })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    fn roundtrip(sql: &str) -> String {
        let q = parse_query(sql).unwrap();
        let rendered = q.to_string();
        let q2 = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("re-parse failed for {rendered:?}: {e}"));
        assert_eq!(q, q2, "AST changed after round-trip of {sql:?}");
        rendered
    }

    #[test]
    fn renders_sensor_query() {
        assert_eq!(roundtrip("select * from stream where z < 2"), "SELECT * FROM stream WHERE z < 2");
    }

    #[test]
    fn renders_appliance_query() {
        assert_eq!(
            roundtrip("SELECT x, y, z, t FROM d1 WHERE x > y"),
            "SELECT x, y, z, t FROM d1 WHERE x > y"
        );
    }

    #[test]
    fn renders_media_center_query() {
        assert_eq!(
            roundtrip("SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y HAVING SUM(z) > 100"),
            "SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y HAVING SUM(z) > 100"
        );
    }

    #[test]
    fn renders_window_query() {
        assert_eq!(
            roundtrip("SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) FROM d3"),
            "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) FROM d3"
        );
    }

    #[test]
    fn renders_nested_query() {
        let sql = "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) \
                   FROM (SELECT x, y, AVG(z) AS zAVG, t FROM d \
                   WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100)";
        let rendered = roundtrip(sql);
        assert!(rendered.contains("FROM (SELECT"));
    }

    #[test]
    fn parenthesises_or_under_and() {
        let rendered = roundtrip("SELECT * FROM d WHERE (a OR b) AND c");
        assert!(rendered.contains("(a OR b) AND c"), "got: {rendered}");
    }

    #[test]
    fn no_redundant_parens_for_and_chains() {
        let rendered = roundtrip("SELECT * FROM d WHERE a AND b AND c");
        assert_eq!(rendered, "SELECT * FROM d WHERE a AND b AND c");
    }

    #[test]
    fn renders_arithmetic_parens() {
        let rendered = roundtrip("SELECT (1 + 2) * 3 FROM d");
        assert!(rendered.contains("(1 + 2) * 3"), "got: {rendered}");
    }

    #[test]
    fn renders_string_escapes() {
        let rendered = roundtrip("SELECT * FROM d WHERE action = 'it''s'");
        assert!(rendered.contains("'it''s'"));
    }

    #[test]
    fn quotes_weird_identifiers() {
        let rendered = roundtrip("SELECT \"weird col\" FROM t");
        assert!(rendered.contains("\"weird col\""));
    }

    #[test]
    fn quotes_keyword_identifiers() {
        let rendered = roundtrip("SELECT \"select\" FROM t");
        assert!(rendered.contains("\"select\""));
    }

    #[test]
    fn renders_case() {
        let rendered = roundtrip("SELECT CASE WHEN z < 2 THEN 'low' ELSE 'high' END FROM d");
        assert!(rendered.contains("CASE WHEN z < 2 THEN 'low' ELSE 'high' END"));
    }

    #[test]
    fn renders_between_not_in_is_null() {
        let rendered =
            roundtrip("SELECT * FROM d WHERE x BETWEEN 1 AND 2 AND y NOT IN (3, 4) AND z IS NULL");
        assert!(rendered.contains("BETWEEN 1 AND 2"));
        assert!(rendered.contains("NOT IN (3, 4)"));
        assert!(rendered.contains("z IS NULL"));
    }

    #[test]
    fn renders_joins() {
        let rendered = roundtrip("SELECT * FROM a LEFT JOIN b ON a.k = b.k");
        assert_eq!(rendered, "SELECT * FROM a LEFT JOIN b ON a.k = b.k");
    }

    #[test]
    fn renders_union() {
        let rendered = roundtrip("SELECT x FROM a UNION ALL SELECT x FROM b");
        assert_eq!(rendered, "SELECT x FROM a UNION ALL SELECT x FROM b");
    }

    #[test]
    fn renders_distinct_and_limits() {
        let rendered = roundtrip("SELECT DISTINCT x FROM d ORDER BY x DESC LIMIT 3 OFFSET 1");
        assert_eq!(rendered, "SELECT DISTINCT x FROM d ORDER BY x DESC LIMIT 3 OFFSET 1");
    }

    #[test]
    fn renders_float_literals_as_floats() {
        let rendered = roundtrip("SELECT * FROM d WHERE z < 2.0");
        assert!(rendered.contains("2.0"), "got: {rendered}");
    }

    #[test]
    fn renders_exists_subquery() {
        let rendered = roundtrip("SELECT * FROM d WHERE EXISTS (SELECT 1 FROM s WHERE s.k = d.k)");
        assert!(rendered.contains("EXISTS (SELECT 1 FROM s"));
    }

    #[test]
    fn renders_not() {
        let rendered = roundtrip("SELECT * FROM d WHERE NOT (a OR b)");
        assert!(rendered.contains("NOT (a OR b)"), "got: {rendered}");
    }
}
