//! Render/parse idempotence over a corpus of paper-style queries.
//!
//! For every query `q`: `parse(display(parse(q))) == parse(q)` — i.e.
//! `display.rs` output is itself valid SQL that reparses to the same
//! AST. This pins the lexer → parser → renderer loop that every
//! rewriting stage in the pipeline depends on (a fragment is rendered,
//! shipped to a node, and reparsed there).

use paradise_sql::{parse_expr, parse_query};

/// Paper-style queries over the ubisense `stream(x, y, z, t)` schema,
/// spanning every syntactic feature the dialect supports.
const CORPUS: &[&str] = &[
    // projection / scan shapes
    "SELECT * FROM stream",
    "SELECT x, y FROM stream",
    "SELECT DISTINCT x, y FROM stream",
    "SELECT x AS px, y AS py FROM stream",
    // filters
    "SELECT * FROM stream WHERE z < 2",
    "SELECT x FROM stream WHERE x > y AND z < 2",
    "SELECT x FROM stream WHERE x > 1 OR NOT y < 2",
    "SELECT x FROM stream WHERE x + 1 > y * 2 - 3",
    "SELECT x FROM stream WHERE z BETWEEN 1 AND 2",
    "SELECT x FROM stream WHERE t IN (1, 2, 3)",
    "SELECT x FROM stream WHERE name LIKE 'bob%'",
    "SELECT x FROM stream WHERE y IS NULL",
    "SELECT x FROM stream WHERE y IS NOT NULL",
    // aggregation
    "SELECT AVG(z) FROM stream",
    "SELECT COUNT(*) FROM stream",
    "SELECT x, AVG(z) AS za FROM stream GROUP BY x",
    "SELECT x, AVG(z) AS za FROM stream WHERE z < 2 GROUP BY x HAVING SUM(z) > 10",
    // ordering and paging
    "SELECT x FROM stream ORDER BY x",
    "SELECT x FROM stream ORDER BY x DESC, y ASC LIMIT 5",
    "SELECT x FROM stream ORDER BY t LIMIT 10 OFFSET 20",
    // joins
    "SELECT a.x FROM stream a JOIN stream b ON a.t = b.t",
    "SELECT a.x, b.y FROM stream a LEFT JOIN stream b ON a.t = b.t WHERE b.y IS NULL",
    // subqueries and set operations
    "SELECT x FROM (SELECT x FROM stream)",
    "SELECT za FROM (SELECT x, AVG(z) AS za FROM stream WHERE z < 2 GROUP BY x)",
    "SELECT x FROM stream UNION SELECT y FROM stream",
    // expressions
    "SELECT CASE WHEN z < 1 THEN 'floor' ELSE 'air' END FROM stream",
    "SELECT CAST(t AS FLOAT) FROM stream",
    // windows (the paper's §4.2 rewrite target)
    "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) FROM stream",
    "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) \
     FROM (SELECT x, y, AVG(z) AS zAVG, t FROM stream \
     WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100)",
    // ML-style UDF from Table 1
    "SELECT filterByClass(z) FROM stream",
];

#[test]
fn corpus_queries_roundtrip_through_display() {
    for sql in CORPUS {
        let first = parse_query(sql).unwrap_or_else(|e| panic!("corpus query failed to parse: {sql}: {e}"));
        let rendered = first.to_string();
        let second = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("rendered SQL failed to reparse: {rendered}: {e}"));
        assert_eq!(second, first, "display round-trip changed the AST for: {sql}\nrendered: {rendered}");
    }
}

#[test]
fn rendering_is_idempotent() {
    // display(parse(display(parse(q)))) == display(parse(q)): the
    // renderer must be a fixed point after one normalization pass.
    for sql in CORPUS {
        let rendered = parse_query(sql).unwrap().to_string();
        let rerendered = parse_query(&rendered).unwrap().to_string();
        assert_eq!(rerendered, rendered, "rendering not idempotent for: {sql}");
    }
}

#[test]
fn corpus_exprs_roundtrip_through_display() {
    let exprs = [
        "x + 1 > y * 2",
        "NOT x > 1 AND y < 2 OR z = 3",
        "z BETWEEN 1 AND 2 AND t IN (1, 2)",
        "CASE WHEN z < 1 THEN 1 ELSE 0 END",
        "CAST(t AS FLOAT) / 2.5",
        "-x + (y - 1)",
        "name LIKE 'a%' AND y IS NOT NULL",
    ];
    for src in exprs {
        let first = parse_expr(src).unwrap_or_else(|e| panic!("expr failed to parse: {src}: {e}"));
        let rendered = first.to_string();
        let second = parse_expr(&rendered)
            .unwrap_or_else(|e| panic!("rendered expr failed to reparse: {rendered}: {e}"));
        assert_eq!(second, first, "expr round-trip changed the AST for: {src}");
    }
}
