//! The preprocessor (paper §3.1): analyse a query against the affected
//! user's privacy policy and rewrite it.
//!
//! Implemented rewrites, in application order:
//!
//! 1. **Relation substitution** — "if one sensor releases too much
//!    information, another sensor is queried by changing the relation in
//!    the FROM clause";
//! 2. **Projection masking** — "attributes in the SELECT clause are
//!    removed, if the user does not want to reveal specific information";
//! 3. **Condition injection** — "the WHERE condition is combined with the
//!    user's integrity constraints and the system query conjunctively",
//!    inserted "in the innermost possible part of the nested SQL query";
//! 4. **Aggregation enforcement** — attributes restricted to aggregated
//!    form are rewritten (`z` → `AVG(z) AS zAVG` + `GROUP BY`/`HAVING`),
//!    and "new attribute names are inserted and, if necessary, delegated
//!    to the outer queries".

use paradise_policy::ModulePolicy;
use paradise_sql::analysis::expr_attributes;
use paradise_sql::ast::{
    ColumnRef, Expr, FunctionCall, Query, SelectItem, TableRef,
};
use paradise_sql::visit::rewrite_block_exprs;

use crate::error::{CoreError, CoreResult};

/// A single rewrite performed by the preprocessor, for reporting.
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteAction {
    /// A denied attribute was removed from a SELECT list.
    RemovedAttribute(String),
    /// A FROM relation was replaced.
    SubstitutedRelation {
        /// Original relation.
        from: String,
        /// Substitute relation.
        to: String,
    },
    /// A policy condition was conjoined into the innermost WHERE.
    InjectedCondition(String),
    /// An attribute was rewritten into its required aggregation.
    EnforcedAggregation {
        /// The attribute.
        attribute: String,
        /// The alias it is now visible under (e.g. `zAVG`).
        alias: String,
    },
    /// References in outer blocks were renamed to the aggregation alias.
    RenamedOuterReferences {
        /// Original name.
        from: String,
        /// New name.
        to: String,
    },
}

/// Preprocessor configuration.
#[derive(Debug, Clone, Default)]
pub struct PreprocessOptions {
    /// Relation substitutions to apply (`from` → `to`).
    pub substitutions: Vec<(String, String)>,
}

/// Result of preprocessing.
#[derive(Debug, Clone)]
pub struct PreprocessOutcome {
    /// The rewritten query.
    pub query: Query,
    /// What was done to it.
    pub actions: Vec<RewriteAction>,
    /// Attributes the module requested but the policy denies.
    pub denied_attributes: Vec<String>,
}

/// Rewrite `query` under `policy` (paper §3.1). Fails with
/// [`CoreError::QueryDenied`] if the policy empties a SELECT list.
pub fn preprocess(
    query: &Query,
    policy: &ModulePolicy,
    options: &PreprocessOptions,
) -> CoreResult<PreprocessOutcome> {
    let mut query = query.clone();
    let mut actions = Vec::new();

    substitute_relations(&mut query, &options.substitutions, &mut actions);
    let denied_attributes = mask_projection(&mut query, policy, &mut actions)?;
    inject_conditions(&mut query, policy, &mut actions);
    enforce_aggregations(&mut query, policy, &mut actions)?;

    Ok(PreprocessOutcome { query, actions, denied_attributes })
}

// ---------------------------------------------------------------------
// 1. relation substitution
// ---------------------------------------------------------------------

fn substitute_relations(
    query: &mut Query,
    substitutions: &[(String, String)],
    actions: &mut Vec<RewriteAction>,
) {
    if substitutions.is_empty() {
        return;
    }
    fn table(t: &mut TableRef, subs: &[(String, String)], actions: &mut Vec<RewriteAction>) {
        match t {
            TableRef::Table { name, .. } => {
                if let Some((from, to)) =
                    subs.iter().find(|(from, _)| from.eq_ignore_ascii_case(name))
                {
                    actions.push(RewriteAction::SubstitutedRelation {
                        from: from.clone(),
                        to: to.clone(),
                    });
                    *name = to.clone();
                }
            }
            TableRef::Subquery { query, .. } => walk(query, subs, actions),
            TableRef::Join { left, right, .. } => {
                table(left, subs, actions);
                table(right, subs, actions);
            }
        }
    }
    fn walk(q: &mut Query, subs: &[(String, String)], actions: &mut Vec<RewriteAction>) {
        if let Some(from) = &mut q.from {
            table(from, subs, actions);
        }
        for (_, u) in &mut q.unions {
            walk(u, subs, actions);
        }
    }
    walk(query, substitutions, actions);
}

// ---------------------------------------------------------------------
// 2. projection masking
// ---------------------------------------------------------------------

fn mask_projection(
    query: &mut Query,
    policy: &ModulePolicy,
    actions: &mut Vec<RewriteAction>,
) -> CoreResult<Vec<String>> {
    let mut denied = Vec::new();
    mask_block(query, policy, actions, &mut denied)?;
    Ok(denied)
}

fn mask_block(
    query: &mut Query,
    policy: &ModulePolicy,
    actions: &mut Vec<RewriteAction>,
    denied: &mut Vec<String>,
) -> CoreResult<()> {
    // Names defined by a derived table in FROM (e.g. `zAVG`) are local
    // artifacts of the query, not base attributes — never policy-denied.
    let local_names: Vec<String> = match &query.from {
        Some(TableRef::Subquery { query: inner, .. }) => {
            match paradise_sql::analysis::output_columns(inner) {
                paradise_sql::analysis::OutputColumns::Named(names) => names,
                paradise_sql::analysis::OutputColumns::Wildcard => Vec::new(),
            }
        }
        _ => Vec::new(),
    };
    let had_items = !query.items.is_empty();
    query.items.retain(|item| match item {
        SelectItem::Expr { expr, .. } => {
            let attrs = expr_attributes(expr);
            let bad: Vec<String> = attrs
                .into_iter()
                .filter(|a| {
                    !policy.allows(a)
                        && !local_names.iter().any(|n| n.eq_ignore_ascii_case(a))
                })
                .collect();
            if bad.is_empty() {
                true
            } else {
                for b in bad {
                    if !denied.contains(&b) {
                        denied.push(b.clone());
                        actions.push(RewriteAction::RemovedAttribute(b));
                    }
                }
                false
            }
        }
        // wildcards stay: a sensor cannot project anyway; disallowed
        // attributes behind a wildcard are handled by outer projections
        // and the postprocessor.
        _ => true,
    });
    if had_items && query.items.is_empty() {
        return Err(CoreError::QueryDenied(
            "the policy denies every projected attribute".into(),
        ));
    }
    if let Some(TableRef::Subquery { query: inner, .. }) = &mut query.from {
        mask_block(inner, policy, actions, denied)?;
    }
    for (_, u) in &mut query.unions {
        mask_block(u, policy, actions, denied)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// 3. condition injection
// ---------------------------------------------------------------------

fn inject_conditions(
    query: &mut Query,
    policy: &ModulePolicy,
    actions: &mut Vec<RewriteAction>,
) {
    let conditions: Vec<Expr> = policy.all_conditions().into_iter().cloned().collect();
    if conditions.is_empty() {
        return;
    }
    let inner = query.innermost_mut();
    let existing: Vec<Expr> = inner
        .where_clause
        .as_ref()
        .map(|w| w.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();
    for cond in conditions {
        if existing.contains(&cond) {
            continue;
        }
        actions.push(RewriteAction::InjectedCondition(cond.to_string()));
        inner.where_clause = Expr::and_maybe(inner.where_clause.take(), Some(cond));
    }
}

// ---------------------------------------------------------------------
// 4. aggregation enforcement
// ---------------------------------------------------------------------

fn enforce_aggregations(
    query: &mut Query,
    policy: &ModulePolicy,
    actions: &mut Vec<RewriteAction>,
) -> CoreResult<()> {
    for rule in &policy.attributes {
        let Some(spec) = &rule.aggregation else { continue };
        if !rule.allow {
            continue;
        }
        let alias = spec.alias_for(&rule.name);
        let applied = enforce_one(query, &rule.name, &alias, spec)?;
        if applied {
            actions.push(RewriteAction::EnforcedAggregation {
                attribute: rule.name.clone(),
                alias: alias.clone(),
            });
            let renamed = rename_above_definition(query, &rule.name, &alias);
            if renamed {
                actions.push(RewriteAction::RenamedOuterReferences {
                    from: rule.name.clone(),
                    to: alias,
                });
            }
        }
    }
    Ok(())
}

/// Apply the aggregation in the innermost block that plainly projects the
/// attribute; returns whether anything was applied.
fn enforce_one(
    query: &mut Query,
    attribute: &str,
    alias: &str,
    spec: &paradise_policy::AggregationSpec,
) -> CoreResult<bool> {
    // recurse inward first
    if let Some(TableRef::Subquery { query: inner, .. }) = &mut query.from {
        if enforce_one(inner, attribute, alias, spec)? {
            return Ok(true);
        }
    }
    // does this block plainly project the attribute?
    let position = query.items.iter().position(|item| {
        matches!(
            item,
            SelectItem::Expr { expr: Expr::Column(c), .. }
                if c.name.eq_ignore_ascii_case(attribute)
        )
    });
    let Some(position) = position else { return Ok(false) };

    // already aggregated under this alias? (idempotence)
    let already = query.items.iter().any(|item| {
        matches!(item, SelectItem::Expr { alias: Some(a), .. } if a.eq_ignore_ascii_case(alias))
    });
    if already {
        return Ok(false);
    }

    query.items[position] = SelectItem::Expr {
        expr: Expr::Function(FunctionCall::new(
            spec.aggregation_type.clone(),
            vec![Expr::Column(ColumnRef::bare(attribute.to_string()))],
        )),
        alias: Some(alias.to_string()),
    };
    // grouping: policy group-by attributes, merged with existing keys
    for g in &spec.group_by {
        let expr = Expr::Column(ColumnRef::bare(g.clone()));
        if !query.group_by.contains(&expr) {
            query.group_by.push(expr);
        }
    }
    if let Some(having) = &spec.having {
        let present = query
            .having
            .as_ref()
            .map(|h| h.conjuncts().contains(&having))
            .unwrap_or(false);
        if !present {
            query.having = Expr::and_maybe(query.having.take(), Some(having.clone()));
        }
    }
    Ok(true)
}

/// Rename plain references to `attribute` into `alias` in every block
/// *above* the block that defines the alias. Returns true if any rename
/// happened.
fn rename_above_definition(query: &mut Query, attribute: &str, alias: &str) -> bool {
    // find whether the defining block is this one
    let defines_here = query.items.iter().any(|item| {
        matches!(item, SelectItem::Expr { alias: Some(a), .. } if a.eq_ignore_ascii_case(alias))
    });
    if defines_here {
        return false;
    }
    let mut renamed_below = false;
    if let Some(TableRef::Subquery { query: inner, .. }) = &mut query.from {
        // recurse first: rename in everything above the definition
        renamed_below = rename_above_definition(inner, attribute, alias);
        let defined_below = renamed_below
            || inner.items.iter().any(|item| {
                matches!(item, SelectItem::Expr { alias: Some(a), .. }
                    if a.eq_ignore_ascii_case(alias))
            });
        if defined_below {
            let mut changed = false;
            rewrite_block_exprs(query, &mut |e| match &e {
                Expr::Column(c) if c.name.eq_ignore_ascii_case(attribute) => {
                    changed = true;
                    Some(Expr::Column(ColumnRef::bare(alias.to_string())))
                }
                _ => None,
            });
            return changed || renamed_below;
        }
    }
    renamed_below
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_policy::figure4_policy;
    use paradise_policy::{AggregationSpec, AttributeRule, ModulePolicy};
    use paradise_sql::{parse_expr, parse_query};

    fn fig4() -> ModulePolicy {
        figure4_policy().modules.into_iter().next().unwrap()
    }

    /// The paper's original query (§4.2, inner SQL of the R code).
    const PAPER_ORIGINAL: &str =
        "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) \
         FROM (SELECT x, y, z, t FROM dprime)";

    /// The paper's rewritten query (§4.2).
    const PAPER_REWRITTEN: &str =
        "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) \
         FROM (SELECT x, y, AVG(z) AS zAVG, t FROM dprime \
         WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100)";

    #[test]
    fn reproduces_the_papers_rewriting() {
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let out = preprocess(&q, &fig4(), &PreprocessOptions::default()).unwrap();
        let expected = parse_query(PAPER_REWRITTEN).unwrap();
        assert_eq!(
            out.query, expected,
            "rewritten:\n  {}\nexpected:\n  {}",
            out.query, expected
        );
        assert!(out.denied_attributes.is_empty());
        // all four §3.1 rewrite families are reported
        assert!(out
            .actions
            .iter()
            .any(|a| matches!(a, RewriteAction::InjectedCondition(c) if c == "x > y")));
        assert!(out
            .actions
            .iter()
            .any(|a| matches!(a, RewriteAction::InjectedCondition(c) if c == "z < 2")));
        assert!(out.actions.iter().any(|a| matches!(
            a,
            RewriteAction::EnforcedAggregation { attribute, alias }
                if attribute == "z" && alias == "zAVG"
        )));
        assert!(out.actions.iter().any(|a| matches!(
            a,
            RewriteAction::RenamedOuterReferences { from, to } if from == "z" && to == "zAVG"
        )));
    }

    #[test]
    fn preprocessing_is_idempotent() {
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let once = preprocess(&q, &fig4(), &PreprocessOptions::default()).unwrap();
        let twice = preprocess(&once.query, &fig4(), &PreprocessOptions::default()).unwrap();
        assert_eq!(once.query, twice.query);
    }

    #[test]
    fn denied_attribute_is_removed() {
        let mut policy = fig4();
        policy.attributes.retain(|a| a.name != "t");
        policy.attributes.push(AttributeRule::denied("t"));
        let q = parse_query("SELECT x, y, t FROM dprime").unwrap();
        let out = preprocess(&q, &policy, &PreprocessOptions::default()).unwrap();
        assert_eq!(out.denied_attributes, vec!["t".to_string()]);
        assert_eq!(out.query.items.len(), 2);
    }

    #[test]
    fn unmentioned_attribute_is_denied_by_default() {
        let q = parse_query("SELECT x, heart_rate FROM dprime").unwrap();
        let out = preprocess(&q, &fig4(), &PreprocessOptions::default()).unwrap();
        assert_eq!(out.denied_attributes, vec!["heart_rate".to_string()]);
    }

    #[test]
    fn fully_denied_query_errors() {
        let q = parse_query("SELECT heart_rate FROM dprime").unwrap();
        let err = preprocess(&q, &fig4(), &PreprocessOptions::default()).unwrap_err();
        assert!(matches!(err, CoreError::QueryDenied(_)));
    }

    #[test]
    fn relation_substitution_applies_at_depth() {
        let q = parse_query("SELECT x FROM (SELECT x FROM camera)").unwrap();
        let options = PreprocessOptions {
            substitutions: vec![("camera".into(), "motion".into())],
        };
        let out = preprocess(&q, &fig4(), &options).unwrap();
        assert!(out.query.to_string().contains("FROM motion"));
        assert!(out.actions.iter().any(|a| matches!(
            a,
            RewriteAction::SubstitutedRelation { from, to } if from == "camera" && to == "motion"
        )));
    }

    #[test]
    fn conditions_go_to_innermost_block() {
        let q = parse_query("SELECT x FROM (SELECT x, y, z FROM d)").unwrap();
        let out = preprocess(&q, &fig4(), &PreprocessOptions::default()).unwrap();
        let inner = out.query.innermost();
        let conjuncts = inner.where_clause.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjuncts, 2); // x > y and z < 2
        assert!(out.query.where_clause.is_none()); // not at the outer block
    }

    #[test]
    fn existing_conditions_not_duplicated() {
        let q = parse_query("SELECT x, y, z, t FROM d WHERE z < 2").unwrap();
        let out = preprocess(&q, &fig4(), &PreprocessOptions::default()).unwrap();
        let w = out.query.where_clause.as_ref().unwrap();
        let zs = w
            .conjuncts()
            .iter()
            .filter(|c| c.to_string() == "z < 2")
            .count();
        assert_eq!(zs, 1);
    }

    #[test]
    fn aggregation_on_flat_query() {
        let q = parse_query("SELECT x, y, z, t FROM d").unwrap();
        let out = preprocess(&q, &fig4(), &PreprocessOptions::default()).unwrap();
        let rendered = out.query.to_string();
        assert!(rendered.contains("AVG(z) AS zAVG"), "{rendered}");
        assert!(rendered.contains("GROUP BY x, y"), "{rendered}");
        assert!(rendered.contains("HAVING SUM(z) > 100"), "{rendered}");
    }

    #[test]
    fn aggregation_merges_with_existing_group_by() {
        let q = parse_query("SELECT x, z FROM d GROUP BY x").unwrap();
        let out = preprocess(&q, &fig4(), &PreprocessOptions::default()).unwrap();
        // x kept once, y appended
        let keys: Vec<String> =
            out.query.group_by.iter().map(|g| g.to_string()).collect();
        assert_eq!(keys, vec!["x", "y"]);
    }

    #[test]
    fn no_aggregation_when_attribute_not_projected() {
        let policy = fig4();
        let q = parse_query("SELECT x, y FROM d WHERE z < 1").unwrap();
        let out = preprocess(&q, &policy, &PreprocessOptions::default()).unwrap();
        assert!(!out.query.to_string().contains("AVG"));
    }

    #[test]
    fn aggregation_with_min_instead_of_avg() {
        let mut policy = ModulePolicy::new("M");
        policy.attributes.push(AttributeRule::allowed("x"));
        policy.attributes.push(
            AttributeRule::allowed("p").with_aggregation(
                AggregationSpec::new("MIN")
                    .group_by(&["x"])
                    .having(parse_expr("COUNT(*) > 3").unwrap()),
            ),
        );
        let q = parse_query("SELECT x, p FROM d").unwrap();
        let out = preprocess(&q, &policy, &PreprocessOptions::default()).unwrap();
        let rendered = out.query.to_string();
        assert!(rendered.contains("MIN(p) AS pMIN"), "{rendered}");
        assert!(rendered.contains("HAVING COUNT(*) > 3"), "{rendered}");
    }

    #[test]
    fn rename_reaches_all_outer_levels() {
        let q = parse_query(
            "SELECT z FROM (SELECT z FROM (SELECT x, y, z, t FROM d))",
        )
        .unwrap();
        let out = preprocess(&q, &fig4(), &PreprocessOptions::default()).unwrap();
        let rendered = out.query.to_string();
        // innermost defines zAVG; both outer blocks must reference zAVG
        assert_eq!(rendered.matches("SELECT zAVG FROM").count(), 2, "{rendered}");
    }
}
