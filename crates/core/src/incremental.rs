//! The delta-aware tick driver: runs a handle's fragment pipeline so
//! that steady-state tick cost is proportional to the **ingested
//! batch**, not the retained stream window.
//!
//! Stages chain as in [`ProcessingChain::run_stages`], but instead of
//! re-executing every fragment over its full input, each stage runs in
//! one of three modes, probed once and memoized:
//!
//! * **Incremental append** (stateless filter/projection): processes
//!   only the input delta and ships only the *output delta* to the next
//!   node — the in-network traffic shrinks with the batch too.
//! * **Incremental snapshot** (grouped aggregation): folds the input
//!   delta into per-group accumulator state and ships the recomputed
//!   (small) full output.
//! * **Full**: shapes the engine cannot maintain incrementally (window
//!   functions, joins, `ORDER BY` over history) re-execute over their
//!   full input exactly as before — but when they sit above an
//!   aggregation barrier that input is already tiny.
//!
//! Invalidation is cascade-shaped: a retention eviction or source
//! replacement makes stage 0 rebuild from the full window; its rebuild
//! flag travels down the pipeline so every downstream state rebuilds in
//! the same tick. Results are **identical** to the full-rescan path —
//! pinned by the engine's incremental equivalence suite and the
//! runtime's ingest/tick/policy-swap proptests.

use std::collections::HashMap;
use std::sync::Arc;

use paradise_engine::plan::ast_key;
use paradise_engine::{
    CompiledPlan, DeltaInput, EngineError, Frame, IncrementalState, ShardSpec,
};
use paradise_nodes::{
    ChainRun, DeltaOutcome, Hop, NodeError, ProcessingChain, Stage, StageReport, TrafficLog,
};
use paradise_sql::ast::Query;

use crate::dp::DpPlan;
use crate::error::{CoreError, CoreResult};

/// The cross-handle plan pool: compiled fragment plans keyed by
/// (node name, fragment AST hash). Owned by the runtime, read-shared
/// into every handle's tick for just-in-time seeding.
pub(crate) type SharedPlans = HashMap<(String, u64), Vec<(Query, Arc<CompiledPlan>)>>;

/// Per-stage execution mode, discovered on the first tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StageMode {
    /// Not probed yet.
    Probe,
    /// Delta-aware (append or snapshot).
    Incremental,
    /// Full re-execution per tick.
    Full,
}

/// One stage's memoized mode + incremental state.
#[derive(Debug)]
struct StageSlot {
    node: String,
    key: u64,
    mode: StageMode,
    state: IncrementalState,
}

/// The per-handle incremental execution state, owned by the runtime's
/// `QueryHandle` slot and dropped whenever the handle's rewrite plan is
/// rebuilt (policy swap, source schema change).
#[derive(Debug, Default)]
pub(crate) struct HandleDeltaState {
    slots: Vec<StageSlot>,
}

impl HandleDeltaState {
    /// Drop all per-stage state: the next tick rebuilds everything.
    pub(crate) fn reset(&mut self) {
        self.slots.clear();
    }

    /// (Re)align the slots with the current stage list; any mismatch in
    /// length, node assignment or fragment identity rebuilds all state.
    fn align(&mut self, stages: &[Stage]) {
        let matches = self.slots.len() == stages.len()
            && self
                .slots
                .iter()
                .zip(stages)
                .all(|(slot, stage)| slot.node == stage.node && slot.key == ast_key(&stage.fragment));
        if !matches {
            self.slots = stages
                .iter()
                .map(|s| StageSlot {
                    node: s.node.clone(),
                    key: ast_key(&s.fragment),
                    mode: StageMode::Probe,
                    state: IncrementalState::new(),
                })
                .collect();
        }
    }
}

/// What flows from one stage to the next.
enum Carry {
    /// First stage: reads its source table (watermarked) directly.
    Start,
    /// Upstream ran incrementally append-style: its output delta plus
    /// its cached full output (shared buffers, no copies).
    Delta { delta: Frame, full: Frame, reset: bool },
    /// Upstream produced a complete output (snapshot or full mode).
    Full(Frame),
}

/// Run the stage pipeline delta-aware (see the module docs). The
/// internal consistency signal [`EngineError::StalePlan`] — a stage's
/// state fell out of sync with a mid-stream plan recompilation — resets
/// the whole pipeline state and retries once from a clean rebuild; it
/// can never mask a genuine query error, which propagates as-is.
pub(crate) fn run_stages_delta(
    chain: &mut ProcessingChain,
    stages: &[Stage],
    hs: &mut HandleDeltaState,
    shared: &SharedPlans,
    shard: Option<&ShardSpec>,
    dp: Option<(&DpPlan, u64)>,
    draws: &mut u64,
) -> CoreResult<ChainRun> {
    // count draws per attempt so a StalePlan retry doesn't double-count
    let mut attempt_draws = 0u64;
    let result = match try_run_stages_delta(chain, stages, hs, shared, shard, dp, &mut attempt_draws)
    {
        Err(CoreError::Node(NodeError::Engine(EngineError::StalePlan))) => {
            hs.reset();
            attempt_draws = 0;
            try_run_stages_delta(chain, stages, hs, shared, shard, dp, &mut attempt_draws)
        }
        other => other,
    };
    if result.is_ok() {
        *draws += attempt_draws;
    }
    if result.is_err() {
        // a failing stage may leave upstream states already advanced
        // past the tick's delta (their watermarks committed) while
        // downstream states never folded it. Rebuilding everything on
        // the next tick keeps failed ticks convergent with the
        // full-rescan path — no batch can be silently lost.
        hs.reset();
    }
    result
}

fn try_run_stages_delta(
    chain: &mut ProcessingChain,
    stages: &[Stage],
    hs: &mut HandleDeltaState,
    shared: &SharedPlans,
    shard: Option<&ShardSpec>,
    dp: Option<(&DpPlan, u64)>,
    draws: &mut u64,
) -> CoreResult<ChainRun> {
    if stages.is_empty() {
        return Err(CoreError::Node(NodeError::BadChain("no stages to run".into())));
    }
    hs.align(stages);

    let mut traffic = TrafficLog::default();
    let mut reports: Vec<StageReport> = Vec::with_capacity(stages.len());
    let mut carry = Carry::Start;

    for (i, stage) in stages.iter().enumerate() {
        let slot = &mut hs.slots[i];
        let was_probe = slot.mode == StageMode::Probe;
        // deliver the previous stage's output to this node and decide
        // how this stage consumes it; `(delta, reset, logical input
        // bytes)` — the size feeds the §3.1 capacity check, since an
        // incremental consumer's catalog holds only a schema husk
        let input: Option<(Frame, bool, usize)> = match &carry {
            Carry::Start => None,
            Carry::Delta { delta, full, reset } => {
                let prev = &stages[i - 1];
                // steady incremental ticks ship only the output delta;
                // an upstream rebuild (and every tick of a full-mode
                // consumer) ships the full output
                let full_needed = *reset || slot.mode != StageMode::Incremental;
                let shipped = if full_needed { full } else { delta };
                traffic.hops.push(Hop {
                    from: prev.node.clone(),
                    to: stage.node.clone(),
                    table: prev.publish_as.clone(),
                    rows: shipped.len(),
                    bytes: shipped.size_bytes(),
                });
                match slot.mode {
                    // full consumers (and the probe, whose fallback may
                    // execute over the catalog) need the real input
                    StageMode::Probe | StageMode::Full => {
                        chain.node_mut(&stage.node)?.install_table(&prev.publish_as, full.clone());
                    }
                    // incremental consumers fold the pushed delta; the
                    // catalog entry only carries the input *schema* for
                    // plan (re)compilation. Installing a schema-only
                    // frame instead of the data keeps the upstream
                    // stage's cached output exclusively owned — a
                    // pinned Arc would turn its per-tick append into a
                    // copy-on-write rescan of the whole window.
                    StageMode::Incremental => {
                        if *reset {
                            chain
                                .node_mut(&stage.node)?
                                .install_table(&prev.publish_as, Frame::empty(full.schema.clone()));
                        }
                    }
                }
                Some((delta.clone(), *reset, full.size_bytes()))
            }
            Carry::Full(frame) => {
                let prev = &stages[i - 1];
                traffic.hops.push(Hop {
                    from: prev.node.clone(),
                    to: stage.node.clone(),
                    table: prev.publish_as.clone(),
                    rows: frame.len(),
                    bytes: frame.size_bytes(),
                });
                chain.node_mut(&stage.node)?.install_table(&prev.publish_as, frame.clone());
                // a wholesale-replaced input cannot be folded as a
                // delta: this stage re-executes fully
                slot.mode = StageMode::Full;
                None
            }
        };

        let node = chain.node_mut(&stage.node)?;
        if was_probe {
            // just-in-time cross-handle sharing: another handle may have
            // compiled this exact fragment already — seed it (the input
            // table exists in the catalog by now, so the seed's schema
            // fingerprint can be verified) and skip the compile
            if let Some(entries) = shared.get(&(stage.node.clone(), slot.key)) {
                for (query, plan) in entries {
                    node.seed_plan(query, Arc::clone(plan));
                }
            }
        }
        let next_carry = match slot.mode {
            StageMode::Full => Carry::Full(node.execute(&stage.fragment)?),
            StageMode::Probe | StageMode::Incremental => {
                let (delta_input, bytes_hint) = match &input {
                    None => (DeltaInput::Source, None),
                    Some((delta, reset, bytes)) => {
                        (DeltaInput::Pushed { delta, reset: *reset }, Some(*bytes))
                    }
                };
                match node.try_execute_delta(
                    &stage.fragment,
                    delta_input,
                    &mut slot.state,
                    bytes_hint,
                    shard,
                )? {
                    Some(outcome) => {
                        slot.mode = StageMode::Incremental;
                        if was_probe && i > 0 {
                            // the probe installed the real input as a
                            // fallback; shrink it to a schema carrier so
                            // the upstream cache stays exclusively owned
                            let prev = &stages[i - 1];
                            let schema = node
                                .catalog
                                .get(&prev.publish_as)
                                .map(|f| f.schema.clone());
                            if let Ok(schema) = schema {
                                node.install_table(&prev.publish_as, Frame::empty(schema));
                            }
                        }
                        match outcome {
                            DeltaOutcome::Append { full, delta, reset } => {
                                Carry::Delta { delta, full, reset }
                            }
                            // downstream consumes the recomputed
                            // snapshot wholesale (it is O(groups)-sized)
                            DeltaOutcome::Snapshot { full, reset: _ } => Carry::Full(full),
                        }
                    }
                    None => {
                        // not incrementally maintainable: the full input
                        // is in the catalog (stage 0 always; later
                        // stages were installed above on probe)
                        slot.mode = StageMode::Full;
                        Carry::Full(node.execute(&stage.fragment)?)
                    }
                }
            }
        };

        // the differential-privacy noise boundary: noise the aggregation
        // stage's *finalized* output before it is reported or shipped
        // downstream. The accumulator state behind it stays exact (and
        // shard merges, which happen inside the stage, are pre-noise);
        // everything from here up consumes only the noised frame. A
        // noised carry is necessarily `Full` — the noise changes every
        // tick, so downstream stages cannot fold it as a delta.
        let next_carry = match (dp, next_carry) {
            (Some((plan, seed)), produced) if plan.stage == i && plan.is_noisy() => {
                let full = match produced {
                    Carry::Delta { full, .. } | Carry::Full(full) => full,
                    Carry::Start => unreachable!("every stage produces output"),
                };
                let (noised, n) = paradise_engine::apply_laplace(&full, &plan.specs, seed);
                *draws += n;
                Carry::Full(noised)
            }
            (_, produced) => produced,
        };

        if i > 0 && input.is_some() && slot.mode == StageMode::Full {
            // a full-mode stage fed by an upstream *append* cache must
            // not keep its installed input between ticks: the shared
            // column Arcs would turn the upstream's next O(batch) fold
            // into a copy-on-write rescan of its whole cached output.
            // The input is re-installed fresh at the next delivery.
            let prev = &stages[i - 1];
            let node = chain.node_mut(&stage.node)?;
            if let Ok(schema) = node.catalog.get(&prev.publish_as).map(|f| f.schema.clone()) {
                node.install_table(&prev.publish_as, Frame::empty(schema));
            }
        }

        let (full, level) = match &next_carry {
            Carry::Delta { full, .. } | Carry::Full(full) => {
                (full, chain.node(&stage.node)?.level)
            }
            Carry::Start => unreachable!("every stage produces output"),
        };
        reports.push(StageReport {
            node: stage.node.clone(),
            level,
            sql: if stage.sql.is_empty() {
                stage.fragment.to_string()
            } else {
                stage.sql.clone()
            },
            rows_out: full.len(),
            bytes_out: full.size_bytes(),
        });
        carry = next_carry;
    }

    let result = match carry {
        Carry::Delta { full, .. } | Carry::Full(full) => full,
        Carry::Start => unreachable!("stages is non-empty"),
    };
    Ok(ChainRun { result, traffic, stages: reports })
}
