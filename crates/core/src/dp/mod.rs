//! The differential-privacy rewrite mode (noise-calibrated aggregates).
//!
//! When a module's policy carries a [`DpConfig`], the rewrite layer
//! lowers the query's plain `COUNT`/`SUM`/`AVG` aggregates into a
//! noise-calibrated form:
//!
//! 1. **Clamp lowering** ([`lower_clamps`]): `SUM(x)` / `AVG(x)`
//!    arguments are wrapped in `CLAMP(x, lo, hi)` — the engine's
//!    scalar clamp, which has a column-dense fast path — pinning each
//!    input row to the configured `[clamp_lo, clamp_hi]` range
//!    *before* the rewritten query is fragmented. The clamp executes
//!    on the normal compiled/incremental aggregation path and bounds
//!    the per-row sensitivity the noise scale is calibrated from.
//! 2. **Noise planning** ([`derive_plan`]): the fragmentation plan's
//!    aggregation stage is inspected and every plain (non-`DISTINCT`,
//!    non-windowed) `COUNT`/`SUM`/`AVG` output column gets a
//!    [`NoiseSpec`] with Laplace scale `sensitivity / ε_col`, where
//!    the per-tick epsilon is split evenly over the noised columns.
//! 3. At tick time the runtime applies the specs to the aggregation
//!    stage's *finalized* output
//!    ([`paradise_engine::noise::apply_laplace`]) — accumulator state
//!    and shard merges stay exact and noise-free; only what flows
//!    downstream (and ultimately leaves the module) is noised.
//!
//! Sensitivities are the classic per-row bounds: `COUNT` changes by at
//! most 1 per row, a clamped `SUM` by at most `max(|lo|, |hi|)`, and
//! `AVG` is bounded conservatively by the clamp width `hi − lo`.
//! Unclamped `SUM`/`AVG` under a finite epsilon have unbounded
//! sensitivity — the scale degenerates to `∞` and the column drowns in
//! noise, which is the correct fail-closed behaviour for a
//! mis-configured policy. In the `ε = ∞` limit every scale is 0 and the
//! results are **bitwise identical** to the exact engine.
//!
//! What is *not* protected: group keys pass through exactly (a DP
//! histogram still reveals which groups exist), `MIN`/`MAX`/windowed/
//! `DISTINCT` aggregates stay exact (they have unbounded sensitivity
//! and are not lowered), and `HAVING` filters evaluate on exact
//! pre-noise aggregates. See the README's differential-privacy section.

use paradise_engine::noise::{NoiseKind, NoiseSpec};
use paradise_policy::DpConfig;
use paradise_sql::analysis::is_aggregate_function;
use paradise_sql::ast::{Expr, FunctionCall, Query, SelectItem, TableRef};

use crate::fragment::FragmentPlan;

/// Per-handle noise plan: which stage's output to noise, and how.
/// Derived at registration (and at every policy-driven plan rebuild)
/// from the fragmentation plan and the module's current [`DpConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct DpPlan {
    /// Index of the aggregation stage in the fragment/stage list.
    pub stage: usize,
    /// Noise specs for that stage's output columns.
    pub specs: Vec<NoiseSpec>,
}

impl DpPlan {
    /// Does this plan actually add noise (at least one non-zero scale)?
    /// An all-zero plan (the `ε = ∞` limit) spends no budget and draws
    /// no noise.
    pub fn is_noisy(&self) -> bool {
        self.specs.iter().any(|s| s.scale != 0.0)
    }
}

/// Clamp-lower a (policy-rewritten) query in place: every plain
/// `SUM(x)` / `AVG(x)` argument anywhere in the query tree becomes
/// `CLAMP(x, lo, hi)` under the config's finite clamp bounds. A config
/// without finite bounds (or with `ε = ∞`) leaves the query
/// **untouched** — the AST, and therefore every derived plan-cache
/// key, stays bitwise identical to the exact path. `NULL` inputs stay
/// `NULL` (the clamp function propagates nulls), so aggregate
/// null-skipping semantics are preserved.
pub fn lower_clamps(query: &mut Query, config: &DpConfig) {
    if !config.clamps() || config.epsilon_per_tick.is_infinite() {
        return;
    }
    lower_query(query, config);
}

fn lower_query(query: &mut Query, config: &DpConfig) {
    for item in &mut query.items {
        if let SelectItem::Expr { expr, .. } = item {
            lower_expr(expr, config);
        }
    }
    if let Some(from) = &mut query.from {
        lower_table(from, config);
    }
    if let Some(w) = &mut query.where_clause {
        lower_expr(w, config);
    }
    for g in &mut query.group_by {
        lower_expr(g, config);
    }
    if let Some(h) = &mut query.having {
        lower_expr(h, config);
    }
    for o in &mut query.order_by {
        lower_expr(&mut o.expr, config);
    }
    for (_, u) in &mut query.unions {
        lower_query(u, config);
    }
}

fn lower_table(table: &mut TableRef, config: &DpConfig) {
    match table {
        TableRef::Table { .. } => {}
        TableRef::Subquery { query, .. } => lower_query(query, config),
        TableRef::Join { left, right, on, .. } => {
            lower_table(left, config);
            lower_table(right, config);
            if let Some(on) = on {
                lower_expr(on, config);
            }
        }
    }
}

fn lower_expr(expr: &mut Expr, config: &DpConfig) {
    match expr {
        Expr::Function(f) => {
            let lowers = f.over.is_none()
                && !f.distinct
                && f.args.len() == 1
                && !matches!(f.args[0], Expr::Wildcard)
                && matches!(f.name.to_ascii_uppercase().as_str(), "SUM" | "AVG");
            for a in &mut f.args {
                lower_expr(a, config);
            }
            if lowers {
                let arg = f.args.pop().expect("checked: exactly one argument");
                f.args.push(clamp_call(arg, config.clamp_lo, config.clamp_hi));
            }
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            lower_expr(expr, config)
        }
        Expr::Binary { left, right, .. } => {
            lower_expr(left, config);
            lower_expr(right, config);
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                lower_expr(op, config);
            }
            for b in branches {
                lower_expr(&mut b.when, config);
                lower_expr(&mut b.then, config);
            }
            if let Some(e) = else_result {
                lower_expr(e, config);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            lower_expr(expr, config);
            lower_expr(low, config);
            lower_expr(high, config);
        }
        Expr::InList { expr, list, .. } => {
            lower_expr(expr, config);
            for e in list {
                lower_expr(e, config);
            }
        }
        Expr::Subquery(q) | Expr::Exists(q) => lower_query(q, config),
        Expr::Column(_) | Expr::Literal(_) | Expr::Wildcard => {}
    }
}

/// `CLAMP(arg, lo, hi)` — evaluates `arg` once per row and takes the
/// engine's dense numeric path, unlike the equivalent three-branch
/// `CASE`.
fn clamp_call(arg: Expr, lo: f64, hi: f64) -> Expr {
    Expr::Function(FunctionCall::new("CLAMP", vec![arg, Expr::float(lo), Expr::float(hi)]))
}

/// Derive the noise plan for a fragmented query under `config`.
///
/// Returns `None` — the handle runs **exact and spends no budget** —
/// when the plan has no aggregation stage, when the aggregation
/// fragment's projection cannot be column-indexed (wildcards), or when
/// no projected aggregate is a plain `COUNT`/`SUM`/`AVG`. The first
/// (innermost) aggregating fragment is the noise boundary; anything
/// stacked above it consumes already-noised values (differential
/// privacy is closed under post-processing).
pub fn derive_plan(plan: &FragmentPlan, config: &DpConfig) -> Option<DpPlan> {
    let stage = plan
        .fragments
        .iter()
        .position(|f| f.query.is_aggregating(&is_aggregate_function))?;
    let q = &plan.fragments[stage].query;
    let mut noised: Vec<(usize, NoiseKind, f64)> = Vec::new();
    for (i, item) in q.items.iter().enumerate() {
        let SelectItem::Expr { expr, .. } = item else {
            return None; // wildcard breaks the output-column indexing
        };
        let Expr::Function(f) = expr else { continue };
        if f.over.is_some() || f.distinct {
            continue;
        }
        match f.name.to_ascii_uppercase().as_str() {
            "COUNT" => noised.push((i, NoiseKind::Count, 1.0)),
            "SUM" => noised.push((i, NoiseKind::Sum, sum_sensitivity(config))),
            "AVG" => noised.push((i, NoiseKind::Sum, avg_sensitivity(config))),
            _ => {}
        }
    }
    if noised.is_empty() {
        return None;
    }
    let epsilon_per_column = config.epsilon_per_tick / noised.len() as f64;
    let specs = noised
        .into_iter()
        .map(|(column, kind, sensitivity)| NoiseSpec {
            column,
            scale: laplace_scale(sensitivity, epsilon_per_column),
            kind,
        })
        .collect();
    Some(DpPlan { stage, specs })
}

/// `b = Δ/ε`, with the `ε → ∞` limit pinned to exactly 0 (bitwise
/// equality with the exact engine) even for unbounded sensitivity.
fn laplace_scale(sensitivity: f64, epsilon: f64) -> f64 {
    if epsilon.is_infinite() {
        return 0.0;
    }
    sensitivity / epsilon
}

/// One row changes a clamped `SUM` by at most `max(|lo|, |hi|)`;
/// unclamped, the sensitivity is unbounded.
fn sum_sensitivity(config: &DpConfig) -> f64 {
    if config.clamps() {
        config.clamp_lo.abs().max(config.clamp_hi.abs())
    } else {
        f64::INFINITY
    }
}

/// Conservative `AVG` bound: one row moves a clamped mean by at most
/// the clamp width `hi − lo` (tight only for the 1-row group, which is
/// exactly the group a DP release must defend).
fn avg_sensitivity(config: &DpConfig) -> f64 {
    if config.clamps() {
        config.clamp_hi - config.clamp_lo
    } else {
        f64::INFINITY
    }
}

/// Deterministic per-(handle, tick) noise seed: a splitmix64-style mix
/// of the handle id and the module ledger's spend sequence number.
/// Recovery restores the ledger position from the log, so a recovered
/// runtime derives the same seed for the same logical tick and replays
/// **bitwise-identical** noisy results.
pub fn derive_seed(handle_id: u64, ledger_seq: u64) -> u64 {
    let mut z = 0x6a09_e667_f3bc_c909u64
        .wrapping_add(handle_id.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(ledger_seq.wrapping_mul(0xd1b5_4a32_d192_ed03));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::fragment_query;
    use paradise_sql::parse_query;

    fn clamped(lo: f64, hi: f64) -> DpConfig {
        DpConfig::new(1.0, 10.0).with_clamp(lo, hi)
    }

    #[test]
    fn clamp_lowering_rewrites_sum_and_avg_args() {
        let mut q = parse_query(
            "SELECT x, AVG(z) AS za, SUM(z) AS zs, COUNT(*) AS n, MIN(z) AS zm \
             FROM s GROUP BY x",
        )
        .unwrap();
        lower_clamps(&mut q, &clamped(0.0, 2.0));
        let sql = q.to_string();
        assert_eq!(sql.matches("CLAMP(z").count(), 2, "SUM and AVG args clamp: {sql}");
        assert!(sql.contains("COUNT(*)"), "COUNT needs no clamp: {sql}");
        assert!(sql.contains("MIN(z)"), "MIN is not lowered: {sql}");
    }

    #[test]
    fn clamp_lowering_reaches_inner_blocks_and_skips_windowed() {
        let mut q = parse_query(
            "SELECT SUM(za) OVER (ORDER BY x) FROM \
             (SELECT x, AVG(z) AS za FROM s GROUP BY x)",
        )
        .unwrap();
        lower_clamps(&mut q, &clamped(0.0, 2.0));
        let sql = q.to_string();
        assert_eq!(sql.matches("CLAMP(z").count(), 1, "only the inner AVG clamps: {sql}");
        assert!(sql.starts_with("SELECT SUM(za) OVER"), "windowed SUM untouched: {sql}");
    }

    #[test]
    fn unclamped_or_infinite_epsilon_config_leaves_the_ast_bitwise_alone() {
        let q = parse_query("SELECT x, SUM(z) AS zs FROM s GROUP BY x").unwrap();
        let mut unclamped = q.clone();
        lower_clamps(&mut unclamped, &DpConfig::new(1.0, 10.0));
        assert_eq!(unclamped, q);
        let mut open = q.clone();
        lower_clamps(&mut open, &DpConfig::new(f64::INFINITY, f64::INFINITY).with_clamp(0.0, 1.0));
        assert_eq!(open, q, "ε=∞ must not perturb plan-cache keys");
    }

    #[test]
    fn derive_plan_finds_the_aggregation_stage_and_splits_epsilon() {
        let q = parse_query(
            "SELECT x, COUNT(*) AS n, SUM(z) AS zs FROM s WHERE z < 9 GROUP BY x",
        )
        .unwrap();
        let plan = fragment_query(&q).unwrap();
        let config = DpConfig::new(1.0, 10.0).with_clamp(-2.0, 4.0);
        let dp = derive_plan(&plan, &config).unwrap();
        assert_eq!(dp.stage, plan.fragments.len() - 1, "last fragment aggregates");
        assert_eq!(dp.specs.len(), 2);
        // ε splits over 2 columns → ε_col = 0.5; COUNT: Δ=1 → b=2;
        // SUM: Δ=max(|-2|,|4|)=4 → b=8
        assert_eq!(dp.specs[0], NoiseSpec { column: 1, scale: 2.0, kind: NoiseKind::Count });
        assert_eq!(dp.specs[1], NoiseSpec { column: 2, scale: 8.0, kind: NoiseKind::Sum });
        assert!(dp.is_noisy());
    }

    #[test]
    fn infinite_epsilon_yields_zero_scales_and_no_noise() {
        let q = parse_query("SELECT x, AVG(z) AS za FROM s GROUP BY x").unwrap();
        let plan = fragment_query(&q).unwrap();
        let config = DpConfig::new(f64::INFINITY, f64::INFINITY).with_clamp(0.0, 1.0);
        let dp = derive_plan(&plan, &config).unwrap();
        assert!(dp.specs.iter().all(|s| s.scale == 0.0));
        assert!(!dp.is_noisy());
    }

    #[test]
    fn unclamped_sum_under_finite_epsilon_drowns_in_noise() {
        let q = parse_query("SELECT x, SUM(z) AS zs FROM s GROUP BY x").unwrap();
        let plan = fragment_query(&q).unwrap();
        let dp = derive_plan(&plan, &DpConfig::new(1.0, 10.0)).unwrap();
        assert!(dp.specs[0].scale.is_infinite(), "unbounded sensitivity fails closed");
    }

    #[test]
    fn plans_without_noisable_aggregates_run_exact() {
        for sql in [
            "SELECT x, z FROM s WHERE z < 2",
            "SELECT x, MIN(z) AS zm FROM s GROUP BY x",
            "SELECT x, COUNT(DISTINCT z) AS n FROM s GROUP BY x",
        ] {
            let plan = fragment_query(&parse_query(sql).unwrap()).unwrap();
            assert_eq!(derive_plan(&plan, &clamped(0.0, 1.0)), None, "{sql}");
        }
    }

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
        assert_ne!(derive_seed(7, 3), derive_seed(7, 4), "ticks get fresh draws");
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3), "handles get distinct streams");
        assert_ne!(derive_seed(0, 0), 0);
    }
}
