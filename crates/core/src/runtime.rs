//! The continuous-query runtime: the registration-based public API of
//! the processor.
//!
//! The paper's setting is *continuous* queries from assistive systems
//! over sensor streams — a module registers its query once, sensor data
//! keeps arriving, and every tick re-evaluates all registered queries
//! under the current privacy policies. [`Runtime`] models exactly that
//! lifecycle:
//!
//! * [`Runtime::register`] — preprocess (policy rewrite) + fragment the
//!   query **once**, cached per handle;
//! * [`Runtime::ingest`] — append a stream batch at a chain node;
//! * [`Runtime::tick`] — drain every registered query against the fresh
//!   data, fanning independent queries out over the scoped thread pool
//!   (`PARADISE_THREADS`; serial at 1), results in registration order;
//! * [`Runtime::set_policy`] — swap a module's policy live. Policy
//!   versions extend every cache key, so the swap invalidates exactly
//!   the affected handles' rewrite plans and compiled node plans —
//!   other handles keep a 100% cache-hit rate;
//! * [`Runtime::stats`] / [`Runtime::handle_stats`] — hit/miss/
//!   invalidation counters of both cache layers.
//!
//! Steady-state ticks perform **zero** preprocess/fragment/compile
//! work: the rewrite+fragment plan is cached per handle (keyed by
//! policy version and source-schema fingerprint) and every chain node
//! reuses its compiled physical plans (`Arc<CompiledPlan>`, keyed by
//! fragment AST, schema fingerprint and policy version).
//!
//! Each handle executes on its own chain clone whose sources are
//! refreshed from the runtime's ingest state before every tick
//! (`Frame` clones are per-column `Arc` bumps, so a refresh copies no
//! data). That is what makes the multi-query fan-out safe: ticks of
//! different handles share nothing mutable.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minipool::ThreadPool;
use paradise_engine::{plan as engine_plan, Catalog, Frame, ShardSpec};
use paradise_nodes::ProcessingChain;
use paradise_policy::{
    parse_policy, policy_to_xml, DpConfig, EpsilonLedger, ModulePolicy, Policy, PolicyVersion,
};
use paradise_sql::ast::Query;

use crate::checks::information_gain_check;
use crate::dp::{self, DpPlan};
use crate::error::{CoreError, CoreResult};
use crate::fragment::{assign_to_chain, fragment_query, FragmentPlan};
use crate::incremental::{run_stages_delta, HandleDeltaState, SharedPlans};
use crate::preprocess::{preprocess, PreprocessOutcome};
use crate::processor::{
    assemble_outcome, execute_pipeline, source_fingerprint, Outcome, PlanCacheStats,
    ProcessorOptions,
};
use crate::remainder::Remainder;
use crate::storage::{
    Durability, DurabilityStats, LedgerState, PolicyState, RegistrationState, SessionMark,
    SnapshotData, TableState, Vfs, WalRecord, DEFAULT_SNAPSHOT_EVERY,
};

/// Upper bound on pooled shared plans before an epoch-style reset.
const MAX_SHARED_PLANS: usize = 1024;

/// Opaque handle of one registered continuous query.
///
/// Handles stay valid until [`Runtime::remove_query`]; a removed
/// handle's slot may be reused, but the generation makes stale handles
/// detectable ([`CoreError::UnknownHandle`]) instead of silently
/// addressing the new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryHandle {
    index: u32,
    generation: u32,
}

impl QueryHandle {
    /// A compact scalar id (generation ≪ 32 | slot), for logging.
    pub fn id(self) -> u64 {
        (u64::from(self.generation) << 32) | u64::from(self.index)
    }
}

impl std::fmt::Display for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}.{}", self.index, self.generation)
    }
}

/// One registered query: the compile-once artifacts plus the handle's
/// private execution chain.
struct Registered {
    generation: u32,
    module: String,
    query: Query,
    /// Rewrite outcome, built at registration (or at the last
    /// invalidation) under `version`.
    pre: PreprocessOutcome,
    /// Fragmentation of the rewritten query, cached alongside.
    plan: FragmentPlan,
    /// Policy version the cached plan was rewritten under — the cache
    /// key extension that makes live policy updates sound.
    version: PolicyVersion,
    /// Base tables of the original query and the source-schema
    /// fingerprint captured at build time (schema changes invalidate).
    tables: Vec<String>,
    fingerprint: u64,
    /// The handle's private execution chain: sources are refreshed from
    /// the runtime chain before every tick; node-level compiled-plan
    /// caches stay warm across ticks.
    chain: ProcessingChain,
    /// Per-handle rewrite/fragment-plan cache counters.
    stats: PlanCacheStats,
    /// Differential-privacy noise plan (which stage's output to noise,
    /// per-column Laplace scales), derived from the module's
    /// [`DpConfig`] at registration and at every plan rebuild; `None`
    /// when the module has no DP config or the query has no noisable
    /// aggregate.
    dp: Option<DpPlan>,
    /// Per-stage incremental execution state (delta watermarks, cached
    /// append outputs, per-group accumulators), dropped whenever the
    /// rewrite plan is rebuilt.
    delta: HandleDeltaState,
    /// Engine-cache miss count at the last shared-plan harvest: steady
    /// ticks (no new compilations) skip the harvest entirely.
    harvested_misses: u64,
    /// Idempotency origin `(session, seq)` of the registration request,
    /// `(0, 0)` for direct API registrations. A retried registration
    /// with the same origin resolves to the slot its first delivery
    /// created instead of registering twice.
    origin: (u64, u64),
}

/// Aggregate cache/tick counters of a [`Runtime`], from
/// [`Runtime::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Live registered queries.
    pub registered: usize,
    /// Completed [`Runtime::tick`] calls.
    pub ticks: u64,
    /// Rewrite/fragment-plan counters summed over all live handles
    /// (registration = miss; steady tick = hit; policy swap or source
    /// schema change = invalidation + miss).
    pub plan: PlanCacheStats,
    /// Compiled-plan counters summed over every node of every live
    /// handle's chain.
    pub engine: engine_plan::PlanCacheStats,
    /// Fragment plans in the cross-handle sharing pool: identical
    /// fragments registered by different handles (or modules) compile
    /// once and share one `Arc<CompiledPlan>` from here.
    pub shared_plans: usize,
    /// Cumulative differential-privacy epsilon spent across all module
    /// ledgers, in micro-epsilon (`spent × 10⁶`, saturating) — integer
    /// so the stats struct stays `Copy + Eq`.
    pub dp_epsilon_spent_micro: u64,
    /// Laplace noise draws consumed by DP aggregate finalization.
    pub dp_noise_draws: u64,
    /// Ticks refused (handle quarantined or tick aborted) because a
    /// module's epsilon budget was exhausted.
    pub dp_budget_exhausted: u64,
}

/// Per-handle counters, from [`Runtime::handle_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandleStats {
    /// Module the query was registered under.
    pub module: String,
    /// Policy version the handle's plans are currently built against.
    pub policy_version: PolicyVersion,
    /// This handle's rewrite/fragment-plan counters.
    pub plan: PlanCacheStats,
    /// Compiled-plan counters summed over the handle's chain nodes.
    pub engine: engine_plan::PlanCacheStats,
}

/// The long-lived continuous-query runtime (see the module docs).
pub struct Runtime {
    /// Source-of-record chain: holds the ingested streams, never
    /// executes fragments itself.
    chain: ProcessingChain,
    policies: HashMap<String, (PolicyVersion, ModulePolicy)>,
    options: ProcessorOptions,
    remainder: Option<Remainder>,
    /// Per-(node, table) cap on retained stream rows (oldest evicted).
    retention: Option<usize>,
    /// Delta-aware tick execution (the default); `false` re-executes
    /// every fragment over its full input per tick, kept as the
    /// executable reference the equivalence tests compare against.
    incremental: bool,
    /// Stream partitioning: grouped-aggregation stages fold each tick's
    /// delta partition-parallel over this many shards of the declared
    /// key (see [`Runtime::with_partitioning`]); `None` = serial.
    partitioning: Option<ShardSpec>,
    /// Cross-handle plan pool keyed by (node name, fragment AST hash):
    /// plans compiled on one handle's chain are harvested here and
    /// seeded into every handle's node caches, so identical fragments
    /// compile once runtime-wide.
    shared: SharedPlans,
    slots: Vec<Option<Registered>>,
    next_generation: u32,
    /// Global monotonic policy-version counter: every install gets a
    /// fresh number, so versions are unique across modules too.
    version_counter: u64,
    ticks: u64,
    /// Per-module differential-privacy spend ledgers. Pure spend
    /// records — budget and per-tick epsilon are read from the
    /// *current* policy at check time, so a live policy swap
    /// immediately re-budgets the accumulated spend.
    ledgers: HashMap<String, EpsilonLedger>,
    /// Laplace draws consumed runtime-wide (see [`RuntimeStats`]).
    dp_noise_draws: u64,
    /// Budget-exhaustion refusals runtime-wide (see [`RuntimeStats`]).
    dp_budget_exhausted: u64,
    /// The attached durability layer (write-ahead log + snapshots),
    /// `None` for a purely in-memory runtime. See [`Runtime::durable`].
    durability: Option<Durability>,
    /// Automatic-snapshot cadence in ticks (0 = only on explicit
    /// [`Runtime::snapshot`] calls).
    snapshot_every: u64,
    /// Degraded read-only mode: set (to the root cause) when a WAL
    /// commit or snapshot write fails. While set, mutating calls are
    /// refused with [`CoreError::Degraded`], noisy-DP handles are
    /// quarantined (their ε-spends could not be made durable), and the
    /// failed write is not retried until an explicit
    /// [`Runtime::resume_durability`].
    degraded: Option<String>,
    /// Per-session idempotency high-water marks: the highest applied
    /// request sequence of each client session. Persisted in snapshots
    /// and advanced by origin-carrying WAL records, so retry dedup
    /// survives crash recovery.
    marks: HashMap<u64, u64>,
}

impl Runtime {
    /// Runtime over a chain with default options.
    pub fn new(chain: ProcessingChain) -> Self {
        Runtime {
            chain,
            policies: HashMap::new(),
            options: ProcessorOptions::default(),
            remainder: None,
            retention: None,
            incremental: true,
            partitioning: None,
            shared: HashMap::new(),
            slots: Vec::new(),
            next_generation: 0,
            version_counter: 0,
            ticks: 0,
            ledgers: HashMap::new(),
            dp_noise_draws: 0,
            dp_budget_exhausted: 0,
            durability: None,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            degraded: None,
            marks: HashMap::new(),
        }
    }

    /// Builder: install a module policy (equivalent to
    /// [`Runtime::set_policy`]).
    #[must_use]
    pub fn with_policy(mut self, module_id: impl Into<String>, policy: ModulePolicy) -> Self {
        self.set_policy(module_id, policy);
        self
    }

    /// Builder: set processor options (preprocess substitutions,
    /// assignment policy, anonymization strategy, information-gain
    /// threshold; the `plan_cache` flag is meaningless here — caching
    /// per registered handle is what the runtime *is*).
    #[must_use]
    pub fn with_options(mut self, options: ProcessorOptions) -> Self {
        self.options = options;
        self
    }

    /// Builder: set the cloud remainder stage.
    #[must_use]
    pub fn with_remainder(mut self, remainder: Remainder) -> Self {
        self.remainder = Some(remainder);
        self
    }

    /// Builder: keep at most `rows` rows per ingested stream table —
    /// the sliding-window retention of a long-running deployment.
    /// Eviction is **batched** for amortized O(1) appends: a table is
    /// only trimmed (back down to `rows`) once it exceeds the cap by
    /// ≥25%, so the retained window breathes between `rows` and
    /// `1.25 × rows`. Each trim also re-anchors the delta watermarks,
    /// so incremental ticks rebuild at most once per trim instead of
    /// once per append.
    #[must_use]
    pub fn with_retention(mut self, rows: usize) -> Self {
        self.retention = Some(rows);
        self
    }

    /// Builder: shard every registered stream by a hash of the `key`
    /// column into `shards` sub-streams and fold grouped-aggregation
    /// ticks partition-parallel over them, merging per-group
    /// accumulators only at the aggregation boundary. Results are
    /// identical to serial incremental execution (and to the
    /// full-rescan reference) — sharding is purely an execution
    /// strategy. Stages that cannot shard — stateless filters, global
    /// aggregation, `DISTINCT` aggregates, or fragments without the
    /// key column — transparently keep the serial path.
    ///
    /// Ingested batches are split per shard eagerly at the source, so
    /// steady-state ticks route each delta without re-hashing. The
    /// `PARADISE_SHARDS` environment variable, when set, overrides
    /// `shards` (the CI serial-reference leg runs `PARADISE_SHARDS=1`);
    /// the effective count is clamped to `1..=65535`.
    #[must_use]
    pub fn with_partitioning(mut self, key: impl Into<String>, shards: usize) -> Self {
        let shards = std::env::var("PARADISE_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(shards);
        let spec = ShardSpec::new(key, shards);
        for node in self.chain.nodes_mut() {
            node.catalog.set_partitioning(&spec.key, spec.shards);
        }
        self.partitioning = (spec.shards > 1).then_some(spec);
        self
    }

    /// Builder: toggle delta-aware tick execution (default **on**).
    /// When off, every tick re-executes each fragment over its full
    /// retained input — the reference path the incremental engine is
    /// equivalence-tested against, and the baseline of the
    /// `runtime_incremental` benchmarks.
    #[must_use]
    pub fn with_incremental(mut self, enabled: bool) -> Self {
        self.incremental = enabled;
        self
    }

    /// Builder: attach the durability layer at `dir` (created if
    /// missing), making this runtime survive crashes.
    ///
    /// * **Fresh directory** — the runtime's current state is
    ///   checkpointed as the first snapshot, and from then on every
    ///   state-changing call (`install_source`, `ingest`, `register`,
    ///   `remove_query`, `set_policy`, retention eviction) is recorded
    ///   in a CRC-framed write-ahead log. Ingest records are
    ///   **group-committed** at the next [`Runtime::tick`] (one write
    ///   syscall per tick); control records commit immediately; bytes
    ///   are forced to stable media at snapshot barriers.
    /// * **Directory with prior state** — the runtime is *rebuilt*:
    ///   latest valid snapshot (falling back one generation past a
    ///   partially-written one), then ordered log replay. Replay is
    ///   idempotent — every record carries the absolute stream
    ///   position or version it applies at, so duplicated records are
    ///   skipped, torn log tails are truncated, and the rebuilt state
    ///   (tables, watermarks, policies, registrations — including
    ///   still-valid caller-held [`QueryHandle`]s) equals an
    ///   uninterrupted run's. Incremental per-handle state is rebuilt
    ///   on the first tick.
    ///
    /// Call this **last** in the builder chain, on a runtime
    /// constructed with the *same configuration* (chain topology,
    /// retention, partitioning, options) as the run that wrote the
    /// directory — configuration is deliberately not persisted, state
    /// is.
    ///
    /// Errors: [`CoreError::Io`] on filesystem failures,
    /// [`CoreError::Locked`] when another live runtime in this process
    /// already holds the directory, and [`CoreError::Corrupt`] when no
    /// snapshot generation validates or the log is structurally damaged
    /// (a torn tail from a crash mid-write is *not* corruption and
    /// recovers silently).
    pub fn durable(self, dir: impl AsRef<Path>) -> CoreResult<Self> {
        self.durable_with(dir, crate::storage::RealVfs::shared())
    }

    /// [`Runtime::durable`] through an explicit [`Vfs`] — the
    /// fault-injection entry point. Attach a
    /// [`FaultVfs`](crate::storage::FaultVfs) to schedule deterministic
    /// per-operation I/O failures (full disk, I/O errors, torn writes,
    /// failed fsyncs or renames) against the durability layer and
    /// observe the typed degraded-mode reaction.
    pub fn durable_with(mut self, dir: impl AsRef<Path>, vfs: Arc<dyn Vfs>) -> CoreResult<Self> {
        let opened = Durability::open_with(dir.as_ref(), vfs)?;
        let mut durability = opened.durability;
        durability.snapshot_every = self.snapshot_every;
        if !durability.stats().recovered {
            let data = self.snapshot_data();
            durability.initial_snapshot(data)?;
            self.durability = Some(durability);
            return Ok(self);
        }
        if let Some(snap) = opened.snapshot {
            self.apply_snapshot(snap)?;
        }
        let mut skipped = 0u64;
        for record in opened.records {
            self.apply_record(record, &mut skipped)?;
        }
        durability.stats.skipped = skipped;
        self.durability = Some(durability);
        Ok(self)
    }

    /// Builder: automatic-snapshot cadence in ticks (default
    /// [`DEFAULT_SNAPSHOT_EVERY`]; `0` disables automatic snapshots —
    /// only explicit [`Runtime::snapshot`] calls checkpoint). Set it
    /// before [`Runtime::durable`].
    #[must_use]
    pub fn with_snapshot_every(mut self, ticks: u64) -> Self {
        self.snapshot_every = ticks;
        if let Some(d) = self.durability.as_mut() {
            d.snapshot_every = ticks;
        }
        self
    }

    /// Checkpoint now: commit + sync the log, write the next snapshot
    /// generation atomically, rotate the log at the barrier, and
    /// delete generations older than the fallback. Errors with
    /// [`CoreError::Io`] when no durability layer is attached.
    pub fn snapshot(&mut self) -> CoreResult<()> {
        self.check_not_degraded()?;
        let data = self.snapshot_data();
        let Some(d) = self.durability.as_mut() else {
            return Err(CoreError::Io(
                "snapshot requested but no durability directory is attached".to_string(),
            ));
        };
        match d.rotate_snapshot(data) {
            Ok(()) => Ok(()),
            // the previous snapshot generation survives a failed
            // rotation untouched — recovery keeps a valid fallback
            Err(e) => Err(self.enter_degraded(e)),
        }
    }

    /// The degraded-mode cause, when the runtime is in degraded
    /// read-only mode (see [`CoreError::Degraded`]); `None` when fully
    /// operational.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// Leave degraded mode: repair the write-ahead log (reopening it
    /// truncated back to the last committed byte, dropping any torn
    /// prefix of the failed write), re-commit every preserved pending
    /// record, and re-enable mutations. Fails — staying degraded — if
    /// the disk still refuses the write. Errors with [`CoreError::Io`]
    /// when the runtime has no durability layer (a purely in-memory
    /// runtime can never degrade).
    pub fn resume_durability(&mut self) -> CoreResult<()> {
        let Some(d) = self.durability.as_mut() else {
            return Err(CoreError::Io(
                "resume requested but no durability directory is attached".to_string(),
            ));
        };
        d.resume()?;
        self.degraded = None;
        Ok(())
    }

    /// Refuse mutations while degraded (see [`CoreError::Degraded`]).
    fn check_not_degraded(&self) -> CoreResult<()> {
        match &self.degraded {
            Some(msg) => Err(CoreError::Degraded(msg.clone())),
            None => Ok(()),
        }
    }

    /// Enter degraded read-only mode (keeping the first cause if
    /// already degraded) and type the error for the caller.
    fn enter_degraded(&mut self, cause: CoreError) -> CoreError {
        let msg = cause.to_string();
        if self.degraded.is_none() {
            self.degraded = Some(msg.clone());
        }
        CoreError::Degraded(msg)
    }

    /// Group-commit the WAL, entering degraded mode on failure (the
    /// pending records are preserved for the resume retry).
    fn commit_durability(&mut self) -> CoreResult<()> {
        let Some(d) = self.durability.as_mut() else { return Ok(()) };
        match d.commit() {
            Ok(()) => Ok(()),
            Err(e) => Err(self.enter_degraded(e)),
        }
    }

    /// Highest applied request sequence of a client session (0 when the
    /// session has never applied a mutation) — the serving layer's
    /// dedup floor when resuming a session after a reconnect.
    pub fn session_mark(&self, session: u64) -> u64 {
        self.marks.get(&session).copied().unwrap_or(0)
    }

    /// Live registrations created by a client session, as `(seq,
    /// handle, module)` in ascending request order — lets a resumed
    /// session recover the handles its acknowledged registrations
    /// produced, across reconnects and server restarts.
    pub fn session_registrations(&self, session: u64) -> Vec<(u64, QueryHandle, String)> {
        let mut regs: Vec<(u64, QueryHandle, String)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| {
                slot.as_ref().filter(|reg| session != 0 && reg.origin.0 == session).map(|reg| {
                    let handle =
                        QueryHandle { index: index as u32, generation: reg.generation };
                    (reg.origin.1, handle, reg.module.clone())
                })
            })
            .collect();
        regs.sort_by_key(|&(seq, _, _)| seq);
        regs
    }

    /// Was `(session, seq)` already applied? Direct API calls carry the
    /// null origin `(0, 0)` and are never deduplicated.
    pub fn is_duplicate(&self, session: u64, seq: u64) -> bool {
        session != 0 && self.marks.get(&session).is_some_and(|&mark| seq <= mark)
    }

    /// Advance a session's applied high-water mark (no-op for the null
    /// origin).
    fn advance_mark(&mut self, session: u64, seq: u64) {
        if session != 0 {
            let mark = self.marks.entry(session).or_insert(0);
            *mark = (*mark).max(seq);
        }
    }

    /// Crash emulation for tests and recovery drills: release the
    /// durability directory's in-process lock, then leak the runtime
    /// without running destructors — no final commit, exactly like a
    /// hard kill. The on-disk state is whatever previous commit points
    /// made durable.
    pub fn simulate_crash(mut self) {
        if let Some(d) = self.durability.as_mut() {
            d.release_lock();
        }
        std::mem::forget(self);
    }

    /// Durability counters and recovery facts; `None` when the runtime
    /// is purely in-memory.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.durability.as_ref().map(Durability::stats)
    }

    /// The complete durable state, as written into snapshots.
    fn snapshot_data(&self) -> SnapshotData {
        let mut tables = Vec::new();
        for node in self.chain.nodes() {
            for table in node.catalog.table_names() {
                let (Ok(frame), Ok(wm)) =
                    (node.catalog.get(table), node.catalog.watermark(table))
                else {
                    continue;
                };
                tables.push(TableState {
                    node: node.name.clone(),
                    table: table.to_string(),
                    evicted: wm.evicted(),
                    frame: frame.clone(),
                });
            }
        }
        let mut policies: Vec<PolicyState> = self
            .policies
            .iter()
            .map(|(module, (version, policy))| PolicyState {
                module: module.clone(),
                version: version.as_u64(),
                xml: policy_to_xml(&Policy::single(policy.clone())),
            })
            .collect();
        policies.sort_by(|a, b| a.module.cmp(&b.module));
        let registrations = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(slot, reg)| {
                reg.as_ref().map(|reg| RegistrationState {
                    slot: slot as u32,
                    generation: reg.generation,
                    module: reg.module.clone(),
                    sql: reg.query.to_string(),
                    session: reg.origin.0,
                    seq: reg.origin.1,
                })
            })
            .collect();
        let mut ledgers: Vec<LedgerState> = self
            .ledgers
            .iter()
            .map(|(module, l)| LedgerState {
                module: module.clone(),
                seq: l.seq(),
                spent: l.spent(),
            })
            .collect();
        ledgers.sort_by(|a, b| a.module.cmp(&b.module));
        let mut sessions: Vec<SessionMark> = self
            .marks
            .iter()
            .map(|(&session, &seq)| SessionMark { session, seq })
            .collect();
        sessions.sort_by_key(|s| s.session);
        SnapshotData {
            generation: 0, // assigned by the durability layer
            tables,
            policies,
            version_counter: self.version_counter,
            registrations,
            slots: self.slots.len() as u32,
            next_generation: self.next_generation,
            ledgers,
            sessions,
        }
    }

    /// Rebuild state from a recovered snapshot (policies first, so the
    /// re-registrations preprocess under the right versions).
    fn apply_snapshot(&mut self, snap: SnapshotData) -> CoreResult<()> {
        for p in snap.policies {
            let policy = parse_policy(&p.xml)?;
            let module = policy.modules.into_iter().next().ok_or_else(|| {
                CoreError::Corrupt(format!("snapshot policy for {:?} has no module", p.module))
            })?;
            self.policies.insert(p.module, (PolicyVersion(p.version), module));
        }
        self.version_counter = snap.version_counter;
        for l in snap.ledgers {
            let mut ledger = EpsilonLedger::new();
            ledger.restore(l.seq, l.spent);
            self.ledgers.insert(l.module, ledger);
        }
        for t in snap.tables {
            let node = self.chain.node_mut(&t.node).map_err(|_| {
                CoreError::Corrupt(format!(
                    "snapshot references node {:?}, absent from this chain — \
                     reconstruct the runtime with the configuration that wrote \
                     the durability directory",
                    t.node
                ))
            })?;
            node.catalog.restore(&t.table, t.frame, t.evicted);
        }
        for s in snap.sessions {
            self.marks.insert(s.session, s.seq);
        }
        self.slots = (0..snap.slots).map(|_| None).collect();
        for r in snap.registrations {
            self.recover_register(r.slot, r.generation, &r.module, &r.sql, (r.session, r.seq))?;
        }
        self.next_generation = snap.next_generation;
        Ok(())
    }

    /// Replay one log record. Each record carries the absolute
    /// position it applies at, so replay over recovered state is
    /// idempotent: at-or-below → skip (counted), exactly-at → apply,
    /// beyond → a gap, which is real corruption.
    fn apply_record(&mut self, record: WalRecord, skipped: &mut u64) -> CoreResult<()> {
        match record {
            WalRecord::InstallSource { node, table, frame } => {
                self.chain.node_mut(&node)?.install_table(&table, frame);
            }
            WalRecord::Ingest { node, table, start, session, seq, frame } => {
                let wm = self.chain.node(&node)?.catalog.watermark(&table)?;
                if wm.rows() > start {
                    *skipped += 1;
                } else if wm.rows() == start {
                    // raw append, no retention trim: evictions replay
                    // from their own records, pinning the recovered
                    // window to the original run's eviction decisions
                    self.chain.node_mut(&node)?.catalog.append(&table, frame)?;
                } else {
                    return Err(CoreError::Corrupt(format!(
                        "log gap: table {table:?} at row {}, ingest record starts at {start}",
                        wm.rows()
                    )));
                }
                // the origin rides in the same record as the batch, so
                // a torn tail can never separate the append from its
                // dedup mark
                self.advance_mark(session, seq);
            }
            WalRecord::Evict { node, table, evicted_to } => {
                let wm = self.chain.node(&node)?.catalog.watermark(&table)?;
                if wm.evicted() >= evicted_to {
                    *skipped += 1;
                } else if evicted_to <= wm.rows() {
                    let rows = (evicted_to - wm.evicted()) as usize;
                    self.chain.node_mut(&node)?.catalog.evict_front(&table, rows)?;
                } else {
                    return Err(CoreError::Corrupt(format!(
                        "log gap: eviction to row {evicted_to} of table {table:?} \
                         which only reaches row {}",
                        wm.rows()
                    )));
                }
            }
            WalRecord::Register { slot, generation, module, sql, session, seq } => {
                self.advance_mark(session, seq);
                if self.next_generation > generation {
                    *skipped += 1;
                } else if self.next_generation == generation {
                    self.recover_register(slot, generation, &module, &sql, (session, seq))?;
                    self.next_generation = generation + 1;
                } else {
                    return Err(CoreError::Corrupt(format!(
                        "log gap: registration generation {generation} but the \
                         runtime is at {}",
                        self.next_generation
                    )));
                }
            }
            WalRecord::RemoveQuery { slot, generation } => {
                let live = self
                    .slots
                    .get(slot as usize)
                    .and_then(Option::as_ref)
                    .is_some_and(|reg| reg.generation == generation);
                if live {
                    self.slots[slot as usize] = None;
                } else {
                    *skipped += 1;
                }
            }
            WalRecord::SetPolicy { version, module, xml, session, seq } => {
                self.advance_mark(session, seq);
                if version <= self.version_counter {
                    *skipped += 1;
                } else if version == self.version_counter + 1 {
                    let policy = parse_policy(&xml)?;
                    let module_policy = policy.modules.into_iter().next().ok_or_else(|| {
                        CoreError::Corrupt(format!("policy record for {module:?} has no module"))
                    })?;
                    self.policies.insert(module, (PolicyVersion(version), module_policy));
                    self.version_counter = version;
                } else {
                    return Err(CoreError::Corrupt(format!(
                        "log gap: policy version {version} but the runtime is at {}",
                        self.version_counter
                    )));
                }
            }
            WalRecord::SpendEpsilon { module, seq, spent } => {
                let at = self.ledgers.get(&module).map_or(0, |l| l.seq());
                if seq <= at {
                    *skipped += 1;
                } else if seq == at + 1 {
                    self.ledgers.entry(module).or_default().restore(seq, spent);
                } else {
                    return Err(CoreError::Corrupt(format!(
                        "log gap: epsilon spend sequence {seq} for module \
                         {module:?} whose ledger is at {at}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Re-register a recovered query at its recorded slot and
    /// generation, so caller-held handles stay valid across the
    /// restart. Preprocess and fragmentation re-run under the
    /// recovered policies, exactly as at original registration.
    fn recover_register(
        &mut self,
        slot: u32,
        generation: u32,
        module: &str,
        sql: &str,
        origin: (u64, u64),
    ) -> CoreResult<()> {
        let query = paradise_sql::parse_query(sql)?;
        let (version, policy) = self
            .policies
            .get(module)
            .ok_or_else(|| CoreError::NoPolicy(module.to_string()))?;
        let version = *version;
        let (pre, plan, dp_plan) = build_plans(&query, policy, &self.options)?;
        let tables = paradise_sql::analysis::base_relations(&query);
        let fingerprint = source_fingerprint(&self.chain, &tables);
        let mut chain = self.chain.clone();
        chain.set_plan_salt(version.as_u64());
        let registered = Registered {
            generation,
            module: module.to_string(),
            query,
            pre,
            plan,
            version,
            tables,
            fingerprint,
            chain,
            stats: PlanCacheStats { hits: 0, misses: 1, invalidations: 0 },
            dp: dp_plan,
            delta: HandleDeltaState::default(),
            harvested_misses: 0,
            origin,
        };
        let index = slot as usize;
        if self.slots.len() <= index {
            self.slots.resize_with(index + 1, || None);
        }
        if self.slots[index].is_some() {
            return Err(CoreError::Corrupt(format!(
                "slot {slot} registered twice during recovery"
            )));
        }
        self.slots[index] = Some(registered);
        Ok(())
    }

    /// Install or swap a module's policy **live** and return the new
    /// policy version. Registered queries of the module are rewritten
    /// and recompiled on their next tick under the new version; every
    /// cache key carries the version, so plans built under the previous
    /// policy can never be served again (their eviction is counted in
    /// the invalidation stats). Handles of *other* modules are
    /// untouched and keep their 100% cache-hit rate.
    pub fn set_policy(&mut self, module_id: impl Into<String>, policy: ModulePolicy) -> PolicyVersion {
        self.version_counter += 1;
        let version = PolicyVersion(self.version_counter);
        let module_id = module_id.into();
        if let Some(d) = self.durability.as_mut() {
            d.record(&WalRecord::SetPolicy {
                version: version.as_u64(),
                module: module_id.clone(),
                xml: policy_to_xml(&Policy::single(policy.clone())),
                session: 0,
                seq: 0,
            });
            // committed at the next commit point (tick or control op):
            // this signature predates durability and cannot surface an
            // I/O error
        }
        self.policies.insert(module_id, (version, policy));
        version
    }

    /// [`Runtime::set_policy`] with a client idempotency origin, for
    /// the serving layer's retry-safe policy installs. A `(session,
    /// seq)` at or below the session's applied high-water mark is a
    /// duplicate delivery: nothing is bumped and the module's *current*
    /// version is returned with `applied = false`. Unlike the plain
    /// signature this variant commits the record before returning —
    /// the acknowledgment implies durability — and is refused in
    /// degraded mode ([`CoreError::Degraded`]).
    pub fn set_policy_with_origin(
        &mut self,
        module_id: impl Into<String>,
        policy: ModulePolicy,
        session: u64,
        seq: u64,
    ) -> CoreResult<(PolicyVersion, bool)> {
        self.check_not_degraded()?;
        let module_id = module_id.into();
        if self.is_duplicate(session, seq) {
            let version = self
                .policies
                .get(&module_id)
                .map(|(v, _)| *v)
                .unwrap_or(PolicyVersion(self.version_counter));
            return Ok((version, false));
        }
        self.version_counter += 1;
        let version = PolicyVersion(self.version_counter);
        if let Some(d) = self.durability.as_mut() {
            d.record(&WalRecord::SetPolicy {
                version: version.as_u64(),
                module: module_id.clone(),
                xml: policy_to_xml(&Policy::single(policy.clone())),
                session,
                seq,
            });
        }
        self.policies.insert(module_id, (version, policy));
        self.advance_mark(session, seq);
        self.commit_durability()?;
        Ok((version, true))
    }

    /// The installed policy version of a module, if any.
    pub fn policy_version(&self, module_id: &str) -> Option<PolicyVersion> {
        self.policies.get(module_id).map(|(v, _)| *v)
    }

    /// A module's differential-privacy spend ledger (a copy), if the
    /// module has ever spent. Budget checks always read the *current*
    /// policy's [`DpConfig`] against this spend, so swapping in a
    /// larger budget un-quarantines an exhausted module without
    /// refunding a single spent epsilon.
    pub fn epsilon_ledger(&self, module_id: &str) -> Option<EpsilonLedger> {
        self.ledgers.get(module_id).copied()
    }

    /// Register a continuous query for a module: preprocess (policy
    /// rewrite) and fragment **once**, set up the handle's execution
    /// chain, and return the handle. Ticks re-execute the cached plan
    /// until the module's policy or a source schema changes.
    pub fn register(&mut self, module_id: &str, query: &Query) -> CoreResult<QueryHandle> {
        self.register_with_origin(module_id, query, 0, 0).map(|(handle, _)| handle)
    }

    /// [`Runtime::register`] with a client idempotency origin. A
    /// `(session, seq)` at or below the session's applied high-water
    /// mark is a duplicate delivery: the handle the first delivery
    /// created is returned with `applied = false` (or
    /// [`CoreError::UnknownHandle`] if that registration was since
    /// removed) — a wire-level retry can never register the same query
    /// twice. Refused in degraded mode ([`CoreError::Degraded`]): the
    /// acknowledgment implies the registration is durable.
    pub fn register_with_origin(
        &mut self,
        module_id: &str,
        query: &Query,
        session: u64,
        seq: u64,
    ) -> CoreResult<(QueryHandle, bool)> {
        self.check_not_degraded()?;
        if self.is_duplicate(session, seq) {
            for (index, slot) in self.slots.iter().enumerate() {
                if let Some(reg) = slot.as_ref().filter(|r| r.origin == (session, seq)) {
                    let handle =
                        QueryHandle { index: index as u32, generation: reg.generation };
                    return Ok((handle, false));
                }
            }
            return Err(CoreError::UnknownHandle(0));
        }
        let (version, policy) = self
            .policies
            .get(module_id)
            .ok_or_else(|| CoreError::NoPolicy(module_id.to_string()))?;
        let version = *version;
        let (pre, plan, dp_plan) = build_plans(query, policy, &self.options)?;
        let tables = paradise_sql::analysis::base_relations(query);
        let fingerprint = source_fingerprint(&self.chain, &tables);
        let mut chain = self.chain.clone();
        chain.set_plan_salt(version.as_u64());
        let generation = self.next_generation;
        self.next_generation += 1;
        let registered = Registered {
            generation,
            module: module_id.to_string(),
            query: query.clone(),
            pre,
            plan,
            version,
            tables,
            fingerprint,
            chain,
            stats: PlanCacheStats { hits: 0, misses: 1, invalidations: 0 },
            dp: dp_plan,
            delta: HandleDeltaState::default(),
            harvested_misses: 0,
            origin: (session, seq),
        };
        let index = match self.slots.iter().position(Option::is_none) {
            Some(free) => {
                self.slots[free] = Some(registered);
                free
            }
            None => {
                self.slots.push(Some(registered));
                self.slots.len() - 1
            }
        };
        if let Some(d) = self.durability.as_mut() {
            d.record(&WalRecord::Register {
                slot: index as u32,
                generation,
                module: module_id.to_string(),
                sql: query.to_string(),
                session,
                seq,
            });
        }
        self.advance_mark(session, seq);
        self.commit_durability()?;
        Ok((QueryHandle { index: index as u32, generation }, true))
    }

    /// Deregister a query; its handle becomes invalid and its execution
    /// state is dropped.
    pub fn remove_query(&mut self, handle: QueryHandle) -> CoreResult<()> {
        self.check_not_degraded()?;
        self.resolve(handle)?;
        self.slots[handle.index as usize] = None;
        if let Some(d) = self.durability.as_mut() {
            d.record(&WalRecord::RemoveQuery {
                slot: handle.index,
                generation: handle.generation,
            });
        }
        self.commit_durability()
    }

    /// Install (or replace) source data at a chain node. Replacing a
    /// table under a *different* schema invalidates the affected
    /// handles' plans on their next tick.
    pub fn install_source(&mut self, node: &str, table: &str, frame: Frame) -> CoreResult<()> {
        self.check_not_degraded()?;
        // the clone is per-column Arc bumps, no cell copies
        let logged = self.durability.is_some().then(|| frame.clone());
        self.chain.node_mut(node)?.install_table(table, frame);
        if let (Some(d), Some(frame)) = (self.durability.as_mut(), logged) {
            d.record(&WalRecord::InstallSource {
                node: node.to_string(),
                table: table.to_string(),
                frame,
            });
        }
        self.commit_durability()
    }

    /// Append a stream batch to a source table — the per-tick data path
    /// of a deployment. The table must already exist (via
    /// [`Runtime::install_source`]; an unknown name errors rather than
    /// silently misrouting data) and the batch schema must match the
    /// installed table's exactly (so every cached plan stays valid).
    ///
    /// When a retention cap is set, eviction is amortized: the oldest
    /// rows are trimmed (down to the cap) only once the table exceeds
    /// the cap by ≥25% — O(1) bookkeeping per append, one O(window)
    /// trim per quarter-window of arrivals. Delta consumers re-anchor
    /// their watermarks at each trim and stay purely incremental
    /// in between.
    pub fn ingest(&mut self, node: &str, table: &str, batch: Frame) -> CoreResult<()> {
        self.ingest_with_origin(node, table, batch, 0, 0).map(|_| ())
    }

    /// [`Runtime::ingest`] with a client idempotency origin. A
    /// `(session, seq)` at or below the session's applied high-water
    /// mark means an earlier delivery of the same request already
    /// appended this batch: it is skipped and `Ok(false)` returned, so
    /// a wire-level retry can never double-append. The origin rides
    /// inside the same WAL record as the batch (single-record
    /// atomicity: a torn log tail can never separate an append from
    /// its dedup mark). Refused in degraded mode
    /// ([`CoreError::Degraded`]): an accepted batch must be backed by
    /// an appendable log.
    pub fn ingest_with_origin(
        &mut self,
        node: &str,
        table: &str,
        batch: Frame,
        session: u64,
        seq: u64,
    ) -> CoreResult<bool> {
        self.check_not_degraded()?;
        if self.is_duplicate(session, seq) {
            return Ok(false);
        }
        // capture the append position and batch before they move: the
        // log record carries the absolute start row (replay's
        // idempotency anchor), and the clone is per-column Arc bumps
        let logged = match self.durability.is_some() {
            true => {
                let start = self.chain.node(node)?.catalog.watermark(table)?.rows();
                Some((start, batch.clone()))
            }
            false => None,
        };
        self.chain.ingest(node, table, batch)?;
        if let (Some(d), Some((start, frame))) = (self.durability.as_mut(), logged) {
            // buffered only — group-committed at the next tick
            d.record(&WalRecord::Ingest {
                node: node.to_string(),
                table: table.to_string(),
                start,
                session,
                seq,
                frame,
            });
        }
        self.advance_mark(session, seq);
        if let Some(max) = self.retention {
            let catalog = &mut self.chain.node_mut(node)?.catalog;
            let len = catalog.get(table)?.len();
            if len > max.saturating_add(max / 4) {
                catalog.evict_front(table, len - max)?;
                let evicted_to = catalog.watermark(table)?.evicted();
                if let Some(d) = self.durability.as_mut() {
                    d.record(&WalRecord::Evict {
                        node: node.to_string(),
                        table: table.to_string(),
                        evicted_to,
                    });
                }
            }
        }
        Ok(true)
    }

    /// Evaluate every registered query against the current stream state:
    /// one tick of the continuous-query loop.
    ///
    /// Per handle: revalidate the cached rewrite+fragment plan (policy
    /// version + source-schema fingerprint; a hit costs two comparisons),
    /// refresh the handle chain's sources (`Arc` bumps), then execute
    /// the Figure 2 pipeline. Independent handles execute in parallel on
    /// the scoped thread pool (`PARADISE_THREADS`; serial at 1) — the
    /// result order is the registration order at any thread count, and
    /// the first failing handle's error (in that order) is returned.
    ///
    /// A failing tick is **atomic**: if any handle's plan rebuild fails
    /// — typically a [`Runtime::set_policy`] swap that now denies a
    /// registered query — the tick returns that error *before* touching
    /// any counter, cache or source. The runtime stays consistent and
    /// retries are idempotent; recover by installing a compatible
    /// policy or [`Runtime::remove_query`]-ing the rejected handle.
    pub fn tick(&mut self) -> CoreResult<Vec<(QueryHandle, Outcome)>> {
        let per_handle = self.tick_inner(false)?;
        let mut out = Vec::with_capacity(per_handle.len());
        let mut first_error: Option<CoreError> = None;
        for (handle, result) in per_handle {
            match result {
                Ok(outcome) => out.push((handle, outcome)),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Like [`Runtime::tick`], but **fault-isolating**: every live
    /// handle gets its own `Result`, in registration (slot) order, and
    /// one failing handle cannot poison the tick for the others.
    ///
    /// * A handle whose plan rebuild fails (typically a
    ///   [`Runtime::set_policy`] swap that now denies its query) is
    ///   **quarantined for this tick**: its entry carries the typed
    ///   error, its counters and cached state are untouched (retries
    ///   stay idempotent), and every other handle executes normally.
    /// * A handle whose *execution* fails likewise reports its error in
    ///   place; its incremental state is reset so the next tick rebuilds
    ///   from a clean slate.
    /// * The outer `Err` is reserved for runtime-global failures —
    ///   internal invariant violations and durability commit errors —
    ///   after which no per-handle result is meaningful.
    ///
    /// This is the primitive a multi-tenant serving layer builds handle
    /// quarantine on: one tenant's rejected query yields a typed error
    /// to that tenant alone, while every other tenant's results are
    /// computed and returned as usual.
    pub fn tick_each(&mut self) -> CoreResult<Vec<(QueryHandle, CoreResult<Outcome>)>> {
        self.tick_inner(true)
    }

    /// Shared tick body. `isolate` selects the error discipline:
    /// `false` aborts on the first rebuild failure before any mutation
    /// (the atomic [`Runtime::tick`] contract), `true` quarantines
    /// failing handles per slot ([`Runtime::tick_each`]).
    fn tick_inner(
        &mut self,
        isolate: bool,
    ) -> CoreResult<Vec<(QueryHandle, CoreResult<Outcome>)>> {
        enum Rebuild {
            Keep,
            Fresh(Box<PreprocessOutcome>, FragmentPlan, Option<DpPlan>, PolicyVersion, u64),
            Failed(CoreError),
        }

        /// Would executing a handle with this noise plan overdraw the
        /// module's epsilon budget? (Non-noisy plans — DP off, ε = ∞,
        /// or no noisable aggregate — spend nothing and always pass.)
        fn budget_check(
            module: &str,
            dp_plan: Option<&DpPlan>,
            config: Option<&DpConfig>,
            ledgers: &HashMap<String, EpsilonLedger>,
        ) -> CoreResult<()> {
            let (Some(plan), Some(cfg)) = (dp_plan, config) else { return Ok(()) };
            if !plan.is_noisy() {
                return Ok(());
            }
            let ledger = ledgers.get(module).copied().unwrap_or_default();
            if ledger.can_spend(cfg) {
                return Ok(());
            }
            Err(CoreError::BudgetExhausted {
                module: module.to_string(),
                spent: ledger.spent(),
                budget: cfg.budget,
            })
        }

        /// In degraded mode a noisy handle cannot tick: its ε-spend
        /// record could not be made durable, and releasing noisy
        /// results whose spend a crash could lose breaks the privacy
        /// accounting. Non-noisy handles keep serving from memory.
        fn degraded_check(degraded: Option<&str>, dp_plan: Option<&DpPlan>) -> CoreResult<()> {
            match degraded {
                Some(msg) if dp_plan.is_some_and(DpPlan::is_noisy) => {
                    Err(CoreError::Degraded(format!(
                        "cannot persist this tick's epsilon spend: {msg}"
                    )))
                }
                _ => Ok(()),
            }
        }

        // phase 1a (serial, read-only): probe every handle's cached
        // rewrite+fragment plan and precompute the rebuilds. Nothing is
        // mutated until all rebuilds have succeeded (or, isolating,
        // been marked failed), so a policy that rejects one registered
        // query cannot corrupt counters or partially refresh state on
        // repeated failing ticks.
        let mut rebuilds: Vec<Option<Rebuild>> = Vec::with_capacity(self.slots.len());
        {
            let policies = &self.policies;
            let chain = &self.chain;
            let options = &self.options;
            let ledgers = &self.ledgers;
            let degraded = self.degraded.as_deref();
            for slot in &self.slots {
                let Some(slot) = slot else {
                    rebuilds.push(None);
                    continue;
                };
                let probed = (|| -> CoreResult<Rebuild> {
                    let (version, policy) = policies.get(&slot.module).ok_or_else(|| {
                        // policies are never removed, so a registered
                        // module without one is an invariant violation,
                        // not user error
                        CoreError::Internal(format!("module {:?} lost its policy", slot.module))
                    })?;
                    let fingerprint = source_fingerprint(chain, &slot.tables);
                    if *version != slot.version || fingerprint != slot.fingerprint {
                        // policy swap or source schema change: rebuild
                        // this handle's rewrite under the current
                        // policy version
                        let (pre, plan, dp_plan) = build_plans(&slot.query, policy, options)?;
                        budget_check(&slot.module, dp_plan.as_ref(), policy.dp.as_ref(), ledgers)?;
                        degraded_check(degraded, dp_plan.as_ref())?;
                        Ok(Rebuild::Fresh(Box::new(pre), plan, dp_plan, *version, fingerprint))
                    } else {
                        budget_check(&slot.module, slot.dp.as_ref(), policy.dp.as_ref(), ledgers)?;
                        degraded_check(degraded, slot.dp.as_ref())?;
                        Ok(Rebuild::Keep)
                    }
                })();
                match probed {
                    Ok(rebuild) => rebuilds.push(Some(rebuild)),
                    Err(e) => {
                        if matches!(e, CoreError::BudgetExhausted { .. }) {
                            self.dp_budget_exhausted += 1;
                        }
                        if isolate {
                            rebuilds.push(Some(Rebuild::Failed(e)));
                        } else {
                            return Err(e);
                        }
                    }
                }
            }
        }

        // phase 1b (serial): apply the rebuilds, bump counters, refresh
        // every handle chain's sources and plan-cache salts (the
        // cross-handle plan pool is consulted just-in-time inside the
        // delta driver, where each stage's input table is guaranteed
        // to exist for fingerprint verification). Quarantined handles
        // are skipped wholesale: no counters, no refresh — a failing
        // handle's retries stay idempotent.
        let mut failed: Vec<Option<CoreError>> = self.slots.iter().map(|_| None).collect();
        for (index, (slot, rebuild)) in self.slots.iter_mut().zip(rebuilds).enumerate() {
            let Some(slot) = slot else { continue };
            match rebuild.expect("live slot has a rebuild decision") {
                Rebuild::Failed(e) => {
                    failed[index] = Some(e);
                    continue;
                }
                Rebuild::Fresh(pre, plan, dp_plan, version, fingerprint) => {
                    slot.stats.misses += 1;
                    slot.stats.invalidations += 1;
                    slot.pre = *pre;
                    slot.plan = plan;
                    slot.dp = dp_plan;
                    slot.version = version;
                    slot.fingerprint = fingerprint;
                    // the rewrite changed: every per-stage incremental
                    // state belongs to the old fragments
                    slot.delta.reset();
                }
                Rebuild::Keep => slot.stats.hits += 1,
            }
            for node in self.chain.nodes() {
                let target = slot.chain.node_mut(&node.name).map_err(|_| {
                    CoreError::Internal(format!("handle chain lost node {:?}", node.name))
                })?;
                // bump the plan-cache salt to the handle's policy
                // version (purges stale generations; no-op when stable)
                target.set_plan_salt(slot.version.as_u64());
                // mirror the ingested sources *including* their stream
                // watermarks (Arc bumps, no cell copies), so the
                // handle's delta consumers track the source-of-record
                target.catalog.mirror_from(&node.catalog);
            }
        }

        // phase 1c (serial): spend each DP module's per-tick epsilon —
        // once per module, however many of its handles will tick — and
        // derive every noisy handle's noise seed from (handle id,
        // ledger sequence). The spend is buffered as a log record here
        // and reaches the OS in phase 6's group commit, i.e. *before*
        // this tick's results are returned to any caller — so recovery
        // can never observe released noisy results whose spend (and
        // seed) it lost. Spends are not refunded if execution later
        // fails: over-counting spend is privacy-safe, refunding is not.
        let mut seeds: Vec<u64> = vec![0; self.slots.len()];
        {
            let mut spent: HashMap<&str, u64> = HashMap::new();
            for (index, slot) in self.slots.iter().enumerate() {
                let Some(reg) = slot else { continue };
                if failed[index].is_some() {
                    continue;
                }
                if !reg.dp.as_ref().is_some_and(DpPlan::is_noisy) {
                    continue;
                }
                let Some(cfg) = self.policies.get(&reg.module).and_then(|(_, p)| p.dp.as_ref())
                else {
                    continue;
                };
                let seq = match spent.get(reg.module.as_str()) {
                    Some(seq) => *seq,
                    None => {
                        let ledger = self.ledgers.entry(reg.module.clone()).or_default();
                        let seq = ledger.spend(cfg.epsilon_per_tick);
                        if let Some(d) = self.durability.as_mut() {
                            d.record(&WalRecord::SpendEpsilon {
                                module: reg.module.clone(),
                                seq,
                                spent: ledger.spent(),
                            });
                        }
                        spent.insert(reg.module.as_str(), seq);
                        seq
                    }
                };
                let handle = QueryHandle { index: index as u32, generation: reg.generation };
                seeds[index] = dp::derive_seed(handle.id(), seq);
            }
        }
        let noise_draws = AtomicU64::new(0);

        // the integrated catalog is only materialised when the
        // information-gain check is on (it reads the raw sources)
        let info_catalog = self.options.info_gain_threshold.map(|_| self.integrated_catalog());

        // phase 2 (parallel): execute the handles' pipelines —
        // quarantined handles (rebuild failures) are skipped
        let mut results: Vec<Option<CoreResult<Outcome>>> =
            self.slots.iter().map(|_| None).collect();
        {
            let options = &self.options;
            let remainder = self.remainder.as_ref();
            let info_catalog = info_catalog.as_ref();
            let incremental = self.incremental;
            let shared = &self.shared;
            let shard = self.partitioning.as_ref();
            let failed = &failed;
            let noise_draws = &noise_draws;
            ThreadPool::global().scope(|scope| {
                for (index, (slot, result)) in
                    self.slots.iter_mut().zip(results.iter_mut()).enumerate()
                {
                    let Some(reg) = slot.as_mut() else { continue };
                    if failed[index].is_some() {
                        continue;
                    }
                    let dp_seed = seeds[index];
                    scope.spawn(move || {
                        *result = Some(run_handle(
                            reg,
                            options,
                            remainder,
                            info_catalog,
                            incremental,
                            shared,
                            shard,
                            dp_seed,
                            noise_draws,
                        ));
                    });
                }
            });
        }
        self.ticks += 1;
        self.dp_noise_draws += noise_draws.load(Ordering::Relaxed);

        // phase 3: collect in registration (slot) order. Errors are
        // noted but not returned yet — phases 4/5 must run even on a
        // failing tick (a persistently failing handle must not leave
        // source mirrors pinned, which would degrade every subsequent
        // ingest append into a copy-on-write rescan of the window).
        let mut out: Vec<(QueryHandle, CoreResult<Outcome>)> = Vec::with_capacity(results.len());
        let mut reset_delta: Vec<usize> = Vec::new();
        let mut global_error: Option<CoreError> = None;
        for (index, (slot, result)) in self.slots.iter().zip(results).enumerate() {
            let Some(reg) = slot else { continue };
            let handle = QueryHandle { index: index as u32, generation: reg.generation };
            if let Some(e) = failed[index].take() {
                out.push((handle, Err(e)));
                continue;
            }
            let Some(result) = result else {
                // a live slot the pool never executed is an invariant
                // violation; report it typed and keep collecting
                out.push((
                    handle,
                    Err(CoreError::Internal(format!("slot {index} was not executed this tick"))),
                ));
                continue;
            };
            if result.is_err() {
                // a failed execution may have consumed part of its
                // delta: drop the handle's incremental state so the
                // next tick rebuilds from clean sources
                reset_delta.push(index);
            }
            out.push((handle, result));
        }
        if isolate {
            for index in reset_delta {
                if let Some(reg) = self.slots[index].as_mut() {
                    reg.delta.reset();
                }
            }
        }

        // phase 4 (serial): harvest freshly compiled plans into the
        // cross-handle pool, consulted by the delta driver's
        // just-in-time seeding (full-rescan mode recompiles per handle
        // and never reads the pool, so it skips the harvest too).
        // Gated on the miss counter, so steady-state ticks (zero
        // compilations) skip it entirely.
        if self.incremental {
            for slot in self.slots.iter_mut().flatten() {
                let misses = chain_plan_stats(&slot.chain).misses;
                if misses == slot.harvested_misses {
                    continue;
                }
                slot.harvested_misses = misses;
                for node in slot.chain.nodes() {
                    for (query, plan) in node.shareable_plans() {
                        let key = (node.name.clone(), engine_plan::ast_key(&query));
                        let list = self.shared.entry(key).or_default();
                        match list.iter_mut().find(|(q, _)| *q == query) {
                            Some(entry) => {
                                if entry.1.fingerprint() != plan.fingerprint() {
                                    entry.1 = plan;
                                }
                            }
                            None => list.push((query, plan)),
                        }
                    }
                }
            }
            if self.shared.values().map(Vec::len).sum::<usize>() > MAX_SHARED_PLANS {
                self.shared.clear();
            }
        }

        // phase 5 (serial): release the handle chains' source mirrors.
        // They are re-mirrored from the source of record at the next
        // tick anyway; holding the column Arcs in between would force
        // the next ingest's append into a copy-on-write rescan of the
        // whole retained window instead of an O(batch) extension.
        for slot in self.slots.iter_mut().flatten() {
            for node in self.chain.nodes() {
                match slot.chain.node_mut(&node.name) {
                    Ok(target) => target.catalog.release_mirrors(&node.catalog),
                    // a handle chain missing a runtime node is an
                    // invariant violation (chains are clones): surface
                    // it as a typed error but keep releasing the other
                    // mirrors, so the runtime degrades one tick
                    // instead of pinning the window
                    Err(_) => {
                        global_error.get_or_insert_with(|| {
                            CoreError::Internal(format!(
                                "handle chain lost node {:?}",
                                node.name
                            ))
                        });
                    }
                }
            }
        }

        // phase 6: the durability group commit — every record buffered
        // since the last commit point (ingest batches, evictions,
        // policy swaps) reaches the OS in one write. It runs on failing
        // ticks too (the buffered records describe state that *was*
        // applied); a failed write keeps the buffer for the next
        // commit point. In isolating mode a commit failure surfaces
        // even when some handle was quarantined — a durability fault is
        // global, a tenant fault is not.
        let any_handle_error = out.iter().any(|(_, r)| r.is_err());
        if self.degraded.is_none() {
            if let Some(d) = self.durability.as_mut() {
                if let Err(e) = d.commit() {
                    // enter degraded mode: pending records (including
                    // any buffered ε-spend) are preserved for the
                    // resume retry, and the tick's results are withheld
                    // — a noisy result must never be released before
                    // its spend reaches the log
                    let e = self.enter_degraded(e);
                    if global_error.is_none() && (isolate || !any_handle_error) {
                        return Err(e);
                    }
                }
            }
        }
        let auto_snapshot = global_error.is_none()
            && self.degraded.is_none()
            && (isolate || !any_handle_error)
            && self.durability.as_mut().is_some_and(|d| {
                d.ticks_since_snapshot += 1;
                d.snapshot_every > 0 && d.ticks_since_snapshot >= d.snapshot_every
            });
        if auto_snapshot {
            self.snapshot()?;
        }

        match global_error {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Aggregate cache/tick counters (see [`RuntimeStats`]). After the
    /// first tick of a steady-state deployment, `plan.hits` grows by
    /// `registered` per tick and `engine.misses` stays flat — the
    /// compile-once contract, asserted by the runtime tests.
    pub fn stats(&self) -> RuntimeStats {
        let mut stats = RuntimeStats {
            registered: self.slots.iter().flatten().count(),
            ticks: self.ticks,
            shared_plans: self.shared.values().map(Vec::len).sum(),
            // saturating as-cast: an infinite or absurd spend pins to
            // u64::MAX instead of poisoning the stats struct's Eq
            dp_epsilon_spent_micro: self
                .ledgers
                .values()
                .map(|l| (l.spent() * 1e6) as u64)
                .fold(0, u64::saturating_add),
            dp_noise_draws: self.dp_noise_draws,
            dp_budget_exhausted: self.dp_budget_exhausted,
            ..RuntimeStats::default()
        };
        for reg in self.slots.iter().flatten() {
            stats.plan.hits += reg.stats.hits;
            stats.plan.misses += reg.stats.misses;
            stats.plan.invalidations += reg.stats.invalidations;
            let engine = chain_plan_stats(&reg.chain);
            stats.engine.hits += engine.hits;
            stats.engine.misses += engine.misses;
            stats.engine.invalidations += engine.invalidations;
        }
        stats
    }

    /// Cache counters and policy version of one handle.
    pub fn handle_stats(&self, handle: QueryHandle) -> CoreResult<HandleStats> {
        let reg = self.resolve(handle)?;
        Ok(HandleStats {
            module: reg.module.clone(),
            policy_version: reg.version,
            plan: reg.stats,
            engine: chain_plan_stats(&reg.chain),
        })
    }

    /// Number of live registered queries.
    pub fn registered(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Borrow the source-of-record chain (to inspect ingested streams;
    /// execution statistics accumulate on the per-handle chains, see
    /// [`Runtime::handle_stats`]).
    pub fn chain(&self) -> &ProcessingChain {
        &self.chain
    }

    /// A merged catalog of every source table — the hypothetical
    /// integrated database `d` of the paper, used for baselines and the
    /// information-gain check.
    pub fn integrated_catalog(&self) -> Catalog {
        let mut merged = Catalog::new();
        for node in self.chain.nodes() {
            for table in node.catalog.table_names() {
                if let Ok(frame) = node.catalog.get(table) {
                    merged.register_or_replace(table, frame.clone());
                }
            }
        }
        merged
    }

    fn resolve(&self, handle: QueryHandle) -> CoreResult<&Registered> {
        self.slots
            .get(handle.index as usize)
            .and_then(Option::as_ref)
            .filter(|reg| reg.generation == handle.generation)
            .ok_or(CoreError::UnknownHandle(handle.id()))
    }
}

impl Drop for Runtime {
    /// A graceful drop is a commit point: whatever the write-ahead log
    /// buffered since the last tick reaches the OS, so only a hard
    /// kill (or power loss inside the OS cache window) can lose the
    /// tail. Errors cannot propagate from here and are ignored — the
    /// log's valid prefix is still consistent.
    fn drop(&mut self) {
        if let Some(d) = self.durability.as_mut() {
            let _ = d.commit();
        }
    }
}

/// Rewrite-and-plan one query under a module policy: preprocess (the
/// policy rewrite), clamp-lower `SUM`/`AVG` arguments under the
/// module's DP config (so the clamp compiles into the normal
/// aggregation path), fragment, and derive the noise plan. The clamped
/// AST flows into every fragment — and therefore into every derived
/// plan-cache key — so toggling DP on a module can never serve a plan
/// built for the other mode.
fn build_plans(
    query: &Query,
    policy: &ModulePolicy,
    options: &ProcessorOptions,
) -> CoreResult<(PreprocessOutcome, FragmentPlan, Option<DpPlan>)> {
    let mut pre = preprocess(query, policy, &options.preprocess)?;
    if let Some(cfg) = &policy.dp {
        dp::lower_clamps(&mut pre.query, cfg);
    }
    let plan = fragment_query(&pre.query)?;
    let dp_plan = policy.dp.as_ref().and_then(|cfg| dp::derive_plan(&plan, cfg));
    Ok((pre, plan, dp_plan))
}

/// One handle's tick: optional information-gain check, then the
/// Figure 2 execution path over the handle's private chain —
/// delta-aware by default, full-rescan when incremental execution is
/// disabled (the equivalence reference).
#[allow(clippy::too_many_arguments)]
fn run_handle(
    reg: &mut Registered,
    options: &ProcessorOptions,
    remainder: Option<&Remainder>,
    info_catalog: Option<&Catalog>,
    incremental: bool,
    shared: &SharedPlans,
    shard: Option<&ShardSpec>,
    dp_seed: u64,
    noise_draws: &AtomicU64,
) -> CoreResult<Outcome> {
    let information_gain = match (info_catalog, options.info_gain_threshold) {
        (Some(catalog), Some(threshold)) => {
            Some(information_gain_check(catalog, &reg.query, &reg.pre.query, threshold)?)
        }
        _ => None,
    };
    let dp = reg.dp.as_ref().filter(|p| p.is_noisy());
    if !incremental {
        // full-rescan reference path; with DP on, the only difference
        // is the noise hook at the aggregation stage's finalize
        let Some(plan) = dp else {
            return execute_pipeline(
                &mut reg.chain,
                reg.pre.clone(),
                reg.plan.clone(),
                information_gain,
                options,
                remainder,
            );
        };
        let stages = assign_to_chain(&reg.plan, &reg.chain, options.assignment)?;
        let mut draws = 0u64;
        let run = reg.chain.run_stages_with(&stages, |i, frame| {
            if i == plan.stage {
                let (noised, n) = paradise_engine::apply_laplace(&frame, &plan.specs, dp_seed);
                draws += n;
                noised
            } else {
                frame
            }
        })?;
        noise_draws.fetch_add(draws, Ordering::Relaxed);
        return assemble_outcome(
            &reg.chain,
            reg.pre.clone(),
            reg.plan.clone(),
            stages,
            run,
            information_gain,
            options,
            remainder,
        );
    }
    let stages = assign_to_chain(&reg.plan, &reg.chain, options.assignment)?;
    let mut draws = 0u64;
    let run = run_stages_delta(
        &mut reg.chain,
        &stages,
        &mut reg.delta,
        shared,
        shard,
        dp.map(|p| (p, dp_seed)),
        &mut draws,
    )?;
    noise_draws.fetch_add(draws, Ordering::Relaxed);
    assemble_outcome(
        &reg.chain,
        reg.pre.clone(),
        reg.plan.clone(),
        stages,
        run,
        information_gain,
        options,
        remainder,
    )
}

/// Sum the compiled-plan cache counters over a chain's nodes.
fn chain_plan_stats(chain: &ProcessingChain) -> engine_plan::PlanCacheStats {
    let mut total = engine_plan::PlanCacheStats::default();
    for node in chain.nodes() {
        let s = node.plan_cache_stats();
        total.hits += s.hits;
        total.misses += s.misses;
        total.invalidations += s.invalidations;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_nodes::SmartRoomSim;
    use paradise_policy::figure4_policy;
    use paradise_sql::parse_query;

    const PAPER_ORIGINAL: &str =
        "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) \
         FROM (SELECT x, y, z, t FROM stream)";

    fn stream(seed: u64, steps: usize) -> Frame {
        let config = paradise_nodes::SmartRoomConfig {
            persons: 10,
            switch_probability: 0.003,
            ..Default::default()
        };
        SmartRoomSim::with_config(seed, config).ubisense_positions(steps)
    }

    fn runtime() -> Runtime {
        let mut rt = Runtime::new(ProcessingChain::apartment())
            .with_policy("ActionFilter", figure4_policy().modules.remove(0));
        rt.install_source("motion-sensor", "stream", stream(42, 500)).unwrap();
        rt
    }

    #[test]
    fn register_requires_a_policy() {
        let mut rt = runtime();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        assert!(matches!(rt.register("Nope", &q), Err(CoreError::NoPolicy(_))));
        assert!(rt.register("ActionFilter", &q).is_ok());
    }

    #[test]
    fn tick_matches_the_one_shot_processor() {
        let mut rt = runtime();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let handle = rt.register("ActionFilter", &q).unwrap();
        let ticked = rt.tick().unwrap();
        assert_eq!(ticked.len(), 1);
        assert_eq!(ticked[0].0, handle);

        let mut processor = crate::Processor::new(ProcessingChain::apartment())
            .with_policy("ActionFilter", figure4_policy().modules.remove(0));
        processor.install_source("motion-sensor", "stream", stream(42, 500)).unwrap();
        let reference = processor.run("ActionFilter", &q).unwrap();
        assert_eq!(ticked[0].1.result, reference.result);
        assert_eq!(ticked[0].1.anonymized_at, reference.anonymized_at);
    }

    #[test]
    fn steady_state_ticks_hit_every_cache() {
        let mut rt = runtime();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        rt.register("ActionFilter", &q).unwrap();
        rt.tick().unwrap();
        let cold = rt.stats();
        assert_eq!(cold.plan, PlanCacheStats { hits: 1, misses: 1, invalidations: 0 });
        assert!(cold.engine.misses >= 4, "first tick compiles every stage: {cold:?}");

        for _ in 0..3 {
            rt.ingest("motion-sensor", "stream", stream(7, 10)).unwrap();
            rt.tick().unwrap();
        }
        let warm = rt.stats();
        assert_eq!(warm.plan.misses, cold.plan.misses, "no re-preprocessing after tick 1");
        assert_eq!(warm.engine.misses, cold.engine.misses, "no recompilation after tick 1");
        assert_eq!(warm.plan.hits, 4);
        assert_eq!(warm.engine.hits, cold.engine.hits + 3 * cold.engine.misses);
        assert_eq!(warm.ticks, 4);
    }

    #[test]
    fn ingest_appends_and_retention_caps() {
        let mut rt = runtime().with_retention(600);
        rt.ingest("motion-sensor", "stream", stream(1, 20)).unwrap();
        let len = rt.chain().node("motion-sensor").unwrap().catalog.get("stream").unwrap().len();
        assert_eq!(len, 600, "5000 + 200 rows capped to the retention window");
        // a mismatched batch is rejected
        let bad = Frame::empty(paradise_engine::Schema::from_pairs(&[(
            "only",
            paradise_engine::DataType::Integer,
        )]));
        assert!(rt.ingest("motion-sensor", "stream", bad).is_err());
        // …and so is a typo'd (uninstalled) stream name: no silent
        // misrouting of batches
        assert!(rt.ingest("motion-sensor", "straem", stream(1, 1)).is_err());
    }

    #[test]
    fn set_policy_invalidates_only_that_module() {
        let mut rt = runtime();
        let mut fig4 = figure4_policy();
        rt.set_policy("Other", fig4.modules.remove(0));
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let affected = rt.register("ActionFilter", &q).unwrap();
        let bystander = rt.register("Other", &q).unwrap();
        rt.tick().unwrap();
        rt.tick().unwrap();

        let v2 = rt.set_policy("ActionFilter", figure4_policy().modules.remove(0));
        rt.tick().unwrap();

        let hit = rt.handle_stats(affected).unwrap();
        assert_eq!(hit.policy_version, v2);
        assert_eq!(hit.plan.invalidations, 1, "policy swap rebuilt the rewrite");
        assert!(hit.engine.invalidations > 0, "stale node plans were purged");

        let clean = rt.handle_stats(bystander).unwrap();
        assert_eq!(clean.plan.invalidations, 0);
        assert_eq!(clean.engine.invalidations, 0);
        assert_eq!(clean.plan.hits, 3, "bystander kept its 100% hit rate");
    }

    #[test]
    fn source_schema_change_invalidates() {
        let mut rt = runtime();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let h = rt.register("ActionFilter", &q).unwrap();
        rt.tick().unwrap();

        let old = rt.chain().node("motion-sensor").unwrap().catalog.get("stream").unwrap().clone();
        let mut schema = old.schema.clone();
        schema.push(paradise_engine::Column::new("w", paradise_engine::DataType::Float));
        let rows: Vec<Vec<paradise_engine::Value>> = old
            .iter_rows()
            .map(|mut r| {
                r.push(paradise_engine::Value::Float(0.0));
                r
            })
            .collect();
        rt.install_source("motion-sensor", "stream", paradise_engine::Frame::new(schema, rows).unwrap())
            .unwrap();
        rt.tick().unwrap();
        let stats = rt.handle_stats(h).unwrap();
        assert_eq!(stats.plan.invalidations, 1, "schema change must invalidate");
    }

    #[test]
    fn failing_policy_swap_keeps_the_tick_atomic() {
        let mut rt = runtime();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let h = rt.register("ActionFilter", &q).unwrap();
        let mut other = figure4_policy().modules.remove(0);
        other.module_id = "Other".into();
        rt.set_policy("Other", other);
        let bystander = rt.register("Other", &parse_query("SELECT x, y, z, t FROM stream").unwrap()).unwrap();
        rt.tick().unwrap();
        let before = rt.stats();

        // swap in a policy that denies every attribute of the
        // registered query: the rewrite must fail…
        let mut deny_all = paradise_policy::ModulePolicy::new("ActionFilter");
        for attr in ["x", "y", "z", "t"] {
            deny_all.attributes.push(paradise_policy::AttributeRule::denied(attr));
        }
        rt.set_policy("ActionFilter", deny_all);
        assert!(matches!(rt.tick(), Err(CoreError::QueryDenied(_))));
        // …atomically: repeated failing ticks move no counters, for the
        // rejected handle or the bystander
        assert!(matches!(rt.tick(), Err(CoreError::QueryDenied(_))));
        assert_eq!(rt.stats().plan, before.plan);
        assert_eq!(rt.stats().engine, before.engine);

        // recovery: remove the rejected handle, the bystander resumes
        rt.remove_query(h).unwrap();
        let ticked = rt.tick().unwrap();
        assert_eq!(ticked.len(), 1);
        assert_eq!(ticked[0].0, bystander);
        // (recovery by re-installing a compatible policy works too)
        let h2 = rt.register("Other", &q).unwrap();
        assert!(rt.tick().is_ok());
        assert!(rt.handle_stats(h2).is_ok());
    }

    #[test]
    fn remove_query_retires_the_handle() {
        let mut rt = runtime();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let a = rt.register("ActionFilter", &q).unwrap();
        let b = rt.register("ActionFilter", &q).unwrap();
        assert_eq!(rt.registered(), 2);
        rt.remove_query(a).unwrap();
        assert_eq!(rt.registered(), 1);
        assert!(matches!(rt.remove_query(a), Err(CoreError::UnknownHandle(_))));
        assert!(matches!(rt.handle_stats(a), Err(CoreError::UnknownHandle(_))));

        // the freed slot is reused under a fresh generation: the old
        // handle stays dead
        let c = rt.register("ActionFilter", &q).unwrap();
        assert_ne!(a, c);
        assert!(rt.handle_stats(c).is_ok());
        assert!(matches!(rt.handle_stats(a), Err(CoreError::UnknownHandle(_))));

        let ticked = rt.tick().unwrap();
        let handles: Vec<QueryHandle> = ticked.iter().map(|(h, _)| *h).collect();
        assert_eq!(handles, vec![c, b], "slot order is registration order");
    }

    #[test]
    fn multi_query_results_keep_registration_order() {
        let mut rt = runtime();
        let queries = [
            PAPER_ORIGINAL,
            "SELECT x, y, z, t FROM stream",
            "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) \
             FROM (SELECT x, y, z, t FROM stream) LIMIT 7",
        ];
        let mut handles = Vec::new();
        for q in queries {
            handles.push(rt.register("ActionFilter", &parse_query(q).unwrap()).unwrap());
        }
        let ticked = rt.tick().unwrap();
        let got: Vec<QueryHandle> = ticked.iter().map(|(h, _)| *h).collect();
        assert_eq!(got, handles);
        assert!(ticked[2].1.result.len() <= 7, "LIMIT survives the pipeline");
    }
}
