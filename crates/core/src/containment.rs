//! Conjunctive-query containment (the paper's declared open problem,
//! §4.1/§5): decide whether a privacy-violating query `Q↓` can still be
//! answered from the reduced data `d'` — "this open problem results in a
//! query containment problem".
//!
//! We implement the classical CQ containment test: `Q1 ⊆ Q2` iff there is
//! a homomorphism from `Q2` to `Q1` (Chandra–Merkurjev/Chandra–Merlin),
//! found by backtracking over atom mappings on the canonical ("frozen")
//! database of `Q1`. SPJ queries with equality predicates convert to CQs
//! via [`ConjunctiveQuery::from_query`] given the relation schemas.

use std::collections::{BTreeMap, HashMap};

use paradise_sql::ast::{BinaryOp, Expr, Literal, Query, SelectItem, TableRef};

use crate::error::{CoreError, CoreResult};

/// A term of a conjunctive query: variable or constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Named variable.
    Var(String),
    /// Constant (frozen literal).
    Const(Literal),
}

impl Term {
    /// Is this term a variable (vs. a constant)?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

/// One body atom `R(t1, …, tn)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Relation name (case-folded).
    pub relation: String,
    /// Positional arguments.
    pub args: Vec<Term>,
}

/// A conjunctive query `head(x̄) :- body`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConjunctiveQuery {
    /// Head (answer) terms.
    pub head: Vec<Term>,
    /// Body atoms.
    pub atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Convert a flat SPJ query to a CQ.
    ///
    /// Requirements: single block (no nesting/unions/aggregates), named
    /// base tables (joins allowed), projection of plain columns, WHERE
    /// restricted to conjunctions of `col = col` and `col = const`.
    /// `schemas` maps relation name → ordered column list.
    pub fn from_query(
        query: &Query,
        schemas: &HashMap<String, Vec<String>>,
    ) -> CoreResult<ConjunctiveQuery> {
        if !query.unions.is_empty() || !query.group_by.is_empty() || query.having.is_some() {
            return Err(CoreError::UnsupportedQuery(
                "CQ conversion needs a plain SPJ query".into(),
            ));
        }
        // collect (occurrence alias, relation) pairs
        let mut occurrences: Vec<(String, String)> = Vec::new();
        let mut join_predicates: Vec<Expr> = Vec::new();
        fn walk_tables(
            t: &TableRef,
            occ: &mut Vec<(String, String)>,
            preds: &mut Vec<Expr>,
        ) -> CoreResult<()> {
            match t {
                TableRef::Table { name, alias } => {
                    let visible = alias.clone().unwrap_or_else(|| name.clone());
                    occ.push((visible.to_ascii_lowercase(), name.to_ascii_lowercase()));
                    Ok(())
                }
                TableRef::Join { left, right, on, .. } => {
                    walk_tables(left, occ, preds)?;
                    walk_tables(right, occ, preds)?;
                    if let Some(on) = on {
                        preds.push(on.clone());
                    }
                    Ok(())
                }
                TableRef::Subquery { .. } => Err(CoreError::UnsupportedQuery(
                    "CQ conversion does not handle derived tables".into(),
                )),
            }
        }
        match &query.from {
            Some(t) => walk_tables(t, &mut occurrences, &mut join_predicates)?,
            None => {
                return Err(CoreError::UnsupportedQuery("CQ needs a FROM clause".into()))
            }
        }

        // variable per (occurrence, column); union-find for equalities
        let mut var_of: BTreeMap<(String, String), String> = BTreeMap::new();
        let mut atoms = Vec::new();
        for (i, (visible, relation)) in occurrences.iter().enumerate() {
            let columns = schemas.get(relation).ok_or_else(|| {
                CoreError::UnsupportedQuery(format!("unknown relation {relation:?} in CQ schemas"))
            })?;
            let args = columns
                .iter()
                .map(|c| {
                    let var = format!("v{}_{}", i, c.to_ascii_lowercase());
                    var_of.insert((visible.clone(), c.to_ascii_lowercase()), var.clone());
                    Term::Var(var)
                })
                .collect();
            atoms.push(Atom { relation: relation.clone(), args });
        }

        let resolve = |col: &paradise_sql::ast::ColumnRef,
                       var_of: &BTreeMap<(String, String), String>|
         -> CoreResult<String> {
            let lc = col.name.to_ascii_lowercase();
            match &col.qualifier {
                Some(q) => var_of
                    .get(&(q.to_ascii_lowercase(), lc))
                    .cloned()
                    .ok_or_else(|| {
                        CoreError::UnsupportedQuery(format!("unknown column {q}.{}", col.name))
                    }),
                None => {
                    let matches: Vec<&String> = var_of
                        .iter()
                        .filter(|((_, c), _)| *c == lc)
                        .map(|(_, v)| v)
                        .collect();
                    match matches.len() {
                        1 => Ok(matches[0].clone()),
                        0 => Err(CoreError::UnsupportedQuery(format!(
                            "unknown column {}",
                            col.name
                        ))),
                        _ => Err(CoreError::UnsupportedQuery(format!(
                            "ambiguous column {} in CQ conversion",
                            col.name
                        ))),
                    }
                }
            }
        };

        // substitution map from equality predicates
        let mut subst: HashMap<String, Term> = HashMap::new();
        let mut all_preds: Vec<&Expr> = join_predicates.iter().collect();
        let where_conjuncts: Vec<&Expr> = query
            .where_clause
            .as_ref()
            .map(|w| w.conjuncts())
            .unwrap_or_default();
        all_preds.extend(where_conjuncts);

        fn walk_term(t: &Term, subst: &HashMap<String, Term>) -> Term {
            match t {
                Term::Var(v) => match subst.get(v) {
                    Some(next) => walk_term(next, subst),
                    None => t.clone(),
                },
                c => c.clone(),
            }
        }

        for pred in all_preds.iter().flat_map(|p| p.conjuncts()) {
            let Expr::Binary { left, op: BinaryOp::Eq, right } = pred else {
                return Err(CoreError::UnsupportedQuery(format!(
                    "CQ conversion only handles equality predicates, found {pred}"
                )));
            };
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column(a), Expr::Column(b)) => {
                    let va = resolve(a, &var_of)?;
                    let vb = resolve(b, &var_of)?;
                    let ra = walk_term(&Term::Var(va), &subst);
                    let rb = walk_term(&Term::Var(vb), &subst);
                    match (&ra, &rb) {
                        (Term::Var(v), other) | (other, Term::Var(v)) => {
                            subst.insert(v.clone(), other.clone());
                        }
                        (Term::Const(a), Term::Const(b)) if a.same_as(b) => {}
                        _ => {
                            return Err(CoreError::UnsupportedQuery(
                                "contradictory constants in CQ".into(),
                            ))
                        }
                    }
                }
                (Expr::Column(c), Expr::Literal(l)) | (Expr::Literal(l), Expr::Column(c)) => {
                    let v = resolve(c, &var_of)?;
                    let r = walk_term(&Term::Var(v), &subst);
                    match r {
                        Term::Var(v) => {
                            subst.insert(v, Term::Const(l.clone()));
                        }
                        Term::Const(existing) if existing.same_as(l) => {}
                        _ => {
                            return Err(CoreError::UnsupportedQuery(
                                "contradictory constants in CQ".into(),
                            ))
                        }
                    }
                }
                _ => {
                    return Err(CoreError::UnsupportedQuery(format!(
                        "CQ conversion only handles column/constant equalities, found {pred}"
                    )))
                }
            }
        }

        // apply substitution to atoms
        for atom in &mut atoms {
            for arg in &mut atom.args {
                *arg = walk_term(arg, &subst);
            }
        }

        // head
        let mut head = Vec::new();
        for item in &query.items {
            match item {
                SelectItem::Wildcard => {
                    for atom in &atoms {
                        head.extend(atom.args.iter().cloned());
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let q = q.to_ascii_lowercase();
                    for ((visible, _), var) in &var_of {
                        if *visible == q {
                            head.push(walk_term(&Term::Var(var.clone()), &subst));
                        }
                    }
                }
                SelectItem::Expr { expr: Expr::Column(c), .. } => {
                    let v = resolve(c, &var_of)?;
                    head.push(walk_term(&Term::Var(v), &subst));
                }
                SelectItem::Expr { expr, .. } => {
                    return Err(CoreError::UnsupportedQuery(format!(
                        "CQ heads must be plain columns, found {expr}"
                    )))
                }
            }
        }
        Ok(ConjunctiveQuery { head, atoms })
    }

    /// Is `self ⊆ other` (every answer of `self` is an answer of `other`
    /// on every database)? Classical test: homomorphism from `other`
    /// into `self`'s frozen body mapping `other`'s head onto `self`'s.
    pub fn is_contained_in(&self, other: &ConjunctiveQuery) -> bool {
        if self.head.len() != other.head.len() {
            return false;
        }
        let mut mapping: HashMap<String, Term> = HashMap::new();
        homomorphism(&other.atoms, 0, self, other, &mut mapping)
    }

    /// Are the two queries equivalent (mutual containment)?
    pub fn equivalent(&self, other: &ConjunctiveQuery) -> bool {
        self.is_contained_in(other) && other.is_contained_in(self)
    }
}

fn unify(term: &Term, target: &Term, mapping: &mut HashMap<String, Term>) -> bool {
    match term {
        Term::Const(c) => match target {
            Term::Const(d) => c.same_as(d),
            // a constant in the container cannot map to a frozen variable
            Term::Var(_) => false,
        },
        Term::Var(v) => match mapping.get(v) {
            Some(bound) => terms_equal(bound, target),
            None => {
                mapping.insert(v.clone(), target.clone());
                true
            }
        },
    }
}

fn terms_equal(a: &Term, b: &Term) -> bool {
    match (a, b) {
        (Term::Var(x), Term::Var(y)) => x == y,
        (Term::Const(x), Term::Const(y)) => x.same_as(y),
        _ => false,
    }
}

/// Backtracking search: map atoms of `container` (Q2) onto atoms of
/// `contained` (Q1, frozen), then check the head condition.
fn homomorphism(
    container_atoms: &[Atom],
    index: usize,
    contained: &ConjunctiveQuery,
    container: &ConjunctiveQuery,
    mapping: &mut HashMap<String, Term>,
) -> bool {
    if index == container_atoms.len() {
        // head condition: container head maps exactly onto contained head
        return container
            .head
            .iter()
            .zip(&contained.head)
            .all(|(ch, th)| match ch {
                Term::Const(c) => matches!(th, Term::Const(d) if c.same_as(d)),
                Term::Var(v) => match mapping.get(v) {
                    Some(bound) => terms_equal(bound, th),
                    None => {
                        // unconstrained head var: bind it now
                        mapping.insert(v.clone(), th.clone());
                        true
                    }
                },
            });
    }
    let atom = &container_atoms[index];
    for candidate in &contained.atoms {
        if candidate.relation != atom.relation || candidate.args.len() != atom.args.len() {
            continue;
        }
        let snapshot = mapping.clone();
        let ok = atom
            .args
            .iter()
            .zip(&candidate.args)
            .all(|(t, target)| unify(t, target, mapping));
        if ok && homomorphism(container_atoms, index + 1, contained, container, mapping) {
            return true;
        }
        *mapping = snapshot;
    }
    false
}

/// Privacy application: can the attack query `attack` be answered given
/// that only `revealed` is available? We flag danger when
/// `attack ⊆ revealed` (the revealed view subsumes the attack — the
/// provider can compute the attack's answers from what it got), or the
/// two are equivalent.
///
/// This is the *containment* fragment of the open problem; full
/// view-based rewriting is future work in the paper as well.
pub fn attack_answerable(revealed: &ConjunctiveQuery, attack: &ConjunctiveQuery) -> bool {
    attack.is_contained_in(revealed) && head_covered(revealed, attack)
}

/// Every head term of `attack` must appear among `revealed`'s head terms
/// under some homomorphism — approximated structurally: an attack head
/// position is covered when `revealed` exposes at least as many head
/// terms. (With equal arity, `is_contained_in` already enforces the
/// positional mapping.)
fn head_covered(revealed: &ConjunctiveQuery, attack: &ConjunctiveQuery) -> bool {
    attack.head.len() <= revealed.head.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_sql::parse_query;

    fn schemas() -> HashMap<String, Vec<String>> {
        let mut m = HashMap::new();
        m.insert(
            "d".to_string(),
            vec!["x".to_string(), "y".to_string(), "z".to_string(), "t".to_string()],
        );
        m.insert("r".to_string(), vec!["a".to_string(), "b".to_string()]);
        m
    }

    fn cq(sql: &str) -> ConjunctiveQuery {
        ConjunctiveQuery::from_query(&parse_query(sql).unwrap(), &schemas()).unwrap()
    }

    #[test]
    fn identical_queries_are_equivalent() {
        let q1 = cq("SELECT x, y FROM d WHERE z = 1");
        let q2 = cq("SELECT x, y FROM d WHERE z = 1");
        assert!(q1.equivalent(&q2));
    }

    #[test]
    fn more_selective_is_contained() {
        // Q1 selects z=1 rows; Q2 selects all rows: Q1 ⊆ Q2
        let q1 = cq("SELECT x, y FROM d WHERE z = 1");
        let q2 = cq("SELECT x, y FROM d");
        assert!(q1.is_contained_in(&q2));
        assert!(!q2.is_contained_in(&q1));
    }

    #[test]
    fn different_constants_not_contained() {
        let q1 = cq("SELECT x FROM d WHERE z = 1");
        let q2 = cq("SELECT x FROM d WHERE z = 2");
        assert!(!q1.is_contained_in(&q2));
        assert!(!q2.is_contained_in(&q1));
    }

    #[test]
    fn join_self_containment() {
        // Q2 = d ⋈ d on x: Q1 (single copy with x=x trivially) ⊆ Q2
        let q1 = cq("SELECT x FROM d");
        let q2 = cq("SELECT d1.x FROM d d1 JOIN d d2 ON d1.x = d2.x");
        // the self-join is redundant: both are equivalent
        assert!(q1.is_contained_in(&q2));
        assert!(q2.is_contained_in(&q1));
    }

    #[test]
    fn head_arity_must_match() {
        let q1 = cq("SELECT x FROM d");
        let q2 = cq("SELECT x, y FROM d");
        assert!(!q1.is_contained_in(&q2));
        assert!(!q2.is_contained_in(&q1));
    }

    #[test]
    fn variable_equality_constraints_respected() {
        // Q1 requires x=y, Q2 doesn't: Q1 ⊆ Q2 but not vice versa
        let q1 = cq("SELECT x FROM d WHERE x = y");
        let q2 = cq("SELECT x FROM d");
        assert!(q1.is_contained_in(&q2));
        assert!(!q2.is_contained_in(&q1));
    }

    #[test]
    fn cross_relation_containment_fails() {
        let q1 = cq("SELECT x FROM d");
        let q2 = cq("SELECT a FROM r");
        assert!(!q1.is_contained_in(&q2));
    }

    #[test]
    fn attack_detection() {
        // revealed: positions with z<? — modelled here with equality-only
        // CQs: revealed view exposes (x, y); attack asks for (x, y) of
        // z=1 rows → answerable (attack ⊆ revealed)
        let revealed = cq("SELECT x, y FROM d");
        let attack = cq("SELECT x, y FROM d WHERE z = 1");
        assert!(attack_answerable(&revealed, &attack));
        // reversed: revealed only z=1 rows, attack wants everything → no
        let revealed2 = cq("SELECT x, y FROM d WHERE z = 1");
        let attack2 = cq("SELECT x, y FROM d");
        assert!(!attack_answerable(&revealed2, &attack2));
    }

    #[test]
    fn conversion_rejects_non_spj() {
        let q = parse_query("SELECT AVG(z) FROM d GROUP BY x").unwrap();
        assert!(ConjunctiveQuery::from_query(&q, &schemas()).is_err());
        let q2 = parse_query("SELECT x FROM d WHERE z < 2").unwrap();
        assert!(ConjunctiveQuery::from_query(&q2, &schemas()).is_err());
    }

    #[test]
    fn conversion_handles_constants_and_wildcards() {
        let q = cq("SELECT * FROM d WHERE x = 5");
        assert_eq!(q.head.len(), 4);
        assert!(q.atoms[0].args[0] == Term::Const(Literal::Integer(5)));
    }

    #[test]
    fn unknown_relation_is_error() {
        let q = parse_query("SELECT q FROM unknown_rel").unwrap();
        assert!(ConjunctiveQuery::from_query(&q, &schemas()).is_err());
    }

    #[test]
    fn join_condition_unifies_variables() {
        let q = cq("SELECT d1.x FROM d d1 JOIN d d2 ON d1.t = d2.t WHERE d2.z = 3");
        // both atoms share the t variable and one has z bound to 3
        let t1 = &q.atoms[0].args[3];
        let t2 = &q.atoms[1].args[3];
        assert_eq!(t1, t2);
        assert_eq!(q.atoms[1].args[2], Term::Const(Literal::Integer(3)));
        assert!(q.atoms[0].args[2].is_var());
    }
}
