//! Vertical fragmentation of queries (paper §4).
//!
//! A (rewritten) query `Q` is fragmented into subqueries `Q1 … Qj` plus a
//! remainder `Qδ`, such that maximal parts execute as close to the data
//! source as possible:
//!
//! * the **sensor** receives `SELECT * FROM stream [WHERE attr⊙const]` —
//!   it cannot project and only compares attributes against constants;
//! * an **appliance** receives the projection and the attribute↔attribute
//!   part of the `WHERE` clause;
//! * a second appliance (media center) receives the grouping/aggregation
//!   part;
//! * the **PC / local server** receives window functions and everything
//!   SQL-92;
//! * the **cloud** receives whatever remains (UDFs, and the non-SQL ML
//!   remainder handled by [`crate::remainder`]).

use paradise_nodes::{Capability, Level, Node, ProcessingChain, Stage};
use paradise_sql::analysis::{
    block_features, expr_attributes, split_conjuncts_by_shape, SqlFeature,
};
use paradise_sql::ast::{
    ColumnRef, Expr, Query, SelectItem, TableRef,
};

use crate::error::{CoreError, CoreResult};

/// One fragment of the vertical fragmentation, bottom-up.
#[derive(Debug, Clone, PartialEq)]
pub struct Fragment {
    /// The fragment query (flat: reads exactly one input table).
    pub query: Query,
    /// Minimal level (by default capability profiles) able to run it.
    pub min_level: Level,
    /// Name of the input relation the fragment reads.
    pub input_table: String,
    /// Name under which its result is published for the next fragment.
    pub publish_as: String,
    /// Canonical SQL of `query`, rendered once at fragmentation time
    /// (and therefore cached with the plan): per-tick stage execution
    /// reports it without re-rendering the AST.
    pub sql: String,
}

/// The full fragmentation plan `Q → Q1 … Qj, Qδ`.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentPlan {
    /// Fragments bottom-up (`Q1` first).
    pub fragments: Vec<Fragment>,
    /// Features that force work to stay at the top (UDF usage etc.),
    /// rendered for reporting; empty when everything is SQL-able.
    pub remainder_reasons: Vec<String>,
}

impl FragmentPlan {
    /// The name of the final result relation (the paper's `d'`).
    pub fn result_table(&self) -> &str {
        self.fragments.last().map(|f| f.publish_as.as_str()).unwrap_or("dprime")
    }

    /// Render the plan for display: one line per fragment.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for f in &self.fragments {
            out.push_str(&format!(
                "{:>12} [{}]: {}\n",
                f.publish_as,
                f.min_level.paper_name(),
                f.query
            ));
        }
        out
    }
}

/// How fragments map onto chain nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignmentPolicy {
    /// Every fragment on its own node, strictly ascending (the paper's
    /// Figure 3 picture: sensor → appliance → media center → server).
    #[default]
    Spread,
    /// Reuse the lowest capable node; multiple fragments may stack on
    /// one node.
    Stack,
}

/// Fragment a (already policy-rewritten) query.
///
/// The query must be a chain of nested `SELECT` blocks (the shape the
/// paper's use case has). Joins inside a block are kept within that
/// block's fragment.
pub fn fragment_query(query: &Query) -> CoreResult<FragmentPlan> {
    if !query.unions.is_empty() {
        return Err(CoreError::UnsupportedQuery(
            "UNION queries are executed unfragmented at the PC level".into(),
        ));
    }
    // Collect the block chain outermost → innermost.
    let mut blocks: Vec<&Query> = vec![query];
    let mut current = query;
    while let Some(TableRef::Subquery { query: inner, .. }) = &current.from {
        blocks.push(inner);
        current = inner;
    }
    let innermost = *blocks.last().expect("at least one block");
    let base_table = match &innermost.from {
        Some(TableRef::Table { name, .. }) => name.clone(),
        Some(TableRef::Join { .. }) => {
            // join at the source: the whole innermost block is one
            // appliance-level fragment; no sensor split
            String::new()
        }
        None => String::new(),
        Some(TableRef::Subquery { .. }) => unreachable!("descended past subqueries"),
    };

    let mut fragments: Vec<Fragment> = Vec::new();
    let mut remainder_reasons: Vec<String> = Vec::new();
    let mut table_counter = 0usize;
    let mut next_table = |counter: &mut usize| -> String {
        *counter += 1;
        format!("d{counter}")
    };

    // ----- innermost block: sensor / projection / aggregation split -----
    if !base_table.is_empty() {
        split_innermost(
            innermost,
            &base_table,
            &mut fragments,
            &mut table_counter,
            &mut next_table,
        )?;
    } else {
        // constant query or join-rooted block: single fragment
        let publish = next_table(&mut table_counter);
        let mut q = innermost.clone();
        q.unions.clear();
        fragments.push(make_fragment(q, innermost_input_name(innermost), publish));
    }

    // ----- outer blocks, inside-out -----
    for block in blocks.iter().rev().skip(1) {
        let input = fragments.last().expect("inner fragments exist").publish_as.clone();
        let publish = next_table(&mut table_counter);
        let mut q = (*block).clone();
        q.from = Some(TableRef::Table { name: input.clone(), alias: None });
        let features = block_features(&q);
        if features.contains(SqlFeature::UserDefinedFunctions) {
            remainder_reasons.push(format!(
                "block `{q}` calls user-defined functions — cloud remainder"
            ));
        }
        fragments.push(make_fragment(q, input, publish));
    }

    // rename the last fragment's output to the paper's d'
    if let Some(last) = fragments.last_mut() {
        last.publish_as = "dprime".to_string();
    }
    Ok(FragmentPlan { fragments, remainder_reasons })
}

fn innermost_input_name(block: &Query) -> String {
    match &block.from {
        Some(t) => t.base_tables().first().map(|s| s.to_string()).unwrap_or_default(),
        None => String::new(),
    }
}

/// Split the innermost block into up to three fragments:
/// sensor scan+const-filter, projection+attr-filter, aggregation.
fn split_innermost(
    block: &Query,
    base_table: &str,
    fragments: &mut Vec<Fragment>,
    counter: &mut usize,
    next_table: &mut dyn FnMut(&mut usize) -> String,
) -> CoreResult<()> {
    let split = split_conjuncts_by_shape(block.where_clause.as_ref());

    // 1. sensor fragment: SELECT * FROM base [WHERE const-conjuncts]
    let sensor_publish = next_table(counter);
    let sensor_query = Query {
        items: vec![SelectItem::Wildcard],
        from: Some(TableRef::Table { name: base_table.to_string(), alias: None }),
        where_clause: Expr::conjoin(split.attr_const.clone()),
        ..Query::default()
    };
    fragments.push(make_fragment(sensor_query, base_table.to_string(), sensor_publish.clone()));

    let aggregating = !block.group_by.is_empty() || block.having.is_some();

    // 2. projection fragment: needed attributes + attr-attr/complex filters
    let mut middle_filters = split.attr_attr.clone();
    middle_filters.extend(split.complex.clone());
    let needed = needed_attributes(block);
    let has_projection = !block.has_wildcard() && !needed.is_empty();
    let needs_middle = has_projection || !middle_filters.is_empty();

    let mut upstream = sensor_publish;
    if needs_middle {
        let publish = next_table(counter);
        let items: Vec<SelectItem> = if has_projection {
            needed
                .iter()
                .map(|a| SelectItem::expr(Expr::Column(ColumnRef::bare(a.clone()))))
                .collect()
        } else {
            vec![SelectItem::Wildcard]
        };
        let mut q = Query {
            items,
            from: Some(TableRef::Table { name: upstream.clone(), alias: None }),
            where_clause: Expr::conjoin(middle_filters),
            ..Query::default()
        };
        if !aggregating {
            // this is the block's final shape: restore its real items
            q.items = block.items.clone();
            q.distinct = block.distinct;
            q.order_by = block.order_by.clone();
            q.limit = block.limit;
            q.offset = block.offset;
        }
        fragments.push(make_fragment(q, upstream, publish.clone()));
        upstream = publish;
    }

    // 3. aggregation fragment
    if aggregating {
        let publish = next_table(counter);
        let q = Query {
            distinct: block.distinct,
            items: block.items.clone(),
            from: Some(TableRef::Table { name: upstream.clone(), alias: None }),
            where_clause: None,
            group_by: block.group_by.clone(),
            having: block.having.clone(),
            order_by: block.order_by.clone(),
            limit: block.limit,
            offset: block.offset,
            unions: Vec::new(),
        };
        fragments.push(make_fragment(q, upstream, publish));
    } else if !needs_middle {
        // sensor output IS the block result apart from projection the
        // sensor cannot do; when the block projects nothing specific
        // (SELECT *), the sensor fragment suffices.
        if block.distinct || !block.order_by.is_empty() || block.limit.is_some() {
            let publish = next_table(counter);
            let q = Query {
                distinct: block.distinct,
                items: vec![SelectItem::Wildcard],
                from: Some(TableRef::Table { name: upstream.clone(), alias: None }),
                order_by: block.order_by.clone(),
                limit: block.limit,
                offset: block.offset,
                ..Query::default()
            };
            fragments.push(make_fragment(q, upstream, publish));
        }
    }
    Ok(())
}

/// Attributes the block needs from below: everything referenced in its
/// items, grouping keys, HAVING and ORDER BY — in first-appearance order.
fn needed_attributes(block: &Query) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    let push_all = |expr: &Expr, out: &mut Vec<String>| {
        for a in expr_attributes(expr) {
            if !out.iter().any(|x| x.eq_ignore_ascii_case(&a)) {
                out.push(a);
            }
        }
    };
    // preserve projection order first (x, y, z, t in the paper)
    for item in &block.items {
        if let SelectItem::Expr { expr, .. } = item {
            push_all(expr, &mut out);
        }
    }
    for g in &block.group_by {
        push_all(g, &mut out);
    }
    if let Some(h) = &block.having {
        push_all(h, &mut out);
    }
    for o in &block.order_by {
        push_all(&o.expr, &mut out);
    }
    out
}

fn make_fragment(query: Query, input_table: String, publish_as: String) -> Fragment {
    let min_level = minimal_level(&query);
    let sql = query.to_string();
    Fragment { query, min_level, input_table, publish_as, sql }
}

/// The lowest level whose default capability can run this fragment.
pub fn minimal_level(query: &Query) -> Level {
    let features = block_features(query);
    for level in Level::BOTTOM_UP {
        if Capability::for_level(*level).supports(&features) {
            return *level;
        }
    }
    Level::Cloud
}

/// Map a plan onto a concrete chain, producing executable stages.
pub fn assign_to_chain(
    plan: &FragmentPlan,
    chain: &ProcessingChain,
    policy: AssignmentPolicy,
) -> CoreResult<Vec<Stage>> {
    let nodes = chain.nodes();
    let mut stages = Vec::with_capacity(plan.fragments.len());
    let mut cursor = 0usize;
    for (i, fragment) in plan.fragments.iter().enumerate() {
        let start = cursor;
        let found = nodes[start..]
            .iter()
            .position(|n| n.can_execute(&fragment.query))
            .map(|offset| start + offset);
        let Some(index) = found else {
            let missing = nodes
                .last()
                .map(|n: &Node| n.capability.missing(&block_features(&fragment.query)))
                .unwrap_or_default();
            return Err(CoreError::Node(paradise_nodes::NodeError::CapabilityViolation {
                node: nodes.last().map(|n| n.name.clone()).unwrap_or_default(),
                missing,
            }));
        };
        stages.push(Stage {
            node: nodes[index].name.clone(),
            fragment: fragment.query.clone(),
            publish_as: fragment.publish_as.clone(),
            sql: fragment.sql.clone(),
        });
        cursor = match policy {
            AssignmentPolicy::Spread => {
                // next fragment on a strictly later node when possible;
                // stay on the last node if we ran out
                if i + 1 < plan.fragments.len() && index + 1 < nodes.len() {
                    index + 1
                } else {
                    index
                }
            }
            AssignmentPolicy::Stack => index,
        };
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_sql::parse_query;

    /// The paper's rewritten query (§4.2) — input to fragmentation.
    const PAPER_REWRITTEN: &str =
        "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) \
         FROM (SELECT x, y, AVG(z) AS zAVG, t FROM dsource \
         WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 100)";

    #[test]
    fn reproduces_the_papers_four_fragments() {
        let q = parse_query(PAPER_REWRITTEN).unwrap();
        let plan = fragment_query(&q).unwrap();
        assert_eq!(plan.fragments.len(), 4, "{}", plan.describe());

        let sqls: Vec<String> =
            plan.fragments.iter().map(|f| f.query.to_string()).collect();
        assert_eq!(sqls[0], "SELECT * FROM dsource WHERE z < 2");
        assert_eq!(sqls[1], "SELECT x, y, z, t FROM d1 WHERE x > y");
        assert_eq!(
            sqls[2],
            "SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y HAVING SUM(z) > 100"
        );
        assert_eq!(
            sqls[3],
            "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) FROM d3"
        );

        let levels: Vec<Level> = plan.fragments.iter().map(|f| f.min_level).collect();
        assert_eq!(
            levels,
            vec![Level::Sensor, Level::Appliance, Level::Appliance, Level::Pc]
        );
        assert_eq!(plan.result_table(), "dprime");
        assert!(plan.remainder_reasons.is_empty());
    }

    #[test]
    fn assigns_to_apartment_chain_spread() {
        let q = parse_query(PAPER_REWRITTEN).unwrap();
        let plan = fragment_query(&q).unwrap();
        let chain = ProcessingChain::apartment();
        let stages = assign_to_chain(&plan, &chain, AssignmentPolicy::Spread).unwrap();
        let nodes: Vec<&str> = stages.iter().map(|s| s.node.as_str()).collect();
        assert_eq!(
            nodes,
            vec!["motion-sensor", "appliance", "media-center", "local-server"]
        );
    }

    #[test]
    fn assigns_to_apartment_chain_stack() {
        let q = parse_query(PAPER_REWRITTEN).unwrap();
        let plan = fragment_query(&q).unwrap();
        let chain = ProcessingChain::apartment();
        let stages = assign_to_chain(&plan, &chain, AssignmentPolicy::Stack).unwrap();
        let nodes: Vec<&str> = stages.iter().map(|s| s.node.as_str()).collect();
        // aggregation stacks on the first appliance
        assert_eq!(
            nodes,
            vec!["motion-sensor", "appliance", "appliance", "local-server"]
        );
    }

    #[test]
    fn pure_sensor_query_is_one_fragment() {
        let q = parse_query("SELECT * FROM stream WHERE z < 2").unwrap();
        let plan = fragment_query(&q).unwrap();
        assert_eq!(plan.fragments.len(), 1);
        assert_eq!(plan.fragments[0].min_level, Level::Sensor);
        assert_eq!(plan.fragments[0].query.to_string(), "SELECT * FROM stream WHERE z < 2");
        assert_eq!(plan.result_table(), "dprime");
    }

    #[test]
    fn projection_only_query_gets_sensor_plus_appliance() {
        let q = parse_query("SELECT x, t FROM stream WHERE z < 2 AND x > y").unwrap();
        let plan = fragment_query(&q).unwrap();
        assert_eq!(plan.fragments.len(), 2, "{}", plan.describe());
        assert_eq!(plan.fragments[0].query.to_string(), "SELECT * FROM stream WHERE z < 2");
        assert_eq!(plan.fragments[1].query.to_string(), "SELECT x, t FROM d1 WHERE x > y");
        assert_eq!(plan.fragments[1].min_level, Level::Appliance);
    }

    #[test]
    fn aggregation_without_attr_filters() {
        let q = parse_query("SELECT x, AVG(z) AS za FROM stream GROUP BY x").unwrap();
        let plan = fragment_query(&q).unwrap();
        // sensor scan, projection of needed columns, aggregation
        assert_eq!(plan.fragments.len(), 3, "{}", plan.describe());
        assert_eq!(plan.fragments[0].query.to_string(), "SELECT * FROM stream");
        assert_eq!(plan.fragments[1].query.to_string(), "SELECT x, z FROM d1");
        assert_eq!(
            plan.fragments[2].query.to_string(),
            "SELECT x, AVG(z) AS za FROM d2 GROUP BY x"
        );
    }

    #[test]
    fn order_limit_stay_with_final_block_fragment() {
        let q = parse_query("SELECT x, t FROM stream WHERE z < 1 ORDER BY t DESC LIMIT 5")
            .unwrap();
        let plan = fragment_query(&q).unwrap();
        let last = plan.fragments.last().unwrap();
        assert!(last.query.to_string().contains("ORDER BY t DESC LIMIT 5"));
        // sensor fragment must NOT carry the limit
        assert!(!plan.fragments[0].query.to_string().contains("LIMIT"));
    }

    #[test]
    fn wildcard_with_attr_filter() {
        let q = parse_query("SELECT * FROM stream WHERE x > y AND z < 2").unwrap();
        let plan = fragment_query(&q).unwrap();
        assert_eq!(plan.fragments.len(), 2);
        assert_eq!(plan.fragments[0].query.to_string(), "SELECT * FROM stream WHERE z < 2");
        assert_eq!(plan.fragments[1].query.to_string(), "SELECT * FROM d1 WHERE x > y");
    }

    #[test]
    fn udf_block_is_flagged_for_remainder() {
        let q = parse_query(
            "SELECT filterByClass(zAVG) FROM (SELECT x, AVG(z) AS zAVG FROM s GROUP BY x)",
        )
        .unwrap();
        let plan = fragment_query(&q).unwrap();
        assert!(!plan.remainder_reasons.is_empty());
        assert_eq!(plan.fragments.last().unwrap().min_level, Level::Cloud);
    }

    #[test]
    fn union_is_unsupported_for_fragmentation() {
        let q = parse_query("SELECT x FROM a UNION SELECT x FROM b").unwrap();
        assert!(matches!(
            fragment_query(&q),
            Err(CoreError::UnsupportedQuery(_))
        ));
    }

    #[test]
    fn deep_nesting_produces_one_fragment_per_outer_block() {
        let q = parse_query(
            "SELECT zAVG FROM (SELECT zAVG FROM \
             (SELECT x, AVG(z) AS zAVG FROM s GROUP BY x))",
        )
        .unwrap();
        let plan = fragment_query(&q).unwrap();
        // inner: sensor + projection + aggregation; then 2 outer blocks
        assert_eq!(plan.fragments.len(), 5, "{}", plan.describe());
        assert_eq!(plan.fragments[3].query.to_string(), "SELECT zAVG FROM d3");
        assert_eq!(plan.fragments[4].query.to_string(), "SELECT zAVG FROM d4");
    }

    #[test]
    fn minimal_level_matches_capabilities() {
        let sensor_q = parse_query("SELECT * FROM s WHERE z < 1").unwrap();
        assert_eq!(minimal_level(&sensor_q), Level::Sensor);
        let pc_q = parse_query("SELECT x FROM s UNION SELECT x FROM r").unwrap();
        assert_eq!(minimal_level(&pc_q), Level::Pc);
        let cloud_q = parse_query("SELECT myUdf(x) FROM s").unwrap();
        assert_eq!(minimal_level(&cloud_q), Level::Cloud);
    }

    #[test]
    fn join_rooted_innermost_is_single_fragment() {
        let q = parse_query(
            "SELECT u.x, s.pressure FROM ubisense u JOIN floor s ON u.t = s.t WHERE u.x > 1",
        )
        .unwrap();
        let plan = fragment_query(&q).unwrap();
        assert_eq!(plan.fragments.len(), 1);
        assert_eq!(plan.fragments[0].min_level, Level::Appliance);
    }
}
