//! Error type of the PArADISE processor.

use std::fmt;

use paradise_engine::EngineError;
use paradise_nodes::NodeError;
use paradise_policy::PolicyError;
use paradise_sql::ParseError;

/// Errors of the privacy-aware query processor.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The query cannot be answered at all under the policy (e.g. every
    /// projected attribute is denied).
    QueryDenied(String),
    /// No module policy installed for this module id.
    NoPolicy(String),
    /// A runtime query handle is unknown or was removed (the scalar is
    /// [`QueryHandle::id`](crate::runtime::QueryHandle::id)).
    UnknownHandle(u64),
    /// The query shape is outside what the rewriter handles.
    UnsupportedQuery(String),
    /// Query-language error.
    Parse(ParseError),
    /// Policy subsystem error.
    Policy(PolicyError),
    /// Engine error.
    Engine(EngineError),
    /// Node/chain error.
    Node(NodeError),
    /// Anonymization error.
    Anon(paradise_anon::AnonError),
    /// The information-gain check failed: the rewritten query would not
    /// retain enough information to be useful (paper §3.1).
    InsufficientInformation {
        /// Measured KL divergence.
        divergence: f64,
        /// Configured maximum.
        threshold: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::QueryDenied(msg) => write!(f, "query denied by policy: {msg}"),
            CoreError::NoPolicy(m) => write!(f, "no policy installed for module {m:?}"),
            CoreError::UnknownHandle(id) => {
                write!(f, "unknown or removed query handle {id:#x}")
            }
            CoreError::UnsupportedQuery(msg) => write!(f, "unsupported query shape: {msg}"),
            CoreError::Parse(e) => write!(f, "{e}"),
            CoreError::Policy(e) => write!(f, "{e}"),
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::Node(e) => write!(f, "{e}"),
            CoreError::Anon(e) => write!(f, "{e}"),
            CoreError::InsufficientInformation { divergence, threshold } => write!(
                f,
                "rewritten query loses too much information (KL {divergence:.4} > {threshold:.4})"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}
impl From<PolicyError> for CoreError {
    fn from(e: PolicyError) -> Self {
        CoreError::Policy(e)
    }
}
impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}
impl From<NodeError> for CoreError {
    fn from(e: NodeError) -> Self {
        CoreError::Node(e)
    }
}
impl From<paradise_anon::AnonError> for CoreError {
    fn from(e: paradise_anon::AnonError) -> Self {
        CoreError::Anon(e)
    }
}

/// Result alias.
pub type CoreResult<T> = Result<T, CoreError>;
