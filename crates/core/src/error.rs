//! Error type of the PArADISE processor.

use std::fmt;

use paradise_engine::EngineError;
use paradise_nodes::NodeError;
use paradise_policy::PolicyError;
use paradise_sql::ParseError;

/// Errors of the privacy-aware query processor.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The query cannot be answered at all under the policy (e.g. every
    /// projected attribute is denied).
    QueryDenied(String),
    /// No module policy installed for this module id.
    NoPolicy(String),
    /// A runtime query handle is unknown or was removed (the scalar is
    /// [`QueryHandle::id`](crate::runtime::QueryHandle::id)).
    UnknownHandle(u64),
    /// The query shape is outside what the rewriter handles.
    UnsupportedQuery(String),
    /// Query-language error.
    Parse(ParseError),
    /// Policy subsystem error.
    Policy(PolicyError),
    /// Engine error.
    Engine(EngineError),
    /// Node/chain error.
    Node(NodeError),
    /// Anonymization error.
    Anon(paradise_anon::AnonError),
    /// A durability-layer I/O operation failed (the string carries the
    /// operation and the OS error text; `std::io::Error` itself is not
    /// `Clone`/`PartialEq`).
    Io(String),
    /// Persistent state (write-ahead log or snapshot) failed validation:
    /// an unknown record type, an impossible stream position, or a
    /// snapshot none of whose generations decode. Torn *tail* records
    /// are **not** errors — recovery truncates them silently — so this
    /// variant signals real corruption, not a crash mid-write.
    Corrupt(String),
    /// An internal invariant was violated — always a bug in this crate,
    /// reported as a typed error instead of a panic so a long-running
    /// runtime degrades one tick instead of taking the process down.
    Internal(String),
    /// The module's differential-privacy budget is exhausted: one more
    /// noisy tick would spend past the configured total epsilon. The
    /// module's queries stop producing results until the policy is
    /// swapped for one with a larger (or infinite) budget — spent
    /// epsilon is never refunded, not even across crash recovery.
    BudgetExhausted {
        /// The module whose budget ran out.
        module: String,
        /// Cumulative epsilon already spent.
        spent: f64,
        /// The configured total budget.
        budget: f64,
    },
    /// The durability layer hit an I/O failure (disk full, write error,
    /// failed fsync or rename) and the runtime dropped into **degraded
    /// read-only mode**: ticks keep serving from memory, but ingests,
    /// registrations and policy swaps are refused so no state change can
    /// be acknowledged without a committed log record. The buffered
    /// (uncommitted) records are preserved and
    /// [`Runtime::resume_durability`](crate::runtime::Runtime::resume_durability)
    /// retries them once the disk recovers.
    Degraded(String),
    /// The durability directory is already attached to another live
    /// runtime in this process; a second `Runtime::durable` on the same
    /// directory would interleave two write-ahead logs.
    Locked(String),
    /// The information-gain check failed: the rewritten query would not
    /// retain enough information to be useful (paper §3.1).
    InsufficientInformation {
        /// Measured KL divergence.
        divergence: f64,
        /// Configured maximum.
        threshold: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::QueryDenied(msg) => write!(f, "query denied by policy: {msg}"),
            CoreError::NoPolicy(m) => write!(f, "no policy installed for module {m:?}"),
            CoreError::UnknownHandle(id) => {
                write!(f, "unknown or removed query handle {id:#x}")
            }
            CoreError::UnsupportedQuery(msg) => write!(f, "unsupported query shape: {msg}"),
            CoreError::Parse(e) => write!(f, "{e}"),
            CoreError::Policy(e) => write!(f, "{e}"),
            CoreError::Engine(e) => write!(f, "{e}"),
            CoreError::Node(e) => write!(f, "{e}"),
            CoreError::Anon(e) => write!(f, "{e}"),
            CoreError::Io(msg) => write!(f, "durability I/O error: {msg}"),
            CoreError::Corrupt(msg) => write!(f, "corrupt persistent state: {msg}"),
            CoreError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
            CoreError::BudgetExhausted { module, spent, budget } => write!(
                f,
                "privacy budget exhausted for module {module:?} (spent {spent} of {budget})"
            ),
            CoreError::Degraded(msg) => {
                write!(f, "durability degraded (read-only until resumed): {msg}")
            }
            CoreError::Locked(msg) => write!(f, "durability directory locked: {msg}"),
            CoreError::InsufficientInformation { divergence, threshold } => write!(
                f,
                "rewritten query loses too much information (KL {divergence:.4} > {threshold:.4})"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ParseError> for CoreError {
    fn from(e: ParseError) -> Self {
        CoreError::Parse(e)
    }
}
impl From<PolicyError> for CoreError {
    fn from(e: PolicyError) -> Self {
        CoreError::Policy(e)
    }
}
impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}
impl From<NodeError> for CoreError {
    fn from(e: NodeError) -> Self {
        CoreError::Node(e)
    }
}
impl From<paradise_anon::AnonError> for CoreError {
    fn from(e: paradise_anon::AnonError) -> Self {
        CoreError::Anon(e)
    }
}

/// Result alias.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durability_variants_display_their_category() {
        let io = CoreError::Io("create wal.1.log: permission denied".into());
        assert_eq!(io.to_string(), "durability I/O error: create wal.1.log: permission denied");
        let corrupt = CoreError::Corrupt("unknown WAL record tag 250".into());
        assert_eq!(corrupt.to_string(), "corrupt persistent state: unknown WAL record tag 250");
        let internal = CoreError::Internal("slot 3 was not executed this tick".into());
        assert_eq!(
            internal.to_string(),
            "internal invariant violated: slot 3 was not executed this tick"
        );
    }

    #[test]
    fn durability_variants_are_comparable_and_cloneable() {
        let e = CoreError::Corrupt("gap".into());
        assert_eq!(e.clone(), e);
        assert_ne!(e, CoreError::Io("gap".into()));
        // all three participate in std::error::Error like the rest
        let _: &dyn std::error::Error = &e;
    }
}
