//! Continuous-query support: the paper's policy extension "provides
//! additional information for configuring data streams, such as the
//! allowed query interval and possible aggregation levels" (§3.3).
//!
//! [`StreamGate`] enforces those settings per module: queries arriving
//! faster than the allowed interval are rejected, and requested
//! aggregation levels are checked. [`IncrementalSensor`] runs a sensor
//! fragment tuple-at-a-time over a sliding window — the "aggregates on
//! streams (over the last seconds)" capability of Table 1.

use std::collections::HashMap;

use paradise_engine::exec::aggregate::AggKind;
use paradise_engine::{Frame, Row, Schema, SensorFilter, SlidingWindow, Value, WindowSpec};
use paradise_policy::StreamSettings;
use paradise_sql::ast::Query;

use crate::error::{CoreError, CoreResult};

/// Decision of the gate for one query arrival.
#[derive(Debug, Clone, PartialEq)]
pub enum GateDecision {
    /// Proceed.
    Admitted,
    /// Rejected: arrived too soon after the module's previous query.
    TooFrequent {
        /// Seconds since the previous admitted query.
        elapsed: f64,
        /// Required minimum interval.
        required: f64,
    },
    /// Rejected: the requested aggregation level is not permitted.
    LevelNotAllowed {
        /// The level asked for.
        requested: String,
    },
}

/// Per-module query-rate and aggregation-level enforcement.
#[derive(Debug, Default)]
pub struct StreamGate {
    settings: HashMap<String, StreamSettings>,
    last_admitted: HashMap<String, f64>,
}

impl StreamGate {
    /// Empty gate (admits everything).
    pub fn new() -> Self {
        StreamGate::default()
    }

    /// Install a module's stream settings.
    pub fn set_settings(&mut self, module_id: impl Into<String>, settings: StreamSettings) {
        self.settings.insert(module_id.into(), settings);
    }

    /// Check (and record) a query arrival at time `now_secs` requesting
    /// aggregation `level` (`None` = raw).
    pub fn admit(
        &mut self,
        module_id: &str,
        now_secs: f64,
        level: Option<&str>,
    ) -> GateDecision {
        let Some(settings) = self.settings.get(module_id) else {
            self.last_admitted.insert(module_id.to_string(), now_secs);
            return GateDecision::Admitted;
        };
        if let Some(level) = level {
            if !settings.permits_level(level) {
                return GateDecision::LevelNotAllowed { requested: level.to_string() };
            }
        }
        if let (Some(min), Some(last)) =
            (settings.min_query_interval_secs, self.last_admitted.get(module_id))
        {
            let elapsed = now_secs - last;
            if elapsed < min {
                return GateDecision::TooFrequent { elapsed, required: min };
            }
        }
        self.last_admitted.insert(module_id.to_string(), now_secs);
        GateDecision::Admitted
    }
}

/// Incremental execution of a sensor fragment over a live stream: a
/// constant-memory filter plus an optional sliding-window aggregate.
pub struct IncrementalSensor {
    schema: Schema,
    filter: Option<SensorFilter>,
    window: Option<(SlidingWindow, AggKind, usize)>,
}

impl IncrementalSensor {
    /// Build from a sensor fragment (`SELECT * FROM stream [WHERE …]`).
    /// Rejects fragments a sensor cannot stream.
    pub fn from_fragment(fragment: &Query, schema: Schema) -> CoreResult<Self> {
        if !fragment.has_wildcard() {
            return Err(CoreError::UnsupportedQuery(
                "a sensor cannot project; fragment must be SELECT *".into(),
            ));
        }
        if !fragment.group_by.is_empty()
            || fragment.having.is_some()
            || !fragment.order_by.is_empty()
            || !fragment.unions.is_empty()
        {
            return Err(CoreError::UnsupportedQuery(
                "sensor fragments stream: no grouping/ordering".into(),
            ));
        }
        let filter = match &fragment.where_clause {
            Some(pred) => Some(
                SensorFilter::new(pred.clone())
                    .map_err(|e| CoreError::UnsupportedQuery(e.to_string()))?,
            ),
            None => None,
        };
        Ok(IncrementalSensor { schema, filter, window: None })
    }

    /// Attach a sliding-window aggregate over `column` (Table 1's
    /// "average of last minute" style capability).
    #[must_use]
    pub fn with_window(mut self, spec: WindowSpec, kind: AggKind, column: usize) -> Self {
        self.window = Some((SlidingWindow::new(spec), kind, column));
        self
    }

    /// Feed one reading; returns the passed-through row (post-filter)
    /// and, when a window is attached, the current window aggregate.
    pub fn push(&mut self, row: Row) -> CoreResult<Option<(Row, Option<Value>)>> {
        if let Some(filter) = &self.filter {
            if !filter.accepts(&self.schema, &row).map_err(CoreError::Engine)? {
                return Ok(None);
            }
        }
        let aggregate = match &mut self.window {
            Some((window, kind, column)) => {
                window.push(row.clone());
                Some(window.aggregate(*kind, *column).map_err(CoreError::Engine)?)
            }
            None => None,
        };
        Ok(Some((row, aggregate)))
    }

    /// Feed a whole frame, returning the filtered frame (convenience for
    /// batch replays of recorded data).
    pub fn push_frame(&mut self, frame: Frame) -> CoreResult<Frame> {
        let mut out = Frame::empty(self.schema.clone());
        for row in frame.into_rows() {
            if let Some((row, _)) = self.push(row)? {
                out.push_row(row).map_err(CoreError::Engine)?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_engine::DataType;
    use paradise_sql::parse_query;

    fn settings(interval: f64, levels: &[&str]) -> StreamSettings {
        StreamSettings {
            min_query_interval_secs: Some(interval),
            allowed_aggregation_levels: levels.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn gate_enforces_intervals() {
        let mut gate = StreamGate::new();
        gate.set_settings("M", settings(60.0, &[]));
        assert_eq!(gate.admit("M", 0.0, None), GateDecision::Admitted);
        assert!(matches!(
            gate.admit("M", 30.0, None),
            GateDecision::TooFrequent { required, .. } if required == 60.0
        ));
        assert_eq!(gate.admit("M", 61.0, None), GateDecision::Admitted);
        // a rejected attempt must not reset the clock
        assert!(matches!(gate.admit("M", 90.0, None), GateDecision::TooFrequent { .. }));
    }

    #[test]
    fn gate_enforces_levels() {
        let mut gate = StreamGate::new();
        gate.set_settings("M", settings(0.0, &["minute"]));
        assert_eq!(gate.admit("M", 0.0, Some("minute")), GateDecision::Admitted);
        assert!(matches!(
            gate.admit("M", 1.0, Some("raw")),
            GateDecision::LevelNotAllowed { .. }
        ));
    }

    #[test]
    fn unknown_modules_are_admitted() {
        let mut gate = StreamGate::new();
        assert_eq!(gate.admit("anyone", 0.0, Some("raw")), GateDecision::Admitted);
    }

    fn ubi_schema() -> Schema {
        Schema::from_pairs(&[
            ("x", DataType::Float),
            ("y", DataType::Float),
            ("z", DataType::Float),
            ("t", DataType::Integer),
        ])
    }

    fn reading(x: f64, z: f64, t: i64) -> Row {
        vec![Value::Float(x), Value::Float(0.0), Value::Float(z), Value::Int(t)]
    }

    #[test]
    fn incremental_sensor_filters() {
        let fragment = parse_query("SELECT * FROM stream WHERE z < 2").unwrap();
        let mut sensor = IncrementalSensor::from_fragment(&fragment, ubi_schema()).unwrap();
        assert!(sensor.push(reading(1.0, 1.5, 1)).unwrap().is_some());
        assert!(sensor.push(reading(1.0, 2.5, 2)).unwrap().is_none());
    }

    #[test]
    fn incremental_sensor_windows() {
        let fragment = parse_query("SELECT * FROM stream").unwrap();
        let mut sensor = IncrementalSensor::from_fragment(&fragment, ubi_schema())
            .unwrap()
            .with_window(WindowSpec::Count(2), AggKind::Avg, 2);
        let (_, agg) = sensor.push(reading(0.0, 1.0, 1)).unwrap().unwrap();
        assert_eq!(agg, Some(Value::Float(1.0)));
        let (_, agg) = sensor.push(reading(0.0, 3.0, 2)).unwrap().unwrap();
        assert_eq!(agg, Some(Value::Float(2.0)));
        let (_, agg) = sensor.push(reading(0.0, 5.0, 3)).unwrap().unwrap();
        assert_eq!(agg, Some(Value::Float(4.0))); // window of last 2: (3+5)/2
    }

    #[test]
    fn incremental_sensor_time_window() {
        let fragment = parse_query("SELECT * FROM stream WHERE z < 10").unwrap();
        let mut sensor = IncrementalSensor::from_fragment(&fragment, ubi_schema())
            .unwrap()
            .with_window(WindowSpec::Time { time_column: 3, width: 60.0 }, AggKind::Avg, 2);
        sensor.push(reading(0.0, 2.0, 0)).unwrap();
        sensor.push(reading(0.0, 4.0, 30)).unwrap();
        let (_, agg) = sensor.push(reading(0.0, 6.0, 90)).unwrap().unwrap();
        // t=0 evicted (90 - 0 > 60): avg of {4, 6}
        assert_eq!(agg, Some(Value::Float(5.0)));
    }

    #[test]
    fn sensor_fragment_validation() {
        let projecting = parse_query("SELECT x FROM stream").unwrap();
        assert!(IncrementalSensor::from_fragment(&projecting, ubi_schema()).is_err());
        let attr_attr = parse_query("SELECT * FROM stream WHERE x > y").unwrap();
        assert!(IncrementalSensor::from_fragment(&attr_attr, ubi_schema()).is_err());
        let grouped = parse_query("SELECT * FROM stream GROUP BY x").unwrap();
        assert!(IncrementalSensor::from_fragment(&grouped, ubi_schema()).is_err());
    }

    #[test]
    fn batch_replay_matches_engine_filter() {
        use paradise_engine::{Catalog, Executor};
        let fragment = parse_query("SELECT * FROM stream WHERE z < 2").unwrap();
        let frame = {
            let rows = (0..50)
                .map(|i| reading(i as f64, (i % 4) as f64, i as i64))
                .collect();
            Frame::new(ubi_schema(), rows).unwrap()
        };
        let mut sensor = IncrementalSensor::from_fragment(&fragment, ubi_schema()).unwrap();
        let incremental = sensor.push_frame(frame.clone()).unwrap();

        let mut catalog = Catalog::new();
        catalog.register("stream", frame).unwrap();
        let batch = Executor::new(&catalog).execute(&fragment).unwrap();
        assert_eq!(incremental.to_rows(), batch.to_rows());
    }
}
