//! The preprocessor's feasibility checks (paper §3.1): node capacity and
//! the Kullback–Leibler-based information-gain estimate ("it is tested if
//! the information system could gain enough information to produce
//! satisfactory results").

use paradise_anon::kl_divergence;
use paradise_engine::{Catalog, Executor, Frame};
use paradise_nodes::Node;
use paradise_sql::ast::Query;

use crate::error::{CoreError, CoreResult};

/// Outcome of the capacity check: where should the fragment run?
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapacityDecision {
    /// The node can process locally.
    ProcessLocally,
    /// §3.2: "In case that a unit does not have enough power, the raw
    /// data will be sent to a more powerful node and anonymized later."
    EscalateRaw,
}

/// Check whether `node` has the capacity (memory) to process
/// `input_bytes` of data; CPU power gates the anonymization step.
pub fn capacity_check(node: &Node, input_bytes: usize) -> CapacityDecision {
    if node.has_capacity_for(input_bytes) {
        CapacityDecision::ProcessLocally
    } else {
        CapacityDecision::EscalateRaw
    }
}

/// Result of the information-gain check.
#[derive(Debug, Clone, PartialEq)]
pub struct InformationGainReport {
    /// Mean KL divergence over the common output columns.
    pub divergence: f64,
    /// Columns (by name) that were compared.
    pub compared_columns: Vec<String>,
    /// Rows produced by the original / rewritten query.
    pub rows: (usize, usize),
}

/// Estimate how much information the rewritten query loses with respect
/// to the original, by executing both against sample data and computing
/// the KL divergence of each shared output column's value distribution
/// (paper §3.1, citing \[HS10\]).
///
/// Fails with [`CoreError::InsufficientInformation`] when the mean
/// divergence exceeds `threshold`.
pub fn information_gain_check(
    catalog: &Catalog,
    original: &Query,
    rewritten: &Query,
    threshold: f64,
) -> CoreResult<InformationGainReport> {
    let executor = Executor::new(catalog);
    let base = executor.execute(original)?;
    let reduced = executor.execute(rewritten)?;
    let report = compare_frames(&base, &reduced)?;
    if report.divergence > threshold {
        return Err(CoreError::InsufficientInformation {
            divergence: report.divergence,
            threshold,
        });
    }
    Ok(report)
}

/// Compare two result frames column-by-name; the divergence is averaged
/// over the shared columns (0.0 when nothing is shared — the check then
/// cannot say anything, which callers may treat as suspicious).
pub fn compare_frames(base: &Frame, reduced: &Frame) -> CoreResult<InformationGainReport> {
    let mut compared = Vec::new();
    let mut total = 0.0;
    for (bi, bcol) in base.schema.columns().iter().enumerate() {
        let Some(ri) = reduced
            .schema
            .columns()
            .iter()
            .position(|rc| rc.name.eq_ignore_ascii_case(&bcol.name))
        else {
            continue;
        };
        // single-column comparison via per-frame projections
        let base_col = project(base, bi);
        let reduced_col = project(reduced, ri);
        let kl = kl_divergence(&base_col, &reduced_col, &[0])?;
        total += kl;
        compared.push(bcol.name.clone());
    }
    let divergence = if compared.is_empty() { 0.0 } else { total / compared.len() as f64 };
    Ok(InformationGainReport {
        divergence,
        compared_columns: compared,
        rows: (base.len(), reduced.len()),
    })
}

fn project(frame: &Frame, column: usize) -> Frame {
    let col = frame.schema.columns()[column].clone();
    let mut schema = paradise_engine::Schema::default();
    schema.push(col);
    // zero-copy: the projection shares the column's buffer
    Frame::from_arc_columns(schema, vec![frame.column_arc(column)])
        .expect("single column matches single-column schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_engine::{DataType, Schema, Value};
    use paradise_nodes::Level;
    use paradise_sql::parse_query;

    fn catalog() -> Catalog {
        let schema = Schema::from_pairs(&[
            ("x", DataType::Float),
            ("z", DataType::Float),
        ]);
        let rows = (0..100)
            .map(|i| vec![Value::Float((i % 10) as f64), Value::Float((i % 4) as f64)])
            .collect();
        let mut c = Catalog::new();
        c.register("d", Frame::new(schema, rows).unwrap()).unwrap();
        c
    }

    #[test]
    fn identical_queries_have_zero_divergence() {
        let c = catalog();
        let q = parse_query("SELECT x FROM d").unwrap();
        let report = information_gain_check(&c, &q, &q, 0.01).unwrap();
        assert!(report.divergence.abs() < 1e-9);
        assert_eq!(report.compared_columns, vec!["x"]);
    }

    #[test]
    fn mild_filtering_passes_a_loose_threshold() {
        let c = catalog();
        let original = parse_query("SELECT x FROM d").unwrap();
        let rewritten = parse_query("SELECT x FROM d WHERE z < 3").unwrap();
        let report = information_gain_check(&c, &original, &rewritten, 0.5).unwrap();
        assert!(report.divergence > 0.0);
        assert!(report.rows.1 < report.rows.0);
    }

    #[test]
    fn harsh_filtering_fails_a_tight_threshold() {
        let c = catalog();
        let original = parse_query("SELECT x FROM d").unwrap();
        let rewritten = parse_query("SELECT x FROM d WHERE z < 1 AND x > 7").unwrap();
        let err = information_gain_check(&c, &original, &rewritten, 0.05).unwrap_err();
        assert!(matches!(err, CoreError::InsufficientInformation { .. }));
    }

    #[test]
    fn disjoint_columns_compare_nothing() {
        let base = Frame::new(
            Schema::from_pairs(&[("a", DataType::Integer)]),
            vec![vec![Value::Int(1)]],
        )
        .unwrap();
        let reduced = Frame::new(
            Schema::from_pairs(&[("b", DataType::Integer)]),
            vec![vec![Value::Int(1)]],
        )
        .unwrap();
        let report = compare_frames(&base, &reduced).unwrap();
        assert_eq!(report.divergence, 0.0);
        assert!(report.compared_columns.is_empty());
    }

    #[test]
    fn capacity_decisions() {
        let node = Node::new("sensor", Level::Sensor); // 64 KiB
        assert_eq!(capacity_check(&node, 1024), CapacityDecision::ProcessLocally);
        assert_eq!(capacity_check(&node, 10 * 1024 * 1024), CapacityDecision::EscalateRaw);
    }
}
