//! The virtual file system the durability layer does all its I/O
//! through, plus the deterministic fault injector the fault-tolerance
//! suites drive it with.
//!
//! Production code uses [`RealVfs`] (a thin veneer over `std::fs`).
//! Tests wrap it in a [`FaultVfs`] carrying a per-operation fault
//! schedule — "the 3rd write fails with ENOSPC", "the next fsync
//! fails", "the 2nd write tears after 11 bytes" — so every disk-failure
//! path of the WAL/snapshot machinery is reachable deterministically,
//! without actually filling a disk. Injected faults are counted in
//! [`FaultStats`] so a chaos schedule can assert that every planned
//! fault actually fired.
//!
//! This module also owns the in-process durability-directory lock
//! registry: two live runtimes attached to the same directory would
//! interleave their write-ahead logs, so the second
//! [`DirLock::acquire`] yields [`CoreError::Locked`]. The lock is
//! process-local by design — cross-process exclusion is documented as
//! out of scope (advisory file locks don't survive `kill -9`
//! faithfully and the vendored std has no `flock` wrapper).

use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::{CoreError, CoreResult};

/// File-system operations the durability layer needs. Deliberately
/// tiny: whole-file reads, append-oriented writes, atomic rename, and
/// the two fsync shapes — nothing else touches disk.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// `std::fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// File names (not paths) directly inside `dir`.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Create (truncating) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Open an existing file for appending, first truncating it to
    /// `valid_bytes` (recovery's torn-tail repair). Creates the file if
    /// missing.
    fn open_append(&self, path: &Path, valid_bytes: u64) -> io::Result<Box<dyn VfsFile>>;
    /// Atomic rename.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Best-effort directory fsync (making a rename durable).
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

/// An open writable file handle behind the [`Vfs`].
pub trait VfsFile: Send + std::fmt::Debug {
    /// Write the whole buffer.
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync`.
    fn sync_data(&mut self) -> io::Result<()>;
    /// `fsync`.
    fn sync_all(&mut self) -> io::Result<()>;
}

// ------------------------------------------------------------------
// Real implementation
// ------------------------------------------------------------------

/// The production [`Vfs`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl RealVfs {
    /// The shared production instance.
    pub fn shared() -> Arc<dyn Vfs> {
        Arc::new(RealVfs)
    }
}

#[derive(Debug)]
struct RealFile(File);

impl VfsFile for RealFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        self.0.write_all(buf)
    }
    fn sync_data(&mut self) -> io::Result<()> {
        self.0.sync_data()
    }
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for RealVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let file =
            OpenOptions::new().create(true).write(true).truncate(true).open(path)?;
        Ok(Box::new(RealFile(file)))
    }
    fn open_append(&self, path: &Path, valid_bytes: u64) -> io::Result<Box<dyn VfsFile>> {
        let mut file =
            OpenOptions::new().create(true).write(true).truncate(false).open(path)?;
        file.set_len(valid_bytes)?;
        file.seek(io::SeekFrom::End(0))?;
        Ok(Box::new(RealFile(file)))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

// ------------------------------------------------------------------
// Fault injection
// ------------------------------------------------------------------

/// Which I/O operation a scheduled fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// A `write_all` on any open file (WAL commit or snapshot body).
    Write,
    /// `sync_data` / `sync_all` on a file (the fsync shapes).
    Sync,
    /// Creating / truncating a file.
    Create,
    /// The snapshot-install rename.
    Rename,
    /// A whole-file read.
    Read,
}

/// How the scheduled operation fails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// `ENOSPC`: the write is refused, nothing reaches the file.
    Enospc,
    /// A generic `EIO`.
    Eio,
    /// A torn write: only the first `keep` bytes reach the file, then
    /// the write errors — the shape a crash or a lost sector leaves.
    Torn {
        /// Bytes that do land before the failure.
        keep: usize,
    },
}

/// Counters of injected faults, by category — the chaos suites assert
/// these against the schedule so a silently-unreachable fault site
/// fails the test instead of weakening it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Writes refused with `ENOSPC`.
    pub enospc: u64,
    /// Operations failed with a generic `EIO` (reads/writes/creates).
    pub eio: u64,
    /// Writes torn partway through.
    pub torn_writes: u64,
    /// `sync_data`/`sync_all` calls that failed.
    pub fsync_failures: u64,
    /// Renames that failed.
    pub rename_failures: u64,
}

impl FaultStats {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.enospc + self.eio + self.torn_writes + self.fsync_failures + self.rename_failures
    }
}

#[derive(Debug)]
struct FaultState {
    /// Remaining scheduled faults: (op, remaining occurrences of that
    /// op before firing, kind). Counted down per matching op; fires at
    /// zero and is removed.
    plan: Vec<(FaultOp, u64, FaultKind)>,
    stats: FaultStats,
}

/// Deterministic fault-injecting [`Vfs`] wrapper. Faults are scheduled
/// per operation kind by occurrence index ("the nth write from now
/// fails like X") and fire exactly once each.
#[derive(Debug)]
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultVfs {
    /// A fault injector over the real file system with an empty
    /// schedule (behaves exactly like [`RealVfs`] until armed).
    pub fn new() -> Arc<FaultVfs> {
        Arc::new(FaultVfs {
            inner: Arc::new(RealVfs),
            state: Arc::new(Mutex::new(FaultState {
                plan: Vec::new(),
                stats: FaultStats::default(),
            })),
        })
    }

    /// Schedule: the `nth` next occurrence (0 = the very next) of `op`
    /// fails as `kind`.
    pub fn schedule(&self, op: FaultOp, nth: u64, kind: FaultKind) {
        self.state.lock().expect("fault state lock").plan.push((op, nth, kind));
    }

    /// Injected-fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().expect("fault state lock").stats
    }

    /// Scheduled faults that have not fired yet.
    pub fn pending_faults(&self) -> usize {
        self.state.lock().expect("fault state lock").plan.len()
    }

    fn arm(&self, op: FaultOp) -> Option<FaultKind> {
        arm(&self.state, op)
    }
}

/// Check the schedule for `op`: count down every matching entry, fire
/// (remove + count) the first that reaches zero.
fn arm(state: &Mutex<FaultState>, op: FaultOp) -> Option<FaultKind> {
    let mut state = state.lock().expect("fault state lock");
    let mut fired = None;
    for entry in state.plan.iter_mut() {
        if entry.0 != op {
            continue;
        }
        if entry.1 == 0 && fired.is_none() {
            fired = Some(entry.2);
            entry.1 = u64::MAX; // tombstone, removed below
        } else if entry.1 != u64::MAX {
            entry.1 -= 1;
        }
    }
    if let Some(kind) = fired {
        state.plan.retain(|e| e.1 != u64::MAX);
        let stats = &mut state.stats;
        match (op, kind) {
            (FaultOp::Sync, _) => stats.fsync_failures += 1,
            (FaultOp::Rename, _) => stats.rename_failures += 1,
            (_, FaultKind::Enospc) => stats.enospc += 1,
            (_, FaultKind::Torn { .. }) => stats.torn_writes += 1,
            (_, FaultKind::Eio) => stats.eio += 1,
        }
    }
    fired
}

fn fault_error(kind: FaultKind) -> io::Error {
    match kind {
        FaultKind::Enospc => {
            io::Error::new(io::ErrorKind::StorageFull, "injected ENOSPC: no space left")
        }
        FaultKind::Eio => io::Error::other("injected EIO"),
        FaultKind::Torn { keep } => {
            io::Error::other(format!("injected torn write after {keep} bytes"))
        }
    }
}

/// A file handle whose writes/syncs consult the shared fault schedule.
#[derive(Debug)]
struct FaultFile {
    inner: Box<dyn VfsFile>,
    state: Arc<Mutex<FaultState>>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match arm(&self.state, FaultOp::Write) {
            None => self.inner.write_all(buf),
            Some(FaultKind::Torn { keep }) => {
                let keep = keep.min(buf.len());
                self.inner.write_all(&buf[..keep])?;
                Err(fault_error(FaultKind::Torn { keep }))
            }
            Some(kind) => Err(fault_error(kind)),
        }
    }
    fn sync_data(&mut self) -> io::Result<()> {
        match arm(&self.state, FaultOp::Sync) {
            None => self.inner.sync_data(),
            Some(kind) => Err(fault_error(kind)),
        }
    }
    fn sync_all(&mut self) -> io::Result<()> {
        match arm(&self.state, FaultOp::Sync) {
            None => self.inner.sync_all(),
            Some(kind) => Err(fault_error(kind)),
        }
    }
}

impl Vfs for FaultVfs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.arm(FaultOp::Read) {
            None => self.inner.read(path),
            Some(kind) => Err(fault_error(kind)),
        }
    }
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(dir)
    }
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        match self.arm(FaultOp::Create) {
            None => Ok(Box::new(FaultFile {
                inner: self.inner.create(path)?,
                state: Arc::clone(&self.state),
            })),
            Some(kind) => Err(fault_error(kind)),
        }
    }
    fn open_append(&self, path: &Path, valid_bytes: u64) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.open_append(path, valid_bytes)?,
            state: Arc::clone(&self.state),
        }))
    }
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.arm(FaultOp::Rename) {
            None => self.inner.rename(from, to),
            Some(kind) => Err(fault_error(kind)),
        }
    }
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // directory syncs are best-effort in the write protocol; faults
        // target the file-level syncs
        self.inner.sync_dir(dir)
    }
}

// ------------------------------------------------------------------
// In-process durability-directory locks
// ------------------------------------------------------------------

fn dir_locks() -> &'static Mutex<HashSet<PathBuf>> {
    static LOCKS: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    LOCKS.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Exclusive in-process claim on a durability directory, released on
/// drop (or explicitly by the crash-emulation path, which leaks the
/// runtime on purpose and must not leak the lock with it).
#[derive(Debug)]
pub struct DirLock {
    path: Option<PathBuf>,
}

impl DirLock {
    /// Claim `dir` (which must exist). A second claim on the same
    /// directory while the first is live is [`CoreError::Locked`].
    pub fn acquire(dir: &Path) -> CoreResult<DirLock> {
        let canonical = dir
            .canonicalize()
            .map_err(|e| CoreError::Io(format!("canonicalize {}: {e}", dir.display())))?;
        let mut locks = dir_locks().lock().expect("dir-lock registry");
        if !locks.insert(canonical.clone()) {
            return Err(CoreError::Locked(format!(
                "{} is already attached to a live runtime in this process",
                dir.display()
            )));
        }
        Ok(DirLock { path: Some(canonical) })
    }

    /// Release now (idempotent; also happens on drop).
    pub fn release(&mut self) {
        if let Some(path) = self.path.take() {
            dir_locks().lock().expect("dir-lock registry").remove(&path);
        }
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("paradise-vfs-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn fault_schedule_fires_once_at_the_scheduled_occurrence() {
        let dir = tmp("sched");
        let vfs = FaultVfs::new();
        vfs.schedule(FaultOp::Write, 1, FaultKind::Enospc);
        let mut f = Vfs::create(&*vfs,&dir.join("a")).unwrap();
        f.write_all(b"first").unwrap();
        let err = f.write_all(b"second").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        f.write_all(b"third").unwrap();
        assert_eq!(vfs.stats().enospc, 1);
        assert_eq!(vfs.pending_faults(), 0);
        assert_eq!(std::fs::read(dir.join("a")).unwrap(), b"firstthird");
    }

    #[test]
    fn torn_write_lands_a_prefix_then_errors() {
        let dir = tmp("torn");
        let vfs = FaultVfs::new();
        vfs.schedule(FaultOp::Write, 0, FaultKind::Torn { keep: 3 });
        let mut f = Vfs::create(&*vfs,&dir.join("t")).unwrap();
        assert!(f.write_all(b"abcdef").is_err());
        assert_eq!(std::fs::read(dir.join("t")).unwrap(), b"abc");
        assert_eq!(vfs.stats().torn_writes, 1);
    }

    #[test]
    fn sync_and_rename_faults_are_categorised() {
        let dir = tmp("cats");
        let vfs = FaultVfs::new();
        vfs.schedule(FaultOp::Sync, 0, FaultKind::Eio);
        vfs.schedule(FaultOp::Rename, 0, FaultKind::Eio);
        let mut f = Vfs::create(&*vfs,&dir.join("s")).unwrap();
        assert!(f.sync_all().is_err());
        assert!(Vfs::rename(&*vfs,&dir.join("s"), &dir.join("s2")).is_err());
        let stats = vfs.stats();
        assert_eq!(stats.fsync_failures, 1);
        assert_eq!(stats.rename_failures, 1);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn dir_lock_excludes_and_releases() {
        let dir = tmp("lock");
        let mut lock = DirLock::acquire(&dir).unwrap();
        assert!(matches!(DirLock::acquire(&dir), Err(CoreError::Locked(_))));
        lock.release();
        let again = DirLock::acquire(&dir).unwrap();
        drop(again);
        drop(DirLock::acquire(&dir).unwrap());
    }
}
