//! The write-ahead log: every state-changing runtime operation as a
//! typed, CRC-framed record.
//!
//! On-disk framing per record:
//!
//! ```text
//! [u32 body length][u32 CRC-32 of body][body = u8 record tag + payload]
//! ```
//!
//! Appends are **group-committed**: [`Wal::append`] only buffers the
//! encoded record in memory, and [`Wal::commit`] writes the whole
//! buffer with one `write` call — the runtime commits at tick
//! boundaries (plus immediately for rare control operations), so the
//! steady-tick overhead is one buffered encode per ingest and one
//! syscall per tick. `commit` hands the bytes to the OS; they are
//! forced to stable media (`fsync`) only at snapshot barriers, which is
//! the layer's documented durability point.
//!
//! Reading is torn-tail tolerant: a record whose header runs past the
//! end of the file, or whose CRC does not match, marks the *valid
//! prefix boundary* — everything before it replays, everything from it
//! on is truncated (a crash mid-`write` is normal operation, not
//! corruption). A record whose CRC is valid but whose body does not
//! decode — unknown tag, trailing garbage — is real corruption and
//! surfaces as [`CoreError::Corrupt`].

use std::path::{Path, PathBuf};
use std::sync::Arc;

use paradise_engine::Frame;

use crate::error::{CoreError, CoreResult};

use super::codec::{crc32, dec_frame, enc_frame, Dec, Enc};
use super::vfs::{Vfs, VfsFile};

/// Format an I/O failure as the typed core error (carrying the
/// operation and path, since `std::io::Error` is not `Clone`).
pub(crate) fn io_err(op: &str, path: &Path, e: &std::io::Error) -> CoreError {
    CoreError::Io(format!("{op} {}: {e}", path.display()))
}

/// One durable runtime operation. Every record that moves a stream
/// position carries the **absolute** position it applies at, which is
/// what makes replay idempotent without a global sequence number: a
/// record at-or-below the recovered state's position is skipped, a
/// record exactly at it applies, and a record beyond it is a gap
/// (corruption).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `Runtime::install_source`: (re)place a source table wholesale.
    /// Naturally idempotent — replaying it resets the table to the
    /// recorded contents and subsequent `Ingest` records re-apply.
    InstallSource {
        /// Chain node the table lives at.
        node: String,
        /// Table name.
        table: String,
        /// The installed contents.
        frame: Frame,
    },
    /// `Runtime::ingest`: one appended stream batch.
    Ingest {
        /// Chain node the table lives at.
        node: String,
        /// Table name.
        table: String,
        /// Absolute stream row the batch starts at (the table's high
        /// watermark when it was appended).
        start: u64,
        /// Client session the batch originated from (0 = none); with
        /// `seq`, the runtime's durable dedup mark — a retried batch
        /// whose `(session, seq)` is at-or-below the session's mark is
        /// a no-op, even across crash recovery. Embedded in the record
        /// itself (not a companion record) so a torn tail can never
        /// separate a batch from its idempotency mark.
        session: u64,
        /// Session-monotonic request sequence number (0 = none).
        seq: u64,
        /// The batch itself.
        frame: Frame,
    },
    /// Retention eviction of a table's oldest rows.
    Evict {
        /// Chain node the table lives at.
        node: String,
        /// Table name.
        table: String,
        /// Absolute front-eviction count *after* the eviction.
        evicted_to: u64,
    },
    /// `Runtime::register`: a continuous query, as its SQL text (the
    /// parser/display roundtrip is pinned by the sql crate's tests).
    /// Slot and generation are recorded so recovered `QueryHandle`s
    /// held by callers stay valid across the restart.
    Register {
        /// Slot index the handle occupies.
        slot: u32,
        /// Handle generation (process-monotonic).
        generation: u32,
        /// Module the query was registered under.
        module: String,
        /// The query, rendered as SQL.
        sql: String,
        /// Originating client session (0 = none) — lets a resumed
        /// session recover its handles after a server restart.
        session: u64,
        /// Session-monotonic request sequence number (0 = none).
        seq: u64,
    },
    /// `Runtime::remove_query`.
    RemoveQuery {
        /// Slot index of the removed handle.
        slot: u32,
        /// Generation of the removed handle.
        generation: u32,
    },
    /// `Runtime::set_policy`: the module policy as its XML rendering
    /// (the parse/render roundtrip is pinned by the policy crate's
    /// tests) plus the version it was installed as.
    SetPolicy {
        /// The policy version this install produced (global monotonic).
        version: u64,
        /// Module the policy applies to.
        module: String,
        /// `policy_to_xml` rendering of the module policy.
        xml: String,
        /// Originating client session (0 = none).
        session: u64,
        /// Session-monotonic request sequence number (0 = none).
        seq: u64,
    },
    /// One differential-privacy budget spend of a module's epsilon
    /// ledger (one noisy tick). Carries the **absolute** cumulative
    /// spend and the ledger sequence number it applies at, following
    /// the same idempotent-replay discipline as stream positions:
    /// at-or-below the recovered sequence is skipped, exactly the next
    /// sequence applies, beyond it is a gap. Recovery therefore never
    /// regains spent budget — and because the noise seed derives from
    /// the ledger sequence, a recovered runtime replays bitwise-
    /// identical noisy results.
    SpendEpsilon {
        /// Module whose ledger spent.
        module: String,
        /// Ledger sequence number *after* this spend (1-based).
        seq: u64,
        /// Absolute cumulative epsilon spent after this spend.
        spent: f64,
    },
}

const TAG_INSTALL: u8 = 1;
const TAG_INGEST: u8 = 2;
const TAG_EVICT: u8 = 3;
const TAG_REGISTER: u8 = 4;
const TAG_REMOVE: u8 = 5;
const TAG_SET_POLICY: u8 = 6;
const TAG_SPEND_EPSILON: u8 = 7;

impl WalRecord {
    /// Encode as the framed body (tag + payload), without the
    /// length/CRC header.
    fn encode_body(&self) -> Vec<u8> {
        let mut e = Enc::new();
        match self {
            WalRecord::InstallSource { node, table, frame } => {
                e.u8(TAG_INSTALL);
                e.str(node);
                e.str(table);
                enc_frame(&mut e, frame);
            }
            WalRecord::Ingest { node, table, start, session, seq, frame } => {
                e.u8(TAG_INGEST);
                e.str(node);
                e.str(table);
                e.u64(*start);
                e.u64(*session);
                e.u64(*seq);
                enc_frame(&mut e, frame);
            }
            WalRecord::Evict { node, table, evicted_to } => {
                e.u8(TAG_EVICT);
                e.str(node);
                e.str(table);
                e.u64(*evicted_to);
            }
            WalRecord::Register { slot, generation, module, sql, session, seq } => {
                e.u8(TAG_REGISTER);
                e.u32(*slot);
                e.u32(*generation);
                e.str(module);
                e.str(sql);
                e.u64(*session);
                e.u64(*seq);
            }
            WalRecord::RemoveQuery { slot, generation } => {
                e.u8(TAG_REMOVE);
                e.u32(*slot);
                e.u32(*generation);
            }
            WalRecord::SetPolicy { version, module, xml, session, seq } => {
                e.u8(TAG_SET_POLICY);
                e.u64(*version);
                e.str(module);
                e.str(xml);
                e.u64(*session);
                e.u64(*seq);
            }
            WalRecord::SpendEpsilon { module, seq, spent } => {
                e.u8(TAG_SPEND_EPSILON);
                e.str(module);
                e.u64(*seq);
                e.f64(*spent);
            }
        }
        e.into_bytes()
    }

    /// Decode a framed body whose CRC already checked out. Structural
    /// failure here is real corruption, never a torn write.
    fn decode_body(body: &[u8]) -> CoreResult<WalRecord> {
        let mut d = Dec::new(body);
        let record = match d.u8()? {
            TAG_INSTALL => WalRecord::InstallSource {
                node: d.str()?,
                table: d.str()?,
                frame: dec_frame(&mut d)?,
            },
            TAG_INGEST => WalRecord::Ingest {
                node: d.str()?,
                table: d.str()?,
                start: d.u64()?,
                session: d.u64()?,
                seq: d.u64()?,
                frame: dec_frame(&mut d)?,
            },
            TAG_EVICT => WalRecord::Evict {
                node: d.str()?,
                table: d.str()?,
                evicted_to: d.u64()?,
            },
            TAG_REGISTER => WalRecord::Register {
                slot: d.u32()?,
                generation: d.u32()?,
                module: d.str()?,
                sql: d.str()?,
                session: d.u64()?,
                seq: d.u64()?,
            },
            TAG_REMOVE => WalRecord::RemoveQuery { slot: d.u32()?, generation: d.u32()? },
            TAG_SET_POLICY => WalRecord::SetPolicy {
                version: d.u64()?,
                module: d.str()?,
                xml: d.str()?,
                session: d.u64()?,
                seq: d.u64()?,
            },
            TAG_SPEND_EPSILON => WalRecord::SpendEpsilon {
                module: d.str()?,
                seq: d.u64()?,
                spent: d.f64()?,
            },
            tag => {
                return Err(CoreError::Corrupt(format!(
                    "unknown write-ahead-log record type {tag}"
                )))
            }
        };
        if !d.done() {
            return Err(CoreError::Corrupt(
                "trailing bytes after write-ahead-log record".to_string(),
            ));
        }
        Ok(record)
    }
}

/// An open write-ahead log file with its group-commit buffer.
#[derive(Debug)]
pub struct Wal {
    file: Box<dyn VfsFile>,
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    /// Encoded-but-unwritten records (the group-commit buffer). On a
    /// failed commit the buffer is **preserved** — degraded mode keeps
    /// accumulating and [`Wal::repair`] + a retried commit drain it.
    pending: Vec<u8>,
    pending_records: u64,
    /// Committed (known-good) length of the file in bytes — the repair
    /// truncation point after a possibly-torn failed write.
    file_len: u64,
    /// Records written to the OS since this `Wal` was opened.
    committed_records: u64,
    /// `commit` calls that actually wrote something.
    commits: u64,
    /// Bytes written to the OS since this `Wal` was opened.
    committed_bytes: u64,
}

impl Wal {
    /// Create a fresh (truncated) log at `path`.
    pub fn create(vfs: &Arc<dyn Vfs>, path: &Path) -> CoreResult<Self> {
        let file =
            vfs.create(path).map_err(|e| io_err("create write-ahead log", path, &e))?;
        Ok(Wal::over(file, vfs, path, 0))
    }

    /// Reopen an existing log for appending after recovery, truncating
    /// it to `valid_bytes` first (dropping any torn tail the reader
    /// found).
    pub fn resume(vfs: &Arc<dyn Vfs>, path: &Path, valid_bytes: u64) -> CoreResult<Self> {
        let file = vfs
            .open_append(path, valid_bytes)
            .map_err(|e| io_err("open write-ahead log", path, &e))?;
        Ok(Wal::over(file, vfs, path, valid_bytes))
    }

    fn over(file: Box<dyn VfsFile>, vfs: &Arc<dyn Vfs>, path: &Path, file_len: u64) -> Self {
        Wal {
            file,
            vfs: Arc::clone(vfs),
            path: path.to_path_buf(),
            pending: Vec::new(),
            pending_records: 0,
            file_len,
            committed_records: 0,
            commits: 0,
            committed_bytes: 0,
        }
    }

    /// Buffer one record for the next [`Wal::commit`] (no I/O).
    pub fn append(&mut self, record: &WalRecord) {
        let body = record.encode_body();
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(body.len() as u32).to_le_bytes());
        header[4..].copy_from_slice(&crc32(&body).to_le_bytes());
        self.pending.extend_from_slice(&header);
        self.pending.extend_from_slice(&body);
        self.pending_records += 1;
    }

    /// Write every buffered record to the OS in order (the group
    /// commit). No `fsync` — stable-media durability is the snapshot
    /// barrier's job ([`Wal::sync`]). On failure the buffer is kept
    /// intact: the file may hold a torn prefix of it, which
    /// [`Wal::repair`] truncates away before the commit is retried.
    pub fn commit(&mut self) -> CoreResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file
            .write_all(&self.pending)
            .map_err(|e| io_err("append to write-ahead log", &self.path, &e))?;
        self.file_len += self.pending.len() as u64;
        self.committed_bytes += self.pending.len() as u64;
        self.committed_records += self.pending_records;
        self.commits += 1;
        self.pending.clear();
        self.pending_records = 0;
        Ok(())
    }

    /// Recover from a failed commit: reopen the file truncated back to
    /// its last known-good length, dropping whatever prefix of the
    /// failed write (possibly torn mid-record) reached the disk. The
    /// pending buffer still holds every uncommitted record, so a
    /// subsequent [`Wal::commit`] writes them cleanly — nothing is
    /// duplicated and nothing is lost.
    pub fn repair(&mut self) -> CoreResult<()> {
        self.file = self
            .vfs
            .open_append(&self.path, self.file_len)
            .map_err(|e| io_err("repair write-ahead log", &self.path, &e))?;
        Ok(())
    }

    /// Records buffered but not yet committed.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Force everything committed so far to stable media.
    pub fn sync(&mut self) -> CoreResult<()> {
        self.file.sync_data().map_err(|e| io_err("sync write-ahead log", &self.path, &e))
    }

    /// Records committed (written to the OS) since open.
    pub fn committed_records(&self) -> u64 {
        self.committed_records
    }

    /// Commit calls that wrote at least one record.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Bytes committed since open.
    pub fn committed_bytes(&self) -> u64 {
        self.committed_bytes
    }
}

/// What [`read_wal`] found in one log file.
#[derive(Debug)]
pub struct WalContents {
    /// The records of the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix — [`Wal::resume`] truncates the
    /// file to this before appending.
    pub valid_bytes: u64,
    /// Bytes dropped after the valid prefix (a torn tail from a crash
    /// mid-write, or a CRC-damaged region; zero on a clean log).
    pub torn_bytes: u64,
}

/// Read a log file, replay-tolerantly: stop at (and report) a torn
/// tail, error only on structural corruption inside a CRC-valid
/// record. A missing file reads as empty (a crash can land between
/// snapshot rename and log rotation).
pub fn read_wal(vfs: &Arc<dyn Vfs>, path: &Path) -> CoreResult<WalContents> {
    let bytes = match vfs.read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("read write-ahead log", path, &e)),
    };
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= 8 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().expect("4 bytes"));
        let Some(end) = at.checked_add(8).and_then(|s| s.checked_add(len)) else {
            break; // length overflows — unreadable tail
        };
        if len == 0 || end > bytes.len() {
            break; // header torn or body incomplete
        }
        let body = &bytes[at + 8..end];
        if crc32(body) != crc {
            break; // torn or bit-damaged record: truncate from here
        }
        records.push(WalRecord::decode_body(body)?);
        at = end;
    }
    Ok(WalContents {
        records,
        valid_bytes: at as u64,
        torn_bytes: (bytes.len() - at) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::vfs::RealVfs;
    use paradise_engine::{DataType, Schema, Value};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "paradise-wal-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.log")
    }

    fn vfs() -> Arc<dyn Vfs> {
        RealVfs::shared()
    }

    fn sample_records() -> Vec<WalRecord> {
        let schema = Schema::from_pairs(&[("x", DataType::Integer)]);
        let frame = Frame::new(schema, vec![vec![Value::Int(1)], vec![Value::Int(2)]]).unwrap();
        vec![
            WalRecord::InstallSource {
                node: "motion-sensor".into(),
                table: "stream".into(),
                frame: frame.clone(),
            },
            WalRecord::SetPolicy {
                version: 3,
                module: "M".into(),
                xml: "<module/>".into(),
                session: 0,
                seq: 0,
            },
            WalRecord::Register {
                slot: 0,
                generation: 0,
                module: "M".into(),
                sql: "SELECT x FROM stream".into(),
                session: 7,
                seq: 2,
            },
            WalRecord::Ingest {
                node: "motion-sensor".into(),
                table: "stream".into(),
                start: 2,
                session: 7,
                seq: 3,
                frame,
            },
            WalRecord::Evict { node: "motion-sensor".into(), table: "stream".into(), evicted_to: 1 },
            WalRecord::RemoveQuery { slot: 0, generation: 0 },
        ]
    }

    #[test]
    fn append_commit_read_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create(&vfs(), &path).unwrap();
        let records = sample_records();
        for r in &records {
            wal.append(r);
        }
        assert_eq!(wal.committed_records(), 0, "append alone does no I/O");
        wal.commit().unwrap();
        assert_eq!(wal.committed_records(), records.len() as u64);
        assert_eq!(wal.commits(), 1);
        wal.commit().unwrap();
        assert_eq!(wal.commits(), 1, "empty commit is free");

        let read = read_wal(&vfs(), &path).unwrap();
        assert_eq!(read.records, records);
        assert_eq!(read.torn_bytes, 0);
        assert_eq!(read.valid_bytes, wal.committed_bytes());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = tmp("torn");
        let mut wal = Wal::create(&vfs(), &path).unwrap();
        for r in sample_records() {
            wal.append(&r);
        }
        wal.commit().unwrap();
        let full = std::fs::read(&path).unwrap();
        // chop the last record mid-body
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let read = read_wal(&vfs(), &path).unwrap();
        assert_eq!(read.records.len(), sample_records().len() - 1);
        assert!(read.torn_bytes > 0);

        // resume truncates the tail and appending continues cleanly
        let mut wal = Wal::resume(&vfs(), &path, read.valid_bytes).unwrap();
        wal.append(&WalRecord::RemoveQuery { slot: 9, generation: 9 });
        wal.commit().unwrap();
        let read = read_wal(&vfs(), &path).unwrap();
        assert_eq!(read.torn_bytes, 0);
        assert_eq!(
            read.records.last(),
            Some(&WalRecord::RemoveQuery { slot: 9, generation: 9 })
        );
    }

    #[test]
    fn bit_flip_truncates_from_the_damage() {
        let path = tmp("bitflip");
        let mut wal = Wal::create(&vfs(), &path).unwrap();
        for r in sample_records() {
            wal.append(&r);
        }
        wal.commit().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let read = read_wal(&vfs(), &path).unwrap();
        assert!(read.records.len() < sample_records().len());
        assert!(read.torn_bytes > 0);
    }

    #[test]
    fn unknown_record_type_is_corruption() {
        let path = tmp("unknown");
        // hand-frame a record with tag 99 and a *valid* CRC
        let body = vec![99u8, 1, 2, 3];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_wal(&vfs(), &path), Err(CoreError::Corrupt(_))));
    }

    #[test]
    fn failed_commit_keeps_pending_and_repair_retries_cleanly() {
        use crate::storage::vfs::{FaultKind, FaultOp, FaultVfs};
        let path = tmp("repair");
        let fault = FaultVfs::new();
        let as_vfs: Arc<dyn Vfs> = Arc::clone(&fault) as Arc<dyn Vfs>;
        let mut wal = Wal::create(&as_vfs, &path).unwrap();
        wal.append(&WalRecord::RemoveQuery { slot: 1, generation: 1 });
        wal.commit().unwrap();

        // the next commit tears mid-write; the buffer must survive
        fault.schedule(FaultOp::Write, 0, FaultKind::Torn { keep: 5 });
        wal.append(&WalRecord::RemoveQuery { slot: 2, generation: 2 });
        wal.append(&WalRecord::RemoveQuery { slot: 3, generation: 3 });
        assert!(matches!(wal.commit(), Err(CoreError::Io(_))));
        assert_eq!(wal.pending_records(), 2, "failed commit keeps the buffer");

        // the file now ends in a torn prefix of the failed write;
        // repair truncates it and the retry lands every record once
        wal.repair().unwrap();
        wal.commit().unwrap();
        let read = read_wal(&vfs(), &path).unwrap();
        assert_eq!(read.torn_bytes, 0);
        assert_eq!(
            read.records,
            vec![
                WalRecord::RemoveQuery { slot: 1, generation: 1 },
                WalRecord::RemoveQuery { slot: 2, generation: 2 },
                WalRecord::RemoveQuery { slot: 3, generation: 3 },
            ]
        );
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing").with_extension("nope");
        let read = read_wal(&vfs(), &path).unwrap();
        assert!(read.records.is_empty());
        assert_eq!(read.valid_bytes, 0);
    }
}
