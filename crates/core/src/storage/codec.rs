//! Binary encoding of the durable state: a small, hand-rolled,
//! little-endian codec (the environment vendors no serde) plus the
//! CRC-32 checksum both the write-ahead log and the snapshots frame
//! their payloads with.
//!
//! Decoding is **paranoid by construction**: every read is
//! bounds-checked and every structural inconsistency (bad tag, column
//! length mismatch, non-UTF-8 text) surfaces as
//! [`CoreError::Corrupt`] — never a panic, never a silent
//! misinterpretation. The encoder and decoder are exact inverses; the
//! roundtrip tests below pin that for every value shape the engine can
//! produce, including mixed-type columns and NULLs.

use paradise_engine::{Column, ColumnData, DataType, Frame, Schema, Value};

use crate::error::{CoreError, CoreResult};

// ------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected), table-driven
// ------------------------------------------------------------------

/// 256-entry lookup table for the reflected IEEE polynomial
/// (0xEDB88320), built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes` — the checksum guarding every WAL record
/// and snapshot payload against torn writes and bit rot.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ------------------------------------------------------------------
// Primitive writer / reader
// ------------------------------------------------------------------

/// Append-only byte sink the record encoders write into.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one raw byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write an f64 by bit pattern (exact, NaN-preserving).
    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked reader over an encoded byte slice.
#[derive(Debug)]
pub struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

/// Shorthand for the corruption error every failed decode returns.
fn corrupt(what: &str) -> CoreError {
    CoreError::Corrupt(what.to_string())
}

impl<'a> Dec<'a> {
    /// Reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, at: 0 }
    }

    /// Everything consumed? Trailing garbage after a payload is
    /// corruption, so record decoders check this.
    pub fn done(&self) -> bool {
        self.at == self.bytes.len()
    }

    /// Bytes left to read — decoders bound declared element counts by
    /// this before pre-allocating, so a corrupt length prefix yields
    /// [`CoreError::Corrupt`] instead of a multi-gigabyte allocation.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    fn take(&mut self, n: usize) -> CoreResult<&'a [u8]> {
        let end = self.at.checked_add(n).ok_or_else(|| corrupt("length overflow"))?;
        if end > self.bytes.len() {
            return Err(corrupt("truncated payload"));
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    /// Read one raw byte.
    pub fn u8(&mut self) -> CoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> CoreResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("slice is 4 bytes")))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> CoreResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("slice is 8 bytes")))
    }

    /// Read a little-endian i64.
    pub fn i64(&mut self) -> CoreResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("slice is 8 bytes")))
    }

    /// Read an f64 by bit pattern.
    pub fn f64(&mut self) -> CoreResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CoreResult<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("non-UTF-8 string"))
    }
}

// ------------------------------------------------------------------
// Value / schema / frame codecs
// ------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_FLOAT: u8 = 3;
const VAL_STR: u8 = 4;

/// Encode one runtime value (tag + payload).
pub fn enc_value(e: &mut Enc, v: &Value) {
    match v {
        Value::Null => e.u8(VAL_NULL),
        Value::Bool(b) => {
            e.u8(VAL_BOOL);
            e.u8(u8::from(*b));
        }
        Value::Int(x) => {
            e.u8(VAL_INT);
            e.i64(*x);
        }
        Value::Float(x) => {
            e.u8(VAL_FLOAT);
            e.f64(*x);
        }
        Value::Str(s) => {
            e.u8(VAL_STR);
            e.str(s);
        }
    }
}

/// Decode one runtime value.
pub fn dec_value(d: &mut Dec<'_>) -> CoreResult<Value> {
    Ok(match d.u8()? {
        VAL_NULL => Value::Null,
        VAL_BOOL => Value::Bool(d.u8()? != 0),
        VAL_INT => Value::Int(d.i64()?),
        VAL_FLOAT => Value::Float(d.f64()?),
        VAL_STR => Value::Str(d.str()?),
        tag => return Err(corrupt(&format!("unknown value tag {tag}"))),
    })
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Integer => 0,
        DataType::Float => 1,
        DataType::Boolean => 2,
        DataType::Text => 3,
    }
}

fn dtype_from(tag: u8) -> CoreResult<DataType> {
    Ok(match tag {
        0 => DataType::Integer,
        1 => DataType::Float,
        2 => DataType::Boolean,
        3 => DataType::Text,
        _ => return Err(corrupt(&format!("unknown data-type tag {tag}"))),
    })
}

/// Encode a schema: column count, then (name, optional qualifier,
/// declared type) per column.
pub fn enc_schema(e: &mut Enc, schema: &Schema) {
    e.u32(schema.len() as u32);
    for col in schema.columns() {
        e.str(&col.name);
        match &col.source {
            Some(src) => {
                e.u8(1);
                e.str(src);
            }
            None => e.u8(0),
        }
        e.u8(dtype_tag(col.data_type));
    }
}

/// Decode a schema.
pub fn dec_schema(d: &mut Dec<'_>) -> CoreResult<Schema> {
    let n = d.u32()? as usize;
    let mut columns = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let name = d.str()?;
        let source = match d.u8()? {
            0 => None,
            1 => Some(d.str()?),
            tag => return Err(corrupt(&format!("bad qualifier tag {tag}"))),
        };
        let data_type = dtype_from(d.u8()?)?;
        columns.push(match source {
            Some(src) => Column::qualified(src, name, data_type),
            None => Column::new(name, data_type),
        });
    }
    Ok(Schema::new(columns))
}

// Column buffer encodings. The dense typed buffers are written as a
// presence byte per cell plus the raw payload (the dominant ingest
// shapes — int/float sensor streams — thus cost 9 bytes/cell and no
// Value materialisation); a mixed-type column falls back to tagged
// values, which is exact for any mix.
const COL_INT: u8 = 0;
const COL_FLOAT: u8 = 1;
const COL_BOOL: u8 = 2;
const COL_STR: u8 = 3;
const COL_MIXED: u8 = 4;

fn enc_column(e: &mut Enc, col: &ColumnData) {
    if let Some(cells) = col.int_slice() {
        e.u8(COL_INT);
        for c in cells {
            match c {
                Some(x) => {
                    e.u8(1);
                    e.i64(*x);
                }
                None => e.u8(0),
            }
        }
    } else if let Some(cells) = col.float_slice() {
        e.u8(COL_FLOAT);
        for c in cells {
            match c {
                Some(x) => {
                    e.u8(1);
                    e.f64(*x);
                }
                None => e.u8(0),
            }
        }
    } else if let Some(cells) = col.bool_slice() {
        e.u8(COL_BOOL);
        for c in cells {
            match c {
                Some(x) => {
                    e.u8(1);
                    e.u8(u8::from(*x));
                }
                None => e.u8(0),
            }
        }
    } else if let Some(cells) = col.str_slice() {
        e.u8(COL_STR);
        for c in cells {
            match c {
                Some(s) => {
                    e.u8(1);
                    e.str(s);
                }
                None => e.u8(0),
            }
        }
    } else {
        e.u8(COL_MIXED);
        for v in col.iter_values() {
            enc_value(e, &v);
        }
    }
}

fn dec_column(d: &mut Dec<'_>, rows: usize, declared: DataType) -> CoreResult<ColumnData> {
    let tag = d.u8()?;
    let hint = match tag {
        COL_INT => DataType::Integer,
        COL_FLOAT => DataType::Float,
        COL_BOOL => DataType::Boolean,
        COL_STR => DataType::Text,
        COL_MIXED => declared,
        _ => return Err(corrupt(&format!("unknown column tag {tag}"))),
    };
    let mut col = ColumnData::with_capacity(hint, rows);
    for _ in 0..rows {
        let v = match tag {
            COL_MIXED => dec_value(d)?,
            _ => match d.u8()? {
                0 => Value::Null,
                1 => match tag {
                    COL_INT => Value::Int(d.i64()?),
                    COL_FLOAT => Value::Float(d.f64()?),
                    COL_BOOL => Value::Bool(d.u8()? != 0),
                    COL_STR => Value::Str(d.str()?),
                    _ => unreachable!("tag validated above"),
                },
                p => return Err(corrupt(&format!("bad presence byte {p}"))),
            },
        };
        col.push(v);
    }
    Ok(col)
}

/// Encode a whole frame: schema, row count, then each column buffer.
pub fn enc_frame(e: &mut Enc, frame: &Frame) {
    enc_schema(e, &frame.schema);
    e.u32(frame.len() as u32);
    for i in 0..frame.schema.len() {
        enc_column(e, frame.column(i));
    }
}

/// Decode a frame; every structural mismatch (column count, cell
/// count) is [`CoreError::Corrupt`].
pub fn dec_frame(d: &mut Dec<'_>) -> CoreResult<Frame> {
    let schema = dec_schema(d)?;
    let rows = d.u32()? as usize;
    // defensive allocation bound: every encoded cell costs at least one
    // byte (presence or value tag), so a row count the remaining
    // payload cannot possibly hold is a corrupt length prefix — reject
    // it before `with_capacity` turns it into a huge allocation. A
    // zero-column frame has no cells to bound with, so its row count is
    // capped outright (it only carries cardinality).
    const MAX_ZERO_COLUMN_ROWS: usize = 1 << 24;
    if schema.is_empty() {
        if rows > MAX_ZERO_COLUMN_ROWS {
            return Err(corrupt("implausible zero-column row count"));
        }
    } else if rows.checked_mul(schema.len()).is_none_or(|cells| cells > d.remaining()) {
        return Err(corrupt("frame row count exceeds payload size"));
    }
    let mut columns = Vec::with_capacity(schema.len());
    for col in schema.columns() {
        let c = dec_column(d, rows, col.data_type)?;
        if c.len() != rows {
            return Err(corrupt("column length mismatch"));
        }
        columns.push(c);
    }
    if schema.is_empty() {
        // zero-column frames keep their cardinality through row-major
        // construction (from_columns cannot carry a row count)
        return Frame::new(schema, vec![vec![]; rows]).map_err(CoreError::from);
    }
    Frame::from_columns(schema, columns).map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_frame(frame: &Frame) -> Frame {
        let mut e = Enc::new();
        enc_frame(&mut e, frame);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_frame(&mut d).expect("decodes");
        assert!(d.done(), "frame decode must consume its payload exactly");
        back
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // standard IEEE test vector
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(i64::MIN);
        e.f64(f64::NAN);
        e.str("héllo");
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), i64::MIN);
        assert!(d.f64().unwrap().is_nan());
        assert_eq!(d.str().unwrap(), "héllo");
        assert!(d.done());
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut d = Dec::new(&[1, 2]);
        assert!(matches!(d.u32(), Err(CoreError::Corrupt(_))));
        let mut d = Dec::new(&[255, 255, 255, 255, b'x']);
        assert!(matches!(d.str(), Err(CoreError::Corrupt(_))));
    }

    #[test]
    fn values_roundtrip_exactly() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::Float(-0.0),
            Value::Float(f64::INFINITY),
            Value::Str(String::new()),
            Value::Str("snow ☃".into()),
        ] {
            let mut e = Enc::new();
            enc_value(&mut e, &v);
            let bytes = e.into_bytes();
            let back = dec_value(&mut Dec::new(&bytes)).unwrap();
            // compare bit-exactly for floats (PartialEq folds -0.0 == 0.0)
            match (&v, &back) {
                (Value::Float(a), Value::Float(b)) => assert_eq!(a.to_bits(), b.to_bits()),
                _ => assert_eq!(v, back),
            }
        }
        assert!(matches!(dec_value(&mut Dec::new(&[9])), Err(CoreError::Corrupt(_))));
    }

    #[test]
    fn typed_frames_roundtrip() {
        let schema = Schema::new(vec![
            Column::new("i", DataType::Integer),
            Column::qualified("s", "f", DataType::Float),
            Column::new("b", DataType::Boolean),
            Column::new("t", DataType::Text),
        ]);
        let frame = Frame::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Float(0.5), Value::Bool(true), Value::Str("a".into())],
                vec![Value::Null, Value::Null, Value::Null, Value::Null],
                vec![Value::Int(-7), Value::Float(-1.25), Value::Bool(false), Value::Str(String::new())],
            ],
        )
        .unwrap();
        let back = roundtrip_frame(&frame);
        assert_eq!(back, frame);
        assert_eq!(back.schema, frame.schema);
    }

    #[test]
    fn mixed_and_empty_frames_roundtrip() {
        // a column mixing runtime types exercises the exact fallback
        let schema = Schema::from_pairs(&[("m", DataType::Integer)]);
        let mixed = Frame::new(
            schema.clone(),
            vec![vec![Value::Int(3)], vec![Value::Str("x".into())], vec![Value::Float(2.5)]],
        )
        .unwrap();
        let back = roundtrip_frame(&mixed);
        assert_eq!(back.to_rows(), mixed.to_rows());

        let empty = Frame::empty(schema);
        assert_eq!(roundtrip_frame(&empty), empty);

        // zero-column frames keep their cardinality
        let zero = Frame::new(Schema::default(), vec![vec![], vec![]]).unwrap();
        assert_eq!(roundtrip_frame(&zero).len(), 2);
    }

    #[test]
    fn corrupt_row_count_is_rejected_before_allocating() {
        // one int column, but a row count claiming ~4 billion rows:
        // the payload can't hold that many cells, so decode must
        // return Corrupt without attempting the allocation
        let mut e = Enc::new();
        enc_schema(&mut e, &Schema::from_pairs(&[("x", DataType::Integer)]));
        e.u32(u32::MAX);
        e.u8(COL_INT);
        let bytes = e.into_bytes();
        assert!(matches!(dec_frame(&mut Dec::new(&bytes)), Err(CoreError::Corrupt(_))));

        // zero-column frames have no cells to bound with; implausible
        // cardinality is rejected outright
        let mut e = Enc::new();
        enc_schema(&mut e, &Schema::default());
        e.u32(u32::MAX);
        let bytes = e.into_bytes();
        assert!(matches!(dec_frame(&mut Dec::new(&bytes)), Err(CoreError::Corrupt(_))));
    }

    #[test]
    fn frame_decode_rejects_garbage() {
        let mut e = Enc::new();
        enc_frame(&mut e, &Frame::empty(Schema::from_pairs(&[("x", DataType::Integer)])));
        let mut bytes = e.into_bytes();
        bytes[0] = 0xFF; // explode the column count
        assert!(matches!(dec_frame(&mut Dec::new(&bytes)), Err(CoreError::Corrupt(_))));
    }
}
