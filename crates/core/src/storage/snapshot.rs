//! Catalog snapshots: the full durable state of a [`Runtime`] as one
//! atomically-replaced file per generation.
//!
//! A snapshot holds everything replay would otherwise have to rebuild
//! from the log: every source table (with its front-eviction count, so
//! absolute stream positions survive), every module policy with its
//! version, the global version counter, and every registration (slot,
//! generation, module, SQL text). Runtime *configuration* — chain
//! topology, retention, sharding, processor options — is **not**
//! persisted: the caller reconstructs the runtime the same way it was
//! built and [`Runtime::durable`](crate::runtime::Runtime::durable)
//! restores the state into it.
//!
//! Write protocol: encode to `snapshot.tmp`, `fsync`, then atomically
//! rename to `snapshot.<generation>.pds` (and `fsync` the directory so
//! the rename itself is durable). A crash mid-write leaves a stale
//! `.tmp` that is never read; a crash mid-rename leaves the previous
//! generation in place. The file carries a magic number and a whole-
//! payload CRC, so a partially materialised file is *detected* and
//! recovery falls back to the previous generation — which is why the
//! previous snapshot (and its log) are only deleted one generation
//! later.
//!
//! [`Runtime`]: crate::runtime::Runtime

use std::path::{Path, PathBuf};
use std::sync::Arc;

use paradise_engine::Frame;

use crate::error::{CoreError, CoreResult};

use super::codec::{crc32, dec_frame, enc_frame, Dec, Enc};
use super::vfs::Vfs;
use super::wal::io_err;

/// `b"PDS1"` little-endian: magic + format version of snapshot files.
const MAGIC: u32 = u32::from_le_bytes(*b"PDS1");

/// One source table's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct TableState {
    /// Chain node the table lives at.
    pub node: String,
    /// Table name.
    pub table: String,
    /// Front-eviction count — restored so absolute stream positions
    /// (and thus log-record idempotency checks) line up after recovery.
    pub evicted: u64,
    /// The retained rows.
    pub frame: Frame,
}

/// One installed module policy.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyState {
    /// Module id.
    pub module: String,
    /// The version this policy was installed as.
    pub version: u64,
    /// `policy_to_xml` rendering.
    pub xml: String,
}

/// One registered continuous query.
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrationState {
    /// Slot index — forced on re-registration so caller-held
    /// `QueryHandle`s survive the restart.
    pub slot: u32,
    /// Handle generation.
    pub generation: u32,
    /// Module the query runs under.
    pub module: String,
    /// The query as SQL text.
    pub sql: String,
    /// Client session that registered it (0 = none) — a resumed
    /// session recovers its handles from this after a restart.
    pub session: u64,
    /// The session request sequence that registered it (0 = none).
    pub seq: u64,
}

/// One client session's durable idempotency mark: the highest request
/// sequence number whose effect is part of this snapshot. A retried
/// mutating request at-or-below the mark is a no-op after recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionMark {
    /// Client-assigned session id (never 0).
    pub session: u64,
    /// Highest applied request sequence.
    pub seq: u64,
}

/// One module's differential-privacy epsilon-ledger position. Spent
/// budget is durable state of the strictest kind: losing it across a
/// crash would let an adversary re-query for fresh noise draws, so the
/// ledger is snapshotted here *and* every individual spend is logged
/// ([`WalRecord::SpendEpsilon`](super::wal::WalRecord::SpendEpsilon)).
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerState {
    /// Module id.
    pub module: String,
    /// Ledger spend-sequence number (number of noisy ticks so far).
    pub seq: u64,
    /// Cumulative epsilon spent.
    pub spent: f64,
}

/// The complete durable state of a runtime at a snapshot barrier.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotData {
    /// Generation this snapshot ends (its write-ahead log starts empty
    /// at the same barrier).
    pub generation: u64,
    /// Every source table of the source-of-record chain.
    pub tables: Vec<TableState>,
    /// Every installed module policy.
    pub policies: Vec<PolicyState>,
    /// The runtime's global monotonic policy-version counter.
    pub version_counter: u64,
    /// Every live registration, in slot order.
    pub registrations: Vec<RegistrationState>,
    /// Total slots (occupied or free) — restored so freed low slots
    /// stay free and handle indices keep their meaning.
    pub slots: u32,
    /// The next handle generation to assign.
    pub next_generation: u32,
    /// Every module's epsilon-ledger position, sorted by module id.
    pub ledgers: Vec<LedgerState>,
    /// Every client session's idempotency mark, sorted by session id.
    pub sessions: Vec<SessionMark>,
}

/// Path of generation `g`'s snapshot file.
pub fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot.{generation}.pds"))
}

/// Path of generation `g`'s write-ahead log.
pub fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal.{generation}.log"))
}

/// Parse `name` against `prefix.<u64>.suffix`.
fn generation_of(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// The snapshot and log generations present in `dir`, each sorted
/// ascending.
pub fn list_generations(vfs: &Arc<dyn Vfs>, dir: &Path) -> CoreResult<(Vec<u64>, Vec<u64>)> {
    let mut snapshots = Vec::new();
    let mut wals = Vec::new();
    let names = vfs
        .read_dir_names(dir)
        .map_err(|e| io_err("list durability directory", dir, &e))?;
    for name in &names {
        if let Some(g) = generation_of(name, "snapshot.", ".pds") {
            snapshots.push(g);
        } else if let Some(g) = generation_of(name, "wal.", ".log") {
            wals.push(g);
        }
    }
    snapshots.sort_unstable();
    wals.sort_unstable();
    Ok((snapshots, wals))
}

fn encode(data: &SnapshotData) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(data.generation);
    e.u32(data.tables.len() as u32);
    for t in &data.tables {
        e.str(&t.node);
        e.str(&t.table);
        e.u64(t.evicted);
        enc_frame(&mut e, &t.frame);
    }
    e.u32(data.policies.len() as u32);
    for p in &data.policies {
        e.str(&p.module);
        e.u64(p.version);
        e.str(&p.xml);
    }
    e.u64(data.version_counter);
    e.u32(data.registrations.len() as u32);
    for r in &data.registrations {
        e.u32(r.slot);
        e.u32(r.generation);
        e.str(&r.module);
        e.str(&r.sql);
        e.u64(r.session);
        e.u64(r.seq);
    }
    e.u32(data.slots);
    e.u32(data.next_generation);
    e.u32(data.ledgers.len() as u32);
    for l in &data.ledgers {
        e.str(&l.module);
        e.u64(l.seq);
        e.f64(l.spent);
    }
    e.u32(data.sessions.len() as u32);
    for s in &data.sessions {
        e.u64(s.session);
        e.u64(s.seq);
    }
    e.into_bytes()
}

fn decode(payload: &[u8]) -> CoreResult<SnapshotData> {
    let mut d = Dec::new(payload);
    let generation = d.u64()?;
    let mut tables = Vec::new();
    for _ in 0..d.u32()? {
        tables.push(TableState {
            node: d.str()?,
            table: d.str()?,
            evicted: d.u64()?,
            frame: dec_frame(&mut d)?,
        });
    }
    let mut policies = Vec::new();
    for _ in 0..d.u32()? {
        policies.push(PolicyState { module: d.str()?, version: d.u64()?, xml: d.str()? });
    }
    let version_counter = d.u64()?;
    let mut registrations = Vec::new();
    for _ in 0..d.u32()? {
        registrations.push(RegistrationState {
            slot: d.u32()?,
            generation: d.u32()?,
            module: d.str()?,
            sql: d.str()?,
            session: d.u64()?,
            seq: d.u64()?,
        });
    }
    let slots = d.u32()?;
    let next_generation = d.u32()?;
    let mut ledgers = Vec::new();
    for _ in 0..d.u32()? {
        ledgers.push(LedgerState { module: d.str()?, seq: d.u64()?, spent: d.f64()? });
    }
    let mut sessions = Vec::new();
    for _ in 0..d.u32()? {
        sessions.push(SessionMark { session: d.u64()?, seq: d.u64()? });
    }
    if !d.done() {
        return Err(CoreError::Corrupt("trailing bytes after snapshot payload".to_string()));
    }
    Ok(SnapshotData {
        generation,
        tables,
        policies,
        version_counter,
        registrations,
        slots,
        next_generation,
        ledgers,
        sessions,
    })
}

/// Write `data` as generation `data.generation`'s snapshot, atomically
/// (tmp + `fsync` + rename + directory `fsync`).
pub fn write_snapshot(vfs: &Arc<dyn Vfs>, dir: &Path, data: &SnapshotData) -> CoreResult<()> {
    let payload = encode(data);
    let mut bytes = Vec::with_capacity(payload.len() + 12);
    bytes.extend_from_slice(&MAGIC.to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = dir.join("snapshot.tmp");
    let mut file =
        vfs.create(&tmp).map_err(|e| io_err("create snapshot temp file", &tmp, &e))?;
    file.write_all(&bytes).map_err(|e| io_err("write snapshot", &tmp, &e))?;
    file.sync_all().map_err(|e| io_err("sync snapshot", &tmp, &e))?;
    drop(file);

    let target = snapshot_path(dir, data.generation);
    vfs.rename(&tmp, &target).map_err(|e| io_err("install snapshot", &target, &e))?;
    // make the rename itself durable (best-effort off unixes)
    let _ = vfs.sync_dir(dir);
    Ok(())
}

/// Read and validate one snapshot file. Any failure — unreadable,
/// short, bad magic, CRC mismatch, undecodable payload — is
/// [`CoreError::Corrupt`] (or [`CoreError::Io`]), and the caller falls
/// back to the previous generation.
pub fn read_snapshot(vfs: &Arc<dyn Vfs>, path: &Path) -> CoreResult<SnapshotData> {
    let bytes = vfs.read(path).map_err(|e| io_err("read snapshot", path, &e))?;
    if bytes.len() < 12 {
        return Err(CoreError::Corrupt(format!(
            "snapshot {} is truncated ({} bytes)",
            path.display(),
            bytes.len()
        )));
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(CoreError::Corrupt(format!(
            "snapshot {} has wrong magic {magic:#010x}",
            path.display()
        )));
    }
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let payload = bytes.get(12..).filter(|p| p.len() == len).ok_or_else(|| {
        CoreError::Corrupt(format!("snapshot {} payload length mismatch", path.display()))
    })?;
    if crc32(payload) != crc {
        return Err(CoreError::Corrupt(format!(
            "snapshot {} failed its checksum",
            path.display()
        )));
    }
    decode(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::vfs::RealVfs;
    use paradise_engine::{DataType, Schema, Value};

    fn vfs() -> Arc<dyn Vfs> {
        RealVfs::shared()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("paradise-snap-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SnapshotData {
        let schema = Schema::from_pairs(&[("x", DataType::Integer)]);
        let frame =
            Frame::new(schema, vec![vec![Value::Int(5)], vec![Value::Null]]).unwrap();
        SnapshotData {
            generation: 3,
            tables: vec![TableState {
                node: "motion-sensor".into(),
                table: "stream".into(),
                evicted: 17,
                frame,
            }],
            policies: vec![PolicyState {
                module: "ActionFilter".into(),
                version: 2,
                xml: "<module id=\"ActionFilter\"/>".into(),
            }],
            version_counter: 2,
            registrations: vec![RegistrationState {
                slot: 1,
                generation: 4,
                module: "ActionFilter".into(),
                sql: "SELECT x FROM stream".into(),
                session: 11,
                seq: 6,
            }],
            slots: 2,
            next_generation: 5,
            ledgers: vec![LedgerState { module: "ActionFilter".into(), seq: 9, spent: 4.5 }],
            sessions: vec![SessionMark { session: 11, seq: 6 }],
        }
    }

    #[test]
    fn write_read_roundtrip_and_listing() {
        let dir = tmp("roundtrip");
        let data = sample();
        write_snapshot(&vfs(), &dir, &data).unwrap();
        let back = read_snapshot(&vfs(), &snapshot_path(&dir, 3)).unwrap();
        assert_eq!(back, data);
        assert!(!dir.join("snapshot.tmp").exists(), "tmp is renamed away");

        std::fs::write(wal_path(&dir, 3), b"").unwrap();
        std::fs::write(wal_path(&dir, 2), b"").unwrap();
        let (snaps, wals) = list_generations(&vfs(), &dir).unwrap();
        assert_eq!(snaps, vec![3]);
        assert_eq!(wals, vec![2, 3]);
    }

    #[test]
    fn zero_length_and_truncated_snapshots_are_corrupt() {
        let dir = tmp("short");
        let path = snapshot_path(&dir, 1);
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(read_snapshot(&vfs(), &path), Err(CoreError::Corrupt(_))));

        write_snapshot(&vfs(), &dir, &sample()).unwrap();
        let full = std::fs::read(snapshot_path(&dir, 3)).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(read_snapshot(&vfs(), &path), Err(CoreError::Corrupt(_))));
    }

    #[test]
    fn bit_flip_fails_the_checksum() {
        let dir = tmp("flip");
        write_snapshot(&vfs(), &dir, &sample()).unwrap();
        let path = snapshot_path(&dir, 3);
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 5;
        bytes[at] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_snapshot(&vfs(), &path), Err(CoreError::Corrupt(_))));
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        let dir = tmp("magic");
        let path = snapshot_path(&dir, 1);
        std::fs::write(&path, b"NOPE00000000u-wot").unwrap();
        assert!(matches!(read_snapshot(&vfs(), &path), Err(CoreError::Corrupt(_))));
    }
}
