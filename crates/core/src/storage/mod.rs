//! Durability: write-ahead logging, catalog snapshots, and
//! crash-recovery replay for the continuous-query [`Runtime`].
//!
//! A runtime opts in with [`Runtime::durable`], pointing at a
//! directory. From then on every state-changing operation — source
//! installs, ingest batches, retention evictions, query registrations
//! and removals, policy swaps — is recorded in a CRC-framed
//! [write-ahead log](wal) before the tick that made it observable
//! completes, and the full state is periodically checkpointed as an
//! atomically-replaced [snapshot]. Reopening the same
//! directory rebuilds the runtime: latest valid snapshot, then ordered
//! log replay, with per-table absolute stream positions making the
//! replay idempotent.
//!
//! The layer is **paranoid on the read side**: torn log tails (a crash
//! mid-write) are truncated and counted, never fatal; a partially
//! written snapshot fails its checksum and recovery falls back to the
//! previous generation; only structural impossibilities — an unknown
//! record type under a valid CRC, a replay gap, every snapshot
//! generation corrupt — surface as [`CoreError::Corrupt`].
//!
//! On-disk layout (one directory per runtime):
//!
//! ```text
//! snapshot.<g>.pds   checkpoint ending generation g (atomic rename)
//! wal.<g>.log        records appended after snapshot g
//! snapshot.tmp       in-flight checkpoint (ignored by recovery)
//! ```
//!
//! Generation `g`'s log starts empty at `snapshot.<g>.pds`'s barrier.
//! Taking snapshot `g+1` rotates the log and deletes generations
//! `≤ g−1`; generation `g` is kept so a corrupt `snapshot.<g+1>.pds`
//! still recovers from `snapshot.<g>.pds` + `wal.<g>.log` +
//! `wal.<g+1>.log`.
//!
//! [`Runtime`]: crate::runtime::Runtime
//! [`Runtime::durable`]: crate::runtime::Runtime::durable

pub mod codec;
pub mod snapshot;
pub mod vfs;
pub mod wal;

use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{CoreError, CoreResult};

pub use snapshot::{
    LedgerState, PolicyState, RegistrationState, SessionMark, SnapshotData, TableState,
};
pub use vfs::{DirLock, FaultKind, FaultOp, FaultStats, FaultVfs, RealVfs, Vfs, VfsFile};
pub use wal::WalRecord;

use snapshot::{list_generations, read_snapshot, snapshot_path, wal_path, write_snapshot};
use wal::{io_err, read_wal, Wal};

/// Counters and recovery facts of an attached durability layer, from
/// [`Runtime::durability_stats`](crate::runtime::Runtime::durability_stats).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Current snapshot/log generation.
    pub generation: u64,
    /// Log records appended (buffered or written) since open.
    pub wal_records: u64,
    /// Group commits that wrote at least one record.
    pub wal_commits: u64,
    /// Log bytes handed to the OS since open.
    pub wal_bytes: u64,
    /// Snapshots written since open (including the initial one of a
    /// fresh directory).
    pub snapshots: u64,
    /// `true` when the open rebuilt state from disk (snapshot and/or
    /// log) instead of starting fresh.
    pub recovered: bool,
    /// Log records replayed during recovery.
    pub replayed: u64,
    /// Replayed records skipped as already-applied (the idempotency
    /// checks; non-zero only for duplicated or overlapping logs).
    pub skipped: u64,
    /// Torn log bytes truncated during recovery (a crash mid-write).
    pub torn_bytes: u64,
    /// Snapshot generations that failed validation and were skipped in
    /// favor of an older one.
    pub corrupt_snapshots: u64,
}

/// Result of [`Durability::open`]: the state to rebuild (if any) plus
/// the attached layer, ready for appends.
#[derive(Debug)]
pub struct Opened {
    /// The chosen snapshot, when one was recovered.
    pub snapshot: Option<SnapshotData>,
    /// Log records to replay on top, in append order.
    pub records: Vec<WalRecord>,
    /// The attached layer (log resumed past any torn tail).
    pub durability: Durability,
}

/// An attached durability directory: the open write-ahead log, the
/// generation counter, and the snapshot cadence.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    wal: Wal,
    /// The in-process exclusive claim on `dir` (released on drop, or
    /// explicitly by the crash-emulation path).
    lock: Option<DirLock>,
    generation: u64,
    /// Take a snapshot automatically every this many ticks
    /// (0 = only on explicit request).
    pub(crate) snapshot_every: u64,
    pub(crate) ticks_since_snapshot: u64,
    pub(crate) stats: DurabilityStats,
}

impl Durability {
    /// Attach to `dir` (created if missing) through the real file
    /// system. A directory with prior state yields the recovered
    /// snapshot + replay records; a fresh directory yields neither, and
    /// the caller checkpoints its current state via
    /// [`Durability::initial_snapshot`].
    pub fn open(dir: &Path) -> CoreResult<Opened> {
        Durability::open_with(dir, RealVfs::shared())
    }

    /// [`Durability::open`] through an explicit [`Vfs`] — the
    /// fault-injection entry point.
    pub fn open_with(dir: &Path, vfs: Arc<dyn Vfs>) -> CoreResult<Opened> {
        vfs.create_dir_all(dir)
            .map_err(|e| io_err("create durability directory", dir, &e))?;
        let lock = Some(DirLock::acquire(dir)?);
        let (snaps, wals) = list_generations(&vfs, dir)?;

        if snaps.is_empty() && wals.is_empty() {
            // fresh directory: generation 1 starts with the caller's
            // initial snapshot; the log is created right away so a
            // crash between the two still recovers
            let durability = Durability {
                dir: dir.to_path_buf(),
                wal: Wal::create(&vfs, &wal_path(dir, 1))?,
                vfs,
                lock,
                generation: 1,
                snapshot_every: DEFAULT_SNAPSHOT_EVERY,
                ticks_since_snapshot: 0,
                stats: DurabilityStats { generation: 1, ..DurabilityStats::default() },
            };
            return Ok(Opened { snapshot: None, records: Vec::new(), durability });
        }
        if snaps.is_empty() {
            return Err(CoreError::Corrupt(format!(
                "durability directory {} has logs but no snapshot",
                dir.display()
            )));
        }

        // choose the newest snapshot that validates, falling back one
        // generation at a time; every generation corrupt is fatal
        let mut corrupt_snapshots = 0u64;
        let mut chosen: Option<SnapshotData> = None;
        let mut last_err = None;
        for &g in snaps.iter().rev() {
            match read_snapshot(&vfs, &snapshot_path(dir, g)) {
                Ok(data) => {
                    chosen = Some(data);
                    break;
                }
                Err(e) => {
                    corrupt_snapshots += 1;
                    last_err = Some(e);
                }
            }
        }
        let Some(snapshot) = chosen else {
            return Err(match last_err {
                Some(CoreError::Corrupt(msg)) => CoreError::Corrupt(format!(
                    "no snapshot generation in {} validates (last: {msg})",
                    dir.display()
                )),
                Some(other) => other,
                None => CoreError::Corrupt("no snapshot found".to_string()),
            });
        };

        // replay every log from the chosen snapshot's barrier on, in
        // generation order; only the newest log may have a torn tail
        // we resume past
        let base = snapshot.generation;
        let mut records = Vec::new();
        let mut torn_bytes = 0u64;
        let mut resume_at = (base, 0u64);
        for &g in wals.iter().filter(|&&g| g >= base) {
            let contents = read_wal(&vfs, &wal_path(dir, g))?;
            torn_bytes += contents.torn_bytes;
            records.extend(contents.records);
            resume_at = (g, contents.valid_bytes);
        }
        let (resume_gen, valid_bytes) = resume_at;
        let generation = resume_gen.max(base);
        let wal = Wal::resume(&vfs, &wal_path(dir, generation), valid_bytes)?;

        let stats = DurabilityStats {
            generation,
            recovered: true,
            replayed: records.len() as u64,
            torn_bytes,
            corrupt_snapshots,
            ..DurabilityStats::default()
        };
        let durability = Durability {
            dir: dir.to_path_buf(),
            wal,
            vfs,
            lock,
            generation,
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
            ticks_since_snapshot: 0,
            stats,
        };
        Ok(Opened { snapshot: Some(snapshot), records, durability })
    }

    /// Buffer one record for the next group commit.
    pub fn record(&mut self, record: &WalRecord) {
        self.wal.append(record);
        self.stats.wal_records += 1;
    }

    /// Group-commit everything buffered (one write syscall).
    pub fn commit(&mut self) -> CoreResult<()> {
        self.wal.commit()?;
        self.stats.wal_commits = self.wal.commits();
        self.stats.wal_bytes = self.wal.committed_bytes();
        Ok(())
    }

    /// Repair after a failed commit or snapshot: reopen the log
    /// truncated back to its last known-good length (dropping any torn
    /// prefix of the failed write) and retry the pending buffer. This
    /// is the disk-recovered half of
    /// [`Runtime::resume_durability`](crate::runtime::Runtime::resume_durability).
    pub fn resume(&mut self) -> CoreResult<()> {
        self.wal.repair()?;
        self.commit()
    }

    /// Records buffered but not yet committed (non-zero after a failed
    /// commit — degraded mode preserves them for the resume retry).
    pub fn pending_records(&self) -> u64 {
        self.wal.pending_records()
    }

    /// Release the in-process directory lock without dropping the
    /// layer. Used by crash-emulation paths that deliberately leak the
    /// runtime (`std::mem::forget`) — the lock must not leak with it,
    /// or the same process could never reopen the directory.
    pub fn release_lock(&mut self) {
        if let Some(mut lock) = self.lock.take() {
            lock.release();
        }
    }

    /// The first checkpoint of a fresh directory: written at the
    /// current generation, no rotation.
    pub fn initial_snapshot(&mut self, mut data: SnapshotData) -> CoreResult<()> {
        data.generation = self.generation;
        write_snapshot(&self.vfs, &self.dir, &data)?;
        self.stats.snapshots += 1;
        Ok(())
    }

    /// Take a checkpoint: commit + sync the log, write the snapshot of
    /// generation `g+1` atomically, rotate to a fresh `wal.<g+1>.log`,
    /// and delete generations `≤ g−1` (the barrier's log truncation —
    /// generation `g` stays as the fallback).
    pub fn rotate_snapshot(&mut self, mut data: SnapshotData) -> CoreResult<()> {
        self.wal.commit()?;
        self.wal.sync()?;
        let next = self.generation + 1;
        data.generation = next;
        // create the next log *before* publishing the snapshot: if the
        // snapshot write fails, appends keep going to the current log,
        // which recovery still replays (a stray empty wal.<g+1> is
        // harmless). Publishing first would route post-failure records
        // to a log older than the newest snapshot — invisible to
        // recovery.
        let wal = Wal::create(&self.vfs, &wal_path(&self.dir, next))?;
        write_snapshot(&self.vfs, &self.dir, &data)?;
        self.wal = wal;
        let old = self.generation;
        self.generation = next;
        self.stats.generation = next;
        self.stats.snapshots += 1;
        self.ticks_since_snapshot = 0;
        // best-effort cleanup: a leftover file is re-deleted next time
        if let Ok((snaps, wals)) = list_generations(&self.vfs, &self.dir) {
            for g in snaps.into_iter().filter(|&g| g < old) {
                let _ = self.vfs.remove_file(&snapshot_path(&self.dir, g));
            }
            for g in wals.into_iter().filter(|&g| g < old) {
                let _ = self.vfs.remove_file(&wal_path(&self.dir, g));
            }
        }
        Ok(())
    }

    /// Current counters (the generation field is always live).
    pub fn stats(&self) -> DurabilityStats {
        let mut s = self.stats;
        s.wal_commits = self.wal.commits();
        s.wal_bytes = self.wal.committed_bytes();
        s
    }
}

/// Default automatic-snapshot cadence, in ticks.
pub const DEFAULT_SNAPSHOT_EVERY: u64 = 256;

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("paradise-dur-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_open_then_reopen_replays() {
        let dir = tmp("fresh");
        let opened = Durability::open(&dir).unwrap();
        assert!(opened.snapshot.is_none());
        let mut d = opened.durability;
        d.initial_snapshot(SnapshotData::default()).unwrap();
        d.record(&WalRecord::SetPolicy {
            version: 1,
            module: "M".into(),
            xml: "<x/>".into(),
            session: 0,
            seq: 0,
        });
        d.record(&WalRecord::RemoveQuery { slot: 0, generation: 0 });
        d.commit().unwrap();
        drop(d);

        let opened = Durability::open(&dir).unwrap();
        assert!(opened.snapshot.is_some());
        assert_eq!(opened.records.len(), 2);
        let s = opened.durability.stats();
        assert!(s.recovered);
        assert_eq!(s.replayed, 2);
        assert_eq!(s.generation, 1);
    }

    #[test]
    fn rotation_keeps_a_fallback_generation() {
        let dir = tmp("rotate");
        let mut d = Durability::open(&dir).unwrap().durability;
        d.initial_snapshot(SnapshotData::default()).unwrap();
        d.record(&WalRecord::RemoveQuery { slot: 1, generation: 1 });
        d.rotate_snapshot(SnapshotData::default()).unwrap(); // gen 2
        d.record(&WalRecord::RemoveQuery { slot: 2, generation: 2 });
        d.rotate_snapshot(SnapshotData::default()).unwrap(); // gen 3
        drop(d);

        let (snaps, wals) = list_generations(&RealVfs::shared(), &dir).unwrap();
        assert_eq!(snaps, vec![2, 3], "generation 1 was cleaned up");
        assert_eq!(wals, vec![2, 3]);

        // corrupt the newest snapshot: recovery falls back to gen 2
        // and replays wal.2 + wal.3
        std::fs::write(snapshot_path(&dir, 3), b"garbage").unwrap();
        let mut d = Durability::open(&dir).unwrap().durability;
        let s = d.stats();
        assert_eq!(s.corrupt_snapshots, 1);
        assert_eq!(s.generation, 3, "appending resumes on the newest log");
        d.record(&WalRecord::RemoveQuery { slot: 3, generation: 3 });
        d.commit().unwrap();
        drop(d);
        let opened = Durability::open(&dir).unwrap();
        assert_eq!(opened.snapshot.unwrap().generation, 2);
        assert_eq!(opened.records.len(), 2, "wal.2's record replays after the fallback");
    }

    #[test]
    fn all_generations_corrupt_is_a_typed_error() {
        let dir = tmp("allbad");
        let mut d = Durability::open(&dir).unwrap().durability;
        d.initial_snapshot(SnapshotData::default()).unwrap();
        d.rotate_snapshot(SnapshotData::default()).unwrap();
        drop(d);
        std::fs::write(snapshot_path(&dir, 1), b"").unwrap();
        std::fs::write(snapshot_path(&dir, 2), b"bad").unwrap();
        assert!(matches!(Durability::open(&dir), Err(CoreError::Corrupt(_))));
    }

    #[test]
    fn second_open_of_a_live_directory_is_locked() {
        let dir = tmp("locked");
        let mut d = Durability::open(&dir).unwrap().durability;
        d.initial_snapshot(SnapshotData::default()).unwrap();
        assert!(matches!(Durability::open(&dir), Err(CoreError::Locked(_))));
        drop(d);
        // released on drop: reopen works (and a failed open released
        // its own claim too)
        let mut d = Durability::open(&dir).unwrap().durability;
        d.release_lock();
        drop(Durability::open(&dir).unwrap().durability);
    }

    #[test]
    fn logs_without_any_snapshot_are_corrupt() {
        let dir = tmp("nosnap");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(wal_path(&dir, 4), b"").unwrap();
        assert!(matches!(Durability::open(&dir), Err(CoreError::Corrupt(_))));
    }
}
