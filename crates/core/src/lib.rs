//! # paradise-core
//!
//! The PArADISE privacy-aware query processor — the primary contribution
//! of *Privacy Protection through Query Rewriting in Smart Environments*
//! (Grunert & Heuer, EDBT 2016):
//!
//! * [`preprocess`](crate::preprocess::preprocess()) — policy-driven query
//!   rewriting (§3.1): projection masking, relation substitution,
//!   condition injection, aggregation enforcement;
//! * [`fragment_query`](crate::fragment::fragment_query()) — vertical
//!   fragmentation `Q → Q1 … Qj, Qδ` over the sensor/appliance/PC/cloud
//!   hierarchy (§4);
//! * [`postprocess`](crate::postprocess::postprocess()) — result
//!   anonymization with automatic column-wise vs. tuple-wise selection
//!   and the paper's information-loss metrics (§3.2);
//! * [`containment`] — the conjunctive-query containment check the paper
//!   poses as its open problem (§4.1/§5);
//! * [`Runtime`] — the continuous-query runtime: register a query once,
//!   ingest stream batches, tick all registered queries (in parallel),
//!   swap policies live with exact cache invalidation;
//! * [`Processor`] — the one-shot Figure 2 pipeline (the session the
//!   runtime ticks registered queries through).
//!
//! ```
//! use paradise_core::{Runtime, ProcessingChain};
//! use paradise_nodes::SmartRoomSim;
//! use paradise_policy::figure4_policy;
//! use paradise_sql::parse_query;
//!
//! let mut runtime = Runtime::new(ProcessingChain::apartment())
//!     .with_policy("ActionFilter", figure4_policy().modules.remove(0));
//! let mut sim = SmartRoomSim::new(7);
//! runtime.install_source("motion-sensor", "stream", sim.ubisense_positions(50)).unwrap();
//!
//! let q = parse_query(
//!     "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) \
//!      FROM (SELECT x, y, z, t FROM stream)").unwrap();
//! let handle = runtime.register("ActionFilter", &q).unwrap();
//! runtime.ingest("motion-sensor", "stream", sim.ubisense_positions(10)).unwrap();
//! let outcomes = runtime.tick().unwrap();
//! assert_eq!(outcomes[0].0, handle);
//! assert_eq!(outcomes[0].1.stages.len(), 4); // sensor, appliance, media center, server
//! ```

#![warn(missing_docs)]

pub mod checks;
pub mod containment;
pub mod containment_ext;
pub mod dp;
pub mod error;
pub mod fragment;
mod incremental;
pub mod postprocess;
pub mod preprocess;
pub mod processor;
pub mod remainder;
pub mod runtime;
pub mod storage;
pub mod stream_gate;

pub use checks::{
    capacity_check, compare_frames, information_gain_check, CapacityDecision,
    InformationGainReport,
};
pub use containment::{attack_answerable, Atom, ConjunctiveQuery, Term};
pub use containment_ext::{range_attack_answerable, Interval, RangeQuery};
pub use dp::{derive_plan as derive_dp_plan, derive_seed as derive_dp_seed, lower_clamps, DpPlan};
pub use error::{CoreError, CoreResult};
pub use fragment::{
    assign_to_chain, fragment_query, minimal_level, AssignmentPolicy, Fragment, FragmentPlan,
};
pub use postprocess::{postprocess, AnonDecision, AnonStrategy, PostprocessOutcome};
pub use preprocess::{preprocess, PreprocessOptions, PreprocessOutcome, RewriteAction};
pub use processor::{Outcome, PlanCacheStats, Processor, ProcessorOptions};
pub use remainder::{filter_by_class, identity, ActionClass, Remainder};
pub use runtime::{HandleStats, QueryHandle, Runtime, RuntimeStats};
pub use storage::DurabilityStats;
pub use stream_gate::{GateDecision, IncrementalSensor, StreamGate};

// Re-export the chain type users need to construct a processor.
pub use paradise_nodes::ProcessingChain;
