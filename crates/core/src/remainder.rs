//! The non-SQL remainder `Qδ` (paper §4.2).
//!
//! The paper's running example wraps the SQL query in R code:
//! `filterByClass(sqldf(…), action="walk", do.plot=F)` — a machine
//! learning stage that cannot be pushed down. We model remainders as
//! opaque transformations over the returned frame, with
//! [`filter_by_class`] reproducing the example's behaviour: classify each
//! row's movement from the regression output and keep those matching the
//! requested action class.

use paradise_engine::{DataType, Frame, Schema, Value};

/// An opaque cloud-side stage applied to the shipped result `d'`.
pub struct Remainder {
    /// Display name (e.g. `filterByClass(d', action='walk')`).
    pub name: String,
    /// The transformation.
    func: Box<dyn Fn(Frame) -> Frame + Send + Sync>,
}

impl std::fmt::Debug for Remainder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Remainder").field("name", &self.name).finish()
    }
}

impl Remainder {
    /// Wrap an arbitrary transformation.
    pub fn new(
        name: impl Into<String>,
        func: impl Fn(Frame) -> Frame + Send + Sync + 'static,
    ) -> Self {
        Remainder { name: name.into(), func: Box::new(func) }
    }

    /// Apply to a frame.
    pub fn apply(&self, frame: Frame) -> Frame {
        (self.func)(frame)
    }
}

/// The activity classes of the paper's scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionClass {
    /// Person is walking (gait makes the regression output vary).
    Walk,
    /// Person is standing (regression output steady).
    Stand,
}

impl ActionClass {
    /// Label as used in the R call (`action='walk'`).
    pub fn label(&self) -> &'static str {
        match self {
            ActionClass::Walk => "walk",
            ActionClass::Stand => "stand",
        }
    }
}

/// Reproduce `filterByClass(d', action=…)`: classify each row of the
/// regression result by the magnitude of its first (numeric) column's
/// deviation from the column mean — walking gaits produce varying
/// regression intercepts, standing produces steady ones — and keep the
/// rows of the requested class, appending an `action` column.
pub fn filter_by_class(action: ActionClass) -> Remainder {
    Remainder::new(
        format!("filterByClass(d', action='{}', do.plot=F)", action.label()),
        move |frame: Frame| {
            let n = frame.len();
            let Some(col) = (0..frame.schema.len())
                .find(|&c| (0..n).any(|i| frame.column(c).as_f64(i).is_some()))
            else {
                return frame;
            };
            // column-at-a-time: one pass over the numeric buffer
            let data = frame.column(col);
            let values: Vec<Option<f64>> = (0..n).map(|i| data.as_f64(i)).collect();
            let present: Vec<f64> = values.iter().filter_map(|v| *v).collect();
            if present.is_empty() {
                return frame;
            }
            let mean = present.iter().sum::<f64>() / present.len() as f64;
            let var = present.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / present.len() as f64;
            let sd = var.sqrt();
            // a row is "walking" when its value deviates from the mean by
            // more than half a standard deviation
            let threshold = 0.5 * sd;
            let mask: Vec<bool> = values
                .iter()
                .map(|v| {
                    let class = match v {
                        Some(x) if (x - mean).abs() > threshold => ActionClass::Walk,
                        _ => ActionClass::Stand,
                    };
                    class == action
                })
                .collect();
            let mut out = frame.filter_rows(&mask);
            // every kept row belongs to the requested class
            let labels = paradise_engine::ColumnData::from_values(vec![
                Value::Str(action.label().to_string());
                out.len()
            ]);
            out.push_column(paradise_engine::Column::new("action", DataType::Text), labels)
                .expect("label column matches row count");
            out
        },
    )
}

/// An identity remainder (no cloud-side post-stage).
pub fn identity() -> Remainder {
    Remainder::new("identity", |frame| frame)
}

/// Helper to build a frame schema-compatible with the regression output
/// of the paper's window query (single intercept column).
pub fn regression_output_schema() -> Schema {
    Schema::from_pairs(&[("regr_intercept", DataType::Float)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regression_frame(values: &[f64]) -> Frame {
        Frame::new(
            regression_output_schema(),
            values.iter().map(|v| vec![Value::Float(*v)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn identity_passes_through() {
        let f = regression_frame(&[1.0, 2.0]);
        let out = identity().apply(f.clone());
        assert_eq!(out, f);
    }

    #[test]
    fn filter_by_class_splits_walkers_and_standers() {
        // steady cluster at 1.0 with two outliers (the "walkers")
        let f = regression_frame(&[1.0, 1.0, 1.0, 1.0, 5.0, -3.0]);
        let walk = filter_by_class(ActionClass::Walk).apply(f.clone());
        let stand = filter_by_class(ActionClass::Stand).apply(f.clone());
        assert_eq!(walk.len() + stand.len(), f.len());
        assert_eq!(walk.len(), 2);
        // the appended action column labels correctly
        assert!(walk.iter_rows().all(|r| r.last() == Some(&Value::Str("walk".into()))));
        assert!(stand.iter_rows().all(|r| r.last() == Some(&Value::Str("stand".into()))));
    }

    #[test]
    fn filter_by_class_on_empty_frame() {
        let f = Frame::empty(regression_output_schema());
        let out = filter_by_class(ActionClass::Walk).apply(f);
        assert!(out.is_empty());
    }

    #[test]
    fn filter_by_class_handles_nulls() {
        let mut f = regression_frame(&[1.0, 1.0, 4.0]);
        f.push_row(vec![Value::Null]).unwrap();
        let out = filter_by_class(ActionClass::Stand).apply(f);
        // nulls classify as standing
        assert!(out.column_values(0).any(|v| v.is_null()));
    }

    #[test]
    fn remainder_name_matches_paper_call() {
        let r = filter_by_class(ActionClass::Walk);
        assert_eq!(r.name, "filterByClass(d', action='walk', do.plot=F)");
    }
}
