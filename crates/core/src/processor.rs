//! The end-to-end privacy-aware query processor (paper Figure 2):
//! preprocessor → vertical fragmentation → distributed execution →
//! postprocessor/anonymization → (cloud) remainder.

use std::collections::HashMap;

use paradise_engine::{Catalog, Frame};
use paradise_nodes::{ProcessingChain, Stage, StageReport, TrafficLog};
use paradise_policy::ModulePolicy;
use paradise_sql::ast::Query;

use crate::checks::{information_gain_check, InformationGainReport};
use crate::error::{CoreError, CoreResult};
use crate::fragment::{assign_to_chain, fragment_query, AssignmentPolicy, FragmentPlan};
use crate::postprocess::{postprocess, AnonStrategy, PostprocessOutcome};
use crate::preprocess::{preprocess, PreprocessOptions, PreprocessOutcome};
use crate::remainder::Remainder;

/// Processor configuration.
#[derive(Debug, Clone)]
pub struct ProcessorOptions {
    /// Preprocessor options (relation substitutions…).
    pub preprocess: PreprocessOptions,
    /// Fragment-to-node assignment policy.
    pub assignment: AssignmentPolicy,
    /// Anonymization strategy for the postprocessor.
    pub anon: AnonStrategy,
    /// If set, run the §3.1 information-gain check against the raw data
    /// and refuse rewritings that lose more than this KL threshold.
    pub info_gain_threshold: Option<f64>,
    /// Cache fragment plans keyed by (module, query), so repeated
    /// continuous-query runs skip preprocessing and fragmentation.
    pub plan_cache: bool,
}

impl Default for ProcessorOptions {
    fn default() -> Self {
        ProcessorOptions {
            preprocess: PreprocessOptions::default(),
            assignment: AssignmentPolicy::default(),
            anon: AnonStrategy::default(),
            info_gain_threshold: None,
            plan_cache: true,
        }
    }
}

/// Upper bound on cached fragment plans before the cache resets.
const MAX_CACHED_PLANS: usize = 1024;

/// A cached (preprocess, fragmentation) result for one
/// (module, query, schema fingerprint) triple. Node assignment is
/// *not* cached — it depends on live chain state and is cheap to
/// re-derive.
#[derive(Debug, Clone)]
struct CachedPlan {
    /// The original query (verified on every hit, so a hash collision
    /// can never serve a wrong plan).
    query: Query,
    pre: PreprocessOutcome,
    plan: FragmentPlan,
    /// Base tables of the query, inputs of `fingerprint`.
    tables: Vec<String>,
    /// Fingerprint of the source-table schemas across the chain at
    /// caching time; a mismatch invalidates the entry.
    fingerprint: u64,
}

/// Hit/miss counters of the fragment-plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Runs served from the cache.
    pub hits: u64,
    /// Runs that had to preprocess + fragment from scratch.
    pub misses: u64,
    /// Misses caused by a source-schema change under a cached plan
    /// (also counted in `misses`).
    pub invalidations: u64,
}

/// Fingerprint the schemas of `tables` as installed anywhere in
/// `chain` (first node owning each table wins; absent tables hash as
/// absent). Drives fragment-plan invalidation on schema change, for
/// both the one-shot [`Processor`] and the continuous-query
/// [`Runtime`](crate::runtime::Runtime).
pub(crate) fn source_fingerprint(chain: &ProcessingChain, tables: &[String]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for t in tables {
        t.hash(&mut h);
        let schema = chain
            .nodes()
            .iter()
            .find_map(|n| n.catalog.get(t).ok().map(|f| &f.schema));
        match schema {
            Some(s) => paradise_engine::plan::schema_hash(s).hash(&mut h),
            None => u64::MAX.hash(&mut h),
        }
    }
    h.finish()
}

/// §3.2: the anonymization runs at the last stage's node if powerful
/// enough, otherwise data escalates to the next node that supports it.
pub(crate) fn anonymization_site(chain: &ProcessingChain, stages: &[Stage]) -> String {
    let last_node = stages.last().map(|s| s.node.as_str()).unwrap_or_default();
    let nodes = chain.nodes();
    let start = nodes.iter().position(|n| n.name == last_node).unwrap_or(0);
    nodes[start..]
        .iter()
        .find(|n| n.capability.supports_anonymization)
        .map(|n| n.name.clone())
        .unwrap_or_else(|| last_node.to_string())
}

/// The per-run execution path shared by the one-shot [`Processor`] and
/// the per-handle tick of the continuous-query
/// [`Runtime`](crate::runtime::Runtime): assign the (already rewritten,
/// already fragmented) query to the live chain, execute bottom-up, run
/// the anonymization step `A` and the optional cloud remainder.
///
/// Frames are handed between the stages by *sharing column buffers*
/// (`Frame::clone` bumps per-column `Arc`s): between the `run_stages`
/// output and `Outcome.result` no row or cell is copied — `shipped`,
/// the postprocessor input, `post.frame` and `result` all reference the
/// same buffers unless a stage actually rewrites data.
pub(crate) fn execute_pipeline(
    chain: &mut ProcessingChain,
    pre: PreprocessOutcome,
    plan: FragmentPlan,
    information_gain: Option<InformationGainReport>,
    options: &ProcessorOptions,
    remainder: Option<&Remainder>,
) -> CoreResult<Outcome> {
    // 3b. assign to the (live) chain
    let stages = assign_to_chain(&plan, chain, options.assignment)?;

    // 4. execute bottom-up across the chain
    let run = chain.run_stages(&stages)?;

    // 5.–6. anonymization + remainder
    assemble_outcome(chain, pre, plan, stages, run, information_gain, options, remainder)
}

/// The tail every execution path shares — one-shot, full-rescan tick
/// and incremental tick: anonymization step `A` at the most powerful
/// in-apartment node, the optional cloud remainder, and the assembled
/// [`Outcome`]. The postprocessor input shares the shipped frame's
/// buffers; with no rewriting stage, `shipped`, `post.frame` and
/// `result` stay pointer-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn assemble_outcome(
    chain: &ProcessingChain,
    pre: PreprocessOutcome,
    plan: FragmentPlan,
    stages: Vec<Stage>,
    run: paradise_nodes::ChainRun,
    information_gain: Option<InformationGainReport>,
    options: &ProcessorOptions,
    remainder: Option<&Remainder>,
) -> CoreResult<Outcome> {
    // 5. anonymization step A at the most powerful in-apartment node
    let anonymized_at = anonymization_site(chain, &stages);
    let shipped = run.result;
    let post = postprocess(shipped.clone(), &options.anon)?;

    // 6. cloud remainder (shares `post.frame`'s buffers when absent)
    let (result, remainder_applied) = match remainder {
        Some(r) => (r.apply(post.frame.clone()), Some(r.name.clone())),
        None => (post.frame.clone(), None),
    };

    Ok(Outcome {
        preprocess: pre,
        information_gain,
        plan,
        stages,
        stage_reports: run.stages,
        traffic: run.traffic,
        shipped,
        anonymized_at,
        post,
        remainder_applied,
        result,
    })
}

/// The PArADISE processor bound to a node chain: the original one-shot
/// `run(module, query)` entry point.
///
/// For *continuous* queries — the paper's actual setting — prefer the
/// registration-based [`Runtime`](crate::runtime::Runtime): it
/// preprocesses, fragments and compiles once per registered query,
/// supports live policy swaps with exact cache invalidation, ingests
/// stream batches, and fans multi-query ticks out across chains.
pub struct Processor {
    chain: ProcessingChain,
    policies: HashMap<String, ModulePolicy>,
    options: ProcessorOptions,
    remainder: Option<Remainder>,
    plan_cache: HashMap<(String, u64), CachedPlan>,
    cache_stats: PlanCacheStats,
}

/// Everything a processor run produces, for inspection and experiments.
#[derive(Debug)]
pub struct Outcome {
    /// Preprocessing (rewriting) report.
    pub preprocess: PreprocessOutcome,
    /// Information-gain report, when the check was enabled.
    pub information_gain: Option<InformationGainReport>,
    /// The fragmentation plan.
    pub plan: FragmentPlan,
    /// The stages as assigned to chain nodes.
    pub stages: Vec<Stage>,
    /// Per-stage execution reports.
    pub stage_reports: Vec<StageReport>,
    /// Traffic between nodes.
    pub traffic: TrafficLog,
    /// The raw shipped result `d'` before anonymization.
    pub shipped: Frame,
    /// Node at which the anonymization step `A` ran.
    pub anonymized_at: String,
    /// Postprocessing (anonymization) outcome; `frame` is what leaves
    /// the apartment.
    pub post: PostprocessOutcome,
    /// Name of the applied cloud remainder, if any.
    pub remainder_applied: Option<String>,
    /// Final result after the remainder.
    pub result: Frame,
}

impl Processor {
    /// Processor over a chain with default options.
    pub fn new(chain: ProcessingChain) -> Self {
        Processor {
            chain,
            policies: HashMap::new(),
            options: ProcessorOptions::default(),
            remainder: None,
            plan_cache: HashMap::new(),
            cache_stats: PlanCacheStats::default(),
        }
    }

    /// Builder: install a module policy. Invalidates any cached plans of
    /// the module (the policy drives the rewriting).
    #[must_use]
    pub fn with_policy(mut self, module_id: impl Into<String>, policy: ModulePolicy) -> Self {
        let module: String = module_id.into();
        self.plan_cache.retain(|(m, _), _| m != &module);
        self.policies.insert(module, policy);
        self
    }

    /// Builder: set options. Clears the plan cache (preprocess options
    /// affect the rewriting).
    #[must_use]
    pub fn with_options(mut self, options: ProcessorOptions) -> Self {
        self.plan_cache.clear();
        self.options = options;
        self
    }

    /// Hit/miss counters of the fragment-plan cache.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.cache_stats
    }

    /// Aggregated hit/miss/invalidation counters of the chain nodes'
    /// compiled-plan caches (the engine-level cache layer; see
    /// `paradise_engine::plan::PlanCache`).
    pub fn engine_plan_stats(&self) -> paradise_engine::plan::PlanCacheStats {
        let mut total = paradise_engine::plan::PlanCacheStats::default();
        for node in self.chain.nodes() {
            let s = node.plan_cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.invalidations += s.invalidations;
        }
        total
    }

    /// Builder: set the cloud remainder stage.
    #[must_use]
    pub fn with_remainder(mut self, remainder: Remainder) -> Self {
        self.remainder = Some(remainder);
        self
    }

    /// Install source data (the raw sensor stream) at a chain node.
    pub fn install_source(&mut self, node: &str, table: &str, frame: Frame) -> CoreResult<()> {
        self.chain.node_mut(node)?.install_table(table, frame);
        Ok(())
    }

    /// Borrow the chain (e.g. to inspect node statistics).
    pub fn chain(&self) -> &ProcessingChain {
        &self.chain
    }

    /// A merged catalog of every node's tables — the hypothetical
    /// integrated database `d` of the paper, used for baselines and the
    /// information-gain check.
    pub fn integrated_catalog(&self) -> Catalog {
        let mut merged = Catalog::new();
        for node in self.chain.nodes() {
            for table in node.catalog.table_names() {
                if let Ok(frame) = node.catalog.get(table) {
                    merged.register_or_replace(table, frame.clone());
                }
            }
        }
        merged
    }

    /// Run a query for a module: the full Figure 2 pipeline, as a
    /// one-shot session over the same execution path the
    /// [`Runtime`](crate::runtime::Runtime) ticks registered queries
    /// through.
    ///
    /// **Deprecation note:** for continuous queries, prefer
    /// [`Runtime::register`](crate::runtime::Runtime::register) +
    /// [`Runtime::tick`](crate::runtime::Runtime::tick) — callers then
    /// stop re-submitting the query per tick, policies become hot-
    /// swappable via
    /// [`Runtime::set_policy`](crate::runtime::Runtime::set_policy), and
    /// independent queries tick in parallel. `Processor::run` stays for
    /// one-shot/ad-hoc runs and as the serial reference the runtime's
    /// equivalence tests compare against.
    ///
    /// Frames are handed between the stages by *sharing column buffers*
    /// (`Frame::clone` bumps per-column `Arc`s): between the
    /// `run_stages` output and `Outcome.result` no row or cell is
    /// copied — `shipped`, the postprocessor input, `post.frame` and
    /// `result` all reference the same buffers unless a stage actually
    /// rewrites data. `shares_columns` tests pin this down.
    pub fn run(&mut self, module_id: &str, query: &Query) -> CoreResult<Outcome> {
        if !self.policies.contains_key(module_id) {
            return Err(CoreError::NoPolicy(module_id.to_string()));
        }

        // 1. preprocess (rewrite under the policy) + 3a. fragment —
        // cached per (module, query, schema fingerprint) so continuous
        // queries skip both. The key hashes the query AST directly
        // (no SQL rendering per tick); a hit verifies the stored AST,
        // so hash collisions can never serve a wrong plan, and a
        // source-schema change invalidates the entry.
        let key = (module_id.to_string(), paradise_engine::plan::ast_key(query));
        let (pre, plan) = if self.options.plan_cache {
            let cached = self.plan_cache.get(&key).and_then(|c| {
                if c.query != *query {
                    return None; // hash collision: recompute
                }
                if source_fingerprint(&self.chain, &c.tables) != c.fingerprint {
                    return Some(None); // schemas changed: invalidate
                }
                Some(Some((c.pre.clone(), c.plan.clone())))
            });
            match cached {
                Some(Some(hit)) => {
                    self.cache_stats.hits += 1;
                    hit
                }
                stale => {
                    self.cache_stats.misses += 1;
                    if matches!(stale, Some(None)) {
                        self.cache_stats.invalidations += 1;
                    }
                    let policy = &self.policies[module_id];
                    let pre = preprocess(query, policy, &self.options.preprocess)?;
                    let plan = fragment_query(&pre.query)?;
                    // bound the cache: a stream of distinct ad-hoc queries
                    // must not grow memory forever (epoch-style reset)
                    if self.plan_cache.len() >= MAX_CACHED_PLANS {
                        self.plan_cache.clear();
                    }
                    let tables = paradise_sql::analysis::base_relations(query);
                    let fingerprint = source_fingerprint(&self.chain, &tables);
                    self.plan_cache.insert(
                        key,
                        CachedPlan {
                            query: query.clone(),
                            pre: pre.clone(),
                            plan: plan.clone(),
                            tables,
                            fingerprint,
                        },
                    );
                    (pre, plan)
                }
            }
        } else {
            let policy = &self.policies[module_id];
            let pre = preprocess(query, policy, &self.options.preprocess)?;
            let plan = fragment_query(&pre.query)?;
            (pre, plan)
        };

        // 2. information-gain check (optional)
        let information_gain = match self.options.info_gain_threshold {
            Some(threshold) => {
                let catalog = self.integrated_catalog();
                Some(information_gain_check(&catalog, query, &pre.query, threshold)?)
            }
            None => None,
        };

        // 3b.–6. the shared execution path (assignment, bottom-up
        // execution, anonymization, remainder)
        execute_pipeline(
            &mut self.chain,
            pre,
            plan,
            information_gain,
            &self.options,
            self.remainder.as_ref(),
        )
    }

    /// Baseline for the Figure 3 experiment: ship the raw integrated
    /// data `d` to the cloud and execute the original query there.
    /// Returns the result and the bytes that would leave the apartment.
    pub fn cloud_baseline(&self, query: &Query) -> CoreResult<(Frame, usize)> {
        let catalog = self.integrated_catalog();
        let raw_bytes: usize = catalog
            .table_names()
            .iter()
            .filter_map(|t| catalog.get(t).ok())
            .map(Frame::size_bytes)
            .sum();
        let executor = paradise_engine::Executor::new(&catalog);
        let result = executor.execute(query)?;
        Ok((result, raw_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_nodes::SmartRoomSim;
    use paradise_policy::figure4_policy;
    use paradise_sql::parse_query;

    const PAPER_ORIGINAL: &str =
        "SELECT regr_intercept(y, x) OVER (PARTITION BY z ORDER BY t) \
         FROM (SELECT x, y, z, t FROM stream)";

    fn processor() -> Processor {
        let mut p = Processor::new(ProcessingChain::apartment())
            .with_policy("ActionFilter", figure4_policy().modules.remove(0));
        // a meeting-sized population so that standing groups survive the
        // Figure-4 policy's SUM(z) > 100 threshold
        let config = paradise_nodes::SmartRoomConfig {
            persons: 10,
            switch_probability: 0.003,
            ..Default::default()
        };
        let mut sim = SmartRoomSim::with_config(42, config);
        p.install_source("motion-sensor", "stream", sim.ubisense_positions(500))
            .unwrap();
        p
    }

    #[test]
    fn end_to_end_paper_pipeline() {
        let mut p = processor();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let outcome = p.run("ActionFilter", &q).unwrap();

        // four fragments on the paper's nodes
        let nodes: Vec<&str> = outcome.stages.iter().map(|s| s.node.as_str()).collect();
        assert_eq!(
            nodes,
            vec!["motion-sensor", "appliance", "media-center", "local-server"]
        );
        // traffic decreases toward the top
        assert!(outcome.traffic.hops.len() >= 2);
        // anonymization at the local server (first node from the top
        // stage that supports it)
        assert_eq!(outcome.anonymized_at, "local-server");
        assert_eq!(outcome.result.schema.len(), outcome.post.frame.schema.len());
    }

    #[test]
    fn missing_policy_is_an_error() {
        let mut p = processor();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        assert!(matches!(
            p.run("UnknownModule", &q),
            Err(CoreError::NoPolicy(_))
        ));
    }

    #[test]
    fn cloud_baseline_ships_everything() {
        let p = processor();
        let q = parse_query("SELECT x, y, z, t FROM stream").unwrap();
        let (result, raw_bytes) = p.cloud_baseline(&q).unwrap();
        assert_eq!(result.len(), 5000); // 500 steps × 10 persons
        assert_eq!(raw_bytes, p.integrated_catalog().get("stream").unwrap().size_bytes());
    }

    #[test]
    fn paradise_ships_less_than_baseline() {
        let mut p = processor();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let (_, raw_bytes) = p.cloud_baseline(&q).unwrap();
        let outcome = p.run("ActionFilter", &q).unwrap();
        let shipped = outcome.traffic.last_hop_bytes();
        assert!(
            shipped < raw_bytes,
            "PArADISE shipped {shipped} bytes, baseline {raw_bytes}"
        );
    }

    #[test]
    fn info_gain_check_can_reject() {
        let mut p = processor();
        p.options.info_gain_threshold = Some(1e-12); // impossibly tight
        // a flat query whose output columns survive rewriting, so the
        // distributions are actually comparable
        let q = parse_query("SELECT x, y, z, t FROM stream").unwrap();
        let err = p.run("ActionFilter", &q).unwrap_err();
        assert!(matches!(err, CoreError::InsufficientInformation { .. }));
    }

    #[test]
    fn info_gain_check_passes_with_loose_threshold() {
        let mut p = processor();
        p.options.info_gain_threshold = Some(1e6);
        let q = parse_query("SELECT x, y, z, t FROM stream").unwrap();
        let outcome = p.run("ActionFilter", &q).unwrap();
        let report = outcome.information_gain.unwrap();
        assert!(report.divergence > 0.0);
        assert!(!report.compared_columns.is_empty());
    }

    #[test]
    fn remainder_is_applied_at_the_cloud() {
        let mut p = processor().with_remainder(crate::remainder::filter_by_class(
            crate::remainder::ActionClass::Walk,
        ));
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let outcome = p.run("ActionFilter", &q).unwrap();
        assert!(outcome.remainder_applied.as_deref().unwrap().contains("filterByClass"));
        // the remainder appends the action column
        assert_eq!(
            outcome.result.schema.len(),
            outcome.post.frame.schema.len() + 1
        );
    }

    #[test]
    fn plan_cache_serves_repeated_runs() {
        let mut p = processor();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let first = p.run("ActionFilter", &q).unwrap();
        let second = p.run("ActionFilter", &q).unwrap();
        let stats = p.plan_cache_stats();
        assert_eq!(stats.misses, 1, "first run preprocesses + fragments");
        assert_eq!(stats.hits, 1, "second run is served from the cache");
        assert_eq!(first.preprocess.query, second.preprocess.query);
        assert_eq!(first.plan, second.plan);
    }

    #[test]
    fn plan_cache_invalidates_on_source_schema_change() {
        let mut p = processor();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        p.run("ActionFilter", &q).unwrap();
        p.run("ActionFilter", &q).unwrap();
        assert_eq!(p.plan_cache_stats().hits, 1);
        assert_eq!(p.plan_cache_stats().invalidations, 0);

        // re-install the source under a wider schema: the cached plan
        // must be invalidated, not silently reused
        let old = p.chain().node("motion-sensor").unwrap().catalog.get("stream").unwrap().clone();
        let mut schema = old.schema.clone();
        schema.push(paradise_engine::Column::new("w", paradise_engine::DataType::Float));
        let rows: Vec<Vec<paradise_engine::Value>> = old
            .iter_rows()
            .map(|mut r| {
                r.push(paradise_engine::Value::Float(0.0));
                r
            })
            .collect();
        let widened = paradise_engine::Frame::new(schema, rows).unwrap();
        p.install_source("motion-sensor", "stream", widened).unwrap();

        p.run("ActionFilter", &q).unwrap();
        let stats = p.plan_cache_stats();
        assert_eq!(stats.invalidations, 1, "schema change must invalidate");
        assert_eq!(stats.misses, 2);
        // and the refreshed entry is served again afterwards
        p.run("ActionFilter", &q).unwrap();
        assert_eq!(p.plan_cache_stats().hits, 2);
    }

    #[test]
    fn node_plan_caches_warm_across_runs() {
        let mut p = processor();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        p.run("ActionFilter", &q).unwrap();
        let cold = p.engine_plan_stats();
        assert_eq!(cold.hits, 0, "first tick compiles every stage");
        assert!(cold.misses >= 4);
        p.run("ActionFilter", &q).unwrap();
        let warm = p.engine_plan_stats();
        assert!(warm.hits >= 4, "second tick reuses every stage plan: {warm:?}");
        assert_eq!(warm.misses, cold.misses, "no recompilation on the warm tick");
    }

    #[test]
    fn plan_cache_can_be_disabled() {
        let mut p = processor().with_options(ProcessorOptions {
            plan_cache: false,
            ..ProcessorOptions::default()
        });
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        p.run("ActionFilter", &q).unwrap();
        p.run("ActionFilter", &q).unwrap();
        assert_eq!(p.plan_cache_stats(), PlanCacheStats::default());
    }

    #[test]
    fn pipeline_output_shares_buffers_with_shipped() {
        // with anonymization off and no remainder, the final result IS
        // the shipped frame: between the run_stages output and
        // Outcome.result no frame/row is copied, only Arcs are bumped
        let mut p = processor().with_options(ProcessorOptions {
            anon: AnonStrategy::None,
            ..ProcessorOptions::default()
        });
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        let outcome = p.run("ActionFilter", &q).unwrap();
        assert!(outcome.post.frame.shares_columns(&outcome.shipped));
        assert!(outcome.result.shares_columns(&outcome.shipped));
    }

    #[test]
    fn stats_accumulate_on_nodes() {
        let mut p = processor();
        let q = parse_query(PAPER_ORIGINAL).unwrap();
        p.run("ActionFilter", &q).unwrap();
        let sensor = p.chain().node("motion-sensor").unwrap();
        assert_eq!(sensor.stats.fragments_executed, 1);
        assert_eq!(sensor.stats.rows_in, 5000);
    }
}
