//! Containment for conjunctive queries **with comparison predicates**
//! (CQ¬ / semi-interval queries) — the extension the paper's use case
//! actually needs: the revealed view filters `z < 2`, and attack queries
//! carry inequalities too.
//!
//! A [`RangeQuery`] is a [`ConjunctiveQuery`] plus per-variable interval
//! constraints. Containment `Q1 ⊆ Q2` is tested with the classical
//! homomorphism condition *strengthened* by constraint implication: for
//! every homomorphism candidate, each comparison constraint of the
//! container `Q2` must be implied by the constraints of `Q1` on the
//! mapped variable (Klug's condition for semi-interval queries, where
//! the homomorphism test remains sound and complete).

use std::collections::HashMap;

use paradise_sql::ast::{BinaryOp, Expr, Literal, Query};

use crate::containment::{ConjunctiveQuery, Term};
use crate::error::{CoreError, CoreResult};

/// A closed/open numeric interval constraint attached to one variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower bound (−∞ when `f64::NEG_INFINITY`).
    pub lo: f64,
    /// Is the lower bound included?
    pub lo_closed: bool,
    /// Upper bound (+∞ when `f64::INFINITY`).
    pub hi: f64,
    /// Is the upper bound included?
    pub hi_closed: bool,
}

impl Interval {
    /// The unconstrained interval (−∞, +∞).
    pub const FULL: Interval =
        Interval { lo: f64::NEG_INFINITY, lo_closed: false, hi: f64::INFINITY, hi_closed: false };

    /// Interval for a single comparison `var op bound`.
    pub fn from_comparison(op: BinaryOp, bound: f64) -> Option<Interval> {
        Some(match op {
            BinaryOp::Lt => Interval { hi: bound, hi_closed: false, ..Interval::FULL },
            BinaryOp::LtEq => Interval { hi: bound, hi_closed: true, ..Interval::FULL },
            BinaryOp::Gt => Interval { lo: bound, lo_closed: false, ..Interval::FULL },
            BinaryOp::GtEq => Interval { lo: bound, lo_closed: true, ..Interval::FULL },
            BinaryOp::Eq => Interval { lo: bound, lo_closed: true, hi: bound, hi_closed: true },
            _ => return None,
        })
    }

    /// Intersect two intervals.
    #[must_use]
    pub fn intersect(&self, other: &Interval) -> Interval {
        let (lo, lo_closed) = if self.lo > other.lo {
            (self.lo, self.lo_closed)
        } else if other.lo > self.lo {
            (other.lo, other.lo_closed)
        } else {
            (self.lo, self.lo_closed && other.lo_closed)
        };
        let (hi, hi_closed) = if self.hi < other.hi {
            (self.hi, self.hi_closed)
        } else if other.hi < self.hi {
            (other.hi, other.hi_closed)
        } else {
            (self.hi, self.hi_closed && other.hi_closed)
        };
        Interval { lo, lo_closed, hi, hi_closed }
    }

    /// Is the interval empty (no satisfying value)?
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi || (self.lo == self.hi && !(self.lo_closed && self.hi_closed))
    }

    /// Does every value of `self` also satisfy `other` (`self ⊆ other`)?
    pub fn implies(&self, other: &Interval) -> bool {
        if self.is_empty() {
            return true;
        }
        let lo_ok = other.lo < self.lo
            || (other.lo == self.lo && (other.lo_closed || !self.lo_closed));
        let hi_ok = other.hi > self.hi
            || (other.hi == self.hi && (other.hi_closed || !self.hi_closed));
        lo_ok && hi_ok
    }
}

/// A conjunctive query with per-variable interval constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeQuery {
    /// The relational part.
    pub cq: ConjunctiveQuery,
    /// Interval constraint per variable name (missing = unconstrained).
    pub constraints: HashMap<String, Interval>,
}

impl RangeQuery {
    /// Convert a flat SPJ query whose WHERE clause is a conjunction of
    /// `col = col`, `col = const` and `col ⊙ numeric-const` predicates.
    ///
    /// Equality predicates are handled by the underlying CQ conversion;
    /// inequality predicates become interval constraints.
    pub fn from_query(
        query: &Query,
        schemas: &HashMap<String, Vec<String>>,
    ) -> CoreResult<RangeQuery> {
        // split the WHERE clause: equalities stay for the CQ conversion,
        // numeric inequalities become constraints
        let mut equality_conjuncts: Vec<Expr> = Vec::new();
        let mut inequality_conjuncts: Vec<(Expr, BinaryOp, f64)> = Vec::new();
        if let Some(w) = &query.where_clause {
            for conjunct in w.conjuncts() {
                match conjunct {
                    Expr::Binary { left, op, right } if op.is_comparison() => {
                        match (left.as_ref(), op, right.as_ref()) {
                            // numeric point equalities become [v, v]
                            // intervals so that `z = 1` ≡ `z >= 1 AND
                            // z <= 1`; non-numeric equalities (strings,
                            // column=column joins) stay in the CQ core
                            (Expr::Column(_), BinaryOp::Eq, Expr::Literal(lit))
                            | (Expr::Literal(lit), BinaryOp::Eq, Expr::Column(_))
                                if numeric(lit).is_none() =>
                            {
                                equality_conjuncts.push(conjunct.clone())
                            }
                            (_, BinaryOp::Eq, Expr::Column(_))
                                if matches!(left.as_ref(), Expr::Column(_)) =>
                            {
                                equality_conjuncts.push(conjunct.clone())
                            }
                            (Expr::Column(_), op, Expr::Literal(lit)) => {
                                let Some(v) = numeric(lit) else {
                                    return Err(CoreError::UnsupportedQuery(format!(
                                        "non-numeric bound in {conjunct}"
                                    )));
                                };
                                inequality_conjuncts.push((
                                    left.as_ref().clone(),
                                    *op,
                                    v,
                                ));
                            }
                            (Expr::Literal(lit), op, Expr::Column(_)) => {
                                let Some(v) = numeric(lit) else {
                                    return Err(CoreError::UnsupportedQuery(format!(
                                        "non-numeric bound in {conjunct}"
                                    )));
                                };
                                let mirrored = op.mirrored().expect("comparison mirrors");
                                inequality_conjuncts.push((
                                    right.as_ref().clone(),
                                    mirrored,
                                    v,
                                ));
                            }
                            _ => {
                                return Err(CoreError::UnsupportedQuery(format!(
                                    "range-CQ conversion cannot handle {conjunct}"
                                )))
                            }
                        }
                    }
                    other => {
                        return Err(CoreError::UnsupportedQuery(format!(
                            "range-CQ conversion cannot handle {other}"
                        )))
                    }
                }
            }
        }

        // base CQ over the equality part only
        let mut base = query.clone();
        base.where_clause = Expr::conjoin(equality_conjuncts);
        let cq = ConjunctiveQuery::from_query(&base, schemas)?;

        // map each inequality's column to its CQ variable: re-run the
        // resolver logic by building a one-off query per column is
        // wasteful; instead resolve through the atoms (variables are
        // named v{occurrence}_{column}).
        let mut constraints: HashMap<String, Interval> = HashMap::new();
        for (col_expr, op, bound) in inequality_conjuncts {
            let Expr::Column(col) = &col_expr else { unreachable!("matched above") };
            let var = resolve_var(&cq, col).ok_or_else(|| {
                CoreError::UnsupportedQuery(format!(
                    "cannot resolve column {} in range constraints",
                    col.name
                ))
            })?;
            let interval = Interval::from_comparison(op, bound).ok_or_else(|| {
                CoreError::UnsupportedQuery(format!("operator {op:?} in range constraint"))
            })?;
            let entry = constraints.entry(var).or_insert(Interval::FULL);
            *entry = entry.intersect(&interval);
        }
        Ok(RangeQuery { cq, constraints })
    }

    /// Effective constraint of a term: a variable's interval, or the
    /// point interval of a numeric constant.
    fn constraint_of(&self, term: &Term) -> Interval {
        match term {
            Term::Var(v) => self.constraints.get(v).copied().unwrap_or(Interval::FULL),
            Term::Const(lit) => match numeric(lit) {
                Some(v) => Interval { lo: v, lo_closed: true, hi: v, hi_closed: true },
                None => Interval::FULL,
            },
        }
    }

    /// Is `self ⊆ other` for semi-interval conjunctive queries?
    ///
    /// Searches for a homomorphism from `other` into `self` under which
    /// every constraint of `other` is implied by the constraint the
    /// mapped `self`-term carries.
    pub fn is_contained_in(&self, other: &RangeQuery) -> bool {
        if self.cq.head.len() != other.cq.head.len() {
            return false;
        }
        // unsatisfiable query is contained in everything
        if self.constraints.values().any(Interval::is_empty) {
            return true;
        }
        let mut mapping: HashMap<String, Term> = HashMap::new();
        self.search(other, 0, &mut mapping)
    }

    fn search(
        &self,
        other: &RangeQuery,
        index: usize,
        mapping: &mut HashMap<String, Term>,
    ) -> bool {
        if index == other.cq.atoms.len() {
            // head condition
            let heads_ok = other.cq.head.iter().zip(&self.cq.head).all(|(oh, sh)| match oh {
                Term::Const(c) => matches!(sh, Term::Const(d) if c.same_as(d)),
                Term::Var(v) => match mapping.get(v) {
                    Some(bound) => terms_equal(bound, sh),
                    None => {
                        mapping.insert(v.clone(), sh.clone());
                        true
                    }
                },
            });
            if !heads_ok {
                return false;
            }
            // constraint implication: every container constraint must be
            // implied by the constraint of the mapped term
            return other.constraints.iter().all(|(var, required)| {
                match mapping.get(var) {
                    Some(target) => self.constraint_of(target).implies(required),
                    // variable never used in atoms/head: cannot constrain
                    None => required.implies(&Interval::FULL) && *required == Interval::FULL,
                }
            });
        }
        let atom = &other.cq.atoms[index];
        for candidate in &self.cq.atoms {
            if candidate.relation != atom.relation || candidate.args.len() != atom.args.len() {
                continue;
            }
            let snapshot = mapping.clone();
            let ok = atom.args.iter().zip(&candidate.args).all(|(t, target)| match t {
                Term::Const(c) => matches!(target, Term::Const(d) if c.same_as(d)),
                Term::Var(v) => match mapping.get(v) {
                    Some(bound) => terms_equal(bound, target),
                    None => {
                        mapping.insert(v.clone(), target.clone());
                        true
                    }
                },
            });
            if ok && self.search(other, index + 1, mapping) {
                return true;
            }
            *mapping = snapshot;
        }
        false
    }

    /// Mutual containment.
    pub fn equivalent(&self, other: &RangeQuery) -> bool {
        self.is_contained_in(other) && other.is_contained_in(self)
    }
}

fn terms_equal(a: &Term, b: &Term) -> bool {
    match (a, b) {
        (Term::Var(x), Term::Var(y)) => x == y,
        (Term::Const(x), Term::Const(y)) => x.same_as(y),
        _ => false,
    }
}

fn numeric(lit: &Literal) -> Option<f64> {
    match lit {
        Literal::Integer(v) => Some(*v as f64),
        Literal::Float(v) => Some(*v),
        _ => None,
    }
}

fn resolve_var(cq: &ConjunctiveQuery, col: &paradise_sql::ast::ColumnRef) -> Option<String> {
    // variables are named v{occurrence}_{column}; qualified references
    // pick the occurrence by position of the qualifier — for the flat
    // single-table queries this module targets, an unqualified suffix
    // match is unambiguous when exactly one variable matches.
    let suffix = format!("_{}", col.name.to_ascii_lowercase());
    let mut matches: Vec<&str> = Vec::new();
    for atom in &cq.atoms {
        for arg in &atom.args {
            if let Term::Var(v) = arg {
                if v.ends_with(&suffix) && !matches.contains(&v.as_str()) {
                    matches.push(v);
                }
            }
        }
    }
    match matches.len() {
        1 => Some(matches[0].to_string()),
        _ => None,
    }
}

/// Privacy application with ranges: can `attack` be answered from the
/// `revealed` view? (See [`crate::containment::attack_answerable`] for
/// the equality-only variant.)
pub fn range_attack_answerable(revealed: &RangeQuery, attack: &RangeQuery) -> bool {
    attack.is_contained_in(revealed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_sql::parse_query;

    fn schemas() -> HashMap<String, Vec<String>> {
        let mut m = HashMap::new();
        m.insert(
            "stream".to_string(),
            vec!["x".to_string(), "y".to_string(), "z".to_string(), "t".to_string()],
        );
        m
    }

    fn rq(sql: &str) -> RangeQuery {
        RangeQuery::from_query(&parse_query(sql).unwrap(), &schemas()).unwrap()
    }

    #[test]
    fn interval_algebra() {
        let lt2 = Interval::from_comparison(BinaryOp::Lt, 2.0).unwrap();
        let lt1 = Interval::from_comparison(BinaryOp::Lt, 1.0).unwrap();
        let le1 = Interval::from_comparison(BinaryOp::LtEq, 1.0).unwrap();
        assert!(lt1.implies(&lt2));
        assert!(!lt2.implies(&lt1));
        assert!(lt1.implies(&le1));
        assert!(!le1.implies(&lt1));
        assert!(lt1.implies(&lt1));

        let gt0 = Interval::from_comparison(BinaryOp::Gt, 0.0).unwrap();
        let band = lt2.intersect(&gt0);
        assert!(band.implies(&lt2));
        assert!(band.implies(&gt0));
        assert!(!band.is_empty());

        let eq5 = Interval::from_comparison(BinaryOp::Eq, 5.0).unwrap();
        assert!(eq5.intersect(&lt2).is_empty());
        assert!(eq5.implies(&Interval::from_comparison(BinaryOp::GtEq, 5.0).unwrap()));
    }

    #[test]
    fn tighter_range_is_contained() {
        // the paper's revealed view filters z < 2
        let revealed = rq("SELECT x, y, t FROM stream WHERE z < 2");
        let tighter = rq("SELECT x, y, t FROM stream WHERE z < 1");
        let looser = rq("SELECT x, y, t FROM stream WHERE z < 3");
        assert!(tighter.is_contained_in(&revealed));
        assert!(!looser.is_contained_in(&revealed));
        assert!(!revealed.is_contained_in(&tighter));
        assert!(revealed.is_contained_in(&looser));
    }

    #[test]
    fn point_queries_and_ranges() {
        let revealed = rq("SELECT x, t FROM stream WHERE z < 2");
        let point = rq("SELECT x, t FROM stream WHERE z = 1");
        assert!(point.is_contained_in(&revealed));
        let boundary = rq("SELECT x, t FROM stream WHERE z = 2");
        assert!(!boundary.is_contained_in(&revealed));
    }

    #[test]
    fn multi_constraint_bands() {
        let revealed = rq("SELECT x FROM stream WHERE z < 2 AND z > 0");
        let inside = rq("SELECT x FROM stream WHERE z < 1.5 AND z > 0.5");
        let sticking_out = rq("SELECT x FROM stream WHERE z < 1.5 AND z > -1");
        assert!(inside.is_contained_in(&revealed));
        assert!(!sticking_out.is_contained_in(&revealed));
    }

    #[test]
    fn unsatisfiable_query_is_contained_in_everything() {
        let empty = rq("SELECT x FROM stream WHERE z < 1 AND z > 2");
        let anything = rq("SELECT x FROM stream WHERE z = 99");
        assert!(empty.is_contained_in(&anything));
    }

    #[test]
    fn constraints_on_different_columns_do_not_mix() {
        let revealed = rq("SELECT x, y FROM stream WHERE z < 2");
        let attack = rq("SELECT x, y FROM stream WHERE t < 2");
        assert!(!attack.is_contained_in(&revealed));
    }

    #[test]
    fn equality_core_still_works() {
        let a = rq("SELECT x FROM stream WHERE x = y");
        let b = rq("SELECT x FROM stream");
        assert!(a.is_contained_in(&b));
        assert!(!b.is_contained_in(&a));
    }

    #[test]
    fn equivalence_with_le_ge_pairs() {
        let a = rq("SELECT x FROM stream WHERE z >= 1 AND z <= 1");
        let b = rq("SELECT x FROM stream WHERE z = 1");
        assert!(a.equivalent(&b), "=1 and [1,1] must be equivalent");
    }

    #[test]
    fn paper_scenario_attack_suite() {
        // d' is the z<2-filtered view of positions (pre-aggregation)
        let revealed = rq("SELECT x, y, t FROM stream WHERE z < 2");
        // "where was the user when close to the floor" — z-range inside
        let fall_attack = rq("SELECT x, y, t FROM stream WHERE z < 0.5");
        assert!(range_attack_answerable(&revealed, &fall_attack));
        // "full height profile" — outside the revealed range
        let full = rq("SELECT x, y, t FROM stream");
        assert!(!range_attack_answerable(&revealed, &full));
    }

    #[test]
    fn mirrored_constant_on_the_left() {
        let a = rq("SELECT x FROM stream WHERE 2 > z");
        let b = rq("SELECT x FROM stream WHERE z < 2");
        assert!(a.equivalent(&b));
    }

    #[test]
    fn conversion_rejects_odd_predicates() {
        let q = parse_query("SELECT x FROM stream WHERE z < t").unwrap();
        assert!(RangeQuery::from_query(&q, &schemas()).is_err());
        let q2 = parse_query("SELECT x FROM stream WHERE z LIKE 'a%'").unwrap();
        assert!(RangeQuery::from_query(&q2, &schemas()).is_err());
    }
}
