//! The postprocessor (paper §3.2): anonymize the preliminary result,
//! choosing column-wise (slicing) or tuple-wise (k-anonymity)
//! anonymization based on quasi-identifier analysis, and measuring the
//! quality difference with the paper's information-loss metrics.

use paradise_anon::{
    detect_qids, direct_distance_ratio, kl_divergence, mondrian, slice, QidConfig, SlicingConfig,
};
use paradise_engine::Frame;

use crate::error::CoreResult;

/// Anonymization strategy selection.
#[derive(Debug, Clone, PartialEq)]
pub enum AnonStrategy {
    /// Decide automatically from QID analysis (paper §3.2 / §5).
    Auto {
        /// k for the tuple-wise branch.
        k: usize,
        /// Bucket size for the column-wise branch.
        bucket_size: usize,
    },
    /// Force tuple-wise k-anonymity (Mondrian) on detected QIDs.
    KAnonymity {
        /// Required class size.
        k: usize,
    },
    /// k-anonymity **and** distinct l-diversity on a sensitive column.
    LDiversity {
        /// Required class size.
        k: usize,
        /// Required distinct sensitive values per class.
        l: usize,
        /// Index of the sensitive column (excluded from the QIDs).
        sensitive: usize,
    },
    /// Force column-wise slicing with correlation-derived groups.
    Slicing {
        /// Tuples per bucket.
        bucket_size: usize,
    },
    /// No anonymization (aggregation-only protection).
    None,
}

impl Default for AnonStrategy {
    fn default() -> Self {
        AnonStrategy::Auto { k: 3, bucket_size: 4 }
    }
}

/// What the postprocessor did.
#[derive(Debug, Clone, PartialEq)]
pub enum AnonDecision {
    /// Tuple-wise k-anonymity on these columns.
    TupleWise {
        /// QID columns generalized.
        qid_columns: Vec<usize>,
        /// k used.
        k: usize,
    },
    /// Column-wise slicing with these groups.
    ColumnWise {
        /// Column groups permuted independently.
        groups: Vec<Vec<usize>>,
        /// Buckets formed.
        buckets: usize,
    },
    /// Nothing to do (no QIDs found / strategy None / table too small).
    Passthrough {
        /// Why.
        reason: String,
    },
}

/// Postprocessing result: the anonymized frame plus quality metrics.
#[derive(Debug, Clone)]
pub struct PostprocessOutcome {
    /// The anonymized result `d'` sent to the requester.
    pub frame: Frame,
    /// What was done.
    pub decision: AnonDecision,
    /// Paper §3.2 Direct-Distance ratio vs. the pre-anonymization frame.
    pub dd_ratio: f64,
    /// KL divergence of the value distribution over all columns.
    pub kl: f64,
}

/// Run the postprocessor.
pub fn postprocess(frame: Frame, strategy: &AnonStrategy) -> CoreResult<PostprocessOutcome> {
    let original = frame.clone();
    let (anonymized, decision) = apply(frame, strategy)?;
    let dd_ratio = direct_distance_ratio(&original, &anonymized)?;
    let all_columns: Vec<usize> = (0..original.schema.len()).collect();
    let kl = if original.is_empty() || all_columns.is_empty() {
        0.0
    } else {
        kl_divergence(&original, &anonymized, &all_columns)?
    };
    Ok(PostprocessOutcome { frame: anonymized, decision, dd_ratio, kl })
}

fn apply(frame: Frame, strategy: &AnonStrategy) -> CoreResult<(Frame, AnonDecision)> {
    match strategy {
        AnonStrategy::None => Ok((
            frame,
            AnonDecision::Passthrough { reason: "anonymization disabled".into() },
        )),
        AnonStrategy::KAnonymity { k } => tuple_wise(frame, *k),
        AnonStrategy::LDiversity { k, l, sensitive } => {
            let qids: Vec<usize> = (0..frame.schema.len())
                .filter(|&c| {
                    c != *sensitive
                        && frame.column(c).all_numeric_or_null()
                })
                .collect();
            if qids.is_empty() {
                return Ok((
                    frame,
                    AnonDecision::Passthrough {
                        reason: "no numeric QID columns for l-diversity".into(),
                    },
                ));
            }
            let result = paradise_anon::mondrian_l_diverse(&frame, &qids, *sensitive, *k, *l)?;
            Ok((result.frame, AnonDecision::TupleWise { qid_columns: qids, k: *k }))
        }
        AnonStrategy::Slicing { bucket_size } => column_wise(frame, *bucket_size),
        AnonStrategy::Auto { k, bucket_size } => {
            if frame.len() < *k {
                return Ok((
                    frame,
                    AnonDecision::Passthrough {
                        reason: format!("result smaller than k = {k}"),
                    },
                ));
            }
            // paper §3.2: detect quasi-identifiers, then decide column-
            // vs. tuple-wise. Tuple-wise when a compact numeric QID set
            // exists (generalization hurts little); column-wise when the
            // table is wide and linkage is the threat.
            let report = detect_qids(&frame, &QidConfig::default())?;
            match &report.quasi_identifier {
                Some(qids) if qids.len() <= 3 => {
                    let numeric = qids.iter().all(|&c| {
                        frame.column(c).all_numeric_or_null()
                    });
                    if numeric {
                        tuple_wise_on(frame, qids.clone(), *k)
                    } else {
                        column_wise(frame, *bucket_size)
                    }
                }
                Some(_) => column_wise(frame, *bucket_size),
                None => Ok((
                    frame,
                    AnonDecision::Passthrough {
                        reason: "no quasi-identifier detected".into(),
                    },
                )),
            }
        }
    }
}

fn tuple_wise(frame: Frame, k: usize) -> CoreResult<(Frame, AnonDecision)> {
    let report = detect_qids(&frame, &QidConfig::default())?;
    let qids = match report.quasi_identifier {
        Some(q) => q,
        None => {
            // fall back to all numeric columns
            (0..frame.schema.len())
                .filter(|&c| frame.column(c).all_numeric_or_null())
                .collect()
        }
    };
    if qids.is_empty() {
        return Ok((
            frame,
            AnonDecision::Passthrough { reason: "no columns suitable for k-anonymity".into() },
        ));
    }
    tuple_wise_on(frame, qids, k)
}

fn tuple_wise_on(frame: Frame, qids: Vec<usize>, k: usize) -> CoreResult<(Frame, AnonDecision)> {
    let result = mondrian(&frame, &qids, k)?;
    Ok((result.frame, AnonDecision::TupleWise { qid_columns: qids, k }))
}

fn column_wise(frame: Frame, bucket_size: usize) -> CoreResult<(Frame, AnonDecision)> {
    if frame.schema.len() < 2 || frame.len() < 2 {
        return Ok((
            frame,
            AnonDecision::Passthrough { reason: "too small for slicing".into() },
        ));
    }
    let groups = paradise_anon::correlation_groups(&frame, 0.8);
    let config = SlicingConfig { column_groups: groups.clone(), bucket_size, seed: 0xC0FFEE };
    let result = slice(&frame, &config)?;
    Ok((
        result.frame,
        AnonDecision::ColumnWise { groups, buckets: result.buckets },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_engine::{DataType, Schema, Value};

    fn position_frame(n: usize) -> Frame {
        let schema = Schema::from_pairs(&[
            ("x", DataType::Float),
            ("y", DataType::Float),
            ("who", DataType::Text),
        ]);
        let rows = (0..n)
            .map(|i| {
                vec![
                    Value::Float(i as f64),
                    Value::Float((i * 7 % 13) as f64),
                    Value::Str(format!("p{}", i % 3)),
                ]
            })
            .collect();
        Frame::new(schema, rows).unwrap()
    }

    #[test]
    fn strategy_none_passes_through() {
        let f = position_frame(10);
        let out = postprocess(f.clone(), &AnonStrategy::None).unwrap();
        assert_eq!(out.frame, f);
        assert_eq!(out.dd_ratio, 0.0);
        assert!(out.kl.abs() < 1e-9);
        assert!(matches!(out.decision, AnonDecision::Passthrough { .. }));
    }

    #[test]
    fn ldiversity_strategy_guarantees_both_bounds() {
        use paradise_anon::{achieved_k, distinct_l};
        // who (text, column 2) is the sensitive attribute
        let f = position_frame(24);
        let out = postprocess(
            f,
            &AnonStrategy::LDiversity { k: 3, l: 2, sensitive: 2 },
        )
        .unwrap();
        let AnonDecision::TupleWise { qid_columns, .. } = &out.decision else {
            panic!("expected tuple-wise, got {:?}", out.decision);
        };
        assert!(!qid_columns.contains(&2), "sensitive column must not be a QID");
        assert!(achieved_k(&out.frame, qid_columns).unwrap().unwrap() >= 3);
        assert!(distinct_l(&out.frame, qid_columns, 2).unwrap().unwrap() >= 2);
    }

    #[test]
    fn kanonymity_generalizes_and_costs_information() {
        let f = position_frame(12);
        let out = postprocess(f, &AnonStrategy::KAnonymity { k: 3 }).unwrap();
        assert!(matches!(out.decision, AnonDecision::TupleWise { k: 3, .. }));
        assert!(out.dd_ratio > 0.0, "generalization must change cells");
        assert!(out.kl > 0.0);
    }

    #[test]
    fn slicing_preserves_cell_multisets() {
        let f = position_frame(12);
        let out = postprocess(f.clone(), &AnonStrategy::Slicing { bucket_size: 4 }).unwrap();
        assert!(matches!(out.decision, AnonDecision::ColumnWise { .. }));
        assert_eq!(out.frame.len(), f.len());
        // per-column value multisets preserved overall
        for c in 0..f.schema.len() {
            let mut orig: Vec<String> = f.column_values(c).map(|v| v.to_string()).collect();
            let mut sliced: Vec<String> =
                out.frame.column_values(c).map(|v| v.to_string()).collect();
            orig.sort();
            sliced.sort();
            assert_eq!(orig, sliced);
        }
    }

    #[test]
    fn auto_small_result_passes_through() {
        let f = position_frame(2);
        let out = postprocess(f, &AnonStrategy::default()).unwrap();
        assert!(matches!(out.decision, AnonDecision::Passthrough { .. }));
    }

    #[test]
    fn auto_chooses_something_for_identifying_data() {
        let f = position_frame(20); // x is unique → identifying
        let out = postprocess(f, &AnonStrategy::default()).unwrap();
        // x is a direct identifier (unique), remaining (y, who) may or
        // may not form a QID; any decision is fine but must be sound:
        match out.decision {
            AnonDecision::TupleWise { k, .. } => assert!(k >= 2),
            AnonDecision::ColumnWise { ref groups, .. } => assert!(!groups.is_empty()),
            AnonDecision::Passthrough { .. } => {}
        }
    }

    #[test]
    fn homogeneous_data_needs_nothing() {
        let schema = Schema::from_pairs(&[("v", DataType::Integer)]);
        let rows = vec![vec![Value::Int(1)]; 10];
        let f = Frame::new(schema, rows).unwrap();
        let out = postprocess(f, &AnonStrategy::default()).unwrap();
        assert!(matches!(out.decision, AnonDecision::Passthrough { .. }));
        assert_eq!(out.dd_ratio, 0.0);
    }
}
