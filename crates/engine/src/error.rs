//! Error type for query execution.

use std::fmt;

/// Anything that can go wrong while executing a query against the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The FROM clause names a relation the catalog does not know.
    UnknownTable(String),
    /// A column reference could not be resolved against the input schema.
    UnknownColumn(String),
    /// A column reference matches more than one input column.
    AmbiguousColumn(String),
    /// A function name the engine does not implement.
    UnknownFunction(String),
    /// Function called with the wrong number of arguments.
    WrongArity {
        /// Function name.
        function: String,
        /// Expected argument count (rendered, may be a range).
        expected: String,
        /// What was supplied.
        got: usize,
    },
    /// An operation was applied to incompatible value types.
    TypeMismatch(String),
    /// Strict-mode violation: a non-aggregated column outside `GROUP BY`.
    NotGrouped(String),
    /// The query uses a construct the engine does not support.
    Unsupported(String),
    /// A table with this name already exists in the catalog.
    DuplicateTable(String),
    /// Row arity does not match the schema it is inserted under.
    SchemaMismatch {
        /// Expected column count.
        expected: usize,
        /// Supplied value count.
        got: usize,
    },
    /// `CAST` failed for a value.
    BadCast {
        /// Rendered source value.
        value: String,
        /// Target type name.
        target: String,
    },
    /// A compiled plan was executed against a catalog whose schemas no
    /// longer match the ones it was compiled for (see [`crate::plan`]).
    StalePlan,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownTable(name) => write!(f, "unknown table or stream {name:?}"),
            EngineError::UnknownColumn(name) => write!(f, "unknown column {name:?}"),
            EngineError::AmbiguousColumn(name) => write!(f, "ambiguous column reference {name:?}"),
            EngineError::UnknownFunction(name) => write!(f, "unknown function {name:?}"),
            EngineError::WrongArity { function, expected, got } => {
                write!(f, "{function} expects {expected} argument(s), got {got}")
            }
            EngineError::TypeMismatch(msg) => write!(f, "type mismatch: {msg}"),
            EngineError::NotGrouped(name) => write!(
                f,
                "column {name:?} must appear in GROUP BY or be used in an aggregate (strict mode)"
            ),
            EngineError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            EngineError::DuplicateTable(name) => write!(f, "table {name:?} already exists"),
            EngineError::SchemaMismatch { expected, got } => {
                write!(f, "row has {got} values but the schema has {expected} columns")
            }
            EngineError::BadCast { value, target } => {
                write!(f, "cannot cast {value} to {target}")
            }
            EngineError::StalePlan => {
                write!(f, "compiled plan is stale: the catalog schemas changed since compilation")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(EngineError::UnknownTable("d9".into()).to_string().contains("d9"));
        assert!(EngineError::NotGrouped("t".into()).to_string().contains("GROUP BY"));
        let e = EngineError::WrongArity { function: "AVG".into(), expected: "1".into(), got: 2 };
        assert_eq!(e.to_string(), "AVG expects 1 argument(s), got 2");
    }
}
