//! The differential-privacy noise kernel: add explicitly-seeded
//! Laplace noise to selected columns of a finalized aggregate frame.
//!
//! This is deliberately a *post-finalize* operator: it never touches
//! accumulator state, so the incremental and sharded aggregation
//! paths run exactly as without DP and shard merges happen pre-noise.
//! Noised columns get **new** buffers; untouched columns share their
//! `Arc`s with the input frame — the kernel can therefore be applied
//! to a frame whose buffers are shared with cached per-group state
//! without corrupting it.
//!
//! Determinism contract: for a given `(seed, specs, frame shape)` the
//! draw schedule is fixed — one Laplace sample per row per spec, in
//! spec order then row order — so a recovered runtime that derives the
//! same seed reproduces bitwise-identical noisy results.

use std::sync::Arc;

use rand::distributions::{Distribution, Laplace};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::frame::Frame;
use crate::column::ColumnData;
use crate::value::{DataType, Value};

/// How a noised column's values are finalized after the noise is
/// added, matching the aggregate that produced the column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoiseKind {
    /// `COUNT`: round to the nearest integer and floor at 0 (pure
    /// post-processing, so the DP guarantee is unaffected).
    Count,
    /// `SUM` / `AVG`: keep the raw noisy value (rounded only when the
    /// output buffer is integer-typed).
    Sum,
}

/// One column of a finalized aggregate frame to noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSpec {
    /// Output-column index in the frame.
    pub column: usize,
    /// Laplace scale `b = sensitivity / ε` (0 = exact, the ε→∞
    /// limit: the column is returned bitwise-unchanged).
    pub scale: f64,
    /// Post-noise finalization.
    pub kind: NoiseKind,
}

/// Add Laplace noise to `specs`' columns of `frame`, drawing from a
/// `StdRng` seeded with `seed`. Returns the noised frame and the
/// number of draws consumed. NULL cells stay NULL (their draw is
/// still consumed, keeping the schedule shape-determined).
pub fn apply_laplace(frame: &Frame, specs: &[NoiseSpec], seed: u64) -> (Frame, u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draws = 0u64;
    let mut columns: Vec<Arc<ColumnData>> =
        (0..frame.schema.len()).map(|i| frame.column_arc(i)).collect();
    for spec in specs {
        if spec.column >= columns.len() {
            continue;
        }
        if spec.scale == 0.0 {
            // ε → ∞: exact results, bitwise-unchanged (adding 0.0
            // would still flip -0.0 to +0.0)
            continue;
        }
        let lap = Laplace::new(spec.scale.max(0.0)).unwrap_or_else(|| {
            // NaN scale (0/0 mis-config): treat as infinite noise
            Laplace::new(f64::INFINITY).expect("infinite scale is valid")
        });
        let source = &columns[spec.column];
        let integral = source.data_type() == Some(DataType::Integer);
        let mut out = ColumnData::with_capacity(
            if integral { DataType::Integer } else { DataType::Float },
            source.len(),
        );
        for i in 0..source.len() {
            let noise = lap.sample(&mut rng);
            draws += 1;
            if source.is_null(i) {
                out.push(Value::Null);
                continue;
            }
            let Some(v) = source.as_f64(i) else {
                // non-numeric cell in a supposedly numeric aggregate
                // column: pass through untouched
                out.push(source.value(i));
                continue;
            };
            let noisy = v + noise;
            out.push(finalize(noisy, spec.kind, integral));
        }
        columns[spec.column] = Arc::new(out);
    }
    let noised = Frame::from_arc_columns(frame.schema.clone(), columns)
        .expect("noise kernel preserves the frame shape");
    (noised, draws)
}

fn finalize(noisy: f64, kind: NoiseKind, integral: bool) -> Value {
    match kind {
        NoiseKind::Count => {
            let c = noisy.round().max(0.0);
            if integral {
                Value::Int(c as i64)
            } else {
                Value::Float(c)
            }
        }
        NoiseKind::Sum => {
            if integral {
                Value::Int(noisy.round() as i64)
            } else {
                Value::Float(noisy)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn agg_frame() -> Frame {
        let schema = Schema::from_pairs(&[
            ("x", DataType::Integer),
            ("n", DataType::Integer),
            ("s", DataType::Float),
        ]);
        Frame::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Float(100.0)],
                vec![Value::Int(2), Value::Int(0), Value::Float(-3.5)],
                vec![Value::Int(3), Value::Null, Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn deterministic_per_seed_and_shares_untouched_columns() {
        let f = agg_frame();
        let specs = [
            NoiseSpec { column: 1, scale: 1.0, kind: NoiseKind::Count },
            NoiseSpec { column: 2, scale: 2.0, kind: NoiseKind::Sum },
        ];
        let (a, draws_a) = apply_laplace(&f, &specs, 7);
        let (b, draws_b) = apply_laplace(&f, &specs, 7);
        assert_eq!(draws_a, 6, "one draw per row per spec");
        assert_eq!(draws_a, draws_b);
        assert_eq!(a.to_rows(), b.to_rows(), "same seed, same noise");
        let (c, _) = apply_laplace(&f, &specs, 8);
        assert_ne!(a.to_rows(), c.to_rows(), "different seed, different noise");
        // the group-key column is the same shared buffer
        assert!(Arc::ptr_eq(&f.column_arc(0), &a.column_arc(0)));
        // NULL aggregates stay NULL
        assert_eq!(a.value(2, 1), Value::Null);
        assert_eq!(a.value(2, 2), Value::Null);
    }

    #[test]
    fn zero_scale_is_bitwise_identity() {
        let f = agg_frame();
        let specs = [
            NoiseSpec { column: 1, scale: 0.0, kind: NoiseKind::Count },
            NoiseSpec { column: 2, scale: 0.0, kind: NoiseKind::Sum },
        ];
        let (out, draws) = apply_laplace(&f, &specs, 42);
        assert_eq!(draws, 0);
        assert_eq!(out.to_rows(), f.to_rows());
        assert!(Arc::ptr_eq(&f.column_arc(1), &out.column_arc(1)));
    }

    #[test]
    fn count_floors_at_zero_and_stays_integral() {
        let f = agg_frame();
        let specs = [NoiseSpec { column: 1, scale: 5.0, kind: NoiseKind::Count }];
        for seed in 0..50 {
            let (out, _) = apply_laplace(&f, &specs, seed);
            for row in 0..2 {
                match out.value(row, 1) {
                    Value::Int(n) => assert!(n >= 0, "noisy count went negative"),
                    other => panic!("count column lost its type: {other:?}"),
                }
            }
        }
    }
}
