//! Stream processing primitives for the sensor level (E4).
//!
//! Paper Table 1 grants sensors "filter / window, simple selection,
//! aggregates on streams (over the last seconds)". This module provides
//! exactly that: sliding windows by count or by time over timestamped
//! rows, with the standard aggregate kinds, plus a constant-only filter.

use std::collections::VecDeque;

use paradise_sql::analysis::{classify_predicate, PredicateShape};
use paradise_sql::ast::Expr;

use crate::error::{EngineError, EngineResult};
use crate::eval::{eval_predicate, EvalContext};
use crate::exec::aggregate::{AggKind, Accumulator};
use crate::frame::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Window policy for stream aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSpec {
    /// Keep the last `n` rows.
    Count(usize),
    /// Keep rows whose timestamp is within `width` of the newest row's
    /// timestamp (timestamps are numeric, e.g. seconds).
    Time {
        /// Index of the timestamp column.
        time_column: usize,
        /// Window width in timestamp units.
        width: f64,
    },
}

/// A sliding window over a stream of rows.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    spec: WindowSpec,
    rows: VecDeque<Row>,
}

impl SlidingWindow {
    /// New empty window.
    pub fn new(spec: WindowSpec) -> Self {
        SlidingWindow { spec, rows: VecDeque::new() }
    }

    /// Push a row and evict per policy. Returns the number of evicted rows.
    pub fn push(&mut self, row: Row) -> usize {
        self.rows.push_back(row);
        let mut evicted = 0;
        match self.spec {
            WindowSpec::Count(n) => {
                while self.rows.len() > n {
                    self.rows.pop_front();
                    evicted += 1;
                }
            }
            WindowSpec::Time { time_column, width } => {
                let newest = self
                    .rows
                    .back()
                    .and_then(|r| r.get(time_column))
                    .and_then(Value::as_f64);
                if let Some(newest) = newest {
                    while let Some(front) = self.rows.front() {
                        let t = front.get(time_column).and_then(Value::as_f64);
                        match t {
                            Some(t) if newest - t > width => {
                                self.rows.pop_front();
                                evicted += 1;
                            }
                            _ => break,
                        }
                    }
                }
            }
        }
        evicted
    }

    /// Rows currently inside the window, oldest first.
    pub fn rows(&self) -> impl Iterator<Item = &Row> + '_ {
        self.rows.iter()
    }

    /// Number of rows in the window.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the window empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Aggregate one column of the window with the given kind
    /// (e.g. "average of the last minute", paper §4.1).
    pub fn aggregate(&self, kind: AggKind, column: usize) -> EngineResult<Value> {
        let mut acc = Accumulator::new(kind, false);
        for row in &self.rows {
            let v = row.get(column).cloned().unwrap_or(Value::Null);
            acc.update(&[v])?;
        }
        Ok(acc.finish())
    }
}

/// A filter a sensor can execute: only attribute↔constant predicates.
///
/// Construction fails for anything richer — this enforces the paper's E4
/// capability boundary at the type level.
#[derive(Debug, Clone)]
pub struct SensorFilter {
    predicate: Expr,
}

impl SensorFilter {
    /// Validate and wrap a predicate. Every conjunct must be an
    /// attribute↔constant comparison.
    pub fn new(predicate: Expr) -> EngineResult<Self> {
        for conjunct in predicate.conjuncts() {
            if classify_predicate(conjunct) != PredicateShape::AttrConst {
                return Err(EngineError::Unsupported(format!(
                    "sensor cannot evaluate predicate {conjunct}"
                )));
            }
        }
        Ok(SensorFilter { predicate })
    }

    /// The wrapped predicate.
    pub fn predicate(&self) -> &Expr {
        &self.predicate
    }

    /// Apply to one row.
    pub fn accepts(&self, schema: &Schema, row: &Row) -> EngineResult<bool> {
        let ctx = EvalContext::new(schema);
        eval_predicate(&self.predicate, row, &ctx)
    }

    /// Filter a batch of rows.
    pub fn filter(&self, schema: &Schema, rows: Vec<Row>) -> EngineResult<Vec<Row>> {
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            if self.accepts(schema, &row)? {
                out.push(row);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;
    use paradise_sql::parse_expr;

    fn row(t: f64, z: f64) -> Row {
        vec![Value::Float(t), Value::Float(z)]
    }

    #[test]
    fn count_window_evicts() {
        let mut w = SlidingWindow::new(WindowSpec::Count(3));
        for i in 0..5 {
            w.push(row(i as f64, i as f64));
        }
        assert_eq!(w.len(), 3);
        let ts: Vec<f64> = w.rows().map(|r| r[0].as_f64().unwrap()).collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn time_window_evicts_by_age() {
        let mut w = SlidingWindow::new(WindowSpec::Time { time_column: 0, width: 60.0 });
        w.push(row(0.0, 1.0));
        w.push(row(30.0, 2.0));
        w.push(row(61.0, 3.0)); // evicts t=0 (61-0 > 60)
        assert_eq!(w.len(), 2);
        let evicted = w.push(row(200.0, 4.0));
        assert_eq!(evicted, 2);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn window_average_of_last_minute() {
        let mut w = SlidingWindow::new(WindowSpec::Time { time_column: 0, width: 60.0 });
        w.push(row(0.0, 10.0));
        w.push(row(30.0, 20.0));
        assert_eq!(w.aggregate(AggKind::Avg, 1).unwrap(), Value::Float(15.0));
        w.push(row(90.0, 30.0)); // t=0 leaves
        assert_eq!(w.aggregate(AggKind::Avg, 1).unwrap(), Value::Float(25.0));
    }

    #[test]
    fn empty_window_aggregates_to_null_or_zero() {
        let w = SlidingWindow::new(WindowSpec::Count(3));
        assert!(w.is_empty());
        assert_eq!(w.aggregate(AggKind::Avg, 0).unwrap(), Value::Null);
        assert_eq!(w.aggregate(AggKind::Count, 0).unwrap(), Value::Int(0));
    }

    #[test]
    fn sensor_filter_accepts_constant_comparisons() {
        let f = SensorFilter::new(parse_expr("z < 2 AND t > 0").unwrap()).unwrap();
        let schema = Schema::from_pairs(&[("t", DataType::Float), ("z", DataType::Float)]);
        assert!(f.accepts(&schema, &row(1.0, 1.5)).unwrap());
        assert!(!f.accepts(&schema, &row(1.0, 2.5)).unwrap());
    }

    #[test]
    fn sensor_filter_rejects_attr_attr() {
        assert!(SensorFilter::new(parse_expr("x > y").unwrap()).is_err());
        assert!(SensorFilter::new(parse_expr("z < 2 AND x > y").unwrap()).is_err());
        assert!(SensorFilter::new(parse_expr("SUM(z) > 1").unwrap()).is_err());
    }

    #[test]
    fn sensor_filter_batch() {
        let f = SensorFilter::new(parse_expr("z < 2").unwrap()).unwrap();
        let schema = Schema::from_pairs(&[("t", DataType::Float), ("z", DataType::Float)]);
        let rows = vec![row(0.0, 1.0), row(1.0, 3.0), row(2.0, 1.9)];
        let kept = f.filter(&schema, rows).unwrap();
        assert_eq!(kept.len(), 2);
    }
}
