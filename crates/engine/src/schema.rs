//! Schemas: ordered, optionally qualified column lists.

use std::fmt;

use crate::error::{EngineError, EngineResult};
use crate::value::DataType;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (matched case-insensitively).
    pub name: String,
    /// Table alias / relation the column came from, for qualified lookup.
    pub source: Option<String>,
    /// Declared type. The engine is dynamically typed at run time; the
    /// declared type drives generation and anonymization hierarchies.
    pub data_type: DataType,
}

impl Column {
    /// Unqualified column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Column { name: name.into(), source: None, data_type }
    }

    /// Column with a source qualifier.
    pub fn qualified(
        source: impl Into<String>,
        name: impl Into<String>,
        data_type: DataType,
    ) -> Self {
        Column { name: name.into(), source: Some(source.into()), data_type }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Convenience: unqualified columns from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema {
            columns: pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect(),
        }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Append a column.
    pub fn push(&mut self, column: Column) {
        self.columns.push(column);
    }

    /// Index of a column by (optionally qualified) name.
    ///
    /// * qualified (`q.name`): both qualifier and name must match;
    /// * unqualified: the name must match exactly one column, otherwise
    ///   [`EngineError::AmbiguousColumn`].
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> EngineResult<usize> {
        let mut found: Option<usize> = None;
        for (i, c) in self.columns.iter().enumerate() {
            let name_matches = c.name.eq_ignore_ascii_case(name);
            let qual_matches = match qualifier {
                None => true,
                Some(q) => c.source.as_deref().is_some_and(|s| s.eq_ignore_ascii_case(q)),
            };
            if name_matches && qual_matches {
                if let Some(prev) = found {
                    // Identical twice (e.g. USING-join duplication): only
                    // ambiguous if sources differ.
                    if self.columns[prev].source != c.source {
                        let shown = match qualifier {
                            Some(q) => format!("{q}.{name}"),
                            None => name.to_string(),
                        };
                        return Err(EngineError::AmbiguousColumn(shown));
                    }
                }
                found.get_or_insert(i);
            }
        }
        found.ok_or_else(|| {
            let shown = match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            };
            EngineError::UnknownColumn(shown)
        })
    }

    /// Like [`Schema::resolve`] but returns `None` instead of errors.
    pub fn try_resolve(&self, qualifier: Option<&str>, name: &str) -> Option<usize> {
        self.resolve(qualifier, name).ok()
    }

    /// Concatenate two schemas (for joins), requalifying nothing.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = Vec::with_capacity(self.len() + other.len());
        columns.extend(self.columns.iter().cloned());
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Replace every column's source with `alias` (used when a derived
    /// table gets an alias: `(SELECT …) AS s`).
    #[must_use]
    pub fn with_source(&self, alias: &str) -> Schema {
        Schema {
            columns: self
                .columns
                .iter()
                .map(|c| Column {
                    name: c.name.clone(),
                    source: Some(alias.to_string()),
                    data_type: c.data_type,
                })
                .collect(),
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            if let Some(s) = &c.source {
                write!(f, "{s}.")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Integer),
            ("b", DataType::Float),
            ("c", DataType::Text),
        ])
    }

    #[test]
    fn resolve_unqualified() {
        let s = abc();
        assert_eq!(s.resolve(None, "b").unwrap(), 1);
        assert_eq!(s.resolve(None, "B").unwrap(), 1);
        assert!(matches!(s.resolve(None, "zz"), Err(EngineError::UnknownColumn(_))));
    }

    #[test]
    fn resolve_qualified() {
        let s = Schema::new(vec![
            Column::qualified("u", "x", DataType::Float),
            Column::qualified("v", "x", DataType::Float),
        ]);
        assert_eq!(s.resolve(Some("u"), "x").unwrap(), 0);
        assert_eq!(s.resolve(Some("v"), "x").unwrap(), 1);
        assert!(matches!(s.resolve(None, "x"), Err(EngineError::AmbiguousColumn(_))));
    }

    #[test]
    fn join_concatenates() {
        let s = abc().join(&Schema::from_pairs(&[("d", DataType::Boolean)]));
        assert_eq!(s.len(), 4);
        assert_eq!(s.resolve(None, "d").unwrap(), 3);
    }

    #[test]
    fn with_source_requalifies() {
        let s = abc().with_source("sub");
        assert_eq!(s.resolve(Some("sub"), "a").unwrap(), 0);
        assert!(s.resolve(Some("other"), "a").is_err());
    }

    #[test]
    fn display_renders() {
        let s = Schema::from_pairs(&[("x", DataType::Float)]);
        assert_eq!(s.to_string(), "(x FLOAT)");
    }

    #[test]
    fn qualified_lookup_on_unqualified_schema_fails() {
        let s = abc();
        assert!(s.resolve(Some("t"), "a").is_err());
    }
}
