//! Compiled expression programs: flat postorder instruction buffers
//! that replace per-tick AST walks.
//!
//! [`ExprProgram::compile`] resolves every column reference to an
//! ordinal against the input schema **once**; [`ExprProgram::eval`]
//! then runs a small stack machine over [`Batch`] values, reusing the
//! exact batch kernels of [`crate::eval`] (dense numeric comparison /
//! arithmetic, three-valued logic). Semantics — including the
//! fall-back-to-the-row-interpreter-on-error rule and the
//! no-evaluation-over-empty-frames rule — match
//! [`crate::eval::eval_expr_batch`] instruction for instruction, which
//! the proptest suite pins down.

use std::sync::Arc;

use paradise_sql::ast::{BinaryOp, Expr, UnaryOp};

use crate::column::ColumnData;
use crate::error::{EngineError, EngineResult};
use crate::eval::{
    and3, eval_binary_batch, eval_expr, eval_scalar_function_upper, eval_unary, ge3, le3,
    literal_value, or3, to_bool3, Batch, EvalContext,
};
use crate::frame::{Frame, Row};
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// One stack-machine instruction; operands are pushed left-to-right in
/// postorder, so every instruction pops its arguments off the top.
#[derive(Debug, Clone)]
enum Instr {
    /// Push a constant.
    Const(Value),
    /// Push column `ordinal` of the input frame (zero-copy).
    Col(usize),
    /// Pop one, apply a unary operator.
    Unary(UnaryOp),
    /// Pop two, apply a (non-logic) binary operator via the dense batch
    /// kernels.
    Binary(BinaryOp),
    /// Pop two, three-valued AND/OR (eager, like the batch evaluator).
    Logic { and: bool },
    /// Pop `argc` arguments, call a scalar function. The name is
    /// ASCII-uppercased at compile time so per-row dispatch never
    /// re-folds (or re-allocates) it.
    Call { name: String, argc: usize },
    /// Pop one, IS [NOT] NULL.
    IsNull { negated: bool },
    /// Pop one, CAST to `target`.
    Cast { target: DataType },
    /// Pop high, low, operand — BETWEEN.
    Between { negated: bool },
    /// Pop `len` list items, then the probe — IN (…).
    InList { negated: bool, len: usize },
    /// Pop else (if any), then `branches` (when, then) pairs, then the
    /// operand (if any) — CASE, evaluated eagerly per row.
    Case { operand: bool, branches: usize, has_else: bool },
    /// Row-invariant subquery / EXISTS: delegated to the row
    /// interpreter once per program run.
    SubqueryConst(Expr),
}

/// A compiled expression: pre-resolved ordinals + instruction buffer,
/// with the original AST retained only for the error fall-back path.
#[derive(Debug, Clone)]
pub struct ExprProgram {
    instrs: Vec<Instr>,
    fallback: Expr,
    has_subquery: bool,
}

impl ExprProgram {
    /// Compile `expr` against `schema`. Fails on unresolvable columns
    /// and on constructs the batch evaluator cannot run (bare `*`,
    /// window calls, unknown cast targets) — callers fall back to the
    /// AST interpreter, which reproduces the same runtime behaviour.
    pub fn compile(expr: &Expr, schema: &Schema) -> EngineResult<ExprProgram> {
        let mut program =
            ExprProgram { instrs: Vec::new(), fallback: expr.clone(), has_subquery: false };
        program.push_expr(expr, schema)?;
        Ok(program)
    }

    /// Does the program run subqueries (and therefore need an executor
    /// in its [`EvalContext`])?
    pub fn has_subquery(&self) -> bool {
        self.has_subquery
    }

    /// The AST the program was compiled from. Aggregation uses it to
    /// recognise calls whose argument expressions are identical and
    /// evaluate them once per batch.
    pub(crate) fn source(&self) -> &Expr {
        &self.fallback
    }

    /// Column ordinals the program reads.
    pub(crate) fn column_ordinals(&self) -> impl Iterator<Item = usize> + '_ {
        self.instrs.iter().filter_map(|i| match i {
            Instr::Col(c) => Some(*c),
            _ => None,
        })
    }

    /// Rewrite every column ordinal through `map` (used when the input
    /// frame is narrowed to the referenced columns). The caller must
    /// ensure the fallback expression still resolves by name against
    /// the narrowed schema.
    pub(crate) fn remap_columns(&mut self, map: &dyn Fn(usize) -> usize) {
        for i in &mut self.instrs {
            if let Instr::Col(c) = i {
                *c = map(*c);
            }
        }
    }

    fn push_expr(&mut self, expr: &Expr, schema: &Schema) -> EngineResult<()> {
        match expr {
            Expr::Literal(lit) => self.instrs.push(Instr::Const(literal_value(lit))),
            Expr::Column(c) => {
                let idx = schema.resolve(c.qualifier.as_deref(), &c.name)?;
                self.instrs.push(Instr::Col(idx));
            }
            Expr::Wildcard => {
                return Err(EngineError::Unsupported("'*' is only valid inside COUNT(*)".into()))
            }
            Expr::Unary { op, expr } => {
                self.push_expr(expr, schema)?;
                self.instrs.push(Instr::Unary(*op));
            }
            Expr::Binary { left, op, right } => {
                self.push_expr(left, schema)?;
                self.push_expr(right, schema)?;
                match op {
                    BinaryOp::And => self.instrs.push(Instr::Logic { and: true }),
                    BinaryOp::Or => self.instrs.push(Instr::Logic { and: false }),
                    other => self.instrs.push(Instr::Binary(*other)),
                }
            }
            Expr::Function(call) => {
                if call.over.is_some() {
                    return Err(EngineError::Unsupported(
                        "window function outside the executor's window stage".into(),
                    ));
                }
                for a in &call.args {
                    self.push_expr(a, schema)?;
                }
                self.instrs.push(Instr::Call {
                    name: call.name.to_ascii_uppercase(),
                    argc: call.args.len(),
                });
            }
            Expr::Case { operand, branches, else_result } => {
                if let Some(op) = operand {
                    self.push_expr(op, schema)?;
                }
                for b in branches {
                    self.push_expr(&b.when, schema)?;
                    self.push_expr(&b.then, schema)?;
                }
                if let Some(e) = else_result {
                    self.push_expr(e, schema)?;
                }
                self.instrs.push(Instr::Case {
                    operand: operand.is_some(),
                    branches: branches.len(),
                    has_else: else_result.is_some(),
                });
            }
            Expr::Between { expr, low, high, negated } => {
                self.push_expr(expr, schema)?;
                self.push_expr(low, schema)?;
                self.push_expr(high, schema)?;
                self.instrs.push(Instr::Between { negated: *negated });
            }
            Expr::InList { expr, list, negated } => {
                self.push_expr(expr, schema)?;
                for item in list {
                    self.push_expr(item, schema)?;
                }
                self.instrs.push(Instr::InList { negated: *negated, len: list.len() });
            }
            Expr::IsNull { expr, negated } => {
                self.push_expr(expr, schema)?;
                self.instrs.push(Instr::IsNull { negated: *negated });
            }
            Expr::Cast { expr, type_name } => {
                let target = DataType::parse(type_name).ok_or_else(|| {
                    EngineError::Unsupported(format!("unknown cast target {type_name:?}"))
                })?;
                self.push_expr(expr, schema)?;
                self.instrs.push(Instr::Cast { target });
            }
            Expr::Subquery(_) | Expr::Exists(_) => {
                self.has_subquery = true;
                self.instrs.push(Instr::SubqueryConst(expr.clone()));
            }
        }
        Ok(())
    }

    /// Evaluate over every row of `frame`, column-at-a-time. Matches
    /// [`crate::eval::eval_expr_batch`]: nothing is evaluated over an
    /// empty frame, and any stack-machine error falls back to the row
    /// interpreter so the reference error (or result) surfaces.
    pub fn eval(&self, frame: &Frame, ctx: &EvalContext<'_>) -> EngineResult<Batch> {
        if frame.is_empty() {
            return Ok(Batch::Col(Arc::new(ColumnData::empty(DataType::Float))));
        }
        match self.run(frame, ctx) {
            Ok(batch) => Ok(batch),
            Err(_) => {
                let mut out = ColumnData::with_capacity(DataType::Float, frame.len());
                for i in 0..frame.len() {
                    let row = frame.row(i);
                    out.push(eval_expr(&self.fallback, &row, ctx)?);
                }
                Ok(Batch::Col(Arc::new(out)))
            }
        }
    }

    /// Evaluate as a filter predicate: one `bool` per row, NULL counts
    /// as false (the `WHERE`/`HAVING` semantics).
    pub fn eval_mask(&self, frame: &Frame, ctx: &EvalContext<'_>) -> EngineResult<Vec<bool>> {
        let n = frame.len();
        match self.eval(frame, ctx)? {
            Batch::Const(v) => {
                let keep = to_bool3(&v)?.unwrap_or(false);
                Ok(vec![keep; n])
            }
            Batch::Col(c) => {
                if let Some(bools) = c.bool_slice() {
                    return Ok(bools.iter().map(|b| b.unwrap_or(false)).collect());
                }
                let mut mask = Vec::with_capacity(n);
                for i in 0..n {
                    mask.push(to_bool3(&c.value(i))?.unwrap_or(false));
                }
                Ok(mask)
            }
        }
    }

    fn run(&self, frame: &Frame, ctx: &EvalContext<'_>) -> EngineResult<Batch> {
        let n = frame.len();
        let mut stack: Vec<Batch> = Vec::with_capacity(8);
        for instr in &self.instrs {
            match instr {
                Instr::Const(v) => stack.push(Batch::Const(v.clone())),
                Instr::Col(idx) => stack.push(Batch::Col(frame.column_arc(*idx))),
                Instr::Unary(op) => {
                    let v = stack.pop().expect("program stack");
                    stack.push(match v {
                        Batch::Const(v) => Batch::Const(eval_unary(*op, v)?),
                        Batch::Col(c) => {
                            let hint = c.data_type().unwrap_or(DataType::Float);
                            let mut out = ColumnData::with_capacity(hint, n);
                            for i in 0..n {
                                out.push(eval_unary(*op, c.value(i))?);
                            }
                            Batch::Col(Arc::new(out))
                        }
                    });
                }
                Instr::Binary(op) => {
                    let r = stack.pop().expect("program stack");
                    let l = stack.pop().expect("program stack");
                    stack.push(eval_binary_batch(l, *op, r, n)?);
                }
                Instr::Logic { and } => {
                    let r = stack.pop().expect("program stack");
                    let l = stack.pop().expect("program stack");
                    if let (Batch::Const(a), Batch::Const(b)) = (&l, &r) {
                        let out = if *and {
                            and3(to_bool3(a)?, to_bool3(b)?)
                        } else {
                            or3(to_bool3(a)?, to_bool3(b)?)
                        };
                        stack.push(Batch::Const(out.map(Value::Bool).unwrap_or(Value::Null)));
                        continue;
                    }
                    let mut out = ColumnData::with_capacity(DataType::Boolean, n);
                    for i in 0..n {
                        let a = to_bool3(&l.value(i))?;
                        let b = to_bool3(&r.value(i))?;
                        let v = if *and { and3(a, b) } else { or3(a, b) };
                        out.push(v.map(Value::Bool).unwrap_or(Value::Null));
                    }
                    stack.push(Batch::Col(Arc::new(out)));
                }
                Instr::Call { name, argc } => {
                    let args = split_off(&mut stack, *argc);
                    if args.iter().all(|a| matches!(a, Batch::Const(_))) {
                        let vals: Vec<Value> = args.iter().map(|a| a.value(0)).collect();
                        stack.push(Batch::Const(eval_scalar_function_upper(name, &vals)?));
                        continue;
                    }
                    // Dense path for `CLAMP(col, lo, hi)` — the shape
                    // the DP rewrite lowers every clamped aggregate
                    // argument to, so on noisy handles it runs once per
                    // ingested (and retracted) row.
                    if name == "CLAMP" && args.len() == 3 {
                        if let Some(col) = clamp_dense(&args, n) {
                            stack.push(Batch::Col(Arc::new(col)));
                            continue;
                        }
                    }
                    let mut out = ColumnData::with_capacity(DataType::Float, n);
                    let mut vals: Vec<Value> = Vec::with_capacity(args.len());
                    for i in 0..n {
                        vals.clear();
                        vals.extend(args.iter().map(|a| a.value(i)));
                        out.push(eval_scalar_function_upper(name, &vals)?);
                    }
                    stack.push(Batch::Col(Arc::new(out)));
                }
                Instr::IsNull { negated } => {
                    let v = stack.pop().expect("program stack");
                    stack.push(match v {
                        Batch::Const(v) => Batch::Const(Value::Bool(v.is_null() != *negated)),
                        Batch::Col(c) => {
                            let mut out = ColumnData::with_capacity(DataType::Boolean, n);
                            for i in 0..n {
                                out.push(Value::Bool(c.is_null(i) != *negated));
                            }
                            Batch::Col(Arc::new(out))
                        }
                    });
                }
                Instr::Cast { target } => {
                    let v = stack.pop().expect("program stack");
                    stack.push(match v {
                        Batch::Const(v) => Batch::Const(v.cast(*target)?),
                        Batch::Col(c) => {
                            let mut out = ColumnData::with_capacity(*target, n);
                            for i in 0..n {
                                out.push(c.value(i).cast(*target)?);
                            }
                            Batch::Col(Arc::new(out))
                        }
                    });
                }
                Instr::Between { negated } => {
                    let hi = stack.pop().expect("program stack");
                    let lo = stack.pop().expect("program stack");
                    let v = stack.pop().expect("program stack");
                    let mut out = ColumnData::with_capacity(DataType::Boolean, n);
                    for i in 0..n {
                        let x = v.value(i);
                        let ge = ge3(&x, &lo.value(i));
                        let le = le3(&x, &hi.value(i));
                        out.push(match and3(ge, le) {
                            Some(b) => Value::Bool(b != *negated),
                            None => Value::Null,
                        });
                    }
                    stack.push(Batch::Col(Arc::new(out)));
                }
                Instr::InList { negated, len } => {
                    let items = split_off(&mut stack, *len);
                    let v = stack.pop().expect("program stack");
                    let mut out = ColumnData::with_capacity(DataType::Boolean, n);
                    for i in 0..n {
                        let x = v.value(i);
                        let mut saw_null = false;
                        let mut hit = false;
                        for item in &items {
                            match x.sql_eq(&item.value(i)) {
                                Some(true) => {
                                    hit = true;
                                    break;
                                }
                                Some(false) => {}
                                None => saw_null = true,
                            }
                        }
                        out.push(if hit {
                            Value::Bool(!*negated)
                        } else if saw_null {
                            Value::Null
                        } else {
                            Value::Bool(*negated)
                        });
                    }
                    stack.push(Batch::Col(Arc::new(out)));
                }
                Instr::Case { operand, branches, has_else } => {
                    let else_b = if *has_else { stack.pop() } else { None };
                    let pairs = split_off(&mut stack, branches * 2);
                    let op_b = if *operand { stack.pop() } else { None };
                    // pairs is [when0, then0, when1, then1, …]
                    let mut whens = Vec::with_capacity(*branches);
                    let mut thens = Vec::with_capacity(*branches);
                    for pair in pairs.chunks(2) {
                        whens.push(pair[0].clone());
                        thens.push(pair[1].clone());
                    }
                    let mut out = ColumnData::with_capacity(DataType::Float, n);
                    for i in 0..n {
                        let mut chosen: Option<Value> = None;
                        match &op_b {
                            Some(op) => {
                                let ov = op.value(i);
                                for (w, t) in whens.iter().zip(&thens) {
                                    if ov.sql_eq(&w.value(i)) == Some(true) {
                                        chosen = Some(t.value(i));
                                        break;
                                    }
                                }
                            }
                            None => {
                                for (w, t) in whens.iter().zip(&thens) {
                                    if to_bool3(&w.value(i))?.unwrap_or(false) {
                                        chosen = Some(t.value(i));
                                        break;
                                    }
                                }
                            }
                        }
                        let v = chosen.unwrap_or_else(|| {
                            else_b.as_ref().map(|e| e.value(i)).unwrap_or(Value::Null)
                        });
                        out.push(v);
                    }
                    stack.push(Batch::Col(Arc::new(out)));
                }
                Instr::SubqueryConst(e) => {
                    let row = Row::new();
                    stack.push(Batch::Const(eval_expr(e, &row, ctx)?));
                }
            }
        }
        Ok(stack.pop().expect("program leaves one result"))
    }
}

/// Pop the top `count` batches, preserving their push order.
fn split_off(stack: &mut Vec<Batch>, count: usize) -> Vec<Batch> {
    stack.split_off(stack.len() - count)
}

/// Column-dense `CLAMP(col, lo, hi)`. Mirrors the scalar function's
/// semantics exactly — NULL in → NULL out, a violated bound wins (lo
/// first when the bounds cross), in-range values keep their original
/// type — without building a per-row `Value` argument vector. Returns
/// `None` (generic per-row path) for non-numeric columns or non-const
/// bounds.
fn clamp_dense(args: &[Batch], n: usize) -> Option<ColumnData> {
    let (lo, hi) = match (&args[1], &args[2]) {
        (Batch::Const(lo), Batch::Const(hi)) => (lo.as_f64()?, hi.as_f64()?),
        _ => return None,
    };
    let Batch::Col(c) = &args[0] else { return None };
    let mut out = ColumnData::with_capacity(DataType::Float, n);
    if let Some(xs) = c.float_slice() {
        for x in xs {
            out.push(match x {
                None => Value::Null,
                Some(x) if *x < lo => Value::Float(lo),
                Some(x) if *x > hi => Value::Float(hi),
                Some(x) => Value::Float(*x),
            });
        }
    } else if let Some(xs) = c.int_slice() {
        for v in xs {
            out.push(match v {
                None => Value::Null,
                Some(v) if (*v as f64) < lo => Value::Float(lo),
                Some(v) if (*v as f64) > hi => Value::Float(hi),
                Some(v) => Value::Int(*v),
            });
        }
    } else {
        return None;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_expr_batch;
    use paradise_sql::parse_expr;

    fn frame() -> Frame {
        let schema = Schema::from_pairs(&[
            ("x", DataType::Float),
            ("t", DataType::Integer),
            ("name", DataType::Text),
            ("flag", DataType::Boolean),
        ]);
        Frame::new(
            schema,
            vec![
                vec![Value::Float(1.5), Value::Int(1), Value::Str("ada".into()), Value::Bool(true)],
                vec![Value::Float(2.0), Value::Int(2), Value::Null, Value::Bool(false)],
                vec![Value::Null, Value::Int(3), Value::Str("bob".into()), Value::Null],
            ],
        )
        .unwrap()
    }

    fn check(src: &str) {
        let e = parse_expr(src).unwrap();
        let f = frame();
        let ctx = EvalContext::new(&f.schema);
        let program = ExprProgram::compile(&e, &f.schema).unwrap();
        let compiled = program.eval(&f, &ctx).unwrap();
        let reference = eval_expr_batch(&e, &f, &ctx).unwrap();
        for i in 0..f.len() {
            assert_eq!(compiled.value(i), reference.value(i), "row {i} of {src}");
        }
    }

    #[test]
    fn programs_match_batch_evaluator() {
        for src in [
            "x + 1",
            "x > 1.6 AND t < 3",
            "NOT flag OR x IS NULL",
            "t IN (1, 3, 5)",
            "x BETWEEN 1 AND 2",
            "CASE WHEN x > 1.9 THEN 'hi' ELSE 'lo' END",
            "CASE t WHEN 1 THEN 'one' WHEN 2 THEN 'two' END",
            "COALESCE(name, 'missing')",
            "UPPER(name)",
            "CLAMP(x, 1.6, 1.9)",
            "CLAMP(t, 1.5, 2.5)",
            "CLAMP(x, t, 3)",
            "CAST(t AS FLOAT) * 2",
            "-x",
            "name LIKE 'a%'",
            "1 + 2 * 3",
        ] {
            check(src);
        }
    }

    #[test]
    fn unknown_column_fails_at_compile_time() {
        let e = parse_expr("missing > 1").unwrap();
        let f = frame();
        assert!(matches!(
            ExprProgram::compile(&e, &f.schema),
            Err(EngineError::UnknownColumn(_))
        ));
    }

    #[test]
    fn error_fallback_reproduces_row_semantics() {
        // `name > 5` errors row-wise only where name is non-null; the
        // batch path errors eagerly and must fall back identically
        let e = parse_expr("name = 'ada' OR x > 1").unwrap();
        let f = frame();
        let ctx = EvalContext::new(&f.schema);
        let program = ExprProgram::compile(&e, &f.schema).unwrap();
        let compiled = program.eval(&f, &ctx).unwrap();
        let reference = eval_expr_batch(&e, &f, &ctx).unwrap();
        for i in 0..f.len() {
            assert_eq!(compiled.value(i), reference.value(i));
        }
    }

    #[test]
    fn mask_counts_null_as_false() {
        let e = parse_expr("x > 1.6").unwrap();
        let f = frame();
        let ctx = EvalContext::new(&f.schema);
        let program = ExprProgram::compile(&e, &f.schema).unwrap();
        assert_eq!(program.eval_mask(&f, &ctx).unwrap(), vec![false, true, false]);
    }

    #[test]
    fn empty_frames_evaluate_nothing() {
        // a type error must not surface over zero rows
        let e = parse_expr("name + 1").unwrap();
        let f = Frame::empty(frame().schema.clone());
        let ctx = EvalContext::new(&f.schema);
        let program = ExprProgram::compile(&e, &f.schema).unwrap();
        assert!(program.eval(&f, &ctx).is_ok());
    }
}
