//! Physical plans: compile a [`Query`] + catalog schemas **once** into
//! a reusable operator DAG, then execute it on every stream tick
//! without touching the AST again.
//!
//! Compilation pre-resolves every name to a column ordinal, lowers
//! expressions to flat postorder instruction buffers
//! ([`program::ExprProgram`]), and pre-selects strategies (hash vs.
//! nested-loop join candidates, projected-vs-input `ORDER BY` key
//! sources, the window/aggregate kinds). Execution then runs the same
//! columnar kernels as the AST interpreter — plus partition-parallel
//! grouped aggregation, window computation and filter/select gathers
//! over the vendored [`minipool`] scoped thread pool (sized by the
//! `PARADISE_THREADS` knob; serial when 1).
//!
//! Anything the planner cannot compile natively degrades gracefully:
//! per-node as an interpreted fragment (`PNode::Interpret`), or — on any
//! compile-time resolution error — by [`Executor::execute`] falling
//! back to the AST interpreter wholesale, which reproduces the exact
//! reference behaviour. The equivalence suite pins
//! `compiled == columnar-interpreted == row-at-a-time` over the whole
//! corpus.
//!
//! A [`PlanCache`] maps `(query AST, schema fingerprint)` to compiled
//! plans with hit/miss/invalidation counters; `paradise-nodes` keeps
//! one per chain node so steady-state continuous-query ticks reuse
//! plans, and schema changes at the source invalidate them.

mod incremental;
mod program;
pub(crate) mod sharded;

pub use incremental::{DeltaInput, IncrementalPlan, IncrementalRun, IncrementalState};
pub use program::ExprProgram;
pub use sharded::ShardSpec;

use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use minipool::ThreadPool;
use paradise_sql::ast::{
    Expr, FunctionCall, JoinKind, Query, SelectItem, SortOrder, TableRef,
};

use crate::catalog::Catalog;
use crate::column::ColumnData;
use crate::error::{EngineError, EngineResult};
use crate::eval::{Batch, EvalContext};
use crate::exec::aggregate::{Accumulator, AggKind};
use crate::exec::{
    self, check_strict_grouping, collect_aggregate_calls, distinct_indices, equi_join_columns,
    finalise_types, order_key_source, query_aggregates, replace_aggregate_calls, window, Executor,
    KeySource, ProjPlan,
};
use crate::frame::Frame;
use crate::schema::{Column, Schema};
use crate::value::{DataType, GroupKey, Value};

/// Minimum row count before an operator fans work out to the pool;
/// below this the scope round-trip costs more than it saves.
const PARALLEL_MIN_ROWS: usize = 4096;

// ---------------------------------------------------------------------
// hashing: FxHash for group keys, FNV for AST / schema fingerprints
// ---------------------------------------------------------------------

/// The Firefox hash: a fast non-cryptographic hasher for the engine's
/// internal hash maps (grouping, plan-cache keys). Not DoS-hardened —
/// never use it for attacker-controlled keys that must not collide.
#[derive(Default)]
pub(crate) struct FxHasher(u64);

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_i64(&mut self, v: i64) {
        self.write_u64(v as u64);
    }
}

pub(crate) type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// FNV-1a accumulator exposed as a `fmt::Write` sink, so ASTs and
/// schemas hash through their `Display` impls without allocating.
struct FnvWriter(u64);

impl FnvWriter {
    fn new() -> Self {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
}

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

/// Structural key of a query: an FNV-1a hash of its canonical SQL
/// rendering, computed without materialising the string. Callers that
/// must rule out collisions compare the stored AST on a key hit.
pub fn ast_key(query: &Query) -> u64 {
    let mut h = FnvWriter::new();
    let _ = write!(h, "{query}");
    h.0
}

/// Hash one schema: column names, qualifiers and declared types, in
/// order. Ordinal resolution inside compiled plans depends exactly on
/// this, so equal fingerprints imply compiled ordinals stay valid.
pub fn schema_hash(schema: &Schema) -> u64 {
    let mut h = FnvWriter::new();
    for c in schema.columns() {
        h.write_bytes(c.name.as_bytes());
        h.write_bytes(&[0xfe]);
        if let Some(s) = &c.source {
            h.write_bytes(s.as_bytes());
        }
        h.write_bytes(&[0xff]);
        h.write_bytes(c.data_type.name().as_bytes());
    }
    h.0
}

/// Fingerprint the schemas of `tables` as found in `catalog` (missing
/// tables hash as absent). A compiled plan is valid for execution as
/// long as this fingerprint matches the one captured at compile time.
pub fn schema_fingerprint(catalog: &Catalog, tables: &[String]) -> u64 {
    let mut h = FnvWriter::new();
    for t in tables {
        h.write_bytes(t.as_bytes());
        match catalog.get(t) {
            Ok(frame) => h.write_u64_mix(schema_hash(&frame.schema)),
            Err(_) => h.write_bytes(b"<absent>"),
        }
    }
    h.0
}

impl FnvWriter {
    fn write_u64_mix(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }
}

// ---------------------------------------------------------------------
// plan data model
// ---------------------------------------------------------------------

/// A query compiled against a catalog's schemas: the reusable artifact
/// of the compile-once / run-many contract.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    root: PNode,
    tables: Vec<String>,
    fingerprint: u64,
}

impl CompiledPlan {
    /// The schema fingerprint this plan was compiled against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Base tables the plan reads (inputs of the fingerprint).
    pub fn tables(&self) -> &[String] {
        &self.tables
    }
}

/// One operator of the physical DAG.
#[derive(Debug, Clone)]
enum PNode {
    /// Fallback: interpret this (sub)query over the AST. Used for
    /// shapes the planner does not compile natively (UNIONs, wildcard
    /// aggregation errors, …).
    Interpret(Box<Query>),
    /// `SELECT` without `FROM`: one empty row.
    Unit,
    /// Base-table scan; shares the catalog buffers zero-copy.
    Scan {
        table: String,
        source: String,
    },
    /// Derived table (`FROM (SELECT …) [AS alias]`).
    Derived {
        input: Box<PNode>,
        alias: Option<String>,
    },
    /// Two-sided join with the pre-selected equi-key candidate.
    Join {
        left: Box<PNode>,
        right: Box<PNode>,
        kind: JoinKind,
        on: Option<Expr>,
        equi: Option<(usize, usize)>,
    },
    /// One `SELECT` block: filter + (plain | aggregation) body.
    Block(Box<BlockPlan>),
}

#[derive(Debug, Clone)]
struct BlockPlan {
    input: PNode,
    filter: Option<ExprProgram>,
    body: Body,
}

#[derive(Debug, Clone)]
enum Body {
    Plain(Box<PlainBody>),
    Agg(Box<AggBody>),
}

/// Where an output column's declared-type hint comes from (refined by
/// `finalise_types` against the actual buffers, exactly like the
/// interpreter).
#[derive(Debug, Clone, Copy)]
enum DTypeSrc {
    Input(usize),
    Fixed(DataType),
}

#[derive(Debug, Clone)]
enum ProjStep {
    /// Splice these input ordinals (wildcards; zero-copy).
    Splice(Vec<usize>),
    /// Evaluate a compiled expression program.
    Prog(ExprProgram),
}

#[derive(Debug, Clone)]
enum OrderKeySrc {
    /// A projected output column (pure alias / positional reference).
    OutCol(usize),
    /// A program over the block input (plain) or extended (agg) schema.
    Prog(ExprProgram),
}

#[derive(Debug, Clone)]
struct PlainBody {
    windows: Vec<WindowPlan>,
    items: Vec<ProjStep>,
    out_cols: Vec<(String, DTypeSrc)>,
    order: Vec<(OrderKeySrc, SortOrder)>,
    distinct: bool,
    limit: Option<u64>,
    offset: Option<u64>,
}

#[derive(Debug, Clone)]
struct AggBody {
    group: Vec<ExprProgram>,
    calls: Vec<AggCallPlan>,
    agg_names: Vec<String>,
    /// Input ordinals the post-grouping stages actually read (the
    /// representative rows are gathered for these columns only); the
    /// `items`/`having`/`order` programs are remapped accordingly.
    rep_cols: Vec<usize>,
    having: Option<ExprProgram>,
    items: Vec<AggItemStep>,
    out_names: Vec<String>,
    order: Vec<(OrderKeySrc, SortOrder)>,
    distinct: bool,
    limit: Option<u64>,
    offset: Option<u64>,
}

#[derive(Debug, Clone)]
enum AggItemStep {
    /// A plain column of the extended (representative ++ `__aggN`) row.
    Col(usize),
    /// A compound expression over the extended schema.
    Prog(ExprProgram),
}

#[derive(Debug, Clone)]
struct AggCallPlan {
    kind: AggKind,
    distinct: bool,
    args: Vec<ArgStep>,
}

#[derive(Debug, Clone)]
enum ArgStep {
    /// `COUNT(*)`: a constant non-null placeholder.
    Star,
    /// A compiled argument expression.
    Prog(ExprProgram),
}

/// Batch-evaluate every aggregate call's argument programs over one
/// frame, running identical argument expressions only once (sharing a
/// `Batch` is an `Arc` clone). Duplicate arguments are the common case
/// under the DP rewrite, where clamp lowering gives `SUM(CLAMP(z, …))`
/// and `AVG(CLAMP(z, …))` the same per-row clamp pass.
fn eval_call_args(
    calls: &[AggCallPlan],
    frame: &Frame,
    ctx: &EvalContext<'_>,
) -> EngineResult<Vec<Vec<Batch>>> {
    let mut shared: Vec<(&ExprProgram, Batch)> = Vec::new();
    calls
        .iter()
        .map(|call| {
            call.args
                .iter()
                .map(|a| {
                    let p = match a {
                        ArgStep::Star => return Ok(Batch::Const(Value::Int(1))),
                        ArgStep::Prog(p) => p,
                    };
                    if let Some((_, b)) = shared.iter().find(|(q, _)| q.source() == p.source()) {
                        return Ok(b.clone());
                    }
                    let b = p.eval(frame, ctx)?;
                    shared.push((p, b.clone()));
                    Ok(b)
                })
                .collect()
        })
        .collect()
}

#[derive(Debug, Clone, Copy)]
enum WinFunc {
    RowNumber,
    Rank,
    DenseRank,
    Agg(AggKind),
}

#[derive(Debug, Clone)]
struct WindowPlan {
    func: WinFunc,
    distinct: bool,
    partition: Vec<ExprProgram>,
    order: Vec<(ExprProgram, SortOrder)>,
    args: Vec<ArgStep>,
}

// ---------------------------------------------------------------------
// compilation
// ---------------------------------------------------------------------

impl<'a> Executor<'a> {
    /// Compile `query` against the executor's catalog. Errors (unknown
    /// tables/columns, unsupported constructs in scalar position) make
    /// [`Executor::execute`] fall back to the AST interpreter, which
    /// reproduces the same runtime outcome.
    pub fn compile(&self, query: &Query) -> EngineResult<CompiledPlan> {
        let root = match compile_query(self, query)? {
            Some((node, _schema)) => node,
            None => PNode::Interpret(Box::new(query.clone())),
        };
        let tables = paradise_sql::analysis::base_relations(query);
        let fingerprint = schema_fingerprint(self.catalog, &tables);
        Ok(CompiledPlan { root, tables, fingerprint })
    }

    /// Execute a previously compiled plan. Fails with
    /// [`EngineError::StalePlan`] when the catalog schemas no longer
    /// match the plan's fingerprint (a [`PlanCache`] recompiles instead
    /// of ever hitting this).
    pub fn run_plan(&self, plan: &CompiledPlan) -> EngineResult<Frame> {
        if schema_fingerprint(self.catalog, &plan.tables) != plan.fingerprint {
            return Err(EngineError::StalePlan);
        }
        exec_node(self, &plan.root)
    }
}

/// `None` = the sub-plan's output schema is not statically derivable;
/// the caller interprets its enclosing block instead.
type Compiled = Option<(PNode, Schema)>;

fn compile_query(exec: &Executor<'_>, query: &Query) -> EngineResult<Compiled> {
    if !query.unions.is_empty() {
        // UNION result schemas depend on runtime type finalisation;
        // interpret the whole chain
        return Ok(None);
    }
    compile_block(exec, query)
}

fn compile_block(exec: &Executor<'_>, query: &Query) -> EngineResult<Compiled> {
    let (input, input_schema) = match &query.from {
        Some(t) => match compile_table(exec, t)? {
            Some(pair) => pair,
            None => return interpret_block(query),
        },
        None => (PNode::Unit, Schema::default()),
    };
    let filter = match &query.where_clause {
        Some(p) => Some(ExprProgram::compile(p, &input_schema)?),
        None => None,
    };
    if query_aggregates(query) {
        compile_agg(exec, query, input, &input_schema, filter)
    } else {
        compile_plain(exec, query, input, &input_schema, filter)
    }
}

/// Wrap a block as an interpreted node when its output names are still
/// statically known (so enclosing blocks stay compiled); bubble `None`
/// otherwise.
fn interpret_block(query: &Query) -> EngineResult<Compiled> {
    match static_out_names(query) {
        Some(names) => {
            let mut schema = Schema::default();
            for n in names {
                schema.push(Column::new(n, DataType::Float));
            }
            Ok(Some((PNode::Interpret(Box::new(query.clone())), schema)))
        }
        None => Ok(None),
    }
}

/// Output column names of a block, when derivable without the input
/// schema (i.e. no wildcards).
fn static_out_names(query: &Query) -> Option<Vec<String>> {
    let mut names = Vec::with_capacity(query.items.len());
    for item in &query.items {
        match item {
            SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => return None,
            SelectItem::Expr { expr, alias } => names.push(item_name(expr, alias)),
        }
    }
    Some(names)
}

/// The interpreter's output-column naming rule.
fn item_name(expr: &Expr, alias: &Option<String>) -> String {
    match alias {
        Some(a) => a.clone(),
        None => match expr {
            Expr::Column(c) => c.name.clone(),
            other => format!("{other}").to_lowercase(),
        },
    }
}

fn compile_table(exec: &Executor<'_>, table: &TableRef) -> EngineResult<Compiled> {
    match table {
        TableRef::Table { name, alias } => {
            let frame = exec.catalog.get(name)?;
            let source = alias.as_deref().unwrap_or(name).to_string();
            let schema = frame.schema.with_source(&source);
            Ok(Some((PNode::Scan { table: name.clone(), source }, schema)))
        }
        TableRef::Subquery { query, alias } => match compile_query(exec, query)? {
            Some((node, schema)) => {
                let schema = match alias {
                    Some(a) => schema.with_source(a),
                    None => schema,
                };
                Ok(Some((
                    PNode::Derived { input: Box::new(node), alias: alias.clone() },
                    schema,
                )))
            }
            None => Ok(None),
        },
        TableRef::Join { left, right, kind, on } => {
            let Some((l, ls)) = compile_table(exec, left)? else { return Ok(None) };
            let Some((r, rs)) = compile_table(exec, right)? else { return Ok(None) };
            // pre-select the join strategy: recognise the single-equality
            // ON shape once; the typed-buffer check still runs at
            // execution time (buffers are dynamically typed)
            let equi = if matches!(kind, JoinKind::Cross) {
                None
            } else {
                on.as_ref().and_then(|p| equi_join_columns(p, &ls, &rs))
            };
            let schema = ls.join(&rs);
            Ok(Some((
                PNode::Join {
                    left: Box::new(l),
                    right: Box::new(r),
                    kind: *kind,
                    on: on.clone(),
                    equi,
                },
                schema,
            )))
        }
    }
}

fn compile_plain(
    exec: &Executor<'_>,
    query: &Query,
    input: PNode,
    input_schema: &Schema,
    filter: Option<ExprProgram>,
) -> EngineResult<Compiled> {
    // windows: collected in the interpreter's order (items, then ORDER BY)
    let mut calls: Vec<FunctionCall> = Vec::new();
    for item in &query.items {
        if let SelectItem::Expr { expr, .. } = item {
            window::collect_window_calls(expr, &mut calls);
        }
    }
    for o in &query.order_by {
        window::collect_window_calls(&o.expr, &mut calls);
    }
    let mut work_schema = input_schema.clone();
    let mut windows = Vec::with_capacity(calls.len());
    let mut rewrite_map: Vec<(FunctionCall, String)> = Vec::with_capacity(calls.len());
    for (i, call) in calls.iter().enumerate() {
        windows.push(compile_window(call, input_schema)?);
        let name = format!("__win{i}");
        work_schema.push(Column::new(name.clone(), DataType::Float));
        rewrite_map.push((call.clone(), name));
    }
    let rewrite = |expr: &Expr| -> Expr {
        if rewrite_map.is_empty() {
            return expr.clone();
        }
        window::replace_window_calls(expr.clone(), &rewrite_map)
    };

    let (out_schema, proj) = exec.projection_plan(query, &work_schema, &rewrite)?;
    let mut items = Vec::with_capacity(proj.len());
    let mut out_cols = Vec::with_capacity(out_schema.len());
    let mut names = out_schema.columns().iter().map(|c| c.name.clone());
    for p in proj {
        match p {
            ProjPlan::Splice(indices) => {
                for &i in &indices {
                    out_cols.push((names.next().expect("aligned"), DTypeSrc::Input(i)));
                }
                items.push(ProjStep::Splice(indices));
            }
            ProjPlan::Expr(e) => {
                let dsrc = match &e {
                    Expr::Column(c) => DTypeSrc::Input(
                        work_schema.resolve(c.qualifier.as_deref(), &c.name)?,
                    ),
                    _ => DTypeSrc::Fixed(DataType::Float),
                };
                out_cols.push((names.next().expect("aligned"), dsrc));
                items.push(ProjStep::Prog(ExprProgram::compile(&e, &work_schema)?));
            }
        }
    }

    let mut order = Vec::with_capacity(query.order_by.len());
    for o in &query.order_by {
        let e = rewrite(&o.expr);
        let src = match order_key_source(&e, &out_schema, &work_schema)? {
            KeySource::OutCol(i) => OrderKeySrc::OutCol(i),
            KeySource::Input => OrderKeySrc::Prog(ExprProgram::compile(&e, &work_schema)?),
        };
        order.push((src, o.order));
    }

    let node = PNode::Block(Box::new(BlockPlan {
        input,
        filter,
        body: Body::Plain(Box::new(PlainBody {
            windows,
            items,
            out_cols,
            order,
            distinct: query.distinct,
            limit: query.limit,
            offset: query.offset,
        })),
    }));
    Ok(Some((node, out_schema)))
}

fn compile_window(call: &FunctionCall, input_schema: &Schema) -> EngineResult<WindowPlan> {
    let upper = call.name.to_ascii_uppercase();
    let func = match upper.as_str() {
        "ROW_NUMBER" => WinFunc::RowNumber,
        "RANK" => WinFunc::Rank,
        "DENSE_RANK" => WinFunc::DenseRank,
        _ => WinFunc::Agg(AggKind::from_name(&call.name).ok_or_else(|| {
            EngineError::UnknownFunction(format!("{} OVER", call.name))
        })?),
    };
    let over = call.over.as_ref().expect("window call has OVER");
    let partition = over
        .partition_by
        .iter()
        .map(|p| ExprProgram::compile(p, input_schema))
        .collect::<EngineResult<_>>()?;
    let order = over
        .order_by
        .iter()
        .map(|o| Ok((ExprProgram::compile(&o.expr, input_schema)?, o.order)))
        .collect::<EngineResult<_>>()?;
    let ranking = matches!(func, WinFunc::RowNumber | WinFunc::Rank | WinFunc::DenseRank);
    let args = if ranking {
        Vec::new()
    } else {
        call.args
            .iter()
            .map(|a| match a {
                Expr::Wildcard => Ok(ArgStep::Star),
                other => Ok(ArgStep::Prog(ExprProgram::compile(other, input_schema)?)),
            })
            .collect::<EngineResult<_>>()?
    };
    Ok(WindowPlan { func, distinct: call.distinct, partition, order, args })
}

fn compile_agg(
    exec: &Executor<'_>,
    query: &Query,
    input: PNode,
    input_schema: &Schema,
    filter: Option<ExprProgram>,
) -> EngineResult<Compiled> {
    if query.has_wildcard() {
        // the interpreter rejects `SELECT *` with aggregation at runtime
        return interpret_block(query);
    }
    if exec.options.strict_group_by {
        // static property: check once at compile time; violations fall
        // back to the interpreter, which raises the reference error
        let grouped: std::collections::HashSet<String> = query
            .group_by
            .iter()
            .filter_map(|g| match g {
                Expr::Column(c) => Some(c.name.to_ascii_lowercase()),
                _ => None,
            })
            .collect();
        for item in &query.items {
            if let SelectItem::Expr { expr, .. } = item {
                check_strict_grouping(expr, &grouped, &query.group_by)?;
            }
        }
    }

    let group: Vec<ExprProgram> = query
        .group_by
        .iter()
        .map(|g| ExprProgram::compile(g, input_schema))
        .collect::<EngineResult<_>>()?;

    let mut agg_calls: Vec<FunctionCall> = Vec::new();
    for item in &query.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggregate_calls(expr, &mut agg_calls);
        }
    }
    if let Some(h) = &query.having {
        collect_aggregate_calls(h, &mut agg_calls);
    }
    for o in &query.order_by {
        collect_aggregate_calls(&o.expr, &mut agg_calls);
    }

    let mut calls = Vec::with_capacity(agg_calls.len());
    for call in &agg_calls {
        let kind = AggKind::from_name(&call.name)
            .ok_or_else(|| EngineError::UnknownFunction(call.name.clone()))?;
        if call.args.len() != kind.arity() {
            return Err(EngineError::WrongArity {
                function: call.name.clone(),
                expected: kind.arity().to_string(),
                got: call.args.len(),
            });
        }
        let args = call
            .args
            .iter()
            .map(|a| match a {
                Expr::Wildcard => Ok(ArgStep::Star),
                other => Ok(ArgStep::Prog(ExprProgram::compile(other, input_schema)?)),
            })
            .collect::<EngineResult<_>>()?;
        calls.push(AggCallPlan { kind, distinct: call.distinct, args });
    }

    let agg_names: Vec<String> = (0..agg_calls.len()).map(|i| format!("__agg{i}")).collect();
    let mut ext_schema = input_schema.clone();
    for name in &agg_names {
        ext_schema.push(Column::new(name.clone(), DataType::Float));
    }
    let rewrite =
        |expr: &Expr| -> Expr { replace_aggregate_calls(expr.clone(), &agg_calls, &agg_names) };

    let mut having =
        query.having.as_ref().map(|h| ExprProgram::compile(&rewrite(h), &ext_schema)).transpose()?;

    let mut out_names = Vec::with_capacity(query.items.len());
    let mut items = Vec::with_capacity(query.items.len());
    for item in &query.items {
        let SelectItem::Expr { expr, alias } = item else { unreachable!("wildcards excluded") };
        out_names.push(item_name(expr, alias));
        let e = rewrite(expr);
        let step = match &e {
            Expr::Column(c) => match ext_schema.try_resolve(c.qualifier.as_deref(), &c.name) {
                Some(idx) => AggItemStep::Col(idx),
                None => AggItemStep::Prog(ExprProgram::compile(&e, &ext_schema)?),
            },
            _ => AggItemStep::Prog(ExprProgram::compile(&e, &ext_schema)?),
        };
        items.push(step);
    }

    let mut out_schema = Schema::default();
    for name in &out_names {
        out_schema.push(Column::new(name.clone(), DataType::Float));
    }

    let mut order = Vec::with_capacity(query.order_by.len());
    for o in &query.order_by {
        let e = rewrite(&o.expr);
        let src = match order_key_source(&e, &out_schema, &ext_schema)? {
            KeySource::OutCol(i) => OrderKeySrc::OutCol(i),
            KeySource::Input => OrderKeySrc::Prog(ExprProgram::compile(&e, &ext_schema)?),
        };
        order.push((src, o.order));
    }

    // Representative-column pruning: the post-grouping stages only need
    // the input columns that items/HAVING/ORDER actually read, so the
    // per-group representative rows gather just those (a big win for
    // high-cardinality GROUP BY over wide inputs). Programs are
    // remapped to the compact layout. Skipped when the input schema has
    // duplicate names, where narrowing could change name resolution in
    // the (rare) row-fallback path.
    let mut rep_cols: Vec<usize> = (0..input_schema.len()).collect();
    let unique_names = {
        let mut seen = std::collections::HashSet::new();
        input_schema
            .columns()
            .iter()
            .all(|c| seen.insert(c.name.to_ascii_lowercase()))
    };
    if unique_names {
        let mut used: Vec<bool> = vec![false; input_schema.len()];
        let mut mark = |idx: usize| {
            if idx < used.len() {
                used[idx] = true;
            }
        };
        for step in &items {
            match step {
                AggItemStep::Col(i) => mark(*i),
                AggItemStep::Prog(p) => p.column_ordinals().for_each(&mut mark),
            }
        }
        if let Some(h) = &having {
            h.column_ordinals().for_each(&mut mark);
        }
        for (src, _) in &order {
            if let OrderKeySrc::Prog(p) = src {
                p.column_ordinals().for_each(&mut mark);
            }
        }
        rep_cols = used
            .iter()
            .enumerate()
            .filter_map(|(i, &u)| u.then_some(i))
            .collect();
        // full ext ordinal -> compact ext ordinal
        let mut compact = vec![usize::MAX; input_schema.len() + agg_names.len()];
        for (ci, &full) in rep_cols.iter().enumerate() {
            compact[full] = ci;
        }
        for (ai, slot) in compact.iter_mut().skip(input_schema.len()).enumerate() {
            *slot = rep_cols.len() + ai;
        }
        let remap = |idx: usize| compact[idx];
        for step in &mut items {
            match step {
                AggItemStep::Col(i) => *i = remap(*i),
                AggItemStep::Prog(p) => p.remap_columns(&remap),
            }
        }
        if let Some(h) = &mut having {
            h.remap_columns(&remap);
        }
        for (src, _) in &mut order {
            if let OrderKeySrc::Prog(p) = src {
                p.remap_columns(&remap);
            }
        }
    }

    let node = PNode::Block(Box::new(BlockPlan {
        input,
        filter,
        body: Body::Agg(Box::new(AggBody {
            group,
            calls,
            agg_names,
            rep_cols,
            having,
            items,
            out_names,
            order,
            distinct: query.distinct,
            limit: query.limit,
            offset: query.offset,
        })),
    }));
    Ok(Some((node, out_schema)))
}

// ---------------------------------------------------------------------
// execution
// ---------------------------------------------------------------------

fn exec_node(exec: &Executor<'_>, node: &PNode) -> EngineResult<Frame> {
    match node {
        PNode::Interpret(q) => exec.execute_ast(q),
        PNode::Unit => Frame::new(Schema::default(), vec![vec![]]),
        PNode::Scan { table, source } => {
            let frame = exec.catalog.get(table)?;
            let columns = (0..frame.schema.len()).map(|c| frame.column_arc(c)).collect();
            Frame::from_arc_columns(frame.schema.with_source(source), columns)
        }
        PNode::Derived { input, alias } => {
            let frame = exec_node(exec, input)?;
            match alias {
                Some(a) => {
                    let schema = frame.schema.with_source(a);
                    let columns =
                        (0..frame.schema.len()).map(|c| frame.column_arc(c)).collect();
                    Frame::from_arc_columns(schema, columns)
                }
                None => Ok(frame),
            }
        }
        PNode::Join { left, right, kind, on, equi } => {
            let l = exec_node(exec, left)?;
            let r = exec_node(exec, right)?;
            exec.join_frames(l, r, *kind, on.as_ref(), *equi)
        }
        PNode::Block(block) => exec_block(exec, block),
    }
}

fn exec_block(exec: &Executor<'_>, block: &BlockPlan) -> EngineResult<Frame> {
    let input = exec_node(exec, &block.input)?;
    let filtered = match &block.filter {
        Some(p) => {
            // subqueries interpret columnar-style: re-compiling them per
            // tick would defeat the compile-once contract
            let subquery_fn = |q: &Query| exec.execute_ast(q);
            let mask = {
                let ctx = EvalContext { schema: &input.schema, subquery: Some(&subquery_fn) };
                p.eval_mask(&input, &ctx)?
            };
            filter_rows_parallel(&input, &mask, ThreadPool::global())
        }
        None => input,
    };
    match &block.body {
        Body::Plain(body) => exec_plain(exec, body, filtered),
        Body::Agg(body) => exec_agg(exec, body, filtered),
    }
}

fn exec_plain(exec: &Executor<'_>, body: &PlainBody, input: Frame) -> EngineResult<Frame> {
    let subquery_fn = |q: &Query| exec.execute_ast(q);

    // window columns, attached in plan order
    let mut work = input;
    for (i, w) in body.windows.iter().enumerate() {
        let col = {
            let ctx = EvalContext { schema: &work.schema, subquery: Some(&subquery_fn) };
            compute_window_plan(w, &work, &ctx)?
        };
        work.push_column(Column::new(format!("__win{i}"), DataType::Float), col)?;
    }

    let n = work.len();
    let ctx = EvalContext { schema: &work.schema, subquery: Some(&subquery_fn) };

    let mut out_arcs: Vec<Arc<ColumnData>> = Vec::with_capacity(body.out_cols.len());
    for step in &body.items {
        match step {
            ProjStep::Splice(indices) => {
                for &i in indices {
                    out_arcs.push(work.column_arc(i));
                }
            }
            ProjStep::Prog(p) => out_arcs.push(p.eval(&work, &ctx)?.into_column_arc(n)),
        }
    }
    let mut out_schema = Schema::default();
    for (name, dsrc) in &body.out_cols {
        let dt = match dsrc {
            DTypeSrc::Input(i) => work.schema.columns()[*i].data_type,
            DTypeSrc::Fixed(dt) => *dt,
        };
        out_schema.push(Column::new(name.clone(), dt));
    }
    let mut frame = Frame::from_arc_columns(out_schema, out_arcs)?;
    finalise_types(&mut frame);

    let mut key_cols: Vec<Arc<ColumnData>> = Vec::with_capacity(body.order.len());
    for (src, _) in &body.order {
        key_cols.push(match src {
            OrderKeySrc::OutCol(i) => frame.column_arc(*i),
            OrderKeySrc::Prog(p) => p.eval(&work, &ctx)?.into_column_arc(n),
        });
    }
    sort_distinct_tail(frame, key_cols, &body.order, body.distinct, body.limit, body.offset)
}

/// Shared DISTINCT → ORDER BY → LIMIT/OFFSET tail of both block bodies,
/// matching the interpreter's operator order exactly.
fn sort_distinct_tail(
    mut frame: Frame,
    mut key_cols: Vec<Arc<ColumnData>>,
    order: &[(OrderKeySrc, SortOrder)],
    distinct: bool,
    limit: Option<u64>,
    offset: Option<u64>,
) -> EngineResult<Frame> {
    if distinct {
        let kept = distinct_indices(&frame);
        if kept.len() < frame.len() {
            frame = select_rows_parallel(&frame, &kept, ThreadPool::global());
            key_cols = key_cols.iter().map(|c| Arc::new(c.gather(&kept))).collect();
        }
    }
    if !order.is_empty() {
        let orders: Vec<SortOrder> = order.iter().map(|(_, o)| *o).collect();
        let mut perm = exec::sort_permutation(&key_cols, &orders, frame.len());
        if let Some(off) = offset {
            let off = (off as usize).min(perm.len());
            perm.drain(..off);
        }
        if let Some(l) = limit {
            perm.truncate(l as usize);
        }
        frame = select_rows_parallel(&frame, &perm, ThreadPool::global());
    } else {
        if let Some(off) = offset {
            frame.skip_rows(off as usize);
        }
        if let Some(l) = limit {
            frame.truncate(l as usize);
        }
    }
    Ok(frame)
}

fn exec_agg(exec: &Executor<'_>, body: &AggBody, input: Frame) -> EngineResult<Frame> {
    let n = input.len();
    let subquery_fn = |q: &Query| exec.execute_ast(q);

    // 1. group rows (first-appearance order, CSR layout)
    let grouping = if body.group.is_empty() {
        Grouping::single(n)
    } else {
        let ctx = EvalContext { schema: &input.schema, subquery: Some(&subquery_fn) };
        let key_cols: Vec<Arc<ColumnData>> = body
            .group
            .iter()
            .map(|p| Ok(p.eval(&input, &ctx)?.into_column_arc(n)))
            .collect::<EngineResult<_>>()?;
        group_rows(&key_cols, n)
    };

    // 2. batch-evaluate the aggregate arguments once over the input
    // (with zero groups nothing consumes them; programs never evaluate
    // over empty frames, so this stays error-free like the interpreter)
    let arg_batches: Vec<Vec<Batch>> = {
        let ctx = EvalContext { schema: &input.schema, subquery: Some(&subquery_fn) };
        eval_call_args(&body.calls, &input, &ctx)?
    };

    // 3. accumulate per group (group-parallel over the pool); one value
    // column per aggregate call
    let agg_cols = accumulate_groups(&body.calls, &arg_batches, &grouping, ThreadPool::global())?;

    // 4. extended frame: representative values of the *referenced*
    // input columns per group ++ the aggregate columns
    let ext_all = build_ext_frame(&input, &grouping, body, agg_cols)?;

    // 5.–7. HAVING, projection, ORDER BY/DISTINCT/LIMIT tail
    agg_finalize(exec, body, ext_all)
}

/// Steps 5–7 of grouped aggregation — HAVING over the extended frame,
/// projection, then the shared sort/distinct/limit tail. Shared by the
/// full-rescan path ([`exec_agg`]) and the incremental path (which
/// rebuilds only the extended frame from its accumulator state and
/// re-runs this tail, `O(groups)` per tick).
fn agg_finalize(exec: &Executor<'_>, body: &AggBody, ext_all: Frame) -> EngineResult<Frame> {
    agg_finalize_masked(exec, body, ext_all, None)
}

/// [`agg_finalize`] with an optional pre-computed HAVING mask (one bool
/// per extended-frame row). The incremental paths maintain the mask
/// between ticks and re-evaluate only the groups touched by a fold, so
/// passing it here makes HAVING `O(touched groups)` per tick instead of
/// `O(all groups)`.
fn agg_finalize_masked(
    exec: &Executor<'_>,
    body: &AggBody,
    ext_all: Frame,
    mask: Option<&[bool]>,
) -> EngineResult<Frame> {
    let subquery_fn = |q: &Query| exec.execute_ast(q);

    // 5. HAVING over the extended frame
    let ext = match (&body.having, mask) {
        (Some(_), Some(mask)) => filter_rows_parallel(&ext_all, mask, ThreadPool::global()),
        (Some(h), None) => {
            let mask = {
                let ctx = EvalContext { schema: &ext_all.schema, subquery: Some(&subquery_fn) };
                h.eval_mask(&ext_all, &ctx)?
            };
            filter_rows_parallel(&ext_all, &mask, ThreadPool::global())
        }
        (None, _) => ext_all,
    };

    // 6. projection over the extended frame
    let g = ext.len();
    let ctx = EvalContext { schema: &ext.schema, subquery: Some(&subquery_fn) };
    let mut out_arcs: Vec<Arc<ColumnData>> = Vec::with_capacity(body.items.len());
    for step in &body.items {
        match step {
            AggItemStep::Col(i) => out_arcs.push(ext.column_arc(*i)),
            AggItemStep::Prog(p) => out_arcs.push(p.eval(&ext, &ctx)?.into_column_arc(g)),
        }
    }
    let mut out_schema = Schema::default();
    for name in &body.out_names {
        out_schema.push(Column::new(name.clone(), DataType::Float));
    }
    let mut frame = Frame::from_arc_columns(out_schema, out_arcs)?;
    finalise_types(&mut frame);

    // 7. ORDER BY keys: aliases from the output, the rest over ext
    let mut key_cols: Vec<Arc<ColumnData>> = Vec::with_capacity(body.order.len());
    for (src, _) in &body.order {
        key_cols.push(match src {
            OrderKeySrc::OutCol(i) => frame.column_arc(*i),
            OrderKeySrc::Prog(p) => p.eval(&ext, &ctx)?.into_column_arc(g),
        });
    }
    sort_distinct_tail(frame, key_cols, &body.order, body.distinct, body.limit, body.offset)
}

/// Representative (first) values of the referenced input columns per
/// group ++ one column per aggregate call. A single empty group (global
/// aggregation over zero rows) yields one all-NULL representative row,
/// like the interpreter.
fn build_ext_frame(
    input: &Frame,
    grouping: &Grouping,
    body: &AggBody,
    agg_cols: Vec<Vec<Value>>,
) -> EngineResult<Frame> {
    let mut frame = if grouping.is_global_empty() {
        let mut schema = Schema::default();
        let mut cols = Vec::with_capacity(body.rep_cols.len());
        for &i in &body.rep_cols {
            schema.push(input.schema.columns()[i].clone());
            cols.push(ColumnData::from_values(vec![Value::Null]));
        }
        if body.rep_cols.is_empty() {
            // zero-column frame must still carry one row
            Frame::from_rows(schema, vec![Vec::new()])
        } else {
            Frame::from_columns(schema, cols)?
        }
    } else {
        let mut schema = Schema::default();
        let mut cols = Vec::with_capacity(body.rep_cols.len());
        for &i in &body.rep_cols {
            schema.push(input.schema.columns()[i].clone());
            cols.push(Arc::new(input.column(i).gather(&grouping.firsts)));
        }
        if body.rep_cols.is_empty() {
            Frame::from_rows(schema, vec![Vec::new(); grouping.len()])
        } else {
            Frame::from_arc_columns(schema, cols)?
        }
    };
    for (values, name) in agg_cols.into_iter().zip(&body.agg_names) {
        let col = ColumnData::from_values(values);
        frame.push_column(Column::new(name.clone(), DataType::Float), col)?;
    }
    Ok(frame)
}

// ---------------------------------------------------------------------
// grouping + typed accumulation kernels
// ---------------------------------------------------------------------

/// Groups of `0..n` in first-appearance order, laid out CSR-style: one
/// shared `rows` buffer partitioned by `offsets` — no per-group `Vec`
/// allocation, which dominates high-cardinality `GROUP BY`/windows.
struct Grouping {
    /// Row indices, grouped contiguously; within a group in ascending
    /// (appearance) order.
    rows: Vec<usize>,
    /// `offsets[g]..offsets[g + 1]` slices `rows` for group `g`.
    offsets: Vec<usize>,
    /// First-appearance row of every group (empty for the synthetic
    /// empty global group).
    firsts: Vec<usize>,
}

impl Grouping {
    /// All rows in one group (`GROUP BY ()` / window without PARTITION
    /// BY); `n == 0` yields the empty global group.
    fn single(n: usize) -> Grouping {
        Grouping {
            rows: (0..n).collect(),
            offsets: vec![0, n],
            firsts: if n > 0 { vec![0] } else { Vec::new() },
        }
    }

    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    fn group(&self, g: usize) -> &[usize] {
        &self.rows[self.offsets[g]..self.offsets[g + 1]]
    }

    /// Is this the synthetic zero-row global group?
    fn is_global_empty(&self) -> bool {
        self.len() == 1 && self.rows.is_empty()
    }

    /// Build from per-row group ids (pass 2 of grouping: counting sort).
    fn from_gids(gids: &[u32], n_groups: usize, firsts: Vec<usize>) -> Grouping {
        let mut offsets = vec![0usize; n_groups + 1];
        for &g in gids {
            offsets[g as usize + 1] += 1;
        }
        for g in 0..n_groups {
            offsets[g + 1] += offsets[g];
        }
        let mut cursor = offsets.clone();
        let mut rows = vec![0usize; gids.len()];
        for (ri, &g) in gids.iter().enumerate() {
            let c = &mut cursor[g as usize];
            rows[*c] = ri;
            *c += 1;
        }
        Grouping { rows, offsets, firsts }
    }
}

/// Partition `0..n` by the key columns, groups in first-appearance
/// order. Same contract as the interpreter's grouping, but Fx-hashed
/// with dense single-key fast paths (float-bit / integer keys skip the
/// `GroupKey` enum entirely) — hashing dominates the per-tick cost of
/// `GROUP BY` at scale.
fn group_rows(key_cols: &[Arc<ColumnData>], n: usize) -> Grouping {
    use std::collections::hash_map::Entry;
    if key_cols.is_empty() {
        return Grouping::single(n);
    }
    let mut gids: Vec<u32> = Vec::with_capacity(n);
    let mut firsts: Vec<usize> = Vec::new();
    let mut n_groups = 0u32;

    macro_rules! assign {
        ($slots:ident, $key:expr) => {
            for ri in 0..n {
                let gid = match $slots.entry($key(ri)) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let g = n_groups;
                        e.insert(g);
                        firsts.push(ri);
                        n_groups += 1;
                        g
                    }
                };
                gids.push(gid);
            }
        };
    }

    if let [col] = key_cols {
        if let Some(floats) = col.float_slice() {
            // NULL cannot collide with a float key: use a two-level key
            let mut slots: FxHashMap<Option<u64>, u32> = FxHashMap::default();
            // group-key semantics: -0.0 folds onto 0.0, NaNs by bits
            let key = |ri: usize| {
                floats[ri].map(|x| if x == 0.0 { 0.0f64.to_bits() } else { x.to_bits() })
            };
            assign!(slots, key);
            return Grouping::from_gids(&gids, n_groups as usize, firsts);
        }
        if let Some(ints) = col.int_slice() {
            let mut slots: FxHashMap<Option<i64>, u32> = FxHashMap::default();
            let key = |ri: usize| ints[ri];
            assign!(slots, key);
            return Grouping::from_gids(&gids, n_groups as usize, firsts);
        }
        let mut slots: FxHashMap<GroupKey, u32> = FxHashMap::default();
        let key = |ri: usize| col.group_key_at(ri);
        assign!(slots, key);
        return Grouping::from_gids(&gids, n_groups as usize, firsts);
    }

    let mut slots: FxHashMap<Vec<GroupKey>, u32> = FxHashMap::default();
    let key = |ri: usize| -> Vec<GroupKey> {
        key_cols.iter().map(|c| c.group_key_at(ri)).collect()
    };
    assign!(slots, key);
    Grouping::from_gids(&gids, n_groups as usize, firsts)
}

/// Numeric view of one aggregate-argument batch, for the typed
/// accumulation loops (no per-cell `Value` materialisation).
enum NumView<'a> {
    I(&'a [Option<i64>]),
    F(&'a [Option<f64>]),
    ConstInt(i64),
    ConstFloat(f64),
    ConstNull,
}

fn num_view(batch: &Batch) -> Option<NumView<'_>> {
    match batch {
        Batch::Const(Value::Int(v)) => Some(NumView::ConstInt(*v)),
        Batch::Const(Value::Float(v)) => Some(NumView::ConstFloat(*v)),
        Batch::Const(Value::Null) => Some(NumView::ConstNull),
        Batch::Const(_) => None,
        Batch::Col(c) => {
            if let Some(ints) = c.int_slice() {
                Some(NumView::I(ints))
            } else {
                c.float_slice().map(NumView::F)
            }
        }
    }
}

impl NumView<'_> {
    /// `(value, came-from-integer)` at row `i`, `None` for NULL.
    fn get(&self, i: usize) -> Option<(f64, bool)> {
        match self {
            NumView::I(v) => v[i].map(|x| (x as f64, true)),
            NumView::F(v) => v[i].map(|x| (x, false)),
            NumView::ConstInt(x) => Some((*x as f64, true)),
            NumView::ConstFloat(x) => Some((*x, false)),
            NumView::ConstNull => None,
        }
    }
}

/// How one aggregate call's pre-batched arguments feed an
/// [`Accumulator`], with typed fast paths for the numeric kinds. The
/// generic arm reproduces the interpreter's per-row `Value` loop bit
/// for bit; the fast arms update the same sums in the same order, so
/// results are identical either way. Shared by full-rescan grouped
/// aggregation, running windows and the incremental fold (which keeps
/// its accumulators alive across ticks).
enum ArgFold<'a> {
    /// SUM/AVG/STDDEV/VAR_SAMP over one numeric argument.
    Num(NumView<'a>),
    /// `regr_*(y, x)` over two numeric arguments.
    Pair { y: NumView<'a>, x: NumView<'a> },
    /// COUNT: null test only, no value materialisation.
    Count(&'a Batch),
    /// Everything else (DISTINCT, MIN/MAX, text, mixed buffers).
    Generic { args: &'a [Batch], buf: Vec<Value> },
}

impl<'a> ArgFold<'a> {
    fn new(kind: AggKind, distinct: bool, args: &'a [Batch]) -> ArgFold<'a> {
        if !distinct && args.len() == kind.arity() {
            match kind {
                AggKind::Sum | AggKind::Avg | AggKind::Stddev | AggKind::VarSamp => {
                    if let Some(view) = num_view(&args[0]) {
                        return ArgFold::Num(view);
                    }
                }
                AggKind::Count => return ArgFold::Count(&args[0]),
                AggKind::RegrIntercept
                | AggKind::RegrSlope
                | AggKind::RegrR2
                | AggKind::RegrCount => {
                    if let (Some(y), Some(x)) = (num_view(&args[0]), num_view(&args[1])) {
                        return ArgFold::Pair { y, x };
                    }
                }
                AggKind::Min | AggKind::Max => {}
            }
        }
        ArgFold::Generic { args, buf: Vec::with_capacity(args.len()) }
    }

    /// Fold row `ri`'s argument values into `acc`.
    fn update(&mut self, acc: &mut Accumulator, ri: usize) -> EngineResult<()> {
        match self {
            ArgFold::Num(view) => {
                if let Some((x, from_int)) = view.get(ri) {
                    acc.update_num_fast(x, from_int);
                }
                Ok(())
            }
            ArgFold::Pair { y, x } => {
                if let (Some((yv, _)), Some((xv, _))) = (y.get(ri), x.get(ri)) {
                    acc.update_pair_fast(yv, xv);
                }
                Ok(())
            }
            ArgFold::Count(arg) => {
                if !arg.is_null(ri) {
                    acc.bump_count(1);
                }
                Ok(())
            }
            ArgFold::Generic { args, buf } => {
                buf.clear();
                buf.extend(args.iter().map(|b| b.value(ri)));
                acc.update(buf)
            }
        }
    }
}

/// An [`ArgFold`] paired with an owned accumulator, reset per
/// group/partition: the unit of the rescan paths.
struct RowAcc<'a> {
    acc: Accumulator,
    fold: ArgFold<'a>,
}

impl<'a> RowAcc<'a> {
    fn new(kind: AggKind, distinct: bool, args: &'a [Batch]) -> RowAcc<'a> {
        RowAcc { acc: Accumulator::new(kind, distinct), fold: ArgFold::new(kind, distinct, args) }
    }

    /// Reset for the next group/partition (keeps allocations).
    fn reset(&mut self) {
        self.acc.reset();
    }

    fn update(&mut self, ri: usize) -> EngineResult<()> {
        self.fold.update(&mut self.acc, ri)
    }

    fn finish(&self) -> Value {
        self.acc.finish()
    }
}

/// All aggregate calls over a contiguous range of groups; accumulators
/// are constructed once and reset per group. Returns one value column
/// per call (covering the range), in the interpreter's group-major
/// evaluation order so errors surface identically.
fn accumulate_range(
    calls: &[AggCallPlan],
    arg_batches: &[Vec<Batch>],
    grouping: &Grouping,
    range: std::ops::Range<usize>,
) -> EngineResult<Vec<Vec<Value>>> {
    let mut accs: Vec<RowAcc<'_>> = calls
        .iter()
        .zip(arg_batches)
        .map(|(c, args)| RowAcc::new(c.kind, c.distinct, args))
        .collect();
    let mut out: Vec<Vec<Value>> =
        calls.iter().map(|_| Vec::with_capacity(range.len())).collect();
    for g in range {
        let rows = grouping.group(g);
        for (acc, col) in accs.iter_mut().zip(out.iter_mut()) {
            acc.reset();
            for &ri in rows {
                acc.update(ri)?;
            }
            col.push(acc.finish());
        }
    }
    Ok(out)
}

/// All aggregate calls over all groups; group-parallel over the pool
/// when the work is large enough. Results stay in group order, errors
/// surface in group order — parallelism is invisible in the output.
fn accumulate_groups(
    calls: &[AggCallPlan],
    arg_batches: &[Vec<Batch>],
    grouping: &Grouping,
    pool: &ThreadPool,
) -> EngineResult<Vec<Vec<Value>>> {
    let ng = grouping.len();
    if pool.workers() == 0 || ng < 2 || grouping.rows.len() < PARALLEL_MIN_ROWS {
        return accumulate_range(calls, arg_batches, grouping, 0..ng);
    }
    let ranges = pool.chunk_ranges(ng, 1);
    let mut parts: Vec<EngineResult<Vec<Vec<Value>>>> = Vec::with_capacity(ranges.len());
    parts.resize_with(ranges.len(), || Ok(Vec::new()));
    pool.scope(|s| {
        for (range, slot) in ranges.iter().zip(parts.iter_mut()) {
            let range = range.clone();
            s.spawn(move || {
                *slot = accumulate_range(calls, arg_batches, grouping, range);
            });
        }
    });
    let mut out: Vec<Vec<Value>> = calls.iter().map(|_| Vec::with_capacity(ng)).collect();
    for part in parts {
        for (col, chunk_col) in out.iter_mut().zip(part?) {
            col.extend(chunk_col);
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// windows
// ---------------------------------------------------------------------

/// Typed view of one window sort-key column.
enum KeyView<'a> {
    I(&'a [Option<i64>]),
    F(&'a [Option<f64>]),
    Gen(&'a ColumnData),
}

impl KeyView<'_> {
    fn cmp(&self, a: usize, b: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self {
            // Option ordering puts NULL first, like the generic total order
            KeyView::I(v) => v[a].cmp(&v[b]),
            KeyView::F(v) => match (v[a], v[b]) {
                (None, None) => Ordering::Equal,
                (None, Some(_)) => Ordering::Less,
                (Some(_), None) => Ordering::Greater,
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
            },
            KeyView::Gen(c) => c.cmp_at(a, c, b),
        }
    }
}

fn key_views(cols: &[Arc<ColumnData>]) -> Vec<KeyView<'_>> {
    cols.iter()
        .map(|c| {
            if let Some(ints) = c.int_slice() {
                KeyView::I(ints)
            } else if let Some(floats) = c.float_slice() {
                KeyView::F(floats)
            } else {
                KeyView::Gen(c)
            }
        })
        .collect()
}

fn cmp_keys(views: &[KeyView<'_>], orders: &[SortOrder], a: usize, b: usize) -> std::cmp::Ordering {
    for (view, order) in views.iter().zip(orders) {
        let ord = view.cmp(a, b);
        let ord = if *order == SortOrder::Desc { ord.reverse() } else { ord };
        if !ord.is_eq() {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

fn peers_eq(views: &[KeyView<'_>], a: usize, b: usize) -> bool {
    views.iter().all(|v| v.cmp(a, b).is_eq())
}

/// Compute one window call: one output value per input row, in input
/// row order. Partitions are CSR-grouped, per-chunk scratch buffers and
/// accumulators are reused, and chunks run partition-parallel over the
/// pool (each chunk owns a contiguous slice of the CSR-ordered output).
fn compute_window_plan(
    plan: &WindowPlan,
    frame: &Frame,
    ctx: &EvalContext<'_>,
) -> EngineResult<ColumnData> {
    let n = frame.len();
    let part_cols: Vec<Arc<ColumnData>> = plan
        .partition
        .iter()
        .map(|p| Ok(p.eval(frame, ctx)?.into_column_arc(n)))
        .collect::<EngineResult<_>>()?;
    let grouping = if plan.partition.is_empty() {
        Grouping::single(n)
    } else {
        group_rows(&part_cols, n)
    };

    let key_cols: Vec<Arc<ColumnData>> = plan
        .order
        .iter()
        .map(|(p, _)| Ok(p.eval(frame, ctx)?.into_column_arc(n)))
        .collect::<EngineResult<_>>()?;
    let orders: Vec<SortOrder> = plan.order.iter().map(|(_, o)| *o).collect();
    let args: Vec<Batch> = plan
        .args
        .iter()
        .map(|a| match a {
            ArgStep::Star => Ok(Batch::Const(Value::Int(1))),
            ArgStep::Prog(p) => p.eval(frame, ctx),
        })
        .collect::<EngineResult<_>>()?;
    let views = key_views(&key_cols);

    // values in CSR order: chunk `c` covering groups `gs..ge` owns
    // `csr_vals[offsets[gs]..offsets[ge]]`
    let mut csr_vals: Vec<Value> = vec![Value::Null; n];
    let ng = grouping.len();
    let pool = ThreadPool::global();
    let run_range = |range: std::ops::Range<usize>, slice: &mut [Value]| -> EngineResult<()> {
        let base = grouping.offsets[range.start];
        let mut scratch: Vec<usize> = Vec::new();
        let mut acc = match plan.func {
            WinFunc::Agg(kind) => Some(RowAcc::new(kind, plan.distinct, &args)),
            _ => None,
        };
        for g in range {
            let rows = grouping.group(g);
            let lo = grouping.offsets[g] - base;
            window_partition(
                plan.func,
                &views,
                &orders,
                rows,
                &mut slice[lo..lo + rows.len()],
                &mut scratch,
                acc.as_mut(),
            )?;
        }
        Ok(())
    };

    if pool.workers() > 0 && ng >= 2 && n >= PARALLEL_MIN_ROWS {
        let ranges = pool.chunk_ranges(ng, 1);
        let mut slots: Vec<EngineResult<()>> = Vec::with_capacity(ranges.len());
        slots.resize_with(ranges.len(), || Ok(()));
        pool.scope(|s| {
            let mut rest: &mut [Value] = &mut csr_vals;
            for (range, slot) in ranges.iter().zip(slots.iter_mut()) {
                let len = grouping.offsets[range.end] - grouping.offsets[range.start];
                let (head, tail) = rest.split_at_mut(len);
                rest = tail;
                let range = range.clone();
                let run_range = &run_range;
                s.spawn(move || *slot = run_range(range, head));
            }
        });
        slots.into_iter().collect::<EngineResult<Vec<()>>>()?;
    } else {
        run_range(0..ng, &mut csr_vals)?;
    }

    // scatter back to input row order
    let mut out = vec![Value::Null; n];
    for (k, v) in csr_vals.into_iter().enumerate() {
        out[grouping.rows[k]] = v;
    }
    Ok(ColumnData::from_values(out))
}

/// One partition's window values, written into `out` aligned to the
/// partition's row positions. `scratch` and `acc` are reused across
/// partitions of a chunk.
#[allow(clippy::too_many_arguments)]
fn window_partition(
    func: WinFunc,
    views: &[KeyView<'_>],
    orders: &[SortOrder],
    indices: &[usize],
    out: &mut [Value],
    scratch: &mut Vec<usize>,
    acc: Option<&mut RowAcc<'_>>,
) -> EngineResult<()> {
    scratch.clear();
    scratch.extend(0..indices.len());
    let ordered = scratch;
    if !orders.is_empty() {
        ordered.sort_by(|&a, &b| cmp_keys(views, orders, indices[a], indices[b]));
    }

    match func {
        WinFunc::RowNumber | WinFunc::Rank | WinFunc::DenseRank => {
            let mut rank = 0u64;
            let mut dense = 0u64;
            for (i, &pos) in ordered.iter().enumerate() {
                let new_peer_group = i == 0
                    || orders.is_empty()
                    || !peers_eq(views, indices[ordered[i - 1]], indices[pos]);
                if new_peer_group {
                    rank = (i + 1) as u64;
                    dense += 1;
                }
                let v = match func {
                    WinFunc::RowNumber => (i + 1) as i64,
                    WinFunc::Rank => rank as i64,
                    _ => dense as i64,
                };
                out[pos] = Value::Int(v);
            }
        }
        WinFunc::Agg(_) => {
            let acc = acc.expect("aggregate window has an accumulator");
            acc.reset();
            if orders.is_empty() {
                // whole-partition value
                for &pos in ordered.iter() {
                    acc.update(indices[pos])?;
                }
                let v = acc.finish();
                for &pos in ordered.iter() {
                    out[pos] = v.clone();
                }
            } else {
                // running aggregate with peer groups
                let mut i = 0;
                while i < ordered.len() {
                    let mut j = i + 1;
                    while j < ordered.len()
                        && peers_eq(views, indices[ordered[i]], indices[ordered[j]])
                    {
                        j += 1;
                    }
                    for &pos in &ordered[i..j] {
                        acc.update(indices[pos])?;
                    }
                    let v = acc.finish();
                    for &pos in &ordered[i..j] {
                        out[pos] = v.clone();
                    }
                    i = j;
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// parallel gathers
// ---------------------------------------------------------------------

/// `Frame::filter_rows`, gathering the surviving cells column-parallel
/// when the frame has at least `min_rows` rows.
fn filter_rows_parallel_with(
    frame: &Frame,
    mask: &[bool],
    pool: &ThreadPool,
    min_rows: usize,
) -> Frame {
    let cols = frame.schema.len();
    if pool.workers() == 0 || cols < 2 || frame.len() < min_rows {
        return frame.filter_rows(mask);
    }
    let mut outs: Vec<Option<ColumnData>> = Vec::with_capacity(cols);
    outs.resize_with(cols, || None);
    pool.scope(|s| {
        for (ci, slot) in outs.iter_mut().enumerate() {
            let col = frame.column(ci);
            s.spawn(move || *slot = Some(col.filter(mask)));
        }
    });
    let columns: Vec<Arc<ColumnData>> =
        outs.into_iter().map(|c| Arc::new(c.expect("column filtered"))).collect();
    Frame::from_arc_columns(frame.schema.clone(), columns).expect("filter preserves shape")
}

fn filter_rows_parallel(frame: &Frame, mask: &[bool], pool: &ThreadPool) -> Frame {
    filter_rows_parallel_with(frame, mask, pool, PARALLEL_MIN_ROWS)
}

/// `Frame::select_rows`, column-parallel when at least `min_rows` rows.
fn select_rows_parallel_with(
    frame: &Frame,
    indices: &[usize],
    pool: &ThreadPool,
    min_rows: usize,
) -> Frame {
    let cols = frame.schema.len();
    if pool.workers() == 0 || cols < 2 || indices.len() < min_rows {
        return frame.select_rows(indices);
    }
    let mut outs: Vec<Option<ColumnData>> = Vec::with_capacity(cols);
    outs.resize_with(cols, || None);
    pool.scope(|s| {
        for (ci, slot) in outs.iter_mut().enumerate() {
            let col = frame.column(ci);
            s.spawn(move || *slot = Some(col.gather(indices)));
        }
    });
    let columns: Vec<Arc<ColumnData>> =
        outs.into_iter().map(|c| Arc::new(c.expect("column gathered"))).collect();
    Frame::from_arc_columns(frame.schema.clone(), columns).expect("gather preserves shape")
}

fn select_rows_parallel(frame: &Frame, indices: &[usize], pool: &ThreadPool) -> Frame {
    select_rows_parallel_with(frame, indices, pool, PARALLEL_MIN_ROWS)
}

// ---------------------------------------------------------------------
// plan cache
// ---------------------------------------------------------------------

/// Upper bound on cached plans before an epoch-style reset (a stream of
/// distinct ad-hoc queries must not grow memory forever).
const MAX_CACHED_PLANS: usize = 1024;

/// Hit/miss/invalidation counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that compiled from scratch.
    pub misses: u64,
    /// Misses caused by a schema-fingerprint change (also counted in
    /// `misses`).
    pub invalidations: u64,
}

#[derive(Debug, Clone)]
struct CacheEntry {
    query: Query,
    tables: Vec<String>,
    fingerprint: u64,
    /// Caller-chosen key extension (e.g. a privacy-policy version); an
    /// entry only hits for the salt it was compiled under.
    salt: u64,
    /// `None`: the query is not compilable — interpret it (and don't
    /// retry until the schema fingerprint changes).
    plan: Option<Arc<CompiledPlan>>,
    /// The incremental (delta-aware) plan, compiled lazily on the first
    /// request: outer `None` = not attempted yet, `Some(None)` = shape
    /// is not incrementally maintainable (don't retry until the schema
    /// fingerprint changes).
    inc: Option<Option<Arc<IncrementalPlan>>>,
}

/// Cache of compiled plans keyed by `(query AST, schema fingerprint,
/// salt)`.
///
/// Keys hash via [`ast_key`] (no allocation); a hit verifies the stored
/// AST by structural equality, so hash collisions can never serve a
/// wrong plan. A fingerprint mismatch counts as an invalidation and
/// recompiles in place.
///
/// The `salt` is an opaque caller-supplied key extension. The runtime
/// layer passes the module's privacy-policy *version* here, so a policy
/// swap (which may rewrite fragments) can never serve a plan compiled
/// under a previous policy; [`PlanCache::purge_salt`] evicts the stale
/// generation eagerly.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    entries: HashMap<u64, Vec<CacheEntry>>,
    len: usize,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Hit/miss/invalidation counters.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Number of cached (compiled or interpret-marked) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look up (or compile) the plan for `query` against `exec`'s
    /// catalog. Returns `None` when the query is not compilable — the
    /// caller interprets it; that verdict is cached too.
    pub fn get_or_compile(
        &mut self,
        exec: &Executor<'_>,
        query: &Query,
    ) -> Option<Arc<CompiledPlan>> {
        self.get_or_compile_salted(exec, query, 0)
    }

    /// [`PlanCache::get_or_compile`] with an explicit key extension:
    /// entries only hit for the `salt` they were compiled under (the
    /// continuous-query runtime passes the module's policy version).
    pub fn get_or_compile_salted(
        &mut self,
        exec: &Executor<'_>,
        query: &Query,
        salt: u64,
    ) -> Option<Arc<CompiledPlan>> {
        self.lookup(exec, query, salt, false).0
    }

    /// One cache operation that returns **both** plan flavours of a
    /// query: the compiled full-rescan plan and — when the shape is
    /// incrementally maintainable — the delta-aware
    /// [`IncrementalPlan`]. The incremental plan is compiled lazily on
    /// the first request and memoized in the same entry, so a steady
    /// tick costs exactly one lookup regardless of which flavour runs
    /// (the hit/miss counters move once per call, like
    /// [`PlanCache::get_or_compile_salted`]).
    pub fn get_or_compile_with_incremental(
        &mut self,
        exec: &Executor<'_>,
        query: &Query,
        salt: u64,
    ) -> (Option<Arc<CompiledPlan>>, Option<Arc<IncrementalPlan>>) {
        self.lookup(exec, query, salt, true)
    }

    fn lookup(
        &mut self,
        exec: &Executor<'_>,
        query: &Query,
        salt: u64,
        want_inc: bool,
    ) -> (Option<Arc<CompiledPlan>>, Option<Arc<IncrementalPlan>>) {
        let ensure_inc = |entry: &mut CacheEntry| -> Option<Arc<IncrementalPlan>> {
            if entry.inc.is_none() {
                entry.inc =
                    Some(exec.compile_incremental(&entry.query).ok().flatten().map(Arc::new));
            }
            entry.inc.clone().expect("just ensured")
        };
        let key = ast_key(query);
        if let Some(list) = self.entries.get_mut(&key) {
            if let Some(entry) = list.iter_mut().find(|e| e.query == *query && e.salt == salt) {
                let fp = schema_fingerprint(exec.catalog, &entry.tables);
                if fp == entry.fingerprint {
                    self.stats.hits += 1;
                    let inc = if want_inc { ensure_inc(entry) } else { None };
                    return (entry.plan.clone(), inc);
                }
                // schemas changed under the plan: recompile in place
                self.stats.misses += 1;
                self.stats.invalidations += 1;
                let plan = exec.compile(query).ok().map(Arc::new);
                entry.fingerprint = plan.as_ref().map(|p| p.fingerprint()).unwrap_or(fp);
                entry.plan = plan.clone();
                entry.inc = None;
                let inc = if want_inc { ensure_inc(entry) } else { None };
                return (plan, inc);
            }
        }
        self.stats.misses += 1;
        if self.len >= MAX_CACHED_PLANS {
            self.entries.clear();
            self.len = 0;
        }
        let tables = paradise_sql::analysis::base_relations(query);
        let plan = exec.compile(query).ok().map(Arc::new);
        let fingerprint = plan
            .as_ref()
            .map(|p| p.fingerprint())
            .unwrap_or_else(|| schema_fingerprint(exec.catalog, &tables));
        let mut entry = CacheEntry {
            query: query.clone(),
            tables,
            fingerprint,
            salt,
            plan: plan.clone(),
            inc: None,
        };
        let inc = if want_inc { ensure_inc(&mut entry) } else { None };
        self.entries.entry(key).or_default().push(entry);
        self.len += 1;
        (plan, inc)
    }

    /// Insert a plan compiled elsewhere (cross-handle plan sharing in
    /// the continuous-query runtime: two handles registering the same
    /// rewritten fragment compile once and share the `Arc`). No
    /// hit/miss accounting; returns `false` when an entry for this
    /// (query, salt) already exists or the plan's schema fingerprint
    /// does not match the catalog it was compiled against.
    pub fn seed(
        &mut self,
        exec: &Executor<'_>,
        query: &Query,
        salt: u64,
        plan: Arc<CompiledPlan>,
    ) -> bool {
        if schema_fingerprint(exec.catalog, plan.tables()) != plan.fingerprint() {
            return false;
        }
        let key = ast_key(query);
        if let Some(list) = self.entries.get(&key) {
            if list.iter().any(|e| e.query == *query && e.salt == salt) {
                return false;
            }
        }
        if self.len >= MAX_CACHED_PLANS {
            self.entries.clear();
            self.len = 0;
        }
        self.entries.entry(key).or_default().push(CacheEntry {
            query: query.clone(),
            tables: plan.tables().to_vec(),
            fingerprint: plan.fingerprint(),
            salt,
            plan: Some(plan),
            inc: None,
        });
        self.len += 1;
        true
    }

    /// Iterate the successfully compiled entries — the harvest side of
    /// cross-handle plan sharing.
    pub fn compiled_entries(&self) -> impl Iterator<Item = (&Query, &Arc<CompiledPlan>)> {
        self.entries
            .values()
            .flatten()
            .filter_map(|e| e.plan.as_ref().map(|p| (&e.query, p)))
    }

    /// Evict every entry whose salt differs from `current`, counting
    /// each eviction as an invalidation. The per-node hook behind live
    /// policy updates: when a module's policy version is bumped, the
    /// plans compiled under older versions are dead weight and must
    /// never be served again. Returns the number of evicted entries.
    pub fn purge_salt(&mut self, current: u64) -> usize {
        let mut evicted = 0usize;
        self.entries.retain(|_, list| {
            list.retain(|e| {
                let keep = e.salt == current;
                if !keep {
                    evicted += 1;
                }
                keep
            });
            !list.is_empty()
        });
        self.len -= evicted;
        self.stats.invalidations += evicted as u64;
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecMode, ExecOptions};
    use paradise_sql::parse_query;

    fn catalog() -> Catalog {
        let schema = Schema::from_pairs(&[
            ("x", DataType::Float),
            ("y", DataType::Float),
            ("z", DataType::Float),
            ("t", DataType::Integer),
        ]);
        let rows = (0..200)
            .map(|i| {
                vec![
                    Value::Float((i % 9) as f64),
                    Value::Float((i % 4) as f64),
                    Value::Float((i % 3) as f64 * 0.9),
                    Value::Int(i),
                ]
            })
            .collect();
        let mut c = Catalog::new();
        c.register("stream", Frame::new(schema, rows).unwrap()).unwrap();
        c
    }

    const QUERIES: &[&str] = &[
        "SELECT * FROM stream",
        "SELECT x, t FROM stream WHERE z < 2",
        "SELECT x, AVG(z) AS za FROM stream GROUP BY x HAVING SUM(z) > 1 ORDER BY za DESC",
        "SELECT SUM(z) OVER (PARTITION BY x ORDER BY t) FROM stream",
        "SELECT DISTINCT x FROM stream ORDER BY x LIMIT 3",
        "SELECT a.x FROM stream a JOIN stream b ON a.t = b.t WHERE a.z < 1",
        "SELECT za FROM (SELECT x, AVG(z) AS za FROM stream GROUP BY x)",
        "SELECT COUNT(*) FROM stream",
        "SELECT regr_intercept(y, x) AS ri FROM stream",
        "SELECT x FROM stream ORDER BY t DESC LIMIT 5 OFFSET 2",
        "SELECT x FROM stream UNION SELECT y FROM stream",
    ];

    #[test]
    fn compiled_matches_interpreted() {
        let c = catalog();
        let compiled_exec = Executor::new(&c);
        let interp_exec = Executor::with_options(
            &c,
            ExecOptions { mode: ExecMode::Columnar, ..Default::default() },
        );
        for sql in QUERIES {
            let q = parse_query(sql).unwrap();
            let plan = compiled_exec.compile(&q).unwrap();
            let a = compiled_exec.run_plan(&plan).unwrap();
            let b = interp_exec.execute(&q).unwrap();
            assert_eq!(a.schema, b.schema, "schema diverges for {sql}");
            assert_eq!(a.to_rows(), b.to_rows(), "rows diverge for {sql}");
        }
    }

    #[test]
    fn stale_plan_is_rejected() {
        let c = catalog();
        let q = parse_query("SELECT x FROM stream").unwrap();
        let plan = Executor::new(&c).compile(&q).unwrap();

        let mut c2 = Catalog::new();
        let schema = Schema::from_pairs(&[("renamed", DataType::Float)]);
        c2.register("stream", Frame::new(schema, vec![vec![Value::Float(1.0)]]).unwrap())
            .unwrap();
        let exec2 = Executor::new(&c2);
        assert!(matches!(exec2.run_plan(&plan), Err(EngineError::StalePlan)));
    }

    #[test]
    fn plan_cache_hits_and_invalidates() {
        let c = catalog();
        let q = parse_query("SELECT x FROM stream WHERE z < 2").unwrap();
        let mut cache = PlanCache::new();
        {
            let exec = Executor::new(&c);
            assert!(cache.get_or_compile(&exec, &q).is_some());
            assert!(cache.get_or_compile(&exec, &q).is_some());
        }
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().invalidations, 0);
        assert_eq!(cache.len(), 1);

        // same query over a different schema: invalidation + recompile
        let mut c2 = Catalog::new();
        let schema = Schema::from_pairs(&[("z", DataType::Float), ("x", DataType::Integer)]);
        c2.register("stream", Frame::new(schema, vec![vec![Value::Float(0.5), Value::Int(3)]]).unwrap())
            .unwrap();
        let exec2 = Executor::new(&c2);
        let plan = cache.get_or_compile(&exec2, &q).expect("recompiled");
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(exec2.run_plan(&plan).unwrap().to_rows(), vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn salted_entries_are_disjoint_and_purgeable() {
        let c = catalog();
        let q = parse_query("SELECT x FROM stream WHERE z < 2").unwrap();
        let mut cache = PlanCache::new();
        let exec = Executor::new(&c);
        // the same query under two salts compiles twice, hits per salt
        assert!(cache.get_or_compile_salted(&exec, &q, 1).is_some());
        assert!(cache.get_or_compile_salted(&exec, &q, 2).is_some());
        assert!(cache.get_or_compile_salted(&exec, &q, 1).is_some());
        assert!(cache.get_or_compile_salted(&exec, &q, 2).is_some());
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.len(), 2);

        // bumping to salt 3 purges both stale generations
        assert_eq!(cache.purge_salt(3), 2);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().invalidations, 2);
        assert!(cache.get_or_compile_salted(&exec, &q, 3).is_some());
        assert_eq!(cache.stats().misses, 3);
        // purging with the live salt evicts nothing
        assert_eq!(cache.purge_salt(3), 0);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn uncompilable_queries_cache_the_interpret_verdict() {
        let c = catalog();
        let q = parse_query("SELECT x FROM stream UNION SELECT y FROM stream").unwrap();
        let mut cache = PlanCache::new();
        let exec = Executor::new(&c);
        // UNION compiles to an Interpret root — still a usable plan
        assert!(cache.get_or_compile(&exec, &q).is_some());
        // a query over a missing table is not compilable at all
        let missing = parse_query("SELECT q FROM nowhere").unwrap();
        assert!(cache.get_or_compile(&exec, &missing).is_none());
        assert!(cache.get_or_compile(&exec, &missing).is_none());
        assert_eq!(cache.stats().hits, 1, "the interpret verdict is cached");
    }

    #[test]
    fn ast_key_distinguishes_queries() {
        let a = parse_query("SELECT x FROM stream").unwrap();
        let b = parse_query("SELECT y FROM stream").unwrap();
        assert_ne!(ast_key(&a), ast_key(&b));
        assert_eq!(ast_key(&a), ast_key(&parse_query("SELECT  x  FROM  stream").unwrap()));
    }

    #[test]
    fn fingerprint_tracks_schema_changes() {
        let c = catalog();
        let tables = vec!["stream".to_string()];
        let fp1 = schema_fingerprint(&c, &tables);
        let mut c2 = Catalog::new();
        c2.register(
            "stream",
            Frame::new(Schema::from_pairs(&[("x", DataType::Integer)]), vec![]).unwrap(),
        )
        .unwrap();
        assert_ne!(fp1, schema_fingerprint(&c2, &tables));
        assert_ne!(fp1, schema_fingerprint(&Catalog::new(), &tables));
    }

    #[test]
    fn parallel_operators_match_serial() {
        // explicit pool: the global one is serial on single-core machines
        let pool = ThreadPool::new(3);
        let c = catalog();
        let frame = c.get("stream").unwrap();
        let mask: Vec<bool> = (0..frame.len()).map(|i| i % 3 != 0).collect();
        let par = filter_rows_parallel_with(frame, &mask, &pool, 0);
        assert_eq!(par.to_rows(), frame.filter_rows(&mask).to_rows());

        let indices: Vec<usize> = (0..frame.len()).rev().collect();
        let sel = select_rows_parallel_with(frame, &indices, &pool, 0);
        assert_eq!(sel.to_rows(), frame.select_rows(&indices).to_rows());

        // grouped accumulation: two calls over many groups, parallel
        // chunking vs the serial range
        let zs = frame.column_arc(2);
        let calls = vec![
            AggCallPlan { kind: AggKind::Avg, distinct: false, args: vec![ArgStep::Star] },
            AggCallPlan { kind: AggKind::Sum, distinct: false, args: vec![ArgStep::Star] },
        ];
        let args = vec![vec![Batch::Col(Arc::clone(&zs))], vec![Batch::Col(zs)]];
        let grouping = group_rows(&[frame.column_arc(0)], frame.len());
        let serial = accumulate_range(&calls, &args, &grouping, 0..grouping.len()).unwrap();
        // `accumulate_groups` takes the parallel path only past the row
        // threshold; replicate the grouping until it crosses it so the
        // production splitter runs with real workers
        let mut big_rows = Vec::new();
        let mut big_offsets = vec![0usize];
        let mut big_firsts = Vec::new();
        while big_rows.len() < PARALLEL_MIN_ROWS {
            for g in 0..grouping.len() {
                big_firsts.push(grouping.group(g)[0]);
                big_rows.extend_from_slice(grouping.group(g));
                big_offsets.push(big_rows.len());
            }
        }
        let big = Grouping { rows: big_rows, offsets: big_offsets, firsts: big_firsts };
        let serial_big = accumulate_range(&calls, &args, &big, 0..big.len()).unwrap();
        let parallel_big = accumulate_groups(&calls, &args, &big, &pool).unwrap();
        assert_eq!(serial_big, parallel_big);
        // the replicated grouping repeats the original per-group values
        let reps = big.len() / grouping.len();
        for (big_col, col) in serial_big.iter().zip(&serial) {
            let expect: Vec<Value> =
                (0..reps).flat_map(|_| col.iter().cloned()).collect();
            assert_eq!(big_col, &expect);
        }
    }

    #[test]
    fn csr_grouping_matches_reference_partitioning() {
        let c = catalog();
        let frame = c.get("stream").unwrap();
        for col in 0..frame.schema.len() {
            let key = frame.column_arc(col);
            let grouping = group_rows(&[Arc::clone(&key)], frame.len());
            // reference: first-appearance order over group keys
            let mut order: Vec<GroupKey> = Vec::new();
            let mut expect: Vec<Vec<usize>> = Vec::new();
            for ri in 0..frame.len() {
                let k = key.group_key_at(ri);
                match order.iter().position(|x| *x == k) {
                    Some(g) => expect[g].push(ri),
                    None => {
                        order.push(k);
                        expect.push(vec![ri]);
                    }
                }
            }
            assert_eq!(grouping.len(), expect.len(), "column {col}");
            for (g, rows) in expect.iter().enumerate() {
                assert_eq!(grouping.group(g), rows.as_slice(), "column {col}, group {g}");
                assert_eq!(grouping.firsts[g], rows[0]);
            }
        }
    }

}
