//! Partition-parallel incremental aggregation: shard the stream by a
//! hash of a declared partition key into N sub-streams, fold each
//! shard's delta on the scoped thread pool, and merge per-group
//! accumulators only at the aggregation boundary.
//!
//! Each shard owns a plain [`GroupState`] and folds exactly like the
//! serial path; a cross-shard [`MergedGroups`] view re-establishes the
//! *global* first-appearance group order (via per-group first stream
//! positions assigned pre-filter) and merges accumulators for groups
//! that span shards. Rows of one group land on one shard whenever the
//! partition key functionally determines the `GROUP BY` key — the
//! intended deployment (partition by user id, group by user id) — in
//! which case no accumulator is ever merged and results are bit-exact
//! against serial incremental execution. When a group *does* span
//! shards, moment-based accumulators ([`Accumulator::merge`]) keep
//! results exact for integer inputs and equal up to floating-point
//! re-association otherwise.
//!
//! Shapes that cannot shard — stateless append stages, global
//! aggregation, `DISTINCT` aggregate calls (not mergeable), a missing
//! key column, or `shards <= 1` — fall back to
//! [`Executor::run_incremental`] transparently, so shard count 1 stays
//! an executable serial reference path.

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use minipool::ThreadPool;

use super::incremental::{
    fold_grouped, DeltaInput, GroupState, IncKind, IncrementalPlan, IncrementalRun,
    IncrementalState, SlotKey, StateData,
};
use super::{
    agg_finalize_masked, select_rows_parallel, AggBody, Executor, ExprProgram, FxHashMap,
    FxHasher, PARALLEL_MIN_ROWS,
};
use crate::column::ColumnData;
use crate::error::{EngineError, EngineResult};
use crate::eval::EvalContext;
use crate::frame::Frame;
use crate::schema::{Column, Schema};
use crate::value::{DataType, GroupKey};

/// Partition-parallel execution policy for a registered stream: route
/// rows to `shards` sub-streams by a hash of the `key` column and fold
/// each shard's delta in parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Partition-key column name (resolved case-insensitively against
    /// the stream schema).
    pub key: String,
    /// Number of shards; `1` keeps the serial reference path.
    pub shards: usize,
}

impl ShardSpec {
    /// A spec for `shards`-way partitioning by `key`. The shard count
    /// is clamped to `1..=u16::MAX`.
    pub fn new(key: impl Into<String>, shards: usize) -> ShardSpec {
        ShardSpec { key: key.into(), shards: shards.clamp(1, u16::MAX as usize) }
    }
}

/// Shard ordinal of one group key: FxHash reduced modulo the shard
/// count. Uses [`GroupKey`] (not the raw value) so numerically equal
/// keys of different types land on the same shard, exactly mirroring
/// group-key equality.
fn shard_of(key: &GroupKey, shards: usize) -> u32 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    (h.finish() % shards as u64) as u32
}

/// Row indices of `col` bucketed by shard: `buckets[s]` holds the rows
/// routed to shard `s`, each in ascending order. Hashing is
/// chunk-parallel over the pool; the bucket scatter is serial (cheap
/// relative to hashing, and keeps per-bucket order deterministic).
pub(crate) fn split_indices(col: &ColumnData, shards: usize, pool: &ThreadPool) -> Vec<Vec<u32>> {
    let n = col.len();
    let mut sid = vec![0u32; n];
    let ranges = pool.chunk_ranges(n, PARALLEL_MIN_ROWS);
    if ranges.len() <= 1 {
        for (ri, s) in sid.iter_mut().enumerate() {
            *s = shard_of(&col.group_key_at(ri), shards);
        }
    } else {
        pool.scope(|scope| {
            let mut rest: &mut [u32] = &mut sid;
            for range in ranges {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let base = range.start;
                scope.spawn(move || {
                    for (i, s) in chunk.iter_mut().enumerate() {
                        *s = shard_of(&col.group_key_at(base + i), shards);
                    }
                });
            }
        });
    }
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); shards];
    for (ri, &s) in sid.iter().enumerate() {
        buckets[s as usize].push(ri as u32);
    }
    buckets
}

/// One shard's slice of a sharded grouped state: a plain serial
/// [`GroupState`] plus the map from shard-local group ids to merged
/// (global) group ids.
#[derive(Debug)]
struct ShardSlot {
    gs: GroupState,
    /// `to_merged[local gid] = merged gid`; grows in lockstep with
    /// `gs.n_groups`.
    to_merged: Vec<u32>,
}

/// Which shard-local accumulators feed one merged group.
#[derive(Debug)]
enum Owners {
    /// The common case (partition key determines the group key): the
    /// group lives on exactly one shard as `(shard, local gid)` and its
    /// cached finish value is copied, never re-merged.
    One(u16, u32),
    /// The group spans shards; finish values are recomputed by merging
    /// accumulator clones in first-appearance order.
    Many(Vec<(u16, u32)>),
}

/// The cross-shard view: merged group ids in *global* first-appearance
/// order plus the maintained extended-frame columns, mirroring what a
/// serial [`GroupState`] would hold.
#[derive(Debug)]
struct MergedGroups {
    slots: FxHashMap<SlotKey, u32>,
    n_groups: u32,
    owners: Vec<Owners>,
    /// Representative (globally first-row) values per merged group.
    reps: Vec<Arc<ColumnData>>,
    /// Cached finish values per call, refreshed for touched groups.
    vals: Vec<Arc<ColumnData>>,
    /// Cached HAVING mask over merged groups (`None` without HAVING).
    having: Option<Vec<bool>>,
    /// Merged group ids touched by the current tick (sorted, deduped).
    touched: Vec<u32>,
}

/// Partition-parallel grouped state: per-shard fold states plus the
/// merged cross-shard group view.
#[derive(Debug)]
pub(super) struct ShardedGroupedState {
    shards: Vec<ShardSlot>,
    merged: MergedGroups,
    /// Stream position (rows since the last rebuild) assigned to the
    /// next delta's first row; positions order merged group creation.
    next_pos: u64,
    /// Partition-key ordinal in the plan's input schema.
    key_col: usize,
}

impl ShardedGroupedState {
    fn new(body: &AggBody, in_schema: &Schema, shards: usize, key_col: usize) -> Self {
        ShardedGroupedState {
            shards: (0..shards)
                .map(|_| ShardSlot { gs: GroupState::new(body, in_schema), to_merged: Vec::new() })
                .collect(),
            merged: MergedGroups {
                slots: FxHashMap::default(),
                n_groups: 0,
                owners: Vec::new(),
                reps: body
                    .rep_cols
                    .iter()
                    .map(|&i| Arc::new(ColumnData::empty(in_schema.columns()[i].data_type)))
                    .collect(),
                vals: body
                    .calls
                    .iter()
                    .map(|_| Arc::new(ColumnData::empty(DataType::Float)))
                    .collect(),
                having: body.having.as_ref().map(|_| Vec::new()),
                touched: Vec::new(),
            },
            next_pos: 0,
            key_col,
        }
    }

    /// Rows folded so far across all shards (diagnostic).
    pub(super) fn rows_seen(&self) -> u64 {
        self.shards.iter().map(|s| s.gs.rows).sum()
    }
}

impl<'a> Executor<'a> {
    /// One tick of an incremental plan with partition-parallel
    /// execution per `spec`: semantics identical to
    /// [`Executor::run_incremental`] (same results, same `StalePlan` /
    /// poison-on-error contract), with the grouped fold fanned out over
    /// the shards of the partition key. Non-shardable shapes fall back
    /// to the serial path transparently.
    pub fn run_incremental_sharded(
        &self,
        plan: &IncrementalPlan,
        state: &mut IncrementalState,
        input: DeltaInput<'_>,
        spec: &ShardSpec,
    ) -> EngineResult<IncrementalRun> {
        let key_col = match plan.shard_key_col(&spec.key) {
            Some(c) if spec.shards > 1 => c,
            _ => return self.run_incremental(plan, state, input),
        };
        let IncKind::Grouped(body) = &plan.kind else {
            unreachable!("shard_key_col only resolves for grouped plans")
        };

        // 1. resolve the delta and whether the state survives (same
        // contract as the serial path; a sharded state is additionally
        // incompatible when the shard count or key column changed)
        let prev_rows = state.mark.map(|m| m.rows());
        let (mut delta, mut reset, mark) = self.resolve_delta(plan, state, input)?;
        let compatible = state.plan_fp == Some(plan.fingerprint)
            && matches!(
                &state.data,
                StateData::Sharded(ss) if ss.shards.len() == spec.shards && ss.key_col == key_col
            );
        if !compatible {
            if !reset {
                // an incompatible state (fresh, other plan, changed
                // shard routing) cannot fold a partial delta. Pushed
                // input has no full window to fall back to — signal the
                // driver to retry from a clean rebuild; source-backed
                // input rescans the full window right here.
                if mark.is_none() {
                    return Err(EngineError::StalePlan);
                }
                delta = self.catalog.get(&plan.table)?.clone();
            }
            reset = true;
        }
        let input_rows = delta.len();
        state.plan_fp = Some(plan.fingerprint);
        if reset {
            state.data = StateData::Sharded(ShardedGroupedState::new(
                body,
                &plan.in_schema,
                spec.shards,
                key_col,
            ));
        }
        let having_evals = &mut state.having_evals;
        let StateData::Sharded(ss) = &mut state.data else {
            unreachable!("reset guarantees matching state")
        };

        // 2. reuse the catalog's cached per-shard split when this
        // tick's delta is exactly the last appended batch
        let cached_split = match (&mark, reset) {
            (Some(_), false) => self
                .catalog
                .last_batch_split(&plan.table, &spec.key, spec.shards)
                .and_then(|(start, split)| {
                    let aligned = prev_rows == Some(start)
                        && split.iter().map(Vec::len).sum::<usize>() == delta.len();
                    aligned.then_some(split)
                }),
            _ => None,
        };

        // 3. parallel per-shard fold, serial merge, shared finalize
        let run = shard_fold(body, plan, ss, &delta, cached_split).and_then(|()| {
            let ext = build_merged_ext(body, &ss.merged, &plan.in_schema)?;
            if let Some(h) = &body.having {
                let mask = ss.merged.having.as_mut().expect("sharded HAVING mask allocated");
                *having_evals += refresh_having_mask(h, &ext, &ss.merged.touched, mask)?;
            }
            agg_finalize_masked(self, body, ext, ss.merged.having.as_deref())
        });
        match run {
            Ok(result) => {
                ss.next_pos += input_rows as u64;
                state.mark = mark;
                Ok(IncrementalRun { result, delta: None, reset, input_rows })
            }
            Err(e) => {
                // some shards may have folded before another erred and
                // the watermark did not advance: poison the whole state
                // (all shards at once) so the next call rebuilds
                // coherently — no partial merge is ever observable
                *state = IncrementalState::default();
                Err(e)
            }
        }
    }
}

/// Split `delta` by shard and fold every shard's rows in parallel, then
/// merge newly created groups and refresh the merged view. Error
/// reporting is deterministic: the lowest-numbered failing shard wins
/// regardless of completion order.
fn shard_fold(
    body: &AggBody,
    plan: &IncrementalPlan,
    ss: &mut ShardedGroupedState,
    delta: &Frame,
    cached_split: Option<Arc<Vec<Vec<u32>>>>,
) -> EngineResult<()> {
    let pool = ThreadPool::global();
    let n_shards = ss.shards.len();
    let base = ss.next_pos;
    let computed;
    let buckets: &[Vec<u32>] = match &cached_split {
        Some(s) => s.as_slice(),
        None => {
            computed = split_indices(delta.column(ss.key_col), n_shards, pool);
            &computed
        }
    };
    let mut results: Vec<EngineResult<()>> = Vec::with_capacity(n_shards);
    results.resize_with(n_shards, || Ok(()));
    pool.scope(|scope| {
        for ((slot, bucket), out) in
            ss.shards.iter_mut().zip(buckets).zip(results.iter_mut())
        {
            scope.spawn(move || {
                *out = fold_shard(body, plan, slot, delta, bucket, base);
            });
        }
    });
    for r in results {
        r?;
    }
    merge_new_groups(ss);
    refresh_merged(ss)
}

/// Fold one shard's delta rows: gather the bucket, assign pre-filter
/// stream positions, apply the `WHERE` program, and run the plain
/// serial fold with position tracking.
fn fold_shard(
    body: &AggBody,
    plan: &IncrementalPlan,
    slot: &mut ShardSlot,
    delta: &Frame,
    bucket: &[u32],
    base: u64,
) -> EngineResult<()> {
    if bucket.is_empty() {
        // keep per-tick scratch coherent for the merge step
        slot.gs.touched.clear();
        slot.gs.new_keys.clear();
        return Ok(());
    }
    let indices: Vec<usize> = bucket.iter().map(|&i| i as usize).collect();
    let sub = delta.select_rows(&indices);
    let mut positions: Vec<u64> = bucket.iter().map(|&i| base + i as u64).collect();
    let ctx = EvalContext { schema: &plan.in_schema, subquery: None };
    let fd = match &plan.filter {
        Some(p) => {
            let mask = p.eval_mask(&sub, &ctx)?;
            let mut kept = Vec::with_capacity(positions.len());
            for (&pos, &keep) in positions.iter().zip(&mask) {
                if keep {
                    kept.push(pos);
                }
            }
            positions = kept;
            sub.filter_rows(&mask)
        }
        None => sub,
    };
    fold_grouped(body, &mut slot.gs, &fd, &ctx, Some(&positions))
}

/// Insert the groups created by this tick's folds into the merged map,
/// in ascending order of their first (pre-filter) stream position — the
/// exact order a serial fold over the un-split delta would have created
/// them in, so merged group ids match the serial path's.
fn merge_new_groups(ss: &mut ShardedGroupedState) {
    let bases: Vec<usize> = ss.shards.iter().map(|s| s.to_merged.len()).collect();
    let mut created: Vec<(u64, u16, u32)> = Vec::new();
    for (si, slot) in ss.shards.iter().enumerate() {
        for lg in bases[si]..slot.gs.n_groups as usize {
            created.push((slot.gs.first_rows[lg], si as u16, lg as u32));
        }
    }
    created.sort_unstable();
    let merged = &mut ss.merged;
    for (_, si, lg) in created {
        let (si_us, lg_us) = (si as usize, lg as usize);
        let key = ss.shards[si_us].gs.new_keys[lg_us - bases[si_us]].clone();
        use std::collections::hash_map::Entry;
        match merged.slots.entry(key) {
            Entry::Occupied(e) => {
                // the key hashes to one shard, so a second owner can
                // only appear after a shard-count change rebuilt the
                // routing — still handled exactly
                let mg = *e.get();
                match &mut merged.owners[mg as usize] {
                    Owners::Many(list) => list.push((si, lg)),
                    one => {
                        let Owners::One(s0, g0) = *one else { unreachable!() };
                        *one = Owners::Many(vec![(s0, g0), (si, lg)]);
                    }
                }
                ss.shards[si_us].to_merged.push(mg);
            }
            Entry::Vacant(e) => {
                let mg = merged.n_groups;
                merged.n_groups += 1;
                e.insert(mg);
                merged.owners.push(Owners::One(si, lg));
                for (buf, shard_rep) in merged.reps.iter_mut().zip(&ss.shards[si_us].gs.reps) {
                    Arc::make_mut(buf).push(shard_rep.value(lg_us));
                }
                ss.shards[si_us].to_merged.push(mg);
            }
        }
    }
}

/// Refresh the merged touched set and the cached finish values of
/// exactly the merged groups touched by this tick's folds.
fn refresh_merged(ss: &mut ShardedGroupedState) -> EngineResult<()> {
    let merged = &mut ss.merged;
    merged.touched.clear();
    for slot in &ss.shards {
        for &lg in &slot.gs.touched {
            merged.touched.push(slot.to_merged[lg as usize]);
        }
    }
    merged.touched.sort_unstable();
    merged.touched.dedup();
    let shards = &ss.shards;
    for (ci, vals) in merged.vals.iter_mut().enumerate() {
        let col = Arc::make_mut(vals);
        for &mg in &merged.touched {
            let v = match &merged.owners[mg as usize] {
                Owners::One(s, g) => shards[*s as usize].gs.vals[ci].value(*g as usize),
                Owners::Many(list) => {
                    let (s0, g0) = list[0];
                    let mut acc = shards[s0 as usize].gs.accs[ci][g0 as usize].clone();
                    for &(s, g) in &list[1..] {
                        acc.merge(&shards[s as usize].gs.accs[ci][g as usize])?;
                    }
                    acc.finish()
                }
            };
            // touched is ascending and new merged gids are contiguous
            // at the tail, so pushes land in group order
            if (mg as usize) < col.len() {
                col.set(mg as usize, v);
            } else {
                col.push(v);
            }
        }
    }
    Ok(())
}

/// Build the extended frame (representatives ++ aggregate columns, one
/// row per merged group) from the maintained merged columns — the
/// sharded counterpart of the serial path's `build_state_ext`.
/// O(columns): the column buffers are shared by `Arc` bump.
fn build_merged_ext(
    body: &AggBody,
    merged: &MergedGroups,
    in_schema: &Schema,
) -> EngineResult<Frame> {
    let n_groups = merged.n_groups as usize;
    let mut schema = Schema::default();
    let mut cols: Vec<Arc<ColumnData>> =
        Vec::with_capacity(body.rep_cols.len() + body.agg_names.len());
    for (k, &ci) in body.rep_cols.iter().enumerate() {
        schema.push(in_schema.columns()[ci].clone());
        cols.push(Arc::clone(&merged.reps[k]));
    }
    for (vals, name) in merged.vals.iter().zip(&body.agg_names) {
        schema.push(Column::new(name.clone(), DataType::Float));
        cols.push(Arc::clone(vals));
    }
    if body.rep_cols.is_empty() && body.agg_names.is_empty() {
        return Ok(Frame::from_rows(schema, vec![Vec::new(); n_groups]));
    }
    Frame::from_arc_columns(schema, cols)
}

/// Re-evaluate the cached HAVING mask for exactly the `touched` groups
/// of `ext` (one row per group) and return how many groups were
/// evaluated — the dirty-set maintenance shared by the serial and
/// sharded incremental paths that keeps HAVING `O(touched groups)` per
/// tick. The mask only ever grows: groups are never removed from a
/// live state.
pub(super) fn refresh_having_mask(
    having: &ExprProgram,
    ext: &Frame,
    touched: &[u32],
    mask: &mut Vec<bool>,
) -> EngineResult<u64> {
    if mask.len() < ext.len() {
        mask.resize(ext.len(), false);
    }
    if touched.is_empty() {
        return Ok(0);
    }
    let indices: Vec<usize> = touched.iter().map(|&g| g as usize).collect();
    let sub = select_rows_parallel(ext, &indices, ThreadPool::global());
    // incremental HAVING programs are subquery-free by construction
    // (`compile_incremental` rejects them), so no subquery executor
    let ctx = EvalContext { schema: &ext.schema, subquery: None };
    let bits = having.eval_mask(&sub, &ctx)?;
    for (&g, b) in indices.iter().zip(bits) {
        mask[g] = b;
    }
    Ok(indices.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::super::{DeltaInput, IncrementalState};
    use super::*;
    use crate::catalog::Catalog;
    use crate::exec::Executor;
    use crate::frame::Frame;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};
    use paradise_sql::parse_query;

    fn batch(rows: &[(i64, i64)]) -> Frame {
        let schema = Schema::from_pairs(&[("uid", DataType::Integer), ("v", DataType::Integer)]);
        let data =
            rows.iter().map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]).collect();
        Frame::new(schema, data).unwrap()
    }

    fn gen_rows(seed: u64, n: usize, users: i64) -> Vec<(i64, i64)> {
        // splitmix64-ish deterministic generator (no external RNG)
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|_| {
                let u = (next() % users as u64) as i64;
                let v = (next() % 1000) as i64 - 500;
                (u, v)
            })
            .collect()
    }

    #[test]
    fn split_indices_cover_all_rows_once() {
        let f = batch(&gen_rows(7, 500, 37));
        for shards in [1usize, 4, 64] {
            let buckets = split_indices(f.column(0), shards, ThreadPool::global());
            assert_eq!(buckets.len(), shards);
            let mut seen: Vec<u32> = buckets.iter().flatten().copied().collect();
            assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), 500);
            seen.sort_unstable();
            assert_eq!(seen, (0..500).collect::<Vec<u32>>());
            // buckets keep ascending row order
            for b in &buckets {
                assert!(b.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn sharded_matches_serial_and_rescan_across_ticks() {
        let sql = "SELECT uid, COUNT(*) AS n, SUM(v) AS sv, AVG(v) AS av, MIN(v) AS lo \
                   FROM s WHERE v >= -400 GROUP BY uid HAVING SUM(v) > -2000 \
                   ORDER BY uid";
        let batches: Vec<Frame> = (0..5).map(|i| batch(&gen_rows(i, 200, 23))).collect();
        for shards in [1usize, 2, 4, 64] {
            let spec = ShardSpec::new("uid", shards);
            let mut cat_a = Catalog::new();
            cat_a.set_partitioning("uid", shards);
            cat_a.register("s", batch(&[])).unwrap();
            let mut cat_b = Catalog::new();
            cat_b.register("s", batch(&[])).unwrap();
            let mut st_sharded = IncrementalState::new();
            let mut st_serial = IncrementalState::new();
            for b in &batches {
                cat_a.append("s", b.clone()).unwrap();
                cat_b.append("s", b.clone()).unwrap();
                let q = parse_query(sql).unwrap();
                let ex_a = Executor::new(&cat_a);
                let plan_a = ex_a.compile_incremental(&q).unwrap().unwrap();
                let sharded = ex_a
                    .run_incremental_sharded(&plan_a, &mut st_sharded, DeltaInput::Source, &spec)
                    .unwrap();
                let ex_b = Executor::new(&cat_b);
                let plan_b = ex_b.compile_incremental(&q).unwrap().unwrap();
                let serial = ex_b
                    .run_incremental(&plan_b, &mut st_serial, DeltaInput::Source)
                    .unwrap();
                let rescan = ex_b.execute(&q).unwrap();
                assert_eq!(
                    sharded.result.to_rows(),
                    serial.result.to_rows(),
                    "shards={shards}: sharded != serial"
                );
                assert_eq!(
                    sharded.result.to_rows(),
                    rescan.to_rows(),
                    "shards={shards}: sharded != rescan"
                );
            }
        }
    }

    #[test]
    fn sharded_having_mask_is_touched_bounded() {
        // 1000 groups seeded, then ticks touching a single group each:
        // the HAVING evaluation count must grow by ~1 per tick, not by
        // the total group count
        let mut cat = Catalog::new();
        cat.set_partitioning("uid", 8);
        let seed: Vec<(i64, i64)> = (0..1000).map(|u| (u, 1)).collect();
        cat.register("s", batch(&seed)).unwrap();
        let q = parse_query("SELECT uid, SUM(v) AS sv FROM s GROUP BY uid HAVING SUM(v) > 1")
            .unwrap();
        let spec = ShardSpec::new("uid", 8);
        let mut st = IncrementalState::new();
        {
            let ex = Executor::new(&cat);
            let plan = ex.compile_incremental(&q).unwrap().unwrap();
            ex.run_incremental_sharded(&plan, &mut st, DeltaInput::Source, &spec).unwrap();
        }
        let after_seed = st.having_groups_evaluated();
        assert_eq!(after_seed, 1000, "rebuild evaluates every group once");
        for i in 0..20 {
            cat.append("s", batch(&[(i % 7, 5)])).unwrap();
            let ex = Executor::new(&cat);
            let plan = ex.compile_incremental(&q).unwrap().unwrap();
            ex.run_incremental_sharded(&plan, &mut st, DeltaInput::Source, &spec).unwrap();
        }
        assert_eq!(
            st.having_groups_evaluated(),
            after_seed + 20,
            "each single-group tick must re-evaluate exactly one group"
        );
    }

    #[test]
    fn sharded_error_poisons_all_shards_coherently() {
        // SUM over text: NULL-only batch folds fine, a non-numeric
        // value then errors mid-fold on one shard — the whole state
        // must poison and the next tick rebuild from scratch
        let schema =
            Schema::from_pairs(&[("uid", DataType::Integer), ("w", DataType::Text)]);
        let ok = Frame::new(
            schema.clone(),
            (0..50).map(|i| vec![Value::Int(i), Value::Null]).collect(),
        )
        .unwrap();
        let bad = Frame::new(
            schema.clone(),
            vec![vec![Value::Int(3), Value::Str("boom".into())]],
        )
        .unwrap();
        let mut cat = Catalog::new();
        cat.set_partitioning("uid", 4);
        cat.register("s", ok).unwrap();
        let q = parse_query("SELECT uid, SUM(w) AS sw FROM s GROUP BY uid ORDER BY uid").unwrap();
        let spec = ShardSpec::new("uid", 4);
        let mut st = IncrementalState::new();
        {
            let ex = Executor::new(&cat);
            let plan = ex.compile_incremental(&q).unwrap().unwrap();
            ex.run_incremental_sharded(&plan, &mut st, DeltaInput::Source, &spec).unwrap();
        }
        assert_eq!(st.rows_seen(), 50);
        cat.append("s", bad).unwrap();
        {
            let ex = Executor::new(&cat);
            let plan = ex.compile_incremental(&q).unwrap().unwrap();
            assert!(ex
                .run_incremental_sharded(&plan, &mut st, DeltaInput::Source, &spec)
                .is_err());
        }
        // poisoned: no partial fold survives
        assert_eq!(st.rows_seen(), 0);
        // replacing the table with clean data recovers via rebuild
        let clean = Frame::new(
            schema,
            (0..10).map(|i| vec![Value::Int(i % 3), Value::Null]).collect(),
        )
        .unwrap();
        cat.register_or_replace("s", clean);
        let ex = Executor::new(&cat);
        let plan = ex.compile_incremental(&parse_query(
            "SELECT uid, SUM(w) AS sw FROM s GROUP BY uid ORDER BY uid",
        ).unwrap())
        .unwrap()
        .unwrap();
        let run = ex
            .run_incremental_sharded(&plan, &mut st, DeltaInput::Source, &spec)
            .unwrap();
        assert!(run.reset);
        assert_eq!(run.result.len(), 3);
    }
}
