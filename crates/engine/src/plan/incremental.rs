//! Delta-aware (incremental) execution: tick cost proportional to the
//! **batch**, not the retained window.
//!
//! A continuous query re-executes over a stream whose retained window
//! may hold orders of magnitude more rows than one tick appends. For
//! two plan shapes the appended suffix is all that needs processing:
//!
//! * **Stateless stages** (filter / projection / expression programs
//!   over a single base table, no windows, ordering, `DISTINCT` or
//!   `LIMIT`): output over `old ++ delta` equals output over `old`
//!   followed by output over `delta`, so the stage keeps its full
//!   output cached and only appends each tick's delta-output.
//! * **Grouped aggregation** (`COUNT`/`SUM`/`AVG`/`MIN`/`MAX`, the
//!   stddev/variance and `regr_*` kinds, with optional `GROUP BY`,
//!   `HAVING`, `ORDER BY`, `DISTINCT`, `LIMIT`): per-group
//!   [`Accumulator`]s fold each delta batch; the small extended frame
//!   (one row per group) is rebuilt and post-processed per tick,
//!   `O(groups)`.
//!
//! Anything else — joins, window functions, `ORDER BY` over full
//! history, subqueries — is **not** incrementally maintainable and
//! [`Executor::compile_incremental`] returns `None`; callers fall back
//! to the compiled full-rescan plan with identical semantics.
//!
//! Accumulators fold rows in ascending row order exactly like the
//! rescan kernels (which update per group in row order), group ids are
//! assigned in first-appearance order, and the post-aggregation tail is
//! the *same code* as the rescan path, so incremental results are
//! identical to a full rescan — including floating-point accumulation
//! order. Retention evictions and table replacements invalidate the
//! source [`Watermark`]; the state then rebuilds from the full retained
//! window once and continues incrementally (amortized O(batch) when
//! eviction itself is batched).

use std::sync::Arc;

use minipool::ThreadPool;

use super::sharded::{refresh_having_mask, ShardedGroupedState};
use super::{
    agg_finalize_masked, compile_query, filter_rows_parallel, schema_fingerprint, AggBody,
    ArgFold, ArgStep, Body, DTypeSrc, ExprProgram, Executor, FxHashMap, PNode, ProjStep,
};
use crate::catalog::Watermark;
use crate::column::ColumnData;
use crate::error::{EngineError, EngineResult};
use crate::eval::{Batch, EvalContext};
use crate::exec::aggregate::Accumulator;
use crate::exec::finalise_types;
use crate::frame::Frame;
use crate::schema::{Column, Schema};
use crate::value::{DataType, GroupKey, Value};

/// A query compiled for delta-aware re-execution (see the module docs
/// for which shapes qualify). Compiled once per (query, schema) by
/// [`Executor::compile_incremental`]; the mutable between-tick state
/// lives separately in an [`IncrementalState`] owned by the caller, so
/// one plan can be shared across consumers.
#[derive(Debug, Clone)]
pub struct IncrementalPlan {
    /// Base table the stage reads.
    pub(super) table: String,
    /// Input schema the programs were compiled against (base schema
    /// qualified with the scan source), kept for evaluation contexts.
    pub(super) in_schema: Schema,
    /// Compiled `WHERE` program, applied to every delta batch.
    pub(super) filter: Option<ExprProgram>,
    pub(super) kind: IncKind,
    pub(super) tables: Vec<String>,
    pub(super) fingerprint: u64,
}

#[derive(Debug, Clone)]
pub(super) enum IncKind {
    /// Stateless filter/projection: cached output + per-tick append.
    Append {
        items: Vec<ProjStep>,
        /// Output schema with the compile-time declared types (runtime
        /// type refinement happens on the returned result only).
        out_schema: Schema,
    },
    /// Grouped aggregation with live per-group accumulators.
    Grouped(Box<AggBody>),
}

impl IncrementalPlan {
    /// The schema fingerprint the plan was compiled against.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Does this plan keep per-group accumulator state (vs. a cached
    /// append-only output)?
    pub fn is_grouped(&self) -> bool {
        matches!(self.kind, IncKind::Grouped(_))
    }

    /// Ordinal of the partition-key column `key` in the plan's input
    /// schema, when this plan qualifies for partition-parallel (sharded)
    /// execution: grouped aggregation with a non-empty `GROUP BY` and no
    /// DISTINCT aggregate call (DISTINCT de-duplication is not mergeable
    /// across shards; global aggregation has nothing to partition).
    pub(crate) fn shard_key_col(&self, key: &str) -> Option<usize> {
        let IncKind::Grouped(body) = &self.kind else { return None };
        if body.group.is_empty() || body.calls.iter().any(|c| c.distinct) {
            return None;
        }
        self.in_schema.try_resolve(None, key)
    }
}

/// Where a tick's delta comes from.
pub enum DeltaInput<'a> {
    /// Read the appended suffix of the plan's base table from the
    /// executor's catalog via its [`Watermark`] (the stream source at
    /// the bottom of a fragment pipeline).
    Source,
    /// The delta was computed by an upstream incremental stage and is
    /// pushed directly; `reset` signals that the upstream stage rebuilt
    /// its state and `delta` is its **full** output, so this stage must
    /// rebuild too.
    Pushed {
        /// The new input rows (or the full input when `reset`).
        delta: &'a Frame,
        /// Upstream rebuilt: treat `delta` as the full input.
        reset: bool,
    },
}

/// One tick's product of [`Executor::run_incremental`].
#[derive(Debug)]
pub struct IncrementalRun {
    /// The stage's full logical output — identical to what the
    /// full-rescan plan would produce over the full input.
    pub result: Frame,
    /// For stateless (append) stages: the output of just this tick's
    /// delta, for pushing into a downstream incremental stage. `None`
    /// for grouped aggregation (downstream consumes `result`).
    pub delta: Option<Frame>,
    /// The state was rebuilt from the full input this tick (first run,
    /// eviction, table replacement or upstream reset) — downstream
    /// stages must rebuild too.
    pub reset: bool,
    /// Input rows consumed this tick (the pre-filter delta; the full
    /// window on a reset) — what a node accounts as scanned.
    pub input_rows: usize,
}

/// The mutable between-tick state of one incremental consumer: the
/// source watermark plus either the cached append-only output or the
/// per-group accumulators. Owned by the caller (in PArADISE terms: by
/// the runtime's `QueryHandle`), separate from the shareable
/// [`IncrementalPlan`].
#[derive(Debug, Default)]
pub struct IncrementalState {
    pub(super) mark: Option<Watermark>,
    pub(super) data: StateData,
    /// Fingerprint of the plan the state was folded under: a
    /// recompiled plan (schema change) must never fold into state built
    /// by its predecessor.
    pub(super) plan_fp: Option<u64>,
    /// Cumulative count of groups whose HAVING predicate was
    /// (re-)evaluated (diagnostic): pins the dirty-mask contract that
    /// HAVING costs O(groups *touched* per tick), not O(all groups).
    pub(super) having_evals: u64,
}

impl IncrementalState {
    /// Fresh, empty state: the first run rebuilds from the full input.
    pub fn new() -> Self {
        IncrementalState::default()
    }

    /// Rows folded so far (diagnostic).
    pub fn rows_seen(&self) -> u64 {
        match &self.data {
            StateData::Empty => 0,
            StateData::Append { rows_in, .. } => *rows_in,
            StateData::Grouped(g) => g.rows,
            StateData::Sharded(s) => s.rows_seen(),
        }
    }

    /// Cumulative number of groups whose HAVING predicate has been
    /// evaluated across all ticks (diagnostic). Grows by the number of
    /// groups *touched* per tick — a regression guard against HAVING
    /// re-evaluation over every group.
    pub fn having_groups_evaluated(&self) -> u64 {
        self.having_evals
    }
}

#[derive(Debug, Default)]
pub(super) enum StateData {
    #[default]
    Empty,
    Append {
        /// Accumulated full output (raw declared types; the result view
        /// is type-refined per tick).
        out: Frame,
        /// Input rows consumed (diagnostic).
        rows_in: u64,
    },
    Grouped(GroupState),
    /// Partition-parallel grouped aggregation: per-shard fold states
    /// plus the merged (cross-shard) group view.
    Sharded(ShardedGroupedState),
}

/// Per-group accumulator state of a grouped-aggregation stage.
///
/// Besides the accumulators it maintains the *extended frame's*
/// columns in place — representative values and cached `finish()`
/// values, one cell per group, behind `Arc`s — so producing a tick's
/// extended frame costs O(groups **touched** this tick), not
/// O(all groups). Untouched groups' accumulators are unchanged, so
/// their cached finish values are exactly what a rebuild would
/// recompute.
#[derive(Debug)]
pub(super) struct GroupState {
    /// Group key → dense group id, in first-appearance order.
    pub(super) slots: FxHashMap<SlotKey, u32>,
    /// Number of groups (tracked explicitly: `calls` may be empty).
    pub(super) n_groups: u32,
    /// Representative (first-row) values per group, one buffer per
    /// `rep_cols` entry; appended at group creation.
    pub(super) reps: Vec<Arc<ColumnData>>,
    /// `accs[call][group]`.
    pub(super) accs: Vec<Vec<Accumulator>>,
    /// Cached `accs[call][group].finish()` per call, updated for the
    /// groups touched by each fold.
    pub(super) vals: Vec<Arc<ColumnData>>,
    /// Scratch: group ids touched by the current fold.
    pub(super) touched: Vec<u32>,
    /// Input rows folded.
    pub(super) rows: u64,
    /// Global aggregation: has the representative row been captured?
    pub(super) have_global_rep: bool,
    /// Cached HAVING mask (one bool per group), maintained for the
    /// touched groups per tick. `None` when the plan has no HAVING or
    /// aggregates globally (one group — nothing to save).
    pub(super) having: Option<Vec<bool>>,
    /// Sharded mode only: stream position of each group's first row
    /// (assigned pre-filter, since the last rebuild) — orders merged
    /// group ids identically to an unsharded fold.
    pub(super) first_rows: Vec<u64>,
    /// Sharded mode only (scratch, one entry per group created by the
    /// current fold): the new groups' keys, for insertion into the
    /// cross-shard merged map.
    pub(super) new_keys: Vec<SlotKey>,
}

impl GroupState {
    pub(super) fn new(body: &AggBody, in_schema: &Schema) -> GroupState {
        let mut state = GroupState {
            slots: FxHashMap::default(),
            n_groups: 0,
            reps: body
                .rep_cols
                .iter()
                .map(|&i| Arc::new(ColumnData::empty(in_schema.columns()[i].data_type)))
                .collect(),
            accs: body.calls.iter().map(|_| Vec::new()).collect(),
            vals: body.calls.iter().map(|_| Arc::new(ColumnData::empty(DataType::Float))).collect(),
            touched: Vec::new(),
            rows: 0,
            have_global_rep: false,
            having: if body.group.is_empty() {
                None
            } else {
                body.having.as_ref().map(|_| Vec::new())
            },
            first_rows: Vec::new(),
            new_keys: Vec::new(),
        };
        if body.group.is_empty() {
            // the global group always exists; zero folded rows must
            // still yield the empty-input aggregate values (COUNT = 0,
            // SUM = NULL, …), exactly like the rescan path
            state.n_groups = 1;
            for ((accs, vals), call) in
                state.accs.iter_mut().zip(state.vals.iter_mut()).zip(&body.calls)
            {
                let acc = Accumulator::new(call.kind, call.distinct);
                Arc::make_mut(vals).push(acc.finish());
                accs.push(acc);
            }
        }
        state
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(super) enum SlotKey {
    One(GroupKey),
    Many(Vec<GroupKey>),
}

fn slot_key(key_cols: &[Arc<ColumnData>], ri: usize) -> SlotKey {
    match key_cols {
        [c] => SlotKey::One(c.group_key_at(ri)),
        cs => SlotKey::Many(cs.iter().map(|c| c.group_key_at(ri)).collect()),
    }
}

impl<'a> Executor<'a> {
    /// Compile `query` for delta-aware execution, or `None` when the
    /// shape is not incrementally maintainable (see the module docs) —
    /// callers then use the compiled full-rescan plan.
    pub fn compile_incremental(&self, query: &paradise_sql::ast::Query) -> EngineResult<Option<IncrementalPlan>> {
        if !query.unions.is_empty() {
            return Ok(None);
        }
        let Some((node, _)) = compile_query(self, query)? else { return Ok(None) };
        let PNode::Block(block) = node else { return Ok(None) };
        let super::BlockPlan { input, filter, body } = *block;
        let PNode::Scan { table, source } = input else { return Ok(None) };
        // subquery results may change between ticks without the base
        // table moving: never fold them incrementally
        if filter.as_ref().is_some_and(ExprProgram::has_subquery) {
            return Ok(None);
        }
        let in_schema = self.catalog.get(&table)?.schema.with_source(&source);
        let kind = match body {
            Body::Plain(p) => {
                let p = *p;
                if !p.windows.is_empty()
                    || !p.order.is_empty()
                    || p.distinct
                    || p.limit.is_some()
                    || p.offset.is_some()
                {
                    return Ok(None);
                }
                let progs_pure = p.items.iter().all(|s| match s {
                    ProjStep::Splice(_) => true,
                    ProjStep::Prog(prog) => !prog.has_subquery(),
                });
                if !progs_pure {
                    return Ok(None);
                }
                let mut out_schema = Schema::default();
                for (name, dsrc) in &p.out_cols {
                    let dt = match dsrc {
                        DTypeSrc::Input(i) => in_schema.columns()[*i].data_type,
                        DTypeSrc::Fixed(dt) => *dt,
                    };
                    out_schema.push(Column::new(name.clone(), dt));
                }
                IncKind::Append { items: p.items, out_schema }
            }
            Body::Agg(a) => {
                let group_pure = a.group.iter().all(|p| !p.has_subquery());
                let args_pure = a.calls.iter().flat_map(|c| &c.args).all(|s| match s {
                    ArgStep::Star => true,
                    ArgStep::Prog(p) => !p.has_subquery(),
                });
                let post_pure = !a.having.as_ref().is_some_and(ExprProgram::has_subquery)
                    && a.items.iter().all(|s| match s {
                        super::AggItemStep::Col(_) => true,
                        super::AggItemStep::Prog(p) => !p.has_subquery(),
                    })
                    && a.order.iter().all(|(src, _)| match src {
                        super::OrderKeySrc::OutCol(_) => true,
                        super::OrderKeySrc::Prog(p) => !p.has_subquery(),
                    });
                if !(group_pure && args_pure && post_pure) {
                    return Ok(None);
                }
                IncKind::Grouped(a)
            }
        };
        let tables = paradise_sql::analysis::base_relations(query);
        let fingerprint = schema_fingerprint(self.catalog, &tables);
        Ok(Some(IncrementalPlan { table, in_schema, filter, kind, tables, fingerprint }))
    }

    /// Resolve one tick's delta for `plan`: the appended suffix since
    /// `state`'s watermark (from the catalog, or pushed by an upstream
    /// stage), or the full input with `reset` when no delta is
    /// derivable. Shared by the serial and sharded incremental paths.
    pub(super) fn resolve_delta(
        &self,
        plan: &IncrementalPlan,
        state: &IncrementalState,
        input: DeltaInput<'_>,
    ) -> EngineResult<(Frame, bool, Option<Watermark>)> {
        Ok(match input {
            DeltaInput::Source => {
                if schema_fingerprint(self.catalog, &plan.tables) != plan.fingerprint {
                    return Err(EngineError::StalePlan);
                }
                let mark = self.catalog.watermark(&plan.table)?;
                let delta = match state.mark {
                    Some(m) => self.catalog.delta_since(&plan.table, m)?,
                    None => None,
                };
                match delta {
                    Some(d) => (d, false, Some(mark)),
                    None => (self.catalog.get(&plan.table)?.clone(), true, Some(mark)),
                }
            }
            DeltaInput::Pushed { delta, reset } => {
                if delta.schema.len() != plan.in_schema.len() {
                    return Err(EngineError::StalePlan);
                }
                (delta.clone(), reset, None)
            }
        })
    }

    /// One tick of an incremental plan: resolve the delta (from the
    /// catalog watermark or pushed by an upstream stage), fold it into
    /// `state`, and return the stage's **full** result — identical to
    /// running the compiled full-rescan plan over the full input.
    ///
    /// When the delta is not derivable (first run, retention eviction,
    /// table replacement, upstream reset), the state is rebuilt from
    /// the full input transparently and `reset` is flagged so
    /// downstream consumers rebuild too.
    pub fn run_incremental(
        &self,
        plan: &IncrementalPlan,
        state: &mut IncrementalState,
        input: DeltaInput<'_>,
    ) -> EngineResult<IncrementalRun> {
        // 1. resolve the delta and whether the state survives
        let (mut delta, mut reset, mark) = self.resolve_delta(plan, state, input)?;
        // a state of the wrong shape — fresh, folded under a different
        // plan (recompilation after a schema change), or of the other
        // kind — always rebuilds
        let compatible = state.plan_fp == Some(plan.fingerprint)
            && matches!(
                (&plan.kind, &state.data),
                (IncKind::Append { .. }, StateData::Append { .. })
                    | (IncKind::Grouped(_), StateData::Grouped(_))
            );
        if !compatible {
            if !reset {
                // a pushed partial delta cannot rebuild state from
                // scratch: the caller must re-run with the full input
                // (the driver resets the whole pipeline state and
                // retries once). `mark` is `Some` exactly for `Source`
                // input, where the full table is available — the
                // rebuild rescans it right here.
                if mark.is_none() {
                    return Err(EngineError::StalePlan);
                }
                delta = self.catalog.get(&plan.table)?.clone();
            }
            reset = true;
        }
        let input_rows = delta.len();
        state.plan_fp = Some(plan.fingerprint);

        // 2. filter the delta (programs are subquery-free by
        // construction, so no subquery executor is needed)
        let ctx = EvalContext { schema: &plan.in_schema, subquery: None };
        let fd = match &plan.filter {
            Some(p) => {
                let mask = p.eval_mask(&delta, &ctx)?;
                filter_rows_parallel(&delta, &mask, ThreadPool::global())
            }
            None => delta,
        };

        // 3. fold into the state and produce the full result
        match &plan.kind {
            IncKind::Append { items, out_schema } => {
                if reset {
                    state.data =
                        StateData::Append { out: Frame::empty(out_schema.clone()), rows_in: 0 };
                }
                let StateData::Append { out, rows_in } = &mut state.data else {
                    unreachable!("reset guarantees matching state")
                };
                let n = fd.len();
                let mut cols: Vec<Arc<ColumnData>> = Vec::with_capacity(out_schema.len());
                for step in items {
                    match step {
                        ProjStep::Splice(indices) => {
                            for &i in indices {
                                cols.push(fd.column_arc(i));
                            }
                        }
                        ProjStep::Prog(p) => {
                            cols.push(p.eval(&fd, &ctx)?.into_column_arc(n))
                        }
                    }
                }
                let delta_out = Frame::from_arc_columns(out_schema.clone(), cols)?;
                // by-reference append: `delta_out` stays alive (it is
                // returned for downstream stages), so an owned append
                // would pay a second copy
                out.append_copy(&delta_out)?;
                *rows_in += n as u64;
                let mut result = out.clone();
                finalise_types(&mut result);
                state.mark = mark;
                Ok(IncrementalRun { result, delta: Some(delta_out), reset, input_rows })
            }
            IncKind::Grouped(body) => {
                if reset {
                    state.data = StateData::Grouped(GroupState::new(body, &plan.in_schema));
                }
                let having_evals = &mut state.having_evals;
                let StateData::Grouped(gs) = &mut state.data else {
                    unreachable!("reset guarantees matching state")
                };
                let run = fold_grouped(body, gs, &fd, &ctx, None).and_then(|()| {
                    let ext = build_state_ext(body, gs, &plan.in_schema)?;
                    if let (Some(h), Some(mask)) = (&body.having, gs.having.as_mut()) {
                        *having_evals += refresh_having_mask(h, &ext, &gs.touched, mask)?;
                    } else if body.having.is_some() {
                        // uncached (global aggregation): full evaluation
                        *having_evals += ext.len() as u64;
                    }
                    agg_finalize_masked(self, body, ext, gs.having.as_deref())
                });
                match run {
                    Ok(result) => {
                        state.mark = mark;
                        Ok(IncrementalRun { result, delta: None, reset, input_rows })
                    }
                    Err(e) => {
                        // the fold may have partially mutated the
                        // accumulators but the watermark did not
                        // advance: poison the state so the next call
                        // rebuilds from the full input instead of
                        // double-folding re-delivered rows
                        *state = IncrementalState::default();
                        Err(e)
                    }
                }
            }
        }
    }
}

/// Fold one (filtered) delta batch into the group state. Rows are
/// processed in ascending order, so each group's accumulator sees its
/// rows in exactly the order the rescan kernels would — results,
/// including floating-point sums, are identical.
///
/// `positions` (sharded mode) carries one global stream position per
/// row of `fd`; each newly-created group records its first position in
/// [`GroupState::first_rows`] and its key in [`GroupState::new_keys`]
/// so the cross-shard merge can re-establish global first-appearance
/// order. Pass `None` on the serial path — zero overhead.
pub(super) fn fold_grouped(
    body: &AggBody,
    gs: &mut GroupState,
    fd: &Frame,
    ctx: &EvalContext<'_>,
    positions: Option<&[u64]>,
) -> EngineResult<()> {
    gs.touched.clear();
    gs.new_keys.clear();
    let n = fd.len();
    if n == 0 {
        return Ok(());
    }
    debug_assert!(positions.is_none_or(|p| p.len() == n));
    let key_cols: Vec<Arc<ColumnData>> = body
        .group
        .iter()
        .map(|p| Ok(p.eval(fd, ctx)?.into_column_arc(n)))
        .collect::<EngineResult<_>>()?;
    let arg_batches: Vec<Vec<Batch>> = super::eval_call_args(&body.calls, fd, ctx)?;
    let mut folds: Vec<ArgFold<'_>> = body
        .calls
        .iter()
        .zip(&arg_batches)
        .map(|(c, args)| ArgFold::new(c.kind, c.distinct, args))
        .collect();

    let global = body.group.is_empty();
    for ri in 0..n {
        let gid = if global {
            if !gs.have_global_rep {
                gs.have_global_rep = true;
                for (buf, &ci) in gs.reps.iter_mut().zip(&body.rep_cols) {
                    Arc::make_mut(buf).push(fd.column(ci).value(ri));
                }
            }
            0usize
        } else {
            use std::collections::hash_map::Entry;
            match gs.slots.entry(slot_key(&key_cols, ri)) {
                Entry::Occupied(e) => *e.get() as usize,
                Entry::Vacant(e) => {
                    // first appearance: capture the representative row
                    let gid = gs.n_groups;
                    gs.n_groups += 1;
                    for (accs, call) in gs.accs.iter_mut().zip(&body.calls) {
                        accs.push(Accumulator::new(call.kind, call.distinct));
                    }
                    for (buf, &ci) in gs.reps.iter_mut().zip(&body.rep_cols) {
                        Arc::make_mut(buf).push(fd.column(ci).value(ri));
                    }
                    if let Some(pos) = positions {
                        gs.first_rows.push(pos[ri]);
                        gs.new_keys.push(e.key().clone());
                    }
                    e.insert(gid);
                    gid as usize
                }
            }
        };
        if gs.touched.last() != Some(&(gid as u32)) {
            gs.touched.push(gid as u32);
        }
        for (fold, accs) in folds.iter_mut().zip(gs.accs.iter_mut()) {
            fold.update(&mut accs[gid], ri)?;
        }
    }
    gs.rows += n as u64;

    // refresh the cached finish values of exactly the touched groups
    // (new groups are always touched; `touched` ascending puts their
    // pushes in group order)
    gs.touched.sort_unstable();
    gs.touched.dedup();
    let touched = std::mem::take(&mut gs.touched);
    for (accs, vals) in gs.accs.iter().zip(gs.vals.iter_mut()) {
        let col = Arc::make_mut(vals);
        for &gid in &touched {
            let v = accs[gid as usize].finish();
            if (gid as usize) < col.len() {
                col.set(gid as usize, v);
            } else {
                col.push(v);
            }
        }
    }
    gs.touched = touched;
    Ok(())
}

/// Build the extended frame (representative values ++ aggregate
/// columns, one row per group) from the live state — the incremental
/// counterpart of the rescan path's `build_ext_frame`. The maintained
/// columns are shared by `Arc` bump, so this is O(columns) on top of
/// the per-fold O(touched-groups) maintenance.
fn build_state_ext(body: &AggBody, gs: &GroupState, in_schema: &Schema) -> EngineResult<Frame> {
    let global_empty = body.group.is_empty() && gs.rows == 0;
    let n_groups = gs.n_groups as usize;
    let mut schema = Schema::default();
    let mut cols: Vec<Arc<ColumnData>> =
        Vec::with_capacity(body.rep_cols.len() + body.agg_names.len());
    for (k, &ci) in body.rep_cols.iter().enumerate() {
        schema.push(in_schema.columns()[ci].clone());
        let col = if global_empty {
            // the synthetic all-NULL representative row of the empty
            // global group, exactly like the rescan path
            Arc::new(ColumnData::from_values(vec![Value::Null]))
        } else {
            Arc::clone(&gs.reps[k])
        };
        cols.push(col);
    }
    for (vals, name) in gs.vals.iter().zip(&body.agg_names) {
        schema.push(Column::new(name.clone(), DataType::Float));
        cols.push(Arc::clone(vals));
    }
    if body.rep_cols.is_empty() && body.agg_names.is_empty() {
        return Ok(Frame::from_rows(schema, vec![Vec::new(); n_groups]));
    }
    Frame::from_arc_columns(schema, cols)
}
