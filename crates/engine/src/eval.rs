//! Expression evaluation with SQL three-valued logic: a row-level
//! interpreter (the reference semantics) plus a column-at-a-time batch
//! evaluator used by the executor's hot paths.

use std::sync::Arc;

use paradise_sql::ast::{BinaryOp, CaseBranch, Expr, Literal, UnaryOp};

use crate::column::ColumnData;
use crate::error::{EngineError, EngineResult};
use crate::frame::{Frame, Row};
use crate::schema::Schema;
use crate::value::{DataType, Value};

/// Callback used to run scalar subqueries / `EXISTS` probes. The executor
/// passes itself in; standalone evaluation (policy conditions) passes none.
pub type SubqueryFn<'a> = &'a dyn Fn(&paradise_sql::ast::Query) -> EngineResult<Frame>;

/// Everything an expression needs to evaluate against one row.
pub struct EvalContext<'a> {
    /// Input schema for column resolution.
    pub schema: &'a Schema,
    /// Optional subquery executor.
    pub subquery: Option<SubqueryFn<'a>>,
}

impl<'a> EvalContext<'a> {
    /// Context without subquery support.
    pub fn new(schema: &'a Schema) -> Self {
        EvalContext { schema, subquery: None }
    }
}

/// Evaluate `expr` against `row`.
pub fn eval_expr(expr: &Expr, row: &Row, ctx: &EvalContext<'_>) -> EngineResult<Value> {
    match expr {
        Expr::Literal(lit) => Ok(literal_value(lit)),
        Expr::Column(c) => {
            let idx = ctx.schema.resolve(c.qualifier.as_deref(), &c.name)?;
            Ok(row[idx].clone())
        }
        Expr::Wildcard => Err(EngineError::Unsupported(
            "'*' is only valid inside COUNT(*)".into(),
        )),
        Expr::Unary { op, expr } => {
            let v = eval_expr(expr, row, ctx)?;
            eval_unary(*op, v)
        }
        Expr::Binary { left, op, right } => {
            // Short-circuit three-valued AND/OR.
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    let l = eval_expr(left, row, ctx)?;
                    let l3 = to_bool3(&l)?;
                    match (op, l3) {
                        (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
                        (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                        _ => {}
                    }
                    let r = eval_expr(right, row, ctx)?;
                    let r3 = to_bool3(&r)?;
                    let out = match op {
                        BinaryOp::And => and3(l3, r3),
                        _ => or3(l3, r3),
                    };
                    Ok(out.map(Value::Bool).unwrap_or(Value::Null))
                }
                _ => {
                    let l = eval_expr(left, row, ctx)?;
                    let r = eval_expr(right, row, ctx)?;
                    eval_binary(l, *op, r)
                }
            }
        }
        Expr::Function(call) => {
            if call.over.is_some() {
                return Err(EngineError::Unsupported(
                    "window function outside the executor's window stage".into(),
                ));
            }
            let args = call
                .args
                .iter()
                .map(|a| eval_expr(a, row, ctx))
                .collect::<EngineResult<Vec<_>>>()?;
            eval_scalar_function(&call.name, &args)
        }
        Expr::Case { operand, branches, else_result } => {
            eval_case(operand.as_deref(), branches, else_result.as_deref(), row, ctx)
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval_expr(expr, row, ctx)?;
            let lo = eval_expr(low, row, ctx)?;
            let hi = eval_expr(high, row, ctx)?;
            let ge = ge3(&v, &lo);
            let le = le3(&v, &hi);
            let within = and3(ge, le);
            Ok(match within {
                Some(b) => Value::Bool(b != *negated),
                None => Value::Null,
            })
        }
        Expr::InList { expr, list, negated } => {
            let v = eval_expr(expr, row, ctx)?;
            let mut saw_null = false;
            for item in list {
                let candidate = eval_expr(item, row, ctx)?;
                match v.sql_eq(&candidate) {
                    Some(true) => return Ok(Value::Bool(!*negated)),
                    Some(false) => {}
                    None => saw_null = true,
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(expr, row, ctx)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::Cast { expr, type_name } => {
            let v = eval_expr(expr, row, ctx)?;
            let target = DataType::parse(type_name).ok_or_else(|| {
                EngineError::Unsupported(format!("unknown cast target {type_name:?}"))
            })?;
            v.cast(target)
        }
        Expr::Subquery(q) => {
            let exec = ctx.subquery.ok_or_else(|| {
                EngineError::Unsupported("scalar subquery in this context".into())
            })?;
            let frame = exec(q)?;
            if frame.schema.len() != 1 {
                return Err(EngineError::Unsupported(
                    "scalar subquery must return exactly one column".into(),
                ));
            }
            match frame.len() {
                0 => Ok(Value::Null),
                1 => Ok(frame.value(0, 0)),
                _ => Err(EngineError::Unsupported(
                    "scalar subquery returned more than one row".into(),
                )),
            }
        }
        Expr::Exists(q) => {
            let exec = ctx.subquery.ok_or_else(|| {
                EngineError::Unsupported("EXISTS subquery in this context".into())
            })?;
            let frame = exec(q)?;
            Ok(Value::Bool(!frame.is_empty()))
        }
    }
}

/// Evaluate a predicate for filtering: NULL counts as false.
pub fn eval_predicate(expr: &Expr, row: &Row, ctx: &EvalContext<'_>) -> EngineResult<bool> {
    let v = eval_expr(expr, row, ctx)?;
    Ok(to_bool3(&v)?.unwrap_or(false))
}

/// Convert a literal AST node to a runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Null => Value::Null,
        Literal::Boolean(b) => Value::Bool(*b),
        Literal::Integer(v) => Value::Int(*v),
        Literal::Float(v) => Value::Float(*v),
        Literal::String(s) => Value::Str(s.clone()),
    }
}

pub(crate) fn eval_unary(op: UnaryOp, v: Value) -> EngineResult<Value> {
    match op {
        UnaryOp::Not => Ok(match to_bool3(&v)? {
            Some(b) => Value::Bool(!b),
            None => Value::Null,
        }),
        UnaryOp::Minus => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(x) => Ok(Value::Int(-x)),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(EngineError::TypeMismatch(format!("cannot negate {other}"))),
        },
        UnaryOp::Plus => match v {
            Value::Null | Value::Int(_) | Value::Float(_) => Ok(v),
            other => Err(EngineError::TypeMismatch(format!("cannot apply unary + to {other}"))),
        },
    }
}

pub(crate) fn eval_binary(l: Value, op: BinaryOp, r: Value) -> EngineResult<Value> {
    match op {
        BinaryOp::And | BinaryOp::Or => unreachable!("handled with short-circuit"),
        BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt
        | BinaryOp::GtEq => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l.sql_cmp(&r).ok_or_else(|| {
                EngineError::TypeMismatch(format!("cannot compare {l} with {r}"))
            })?;
            let b = match op {
                BinaryOp::Eq => ord.is_eq(),
                BinaryOp::NotEq => ord.is_ne(),
                BinaryOp::Lt => ord.is_lt(),
                BinaryOp::LtEq => ord.is_le(),
                BinaryOp::Gt => ord.is_gt(),
                BinaryOp::GtEq => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Multiply | BinaryOp::Divide
        | BinaryOp::Modulo => eval_arithmetic(l, op, r),
        BinaryOp::Like => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (&l, &r) {
                (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(like_match(s, p))),
                _ => Err(EngineError::TypeMismatch("LIKE requires text operands".into())),
            }
        }
        BinaryOp::Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Str(format!("{l}{r}")))
        }
    }
}

fn eval_arithmetic(l: Value, op: BinaryOp, r: Value) -> EngineResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // integer op integer stays integer (except division by zero handling)
    if let (Value::Int(a), Value::Int(b)) = (&l, &r) {
        let (a, b) = (*a, *b);
        return match op {
            BinaryOp::Plus => Ok(Value::Int(a.wrapping_add(b))),
            BinaryOp::Minus => Ok(Value::Int(a.wrapping_sub(b))),
            BinaryOp::Multiply => Ok(Value::Int(a.wrapping_mul(b))),
            BinaryOp::Divide => {
                if b == 0 {
                    Ok(Value::Null) // SQL engines differ; NULL keeps queries total
                } else {
                    Ok(Value::Int(a.wrapping_div(b)))
                }
            }
            BinaryOp::Modulo => {
                if b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a.wrapping_rem(b)))
                }
            }
            _ => unreachable!(),
        };
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(EngineError::TypeMismatch(format!(
                "arithmetic on non-numeric values {l} and {r}"
            )))
        }
    };
    let out = match op {
        BinaryOp::Plus => a + b,
        BinaryOp::Minus => a - b,
        BinaryOp::Multiply => a * b,
        BinaryOp::Divide => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a / b
        }
        BinaryOp::Modulo => {
            if b == 0.0 {
                return Ok(Value::Null);
            }
            a % b
        }
        _ => unreachable!(),
    };
    Ok(Value::Float(out))
}

fn eval_case(
    operand: Option<&Expr>,
    branches: &[CaseBranch],
    else_result: Option<&Expr>,
    row: &Row,
    ctx: &EvalContext<'_>,
) -> EngineResult<Value> {
    match operand {
        Some(op_expr) => {
            let operand_value = eval_expr(op_expr, row, ctx)?;
            for b in branches {
                let when = eval_expr(&b.when, row, ctx)?;
                if operand_value.sql_eq(&when) == Some(true) {
                    return eval_expr(&b.then, row, ctx);
                }
            }
        }
        None => {
            for b in branches {
                if eval_predicate(&b.when, row, ctx)? {
                    return eval_expr(&b.then, row, ctx);
                }
            }
        }
    }
    match else_result {
        Some(e) => eval_expr(e, row, ctx),
        None => Ok(Value::Null),
    }
}

pub(crate) fn eval_scalar_function(name: &str, args: &[Value]) -> EngineResult<Value> {
    eval_scalar_function_upper(&name.to_ascii_uppercase(), args)
}

/// Like [`eval_scalar_function`], but `upper` must already be
/// ASCII-uppercased: the compiled expression programs fold the name
/// once at compile time so per-row calls skip the allocation.
pub(crate) fn eval_scalar_function_upper(upper: &str, args: &[Value]) -> EngineResult<Value> {
    let arity = |expected: &str, ok: bool| -> EngineResult<()> {
        if ok {
            Ok(())
        } else {
            Err(EngineError::WrongArity {
                function: upper.to_string(),
                expected: expected.to_string(),
                got: args.len(),
            })
        }
    };
    let num1 = |f: &dyn Fn(f64) -> f64| -> EngineResult<Value> {
        if args[0].is_null() {
            return Ok(Value::Null);
        }
        let x = args[0].as_f64().ok_or_else(|| {
            EngineError::TypeMismatch(format!("{upper} requires a numeric argument"))
        })?;
        Ok(Value::Float(f(x)))
    };
    match upper {
        "ABS" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(v) => Ok(Value::Int(v.abs())),
                Value::Float(v) => Ok(Value::Float(v.abs())),
                other => Err(EngineError::TypeMismatch(format!("ABS of {other}"))),
            }
        }
        "ROUND" => {
            arity("1 or 2", args.len() == 1 || args.len() == 2)?;
            if args[0].is_null() {
                return Ok(Value::Null);
            }
            let x = args[0]
                .as_f64()
                .ok_or_else(|| EngineError::TypeMismatch("ROUND of non-number".into()))?;
            let digits = if args.len() == 2 {
                match &args[1] {
                    Value::Int(d) => *d,
                    Value::Null => return Ok(Value::Null),
                    _ => return Err(EngineError::TypeMismatch("ROUND digits".into())),
                }
            } else {
                0
            };
            let factor = 10f64.powi(digits as i32);
            Ok(Value::Float((x * factor).round() / factor))
        }
        "FLOOR" => {
            arity("1", args.len() == 1)?;
            num1(&f64::floor)
        }
        "CEIL" | "CEILING" => {
            arity("1", args.len() == 1)?;
            num1(&f64::ceil)
        }
        "SQRT" => {
            arity("1", args.len() == 1)?;
            num1(&f64::sqrt)
        }
        "LN" => {
            arity("1", args.len() == 1)?;
            num1(&f64::ln)
        }
        "EXP" => {
            arity("1", args.len() == 1)?;
            num1(&f64::exp)
        }
        "POWER" | "POW" => {
            arity("2", args.len() == 2)?;
            if args[0].is_null() || args[1].is_null() {
                return Ok(Value::Null);
            }
            match (args[0].as_f64(), args[1].as_f64()) {
                (Some(a), Some(b)) => Ok(Value::Float(a.powf(b))),
                _ => Err(EngineError::TypeMismatch("POWER of non-numbers".into())),
            }
        }
        "LOWER" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Str(s.to_lowercase())),
                other => Err(EngineError::TypeMismatch(format!("LOWER of {other}"))),
            }
        }
        "UPPER" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Str(s.to_uppercase())),
                other => Err(EngineError::TypeMismatch(format!("UPPER of {other}"))),
            }
        }
        "LENGTH" => {
            arity("1", args.len() == 1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(EngineError::TypeMismatch(format!("LENGTH of {other}"))),
            }
        }
        "COALESCE" => {
            arity("1+", !args.is_empty())?;
            for a in args {
                if !a.is_null() {
                    return Ok(a.clone());
                }
            }
            Ok(Value::Null)
        }
        "NULLIF" => {
            arity("2", args.len() == 2)?;
            if args[0].sql_eq(&args[1]) == Some(true) {
                Ok(Value::Null)
            } else {
                Ok(args[0].clone())
            }
        }
        "CLAMP" => {
            arity("3", args.len() == 3)?;
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let num = |i: usize| {
                args[i].as_f64().ok_or_else(|| {
                    EngineError::TypeMismatch(format!("CLAMP of {}", args[i]))
                })
            };
            let (x, lo, hi) = (num(0)?, num(1)?, num(2)?);
            // Out-of-range values take the violated bound (lo wins when
            // the bounds cross); in-range values keep their original
            // type, so integer streams stay exactly summable.
            if x < lo {
                Ok(Value::Float(lo))
            } else if x > hi {
                Ok(Value::Float(hi))
            } else {
                Ok(args[0].clone())
            }
        }
        _ => Err(EngineError::UnknownFunction(upper.to_string())),
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (any single char).
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => {
                (0..=s.len()).any(|skip| rec(&s[skip..], rest))
            }
            Some(('_', rest)) => !s.is_empty() && rec(&s[1..], rest),
            Some((c, rest)) => s.first() == Some(c) && rec(&s[1..], rest),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

// batch (column-at-a-time) evaluation ----------------------------------------

/// Result of evaluating an expression over every row of a frame: either
/// one value per row, or a single row-invariant constant (literals,
/// uncorrelated subqueries) that is never materialised `n` times.
#[derive(Debug, Clone)]
pub enum Batch {
    /// The same value for every row.
    Const(Value),
    /// One value per row, shared zero-copy when the expression is a
    /// plain column reference.
    Col(Arc<ColumnData>),
}

impl Batch {
    /// Materialise the value at row `i`.
    pub fn value(&self, i: usize) -> Value {
        match self {
            Batch::Const(v) => v.clone(),
            Batch::Col(c) => c.value(i),
        }
    }

    /// Is the value at row `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Batch::Const(v) => v.is_null(),
            Batch::Col(c) => c.is_null(i),
        }
    }

    /// Turn into a column of `n` cells (broadcasting constants).
    pub fn into_column(self, n: usize) -> ColumnData {
        match self {
            Batch::Const(v) => {
                let hint = v.data_type().unwrap_or(DataType::Float);
                let mut col = ColumnData::with_capacity(hint, n);
                for _ in 0..n {
                    col.push(v.clone());
                }
                col
            }
            Batch::Col(c) => Arc::try_unwrap(c).unwrap_or_else(|shared| (*shared).clone()),
        }
    }

    /// Shared column handle, broadcasting constants.
    pub fn into_column_arc(self, n: usize) -> Arc<ColumnData> {
        match self {
            Batch::Col(c) => c,
            other => Arc::new(other.into_column(n)),
        }
    }
}

/// Evaluate `expr` once per row of `frame`, column-at-a-time.
///
/// Semantics match [`eval_expr`] exactly. The batch path evaluates
/// sub-expressions eagerly; where the row interpreter would have
/// short-circuited past an erroring sub-expression (`AND`/`OR`, `CASE`
/// branches, `IN` list tails), the eager pass can surface an error the
/// row semantics would not — so on any error we fall back to the row
/// interpreter, which reproduces the reference behaviour (including
/// *which* error, if the row path errors too).
pub fn eval_expr_batch(
    expr: &Expr,
    frame: &Frame,
    ctx: &EvalContext<'_>,
) -> EngineResult<Batch> {
    // the row interpreter never evaluates anything over zero rows, so
    // neither may the batch path (a type error in a predicate over an
    // empty relation must not surface)
    if frame.is_empty() {
        return Ok(Batch::Col(Arc::new(ColumnData::empty(DataType::Float))));
    }
    match eval_batch_inner(expr, frame, ctx) {
        Ok(batch) => Ok(batch),
        Err(_) => {
            let mut out = ColumnData::with_capacity(DataType::Float, frame.len());
            for i in 0..frame.len() {
                let row = frame.row(i);
                out.push(eval_expr(expr, &row, ctx)?);
            }
            Ok(Batch::Col(Arc::new(out)))
        }
    }
}

/// Evaluate a predicate over every row: one `bool` per row, NULL counts
/// as false (the `WHERE`/`HAVING` filter semantics of
/// [`eval_predicate`]).
pub fn eval_predicate_mask(
    expr: &Expr,
    frame: &Frame,
    ctx: &EvalContext<'_>,
) -> EngineResult<Vec<bool>> {
    let n = frame.len();
    match eval_expr_batch(expr, frame, ctx)? {
        Batch::Const(v) => {
            let keep = to_bool3(&v)?.unwrap_or(false);
            Ok(vec![keep; n])
        }
        Batch::Col(c) => {
            if let Some(bools) = c.bool_slice() {
                return Ok(bools.iter().map(|b| b.unwrap_or(false)).collect());
            }
            let mut mask = Vec::with_capacity(n);
            for i in 0..n {
                mask.push(to_bool3(&c.value(i))?.unwrap_or(false));
            }
            Ok(mask)
        }
    }
}

fn eval_batch_inner(
    expr: &Expr,
    frame: &Frame,
    ctx: &EvalContext<'_>,
) -> EngineResult<Batch> {
    let n = frame.len();
    match expr {
        Expr::Literal(lit) => Ok(Batch::Const(literal_value(lit))),
        Expr::Column(c) => {
            let idx = ctx.schema.resolve(c.qualifier.as_deref(), &c.name)?;
            Ok(Batch::Col(frame.column_arc(idx)))
        }
        Expr::Wildcard => Err(EngineError::Unsupported(
            "'*' is only valid inside COUNT(*)".into(),
        )),
        // row-invariant: delegate to the row interpreter once
        Expr::Subquery(_) | Expr::Exists(_) => {
            let row = Row::new();
            Ok(Batch::Const(eval_expr(expr, &row, ctx)?))
        }
        Expr::Unary { op, expr } => {
            match eval_batch_inner(expr, frame, ctx)? {
                Batch::Const(v) => Ok(Batch::Const(eval_unary(*op, v)?)),
                Batch::Col(c) => {
                    let hint = c.data_type().unwrap_or(DataType::Float);
                    let mut out = ColumnData::with_capacity(hint, n);
                    for i in 0..n {
                        out.push(eval_unary(*op, c.value(i))?);
                    }
                    Ok(Batch::Col(Arc::new(out)))
                }
            }
        }
        Expr::Binary { left, op, right } => {
            let l = eval_batch_inner(left, frame, ctx)?;
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    let r = eval_batch_inner(right, frame, ctx)?;
                    if let (Batch::Const(a), Batch::Const(b)) = (&l, &r) {
                        let out = match op {
                            BinaryOp::And => and3(to_bool3(a)?, to_bool3(b)?),
                            _ => or3(to_bool3(a)?, to_bool3(b)?),
                        };
                        return Ok(Batch::Const(out.map(Value::Bool).unwrap_or(Value::Null)));
                    }
                    let mut out = ColumnData::with_capacity(DataType::Boolean, n);
                    for i in 0..n {
                        let a = to_bool3(&l.value(i))?;
                        let b = to_bool3(&r.value(i))?;
                        let v = match op {
                            BinaryOp::And => and3(a, b),
                            _ => or3(a, b),
                        };
                        out.push(v.map(Value::Bool).unwrap_or(Value::Null));
                    }
                    Ok(Batch::Col(Arc::new(out)))
                }
                _ => {
                    let r = eval_batch_inner(right, frame, ctx)?;
                    eval_binary_batch(l, *op, r, n)
                }
            }
        }
        Expr::Function(call) => {
            if call.over.is_some() {
                return Err(EngineError::Unsupported(
                    "window function outside the executor's window stage".into(),
                ));
            }
            let args: Vec<Batch> = call
                .args
                .iter()
                .map(|a| eval_batch_inner(a, frame, ctx))
                .collect::<EngineResult<_>>()?;
            if args.iter().all(|a| matches!(a, Batch::Const(_))) {
                let vals: Vec<Value> = args.iter().map(|a| a.value(0)).collect();
                return Ok(Batch::Const(eval_scalar_function(&call.name, &vals)?));
            }
            let mut out = ColumnData::with_capacity(DataType::Float, n);
            let mut vals: Vec<Value> = Vec::with_capacity(args.len());
            for i in 0..n {
                vals.clear();
                vals.extend(args.iter().map(|a| a.value(i)));
                out.push(eval_scalar_function(&call.name, &vals)?);
            }
            Ok(Batch::Col(Arc::new(out)))
        }
        Expr::Case { operand, branches, else_result } => {
            let operand = operand
                .as_deref()
                .map(|e| eval_batch_inner(e, frame, ctx))
                .transpose()?;
            let whens: Vec<Batch> = branches
                .iter()
                .map(|b| eval_batch_inner(&b.when, frame, ctx))
                .collect::<EngineResult<_>>()?;
            let thens: Vec<Batch> = branches
                .iter()
                .map(|b| eval_batch_inner(&b.then, frame, ctx))
                .collect::<EngineResult<_>>()?;
            let else_b = else_result
                .as_deref()
                .map(|e| eval_batch_inner(e, frame, ctx))
                .transpose()?;
            let mut out = ColumnData::with_capacity(DataType::Float, n);
            for i in 0..n {
                let mut chosen: Option<Value> = None;
                match &operand {
                    Some(op) => {
                        let ov = op.value(i);
                        for (w, t) in whens.iter().zip(&thens) {
                            if ov.sql_eq(&w.value(i)) == Some(true) {
                                chosen = Some(t.value(i));
                                break;
                            }
                        }
                    }
                    None => {
                        for (w, t) in whens.iter().zip(&thens) {
                            if to_bool3(&w.value(i))?.unwrap_or(false) {
                                chosen = Some(t.value(i));
                                break;
                            }
                        }
                    }
                }
                let v = chosen.unwrap_or_else(|| {
                    else_b.as_ref().map(|e| e.value(i)).unwrap_or(Value::Null)
                });
                out.push(v);
            }
            Ok(Batch::Col(Arc::new(out)))
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval_batch_inner(expr, frame, ctx)?;
            let lo = eval_batch_inner(low, frame, ctx)?;
            let hi = eval_batch_inner(high, frame, ctx)?;
            let mut out = ColumnData::with_capacity(DataType::Boolean, n);
            for i in 0..n {
                let x = v.value(i);
                let ge = ge3(&x, &lo.value(i));
                let le = le3(&x, &hi.value(i));
                out.push(match and3(ge, le) {
                    Some(b) => Value::Bool(b != *negated),
                    None => Value::Null,
                });
            }
            Ok(Batch::Col(Arc::new(out)))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval_batch_inner(expr, frame, ctx)?;
            let items: Vec<Batch> = list
                .iter()
                .map(|e| eval_batch_inner(e, frame, ctx))
                .collect::<EngineResult<_>>()?;
            let mut out = ColumnData::with_capacity(DataType::Boolean, n);
            for i in 0..n {
                let x = v.value(i);
                let mut saw_null = false;
                let mut hit = false;
                for item in &items {
                    match x.sql_eq(&item.value(i)) {
                        Some(true) => {
                            hit = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                out.push(if hit {
                    Value::Bool(!*negated)
                } else if saw_null {
                    Value::Null
                } else {
                    Value::Bool(*negated)
                });
            }
            Ok(Batch::Col(Arc::new(out)))
        }
        Expr::IsNull { expr, negated } => match eval_batch_inner(expr, frame, ctx)? {
            Batch::Const(v) => Ok(Batch::Const(Value::Bool(v.is_null() != *negated))),
            Batch::Col(c) => {
                let mut out = ColumnData::with_capacity(DataType::Boolean, n);
                for i in 0..n {
                    out.push(Value::Bool(c.is_null(i) != *negated));
                }
                Ok(Batch::Col(Arc::new(out)))
            }
        },
        Expr::Cast { expr, type_name } => {
            let target = DataType::parse(type_name).ok_or_else(|| {
                EngineError::Unsupported(format!("unknown cast target {type_name:?}"))
            })?;
            match eval_batch_inner(expr, frame, ctx)? {
                Batch::Const(v) => Ok(Batch::Const(v.cast(target)?)),
                Batch::Col(c) => {
                    let mut out = ColumnData::with_capacity(target, n);
                    for i in 0..n {
                        out.push(c.value(i).cast(target)?);
                    }
                    Ok(Batch::Col(Arc::new(out)))
                }
            }
        }
    }
}

/// One side of a numeric binary kernel.
enum NumSide<'a> {
    IntCol(&'a [Option<i64>]),
    FloatCol(&'a [Option<f64>]),
    ConstInt(i64),
    ConstFloat(f64),
    ConstNull,
}

fn classify_numeric(batch: &Batch) -> Option<NumSide<'_>> {
    match batch {
        Batch::Const(Value::Int(v)) => Some(NumSide::ConstInt(*v)),
        Batch::Const(Value::Float(v)) => Some(NumSide::ConstFloat(*v)),
        Batch::Const(Value::Null) => Some(NumSide::ConstNull),
        Batch::Const(_) => None,
        Batch::Col(c) => {
            if let Some(ints) = c.int_slice() {
                Some(NumSide::IntCol(ints))
            } else {
                c.float_slice().map(NumSide::FloatCol)
            }
        }
    }
}

impl NumSide<'_> {
    fn int_at(&self, i: usize) -> Option<Option<i64>> {
        match self {
            NumSide::IntCol(v) => Some(v[i]),
            NumSide::ConstInt(x) => Some(Some(*x)),
            NumSide::ConstNull => Some(None),
            _ => None,
        }
    }

    fn f64_at(&self, i: usize) -> Option<f64> {
        match self {
            NumSide::IntCol(v) => v[i].map(|x| x as f64),
            NumSide::FloatCol(v) => v[i],
            NumSide::ConstInt(x) => Some(*x as f64),
            NumSide::ConstFloat(x) => Some(*x),
            NumSide::ConstNull => None,
        }
    }

    fn both_int(&self) -> bool {
        matches!(self, NumSide::IntCol(_) | NumSide::ConstInt(_) | NumSide::ConstNull)
    }
}

/// Batched comparison / arithmetic / string ops, with dense numeric
/// kernels for the common cases and a per-element fallback that reuses
/// the scalar [`eval_binary`] semantics.
pub(crate) fn eval_binary_batch(l: Batch, op: BinaryOp, r: Batch, n: usize) -> EngineResult<Batch> {
    // the AND/OR forms never reach here (handled by the caller)
    if let (Batch::Const(a), Batch::Const(b)) = (&l, &r) {
        return Ok(Batch::Const(eval_binary(a.clone(), op, b.clone())?));
    }

    let is_cmp = matches!(
        op,
        BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt
            | BinaryOp::GtEq
    );
    let is_arith = matches!(
        op,
        BinaryOp::Plus | BinaryOp::Minus | BinaryOp::Multiply | BinaryOp::Divide
            | BinaryOp::Modulo
    );

    if is_cmp || is_arith {
        if let (Some(ls), Some(rs)) = (classify_numeric(&l), classify_numeric(&r)) {
            // exact integer kernel (preserves wrapping arithmetic and
            // exact comparison beyond 2^53)
            if ls.both_int() && rs.both_int() {
                let out_type = if is_cmp { DataType::Boolean } else { DataType::Integer };
                let mut out = ColumnData::with_capacity(out_type, n);
                for i in 0..n {
                    let (a, b) = (ls.int_at(i).unwrap(), rs.int_at(i).unwrap());
                    out.push(match (a, b) {
                        (Some(a), Some(b)) => int_binary(a, op, b),
                        _ => Value::Null,
                    });
                }
                return Ok(Batch::Col(Arc::new(out)));
            }
            // float kernel
            let out_type = if is_cmp { DataType::Boolean } else { DataType::Float };
            let mut out = ColumnData::with_capacity(out_type, n);
            for i in 0..n {
                out.push(match (ls.f64_at(i), rs.f64_at(i)) {
                    (Some(a), Some(b)) => float_binary(a, op, b),
                    _ => Value::Null,
                });
            }
            return Ok(Batch::Col(Arc::new(out)));
        }
    }

    // generic per-element fallback (strings, booleans, LIKE, ||, mixed)
    let mut out = ColumnData::with_capacity(
        if is_cmp { DataType::Boolean } else { DataType::Float },
        n,
    );
    for i in 0..n {
        out.push(eval_binary(l.value(i), op, r.value(i))?);
    }
    Ok(Batch::Col(Arc::new(out)))
}

fn int_binary(a: i64, op: BinaryOp, b: i64) -> Value {
    match op {
        BinaryOp::Eq => Value::Bool(a == b),
        BinaryOp::NotEq => Value::Bool(a != b),
        BinaryOp::Lt => Value::Bool(a < b),
        BinaryOp::LtEq => Value::Bool(a <= b),
        BinaryOp::Gt => Value::Bool(a > b),
        BinaryOp::GtEq => Value::Bool(a >= b),
        BinaryOp::Plus => Value::Int(a.wrapping_add(b)),
        BinaryOp::Minus => Value::Int(a.wrapping_sub(b)),
        BinaryOp::Multiply => Value::Int(a.wrapping_mul(b)),
        BinaryOp::Divide => {
            if b == 0 {
                Value::Null
            } else {
                Value::Int(a.wrapping_div(b))
            }
        }
        BinaryOp::Modulo => {
            if b == 0 {
                Value::Null
            } else {
                Value::Int(a.wrapping_rem(b))
            }
        }
        _ => unreachable!("kernel only handles comparison/arithmetic"),
    }
}

fn float_binary(a: f64, op: BinaryOp, b: f64) -> Value {
    use std::cmp::Ordering;
    let ord = || a.partial_cmp(&b).unwrap_or(Ordering::Equal);
    match op {
        BinaryOp::Eq => Value::Bool(ord() == Ordering::Equal),
        BinaryOp::NotEq => Value::Bool(ord() != Ordering::Equal),
        BinaryOp::Lt => Value::Bool(ord() == Ordering::Less),
        BinaryOp::LtEq => Value::Bool(ord() != Ordering::Greater),
        BinaryOp::Gt => Value::Bool(ord() == Ordering::Greater),
        BinaryOp::GtEq => Value::Bool(ord() != Ordering::Less),
        BinaryOp::Plus => Value::Float(a + b),
        BinaryOp::Minus => Value::Float(a - b),
        BinaryOp::Multiply => Value::Float(a * b),
        BinaryOp::Divide => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
        BinaryOp::Modulo => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a % b)
            }
        }
        _ => unreachable!("kernel only handles comparison/arithmetic"),
    }
}

// three-valued logic helpers -------------------------------------------------

pub(crate) fn to_bool3(v: &Value) -> EngineResult<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(EngineError::TypeMismatch(format!("expected boolean, got {other}"))),
    }
}

pub(crate) fn and3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

pub(crate) fn or3(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

pub(crate) fn ge3(a: &Value, b: &Value) -> Option<bool> {
    a.sql_cmp(b).map(|o| o.is_ge())
}

pub(crate) fn le3(a: &Value, b: &Value) -> Option<bool> {
    a.sql_cmp(b).map(|o| o.is_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradise_sql::parse_expr;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("x", DataType::Float),
            ("y", DataType::Float),
            ("z", DataType::Float),
            ("name", DataType::Text),
            ("flag", DataType::Boolean),
        ])
    }

    fn row() -> Row {
        vec![
            Value::Float(3.0),
            Value::Float(2.0),
            Value::Float(1.5),
            Value::Str("walker".into()),
            Value::Bool(true),
        ]
    }

    fn eval(src: &str) -> EngineResult<Value> {
        let e = parse_expr(src).unwrap();
        let s = schema();
        let ctx = EvalContext::new(&s);
        eval_expr(&e, &row(), &ctx)
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval("x > y").unwrap(), Value::Bool(true));
        assert_eq!(eval("z < 2").unwrap(), Value::Bool(true));
        assert_eq!(eval("z >= 2").unwrap(), Value::Bool(false));
        assert_eq!(eval("name = 'walker'").unwrap(), Value::Bool(true));
    }

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(eval("x + y").unwrap(), Value::Float(5.0));
        assert_eq!(eval("1 + 2").unwrap(), Value::Int(3));
        assert_eq!(eval("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval("7.0 / 2").unwrap(), Value::Float(3.5));
        assert_eq!(eval("7 % 4").unwrap(), Value::Int(3));
    }

    #[test]
    fn division_by_zero_is_null() {
        assert_eq!(eval("1 / 0").unwrap(), Value::Null);
        assert_eq!(eval("x / 0.0").unwrap(), Value::Null);
        assert_eq!(eval("1 % 0").unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval("NULL AND flag").unwrap(), Value::Null);
        assert_eq!(eval("NULL AND FALSE").unwrap(), Value::Bool(false));
        assert_eq!(eval("NULL OR TRUE").unwrap(), Value::Bool(true));
        assert_eq!(eval("NOT NULL").unwrap(), Value::Null);
        assert_eq!(eval("z < NULL").unwrap(), Value::Null);
    }

    #[test]
    fn predicate_null_is_false() {
        let e = parse_expr("z < NULL").unwrap();
        let s = schema();
        let ctx = EvalContext::new(&s);
        assert!(!eval_predicate(&e, &row(), &ctx).unwrap());
    }

    #[test]
    fn between_and_in() {
        assert_eq!(eval("z BETWEEN 1 AND 2").unwrap(), Value::Bool(true));
        assert_eq!(eval("z NOT BETWEEN 1 AND 2").unwrap(), Value::Bool(false));
        assert_eq!(eval("x IN (1, 3, 5)").unwrap(), Value::Bool(true));
        assert_eq!(eval("x NOT IN (1, 3, 5)").unwrap(), Value::Bool(false));
        assert_eq!(eval("y IN (1, NULL)").unwrap(), Value::Null);
    }

    #[test]
    fn is_null_checks() {
        assert_eq!(eval("name IS NULL").unwrap(), Value::Bool(false));
        assert_eq!(eval("NULL IS NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval("name IS NOT NULL").unwrap(), Value::Bool(true));
    }

    #[test]
    fn case_forms() {
        assert_eq!(
            eval("CASE WHEN z < 2 THEN 'low' ELSE 'high' END").unwrap(),
            Value::Str("low".into())
        );
        assert_eq!(
            eval("CASE name WHEN 'walker' THEN 1 ELSE 0 END").unwrap(),
            Value::Int(1)
        );
        assert_eq!(eval("CASE WHEN FALSE THEN 1 END").unwrap(), Value::Null);
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval("ABS(-3)").unwrap(), Value::Int(3));
        assert_eq!(eval("ROUND(2.567, 2)").unwrap(), Value::Float(2.57));
        assert_eq!(eval("FLOOR(2.9)").unwrap(), Value::Float(2.0));
        assert_eq!(eval("UPPER(name)").unwrap(), Value::Str("WALKER".into()));
        assert_eq!(eval("LENGTH(name)").unwrap(), Value::Int(6));
        assert_eq!(eval("COALESCE(NULL, NULL, 5)").unwrap(), Value::Int(5));
        assert_eq!(eval("NULLIF(2, 2)").unwrap(), Value::Null);
        assert_eq!(eval("NULLIF(3, 2)").unwrap(), Value::Int(3));
        assert_eq!(eval("POWER(2, 10)").unwrap(), Value::Float(1024.0));
        // CLAMP: violated bounds come back as the (float) bound,
        // in-range values keep their original type, NULLs propagate.
        assert_eq!(eval("CLAMP(7, 0, 5.5)").unwrap(), Value::Float(5.5));
        assert_eq!(eval("CLAMP(-1, 0, 5.5)").unwrap(), Value::Float(0.0));
        assert_eq!(eval("CLAMP(3, 0, 5.5)").unwrap(), Value::Int(3));
        assert_eq!(eval("CLAMP(NULL, 0, 1)").unwrap(), Value::Null);
    }

    #[test]
    fn unknown_function_errors() {
        assert!(matches!(eval("noSuchFn(1)"), Err(EngineError::UnknownFunction(_))));
    }

    #[test]
    fn wrong_arity_errors() {
        assert!(matches!(eval("ABS(1, 2)"), Err(EngineError::WrongArity { .. })));
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("walker", "walk%"));
        assert!(like_match("walker", "%lk%"));
        assert!(like_match("walker", "w_lker"));
        assert!(!like_match("walker", "walk"));
        assert!(like_match("", "%"));
        assert!(!like_match("a", "_%_"));
        assert!(like_match("ab", "_%_"));
        assert_eq!(eval("name LIKE 'walk%'").unwrap(), Value::Bool(true));
    }

    #[test]
    fn concat() {
        assert_eq!(eval("name || '!'").unwrap(), Value::Str("walker!".into()));
        assert_eq!(eval("name || NULL").unwrap(), Value::Null);
    }

    #[test]
    fn cast_in_expression() {
        assert_eq!(eval("CAST(z AS INTEGER)").unwrap(), Value::Int(1));
        assert_eq!(eval("CAST('7' AS FLOAT)").unwrap(), Value::Float(7.0));
        assert!(eval("CAST(name AS INTEGER)").is_err());
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval("-x").unwrap(), Value::Float(-3.0));
        assert_eq!(eval("NOT flag").unwrap(), Value::Bool(false));
        assert!(eval("-name").is_err());
    }

    #[test]
    fn unknown_column_errors() {
        assert!(matches!(eval("missing > 1"), Err(EngineError::UnknownColumn(_))));
    }

    #[test]
    fn subquery_without_executor_errors() {
        assert!(eval("x > (SELECT 1)").is_err());
    }

    #[test]
    fn comparing_incompatible_types_errors() {
        assert!(eval("name > 5").is_err());
    }
}
