//! `Frame`: a schema plus columnar data — the unit of data flowing
//! between operators, nodes and the anonymizer.
//!
//! ## Layout and ownership
//!
//! Data lives column-major: one typed [`ColumnData`] buffer per column
//! (see [`crate::column`]), each behind an [`Arc`]. Cloning a frame —
//! or sharing columns between pipeline stages — therefore copies
//! *pointers*, not cells: `Frame::clone` is O(columns). Mutation goes
//! through copy-on-write (`Arc::make_mut`), so exclusively-owned frames
//! mutate in place and shared ones split off a private copy of just the
//! touched column.
//!
//! A row-view adapter ([`Frame::row`], [`Frame::iter_rows`],
//! [`Frame::to_rows`]) keeps row-at-a-time call sites working; builders
//! ([`Frame::new`], [`Frame::push_row`]) accept row-major input.
//!
//! `schema` stays a public field for ergonomic read access. Adding a
//! column must go through [`Frame::push_column`] so schema and buffers
//! stay in sync.

use std::fmt;
use std::sync::Arc;

use crate::column::ColumnData;
use crate::error::{EngineError, EngineResult};
use crate::schema::{Column, Schema};
use crate::value::Value;

/// A row is just an ordered list of values matching some schema.
pub type Row = Vec<Value>;

/// An in-memory relation: schema + column buffers.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    /// Column layout.
    pub schema: Schema,
    /// One shared buffer per column.
    columns: Vec<Arc<ColumnData>>,
    /// Row count (kept explicitly so zero-column frames — `SELECT` with
    /// no `FROM` — still know their cardinality).
    len: usize,
}

impl Frame {
    /// An empty frame with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| Arc::new(ColumnData::empty(c.data_type)))
            .collect();
        Frame { schema, columns, len: 0 }
    }

    /// Build from row-major parts, validating row arity.
    pub fn new(schema: Schema, rows: Vec<Row>) -> EngineResult<Self> {
        let width = schema.len();
        for row in &rows {
            if row.len() != width {
                return Err(EngineError::SchemaMismatch { expected: width, got: row.len() });
            }
        }
        Ok(Self::from_rows(schema, rows))
    }

    /// Build from row-major parts whose arity is correct by construction
    /// (e.g. executor-internal buffers). Panics on arity mismatch in
    /// debug builds.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Self {
        let len = rows.len();
        let mut builders: Vec<ColumnData> = schema
            .columns()
            .iter()
            .map(|c| ColumnData::with_capacity(c.data_type, len))
            .collect();
        for row in rows {
            debug_assert_eq!(row.len(), builders.len(), "row arity must match schema");
            for (builder, v) in builders.iter_mut().zip(row) {
                builder.push(v);
            }
        }
        Frame { schema, columns: builders.into_iter().map(Arc::new).collect(), len }
    }

    /// Build from column buffers, validating count and lengths.
    pub fn from_columns(schema: Schema, columns: Vec<ColumnData>) -> EngineResult<Self> {
        Self::from_arc_columns(schema, columns.into_iter().map(Arc::new).collect())
    }

    /// Build from shared column buffers (zero-copy: single-column
    /// projections and pipeline hand-offs share the underlying data).
    pub fn from_arc_columns(
        schema: Schema,
        columns: Vec<Arc<ColumnData>>,
    ) -> EngineResult<Self> {
        if columns.len() != schema.len() {
            return Err(EngineError::SchemaMismatch {
                expected: schema.len(),
                got: columns.len(),
            });
        }
        let len = columns.first().map(|c| c.len()).unwrap_or(0);
        for c in &columns {
            if c.len() != len {
                return Err(EngineError::SchemaMismatch { expected: len, got: c.len() });
            }
        }
        Ok(Frame { schema, columns, len })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No rows?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow one column's buffer.
    pub fn column(&self, index: usize) -> &ColumnData {
        &self.columns[index]
    }

    /// Shared handle to one column's buffer (zero-copy projection).
    pub fn column_arc(&self, index: usize) -> Arc<ColumnData> {
        Arc::clone(&self.columns[index])
    }

    /// Mutable access to one column (copy-on-write when shared).
    pub fn column_mut(&mut self, index: usize) -> &mut ColumnData {
        Arc::make_mut(&mut self.columns[index])
    }

    /// Materialise cell (`row`, `column`) as a [`Value`].
    pub fn value(&self, row: usize, column: usize) -> Value {
        self.columns[column].value(row)
    }

    /// Overwrite cell (`row`, `column`).
    pub fn set_value(&mut self, row: usize, column: usize, v: Value) {
        Arc::make_mut(&mut self.columns[column]).set(row, v);
    }

    /// Materialise one row.
    pub fn row(&self, index: usize) -> Row {
        self.columns.iter().map(|c| c.value(index)).collect()
    }

    /// Iterate rows, materialising each (row-view adapter).
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.len).map(move |i| self.row(i))
    }

    /// Materialise all rows (row-view adapter).
    pub fn to_rows(&self) -> Vec<Row> {
        self.iter_rows().collect()
    }

    /// Consume into row-major form; exclusively-owned buffers are
    /// drained (strings move, they are not cloned).
    pub fn into_rows(self) -> Vec<Row> {
        let len = self.len;
        let mut cols: Vec<std::vec::IntoIter<Value>> = self
            .columns
            .into_iter()
            .map(|arc| {
                let col = Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone());
                col.into_values().into_iter()
            })
            .collect();
        (0..len)
            .map(|_| cols.iter_mut().map(|it| it.next().expect("column length")).collect())
            .collect()
    }

    /// Append a row, validating arity.
    pub fn push_row(&mut self, row: Row) -> EngineResult<()> {
        if row.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            Arc::make_mut(col).push(v);
        }
        self.len += 1;
        Ok(())
    }

    /// Append a column (schema and buffers stay in sync).
    pub fn push_column(&mut self, column: Column, data: ColumnData) -> EngineResult<()> {
        if data.len() != self.len {
            return Err(EngineError::SchemaMismatch { expected: self.len, got: data.len() });
        }
        self.schema.push(column);
        self.columns.push(Arc::new(data));
        Ok(())
    }

    /// The values of one column, by index.
    pub fn column_values(&self, index: usize) -> impl Iterator<Item = Value> + '_ {
        self.columns[index].iter_values()
    }

    /// Estimated wire size of the whole frame in bytes (values only),
    /// used by the Figure 3 data-reduction experiments. O(columns):
    /// every column caches its byte count.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.bytes()).sum()
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.len * self.schema.len()
    }

    /// New frame with the rows selected by `indices`, in that order.
    pub fn select_rows(&self, indices: &[usize]) -> Frame {
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.gather(indices)))
            .collect();
        Frame { schema: self.schema.clone(), columns, len: indices.len() }
    }

    /// New frame keeping the rows where `mask` is true.
    pub fn filter_rows(&self, mask: &[bool]) -> Frame {
        debug_assert_eq!(mask.len(), self.len);
        let kept = mask.iter().filter(|&&m| m).count();
        let columns = self.columns.iter().map(|c| Arc::new(c.filter(mask))).collect();
        Frame { schema: self.schema.clone(), columns, len: kept }
    }

    /// Keep only the first `n` rows.
    pub fn truncate(&mut self, n: usize) {
        if n >= self.len {
            return;
        }
        for col in &mut self.columns {
            Arc::make_mut(col).truncate(n);
        }
        self.len = n;
    }

    /// Drop the first `n` rows.
    pub fn skip_rows(&mut self, n: usize) {
        let n = n.min(self.len);
        for col in &mut self.columns {
            Arc::make_mut(col).skip_front(n);
        }
        self.len -= n;
    }

    /// New frame holding the rows from `start` to the end. `start == 0`
    /// shares every column buffer (zero-copy); otherwise the suffix is
    /// copied, `O(rows - start)`. The delta path of incremental
    /// execution reads appended stream suffixes through this.
    pub fn slice_tail(&self, start: usize) -> Frame {
        if start == 0 {
            return self.clone();
        }
        let start = start.min(self.len);
        let columns = self
            .columns
            .iter()
            .map(|c| Arc::new(c.slice_tail(start)))
            .collect();
        Frame { schema: self.schema.clone(), columns, len: self.len - start }
    }

    /// Append all rows of `other` by reference; schemas must have the
    /// same width. One copy of `other`'s cells — use this when the
    /// caller keeps `other` alive (the stream-ingest path retains the
    /// batch as the table's last delta), where [`Frame::append`] on a
    /// clone would copy twice.
    pub fn append_copy(&mut self, other: &Frame) -> EngineResult<()> {
        if other.schema.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch {
                expected: self.schema.len(),
                got: other.schema.len(),
            });
        }
        self.len += other.len;
        for (dst, src) in self.columns.iter_mut().zip(&other.columns) {
            Arc::make_mut(dst).append_from(src);
        }
        Ok(())
    }

    /// Append all rows of `other` (used by `UNION`); schemas must have
    /// the same width.
    pub fn append(&mut self, other: Frame) -> EngineResult<()> {
        if other.schema.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch {
                expected: self.schema.len(),
                got: other.schema.len(),
            });
        }
        self.len += other.len;
        for (dst, src) in self.columns.iter_mut().zip(other.columns) {
            let src = Arc::try_unwrap(src).unwrap_or_else(|shared| (*shared).clone());
            Arc::make_mut(dst).append_owned(src);
        }
        Ok(())
    }

    /// Do the two frames share every column buffer (pointer identity)?
    /// Used to verify the pipeline's copy-free hand-offs.
    pub fn shares_columns(&self, other: &Frame) -> bool {
        self.columns.len() == other.columns.len()
            && self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// Render as an aligned text table (for examples and the experiment
    /// harness). Shows at most `max_rows` rows, with an ellipsis line.
    pub fn to_table_string(&self, max_rows: usize) -> String {
        let headers: Vec<String> =
            self.schema.columns().iter().map(|c| c.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let shown = self.len.min(max_rows);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for i in 0..shown {
            let rendered: Vec<String> =
                self.columns.iter().map(|c| c.value(i).to_string()).collect();
            for (i, cell) in rendered.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
            cells.push(rendered);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in headers.iter().enumerate() {
            out.push_str(&format!("| {h:w$} ", w = widths[i]));
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("| {c:w$} ", w = widths[i]));
            }
            out.push_str("|\n");
        }
        if self.len > shown {
            out.push_str(&format!("… {} more row(s)\n", self.len - shown));
        }
        sep(&mut out);
        out
    }
}

impl PartialEq for Frame {
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema || self.len != other.len {
            return false;
        }
        self.columns
            .iter()
            .zip(&other.columns)
            .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table_string(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn frame() -> Frame {
        let schema = Schema::from_pairs(&[("x", DataType::Integer), ("s", DataType::Text)]);
        Frame::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Str("bb".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_is_validated() {
        let schema = Schema::from_pairs(&[("x", DataType::Integer)]);
        assert!(Frame::new(schema.clone(), vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
        let mut f = Frame::empty(schema);
        assert!(f.push_row(vec![]).is_err());
        assert!(f.push_row(vec![Value::Int(1)]).is_ok());
    }

    #[test]
    fn size_accounting() {
        let f = frame();
        // 8 (int) + 5 (str "a"+4) + 8 + 6 = 27
        assert_eq!(f.size_bytes(), 27);
        assert_eq!(f.cell_count(), 4);
    }

    #[test]
    fn column_values_iterates() {
        let f = frame();
        let xs: Vec<_> = f.column_values(0).collect();
        assert_eq!(xs, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn table_rendering_truncates() {
        let f = frame();
        let s = f.to_table_string(1);
        assert!(s.contains("| x"));
        assert!(s.contains("1 more row"));
    }

    #[test]
    fn row_view_roundtrips() {
        let f = frame();
        let rows = f.to_rows();
        assert_eq!(rows[1], vec![Value::Int(2), Value::Str("bb".into())]);
        let rebuilt = Frame::new(f.schema.clone(), rows).unwrap();
        assert_eq!(rebuilt, f);
    }

    #[test]
    fn clone_shares_buffers_and_cow_splits() {
        let f = frame();
        let mut g = f.clone();
        assert!(f.shares_columns(&g));
        g.set_value(0, 0, Value::Int(9));
        assert!(!f.shares_columns(&g));
        assert_eq!(f.value(0, 0), Value::Int(1), "original untouched");
        assert_eq!(g.value(0, 0), Value::Int(9));
    }

    #[test]
    fn select_filter_append_truncate() {
        let mut f = frame();
        let sel = f.select_rows(&[1, 0]);
        assert_eq!(sel.value(0, 0), Value::Int(2));
        let filtered = f.filter_rows(&[false, true]);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.value(0, 1), Value::Str("bb".into()));
        f.append(filtered).unwrap();
        assert_eq!(f.len(), 3);
        f.truncate(1);
        assert_eq!(f.len(), 1);
        assert_eq!(f.size_bytes(), 13);
        f.skip_rows(1);
        assert!(f.is_empty());
    }

    #[test]
    fn push_column_keeps_schema_in_sync() {
        let mut f = frame();
        let col = crate::column::ColumnData::from_values(vec![Value::Bool(true), Value::Null]);
        f.push_column(Column::new("b", DataType::Boolean), col).unwrap();
        assert_eq!(f.schema.len(), 3);
        assert_eq!(f.value(0, 2), Value::Bool(true));
        let bad = crate::column::ColumnData::from_values(vec![Value::Int(1)]);
        assert!(f.push_column(Column::new("c", DataType::Integer), bad).is_err());
    }

    #[test]
    fn zero_column_frames_keep_cardinality() {
        let f = Frame::new(Schema::default(), vec![vec![], vec![]]).unwrap();
        assert_eq!(f.len(), 2);
        assert_eq!(f.size_bytes(), 0);
    }
}
