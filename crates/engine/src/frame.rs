//! `Frame`: a schema plus rows — the unit of data flowing between
//! operators, nodes and the anonymizer.

use std::fmt;

use crate::error::{EngineError, EngineResult};
use crate::schema::Schema;
use crate::value::Value;

/// A row is just an ordered list of values matching some schema.
pub type Row = Vec<Value>;

/// An in-memory relation: schema + row vector.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Frame {
    /// Column layout.
    pub schema: Schema,
    /// Data rows; every row has `schema.len()` values.
    pub rows: Vec<Row>,
}

impl Frame {
    /// An empty frame with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Frame { schema, rows: Vec::new() }
    }

    /// Build from parts, validating row arity.
    pub fn new(schema: Schema, rows: Vec<Row>) -> EngineResult<Self> {
        let width = schema.len();
        for row in &rows {
            if row.len() != width {
                return Err(EngineError::SchemaMismatch { expected: width, got: row.len() });
            }
        }
        Ok(Frame { schema, rows })
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// No rows?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row, validating arity.
    pub fn push_row(&mut self, row: Row) -> EngineResult<()> {
        if row.len() != self.schema.len() {
            return Err(EngineError::SchemaMismatch {
                expected: self.schema.len(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// The values of one column, by index.
    pub fn column_values(&self, index: usize) -> impl Iterator<Item = &Value> + '_ {
        self.rows.iter().map(move |r| &r[index])
    }

    /// Estimated wire size of the whole frame in bytes (values only),
    /// used by the Figure 3 data-reduction experiments.
    pub fn size_bytes(&self) -> usize {
        self.rows.iter().map(|r| r.iter().map(Value::size_bytes).sum::<usize>()).sum()
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.len() * self.schema.len()
    }

    /// Render as an aligned text table (for examples and the experiment
    /// harness). Shows at most `max_rows` rows, with an ellipsis line.
    pub fn to_table_string(&self, max_rows: usize) -> String {
        let headers: Vec<String> =
            self.schema.columns().iter().map(|c| c.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
        let shown = self.rows.len().min(max_rows);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for row in &self.rows[..shown] {
            let rendered: Vec<String> = row.iter().map(Value::to_string).collect();
            for (i, cell) in rendered.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
            cells.push(rendered);
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        sep(&mut out);
        for (i, h) in headers.iter().enumerate() {
            out.push_str(&format!("| {h:w$} ", w = widths[i]));
        }
        out.push_str("|\n");
        sep(&mut out);
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("| {c:w$} ", w = widths[i]));
            }
            out.push_str("|\n");
        }
        if self.rows.len() > shown {
            out.push_str(&format!("… {} more row(s)\n", self.rows.len() - shown));
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table_string(20))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn frame() -> Frame {
        let schema = Schema::from_pairs(&[("x", DataType::Integer), ("s", DataType::Text)]);
        Frame::new(
            schema,
            vec![
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Str("bb".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn arity_is_validated() {
        let schema = Schema::from_pairs(&[("x", DataType::Integer)]);
        assert!(Frame::new(schema.clone(), vec![vec![Value::Int(1), Value::Int(2)]]).is_err());
        let mut f = Frame::empty(schema);
        assert!(f.push_row(vec![]).is_err());
        assert!(f.push_row(vec![Value::Int(1)]).is_ok());
    }

    #[test]
    fn size_accounting() {
        let f = frame();
        // 8 (int) + 5 (str "a"+4) + 8 + 6 = 27
        assert_eq!(f.size_bytes(), 27);
        assert_eq!(f.cell_count(), 4);
    }

    #[test]
    fn column_values_iterates() {
        let f = frame();
        let xs: Vec<_> = f.column_values(0).cloned().collect();
        assert_eq!(xs, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn table_rendering_truncates() {
        let f = frame();
        let s = f.to_table_string(1);
        assert!(s.contains("| x"));
        assert!(s.contains("1 more row"));
    }
}
