//! Runtime values and their coercion / comparison semantics.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{EngineError, EngineResult};

/// The data types of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Float,
    /// Boolean.
    Boolean,
    /// UTF-8 text.
    Text,
}

impl DataType {
    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Integer => "INTEGER",
            DataType::Float => "FLOAT",
            DataType::Boolean => "BOOLEAN",
            DataType::Text => "TEXT",
        }
    }

    /// Parse a type name as used in `CAST(x AS type)`.
    pub fn parse(name: &str) -> Option<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(DataType::Integer),
            "FLOAT" | "REAL" | "DOUBLE" | "NUMERIC" | "DECIMAL" => Some(DataType::Float),
            "BOOL" | "BOOLEAN" => Some(DataType::Boolean),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Some(DataType::Text),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime value. `Null` is typeless, as in SQL.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Str(String),
}

impl Value {
    /// The value's type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Boolean),
            Value::Int(_) => Some(DataType::Integer),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Text),
        }
    }

    /// Is this NULL?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (Int and Float only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rough in-memory footprint in bytes, used for the network cost
    /// accounting of the vertical fragmentation experiments.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() + 4,
        }
    }

    /// SQL equality: NULL = anything is NULL (represented as `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp_non_null(other) == Ordering::Equal)
    }

    /// SQL comparison: `None` when either side is NULL or types are
    /// incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Value::Str(_), Value::Str(_))
            | (Value::Bool(_), Value::Bool(_))
            | (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
                Some(self.cmp_non_null(other))
            }
            _ => None,
        }
    }

    /// Total ordering for sorting / grouping: NULL < Bool < numbers < Str.
    /// Unlike [`Value::sql_cmp`] this never fails, so `ORDER BY` over mixed
    /// columns is deterministic.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => {
                if self.is_null() {
                    Ordering::Equal
                } else {
                    self.cmp_non_null(other)
                }
            }
            ord => ord,
        }
    }

    fn cmp_non_null(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                _ => Ordering::Equal,
            },
        }
    }

    /// A grouping key that hashes/compares consistently with
    /// [`Value::total_cmp`] (floats by bits after normalising -0.0).
    pub fn group_key(&self) -> GroupKey {
        match self {
            Value::Null => GroupKey::Null,
            Value::Bool(b) => GroupKey::Bool(*b),
            Value::Int(v) => GroupKey::Int(*v),
            Value::Float(v) => {
                let v = if *v == 0.0 { 0.0 } else { *v };
                if v.fract() == 0.0 && v.abs() < (i64::MAX as f64) {
                    // fold integral floats onto Int keys so 2.0 groups with 2
                    GroupKey::Int(v as i64)
                } else {
                    GroupKey::Float(v.to_bits())
                }
            }
            Value::Str(s) => GroupKey::Str(s.clone()),
        }
    }

    /// Cast to `target`, SQL-style. NULL casts to NULL.
    pub fn cast(&self, target: DataType) -> EngineResult<Value> {
        let fail = || EngineError::BadCast {
            value: self.to_string(),
            target: target.name().to_string(),
        };
        if self.is_null() {
            return Ok(Value::Null);
        }
        Ok(match (self, target) {
            (Value::Int(v), DataType::Integer) => Value::Int(*v),
            (Value::Float(v), DataType::Integer) => Value::Int(*v as i64),
            (Value::Bool(b), DataType::Integer) => Value::Int(i64::from(*b)),
            (Value::Str(s), DataType::Integer) => {
                Value::Int(s.trim().parse::<i64>().map_err(|_| fail())?)
            }
            (Value::Int(v), DataType::Float) => Value::Float(*v as f64),
            (Value::Float(v), DataType::Float) => Value::Float(*v),
            (Value::Str(s), DataType::Float) => {
                Value::Float(s.trim().parse::<f64>().map_err(|_| fail())?)
            }
            (Value::Bool(b), DataType::Boolean) => Value::Bool(*b),
            (Value::Int(v), DataType::Boolean) => Value::Bool(*v != 0),
            (Value::Str(s), DataType::Boolean) => match s.to_ascii_lowercase().as_str() {
                "true" | "t" | "1" => Value::Bool(true),
                "false" | "f" | "0" => Value::Bool(false),
                _ => return Err(fail()),
            },
            (v, DataType::Text) => Value::Str(v.to_string()),
            _ => return Err(fail()),
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => f.write_str(s),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality for tests and frames; NULL == NULL here
        // (unlike SQL three-valued logic — use sql_eq for that).
        self.total_cmp(other) == Ordering::Equal && self.is_null() == other.is_null()
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Hashable, orderable key derived from a [`Value`] for grouping and
/// DISTINCT.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    /// NULL groups with NULL.
    Null,
    /// Boolean key.
    Bool(bool),
    /// Integer key (also used for integral floats).
    Int(i64),
    /// Non-integral float by bit pattern.
    Float(u64),
    /// Text key.
    Str(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(3.0).sql_cmp(&Value::Int(3)), Some(Ordering::Equal));
    }

    #[test]
    fn null_comparisons_are_none() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
    }

    #[test]
    fn incomparable_types_are_none() {
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn group_key_folds_integral_floats() {
        assert_eq!(Value::Float(2.0).group_key(), Value::Int(2).group_key());
        assert_ne!(Value::Float(2.5).group_key(), Value::Int(2).group_key());
        assert_eq!(Value::Float(0.0).group_key(), Value::Float(-0.0).group_key());
    }

    #[test]
    fn casts() {
        assert_eq!(Value::Str("42".into()).cast(DataType::Integer).unwrap(), Value::Int(42));
        assert_eq!(Value::Float(2.9).cast(DataType::Integer).unwrap(), Value::Int(2));
        assert_eq!(Value::Int(1).cast(DataType::Boolean).unwrap(), Value::Bool(true));
        assert_eq!(Value::Int(5).cast(DataType::Text).unwrap(), Value::Str("5".into()));
        assert!(Value::Str("abc".into()).cast(DataType::Integer).is_err());
        assert_eq!(Value::Null.cast(DataType::Integer).unwrap(), Value::Null);
    }

    #[test]
    fn data_type_parse() {
        assert_eq!(DataType::parse("integer"), Some(DataType::Integer));
        assert_eq!(DataType::parse("VARCHAR"), Some(DataType::Text));
        assert_eq!(DataType::parse("blob"), None);
    }

    #[test]
    fn size_bytes_accounting() {
        assert_eq!(Value::Int(1).size_bytes(), 8);
        assert_eq!(Value::Str("abcd".into()).size_bytes(), 8);
        assert_eq!(Value::Null.size_bytes(), 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
        assert_eq!(Value::Float(2.25).to_string(), "2.25");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn structural_eq_vs_sql_eq() {
        assert_eq!(Value::Null, Value::Null); // structural
        assert_eq!(Value::Null.sql_eq(&Value::Null), None); // SQL
        assert_eq!(Value::Int(3), Value::Float(3.0)); // numeric fold
    }
}
