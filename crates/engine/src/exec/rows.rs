//! The original row-at-a-time operators, kept as the executable
//! reference semantics for the columnar engine.
//!
//! [`ExecMode::RowAtATime`](super::ExecMode) routes every `SELECT`
//! block through this module: rows are materialised through the
//! row-view adapter of [`Frame`], each operator walks `Vec<Row>`
//! exactly like the pre-columnar executor did, and the result is
//! converted back at the end. The executor-equivalence suite runs the
//! whole corpus through both paths and asserts identical frames.

use std::collections::HashMap;

use paradise_sql::ast::{Expr, FunctionCall, Query, SelectItem};

use crate::error::{EngineError, EngineResult};
use crate::eval::{eval_expr, eval_predicate, EvalContext};
use crate::frame::{Frame, Row};
use crate::schema::{Column, Schema};
use crate::value::{DataType, GroupKey, Value};

use super::aggregate::{AggKind, Accumulator};
use super::{
    apply_limit_offset_frame, check_strict_grouping, collect_aggregate_calls, dedupe_with_keys,
    finalise_types, query_aggregates, replace_aggregate_calls, sort_by_keys, window, Executor,
    ProjPlan,
};

/// Execute one `SELECT` block with the row-major reference operators.
pub(super) fn execute_block_rows(
    exec: &Executor<'_>,
    query: &Query,
    input: Frame,
) -> EngineResult<Frame> {
    let schema = input.schema.clone();
    let rows = input.into_rows();

    // WHERE, one row at a time
    let subquery_fn = |q: &Query| exec.execute(q);
    let filtered = match &query.where_clause {
        Some(pred) => {
            let ctx = EvalContext { schema: &schema, subquery: Some(&subquery_fn) };
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if eval_predicate(pred, &row, &ctx)? {
                    kept.push(row);
                }
            }
            kept
        }
        None => rows,
    };

    if query_aggregates(query) {
        execute_aggregation_rows(exec, query, schema, filtered)
    } else {
        execute_plain_rows(exec, query, schema, filtered)
    }
}

fn execute_plain_rows(
    exec: &Executor<'_>,
    query: &Query,
    schema: Schema,
    rows: Vec<Row>,
) -> EngineResult<Frame> {
    // window functions over the filtered input (shared with the
    // columnar path; rows are re-materialised afterwards)
    let mut window_calls: Vec<FunctionCall> = Vec::new();
    for item in &query.items {
        if let SelectItem::Expr { expr, .. } = item {
            window::collect_window_calls(expr, &mut window_calls);
        }
    }
    for o in &query.order_by {
        window::collect_window_calls(&o.expr, &mut window_calls);
    }

    let (work_schema, work_rows, rewrite_map) = if window_calls.is_empty() {
        (schema, rows, Vec::new())
    } else {
        let frame = Frame::from_rows(schema, rows);
        let (frame, map) = window::attach_window_columns(exec, frame, window_calls)?;
        let schema = frame.schema.clone();
        (schema, frame.into_rows(), map)
    };

    let rewrite = |expr: &Expr| -> Expr {
        if rewrite_map.is_empty() {
            return expr.clone();
        }
        window::replace_window_calls(expr.clone(), &rewrite_map)
    };

    let subquery_fn = |q: &Query| exec.execute(q);
    let ctx = EvalContext { schema: &work_schema, subquery: Some(&subquery_fn) };

    // projection, one row at a time
    let (out_schema, item_exprs) = exec.projection_plan(query, &work_schema, &rewrite)?;
    let mut projected: Vec<Row> = Vec::with_capacity(work_rows.len());
    let mut sort_keys: Vec<Vec<Value>> = Vec::new();
    let order_exprs: Vec<Expr> = query.order_by.iter().map(|o| rewrite(&o.expr)).collect();

    for row in &work_rows {
        let mut out = Vec::with_capacity(item_exprs.len());
        for plan in &item_exprs {
            match plan {
                ProjPlan::Splice(indices) => {
                    for &i in indices {
                        out.push(row[i].clone());
                    }
                }
                ProjPlan::Expr(e) => out.push(eval_expr(e, row, &ctx)?),
            }
        }
        if !order_exprs.is_empty() {
            let keys = exec.order_keys(&order_exprs, row, &out, &out_schema, &ctx)?;
            sort_keys.push(keys);
        }
        projected.push(out);
    }

    if query.distinct {
        // DISTINCT applies before ORDER BY; drop sort keys of removed rows.
        let (rows, keys) = dedupe_with_keys(projected, sort_keys);
        projected = rows;
        sort_keys = keys;
    }
    if !query.order_by.is_empty() {
        projected = sort_by_keys(projected, sort_keys, &query.order_by);
    }
    let mut frame = Frame::from_rows(out_schema, projected);
    finalise_types(&mut frame);
    apply_limit_offset_frame(&mut frame, query);
    Ok(frame)
}

fn execute_aggregation_rows(
    exec: &Executor<'_>,
    query: &Query,
    schema: Schema,
    rows: Vec<Row>,
) -> EngineResult<Frame> {
    if query.has_wildcard() {
        return Err(EngineError::Unsupported("SELECT * with GROUP BY/aggregates".into()));
    }
    let subquery_fn = |q: &Query| exec.execute(q);
    let ctx = EvalContext { schema: &schema, subquery: Some(&subquery_fn) };

    // 1. group rows
    let mut group_order: Vec<Vec<GroupKey>> = Vec::new();
    let mut groups: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
    if query.group_by.is_empty() {
        group_order.push(Vec::new());
        groups.insert(Vec::new(), (0..rows.len()).collect());
    } else {
        for (ri, row) in rows.iter().enumerate() {
            let mut key = Vec::with_capacity(query.group_by.len());
            for g in &query.group_by {
                key.push(eval_expr(g, row, &ctx)?.group_key());
            }
            if !groups.contains_key(&key) {
                group_order.push(key.clone());
            }
            groups.entry(key).or_default().push(ri);
        }
    }

    // 2. collect aggregate calls from items, HAVING and ORDER BY
    let mut agg_calls: Vec<FunctionCall> = Vec::new();
    for item in &query.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_aggregate_calls(expr, &mut agg_calls);
        }
    }
    if let Some(h) = &query.having {
        collect_aggregate_calls(h, &mut agg_calls);
    }
    for o in &query.order_by {
        collect_aggregate_calls(&o.expr, &mut agg_calls);
    }

    // 3. per group: synthetic row = representative row ++ agg values
    let mut ext_schema = schema.clone();
    let agg_col_names: Vec<String> =
        (0..agg_calls.len()).map(|i| format!("__agg{i}")).collect();
    for name in &agg_col_names {
        ext_schema.push(Column::new(name.clone(), DataType::Float));
    }

    if exec.options.strict_group_by {
        let grouped: std::collections::HashSet<String> = query
            .group_by
            .iter()
            .filter_map(|g| match g {
                Expr::Column(c) => Some(c.name.to_ascii_lowercase()),
                _ => None,
            })
            .collect();
        for item in &query.items {
            if let SelectItem::Expr { expr, .. } = item {
                check_strict_grouping(expr, &grouped, &query.group_by)?;
            }
        }
    }

    let rewrite =
        |expr: &Expr| -> Expr { replace_aggregate_calls(expr.clone(), &agg_calls, &agg_col_names) };

    let ext_ctx_schema = ext_schema.clone();
    let ext_ctx = EvalContext { schema: &ext_ctx_schema, subquery: Some(&subquery_fn) };

    let having_rewritten = query.having.as_ref().map(&rewrite);

    // projection plan over the extended schema
    let mut out_schema = Schema::default();
    let mut item_exprs: Vec<Expr> = Vec::with_capacity(query.items.len());
    for item in &query.items {
        let SelectItem::Expr { expr, alias } = item else { unreachable!() };
        let name = match alias {
            Some(a) => a.clone(),
            None => match expr {
                Expr::Column(c) => c.name.clone(),
                other => format!("{other}").to_lowercase(),
            },
        };
        out_schema.push(Column::new(name, DataType::Float));
        item_exprs.push(rewrite(expr));
    }
    let order_exprs: Vec<Expr> = query.order_by.iter().map(|o| rewrite(&o.expr)).collect();

    let mut out_rows: Vec<Row> = Vec::with_capacity(group_order.len());
    let mut sort_keys: Vec<Vec<Value>> = Vec::new();
    for key in &group_order {
        let indices = &groups[key];
        let mut synthetic: Row = match indices.first() {
            Some(&i) => rows[i].clone(),
            None => vec![Value::Null; schema.len()],
        };
        for call in &agg_calls {
            let v = compute_aggregate_rows(call, indices, &rows, &ctx)?;
            synthetic.push(v);
        }
        if let Some(h) = &having_rewritten {
            if !eval_predicate(h, &synthetic, &ext_ctx)? {
                continue;
            }
        }
        let mut out = Vec::with_capacity(item_exprs.len());
        for e in &item_exprs {
            out.push(eval_expr(e, &synthetic, &ext_ctx)?);
        }
        if !order_exprs.is_empty() {
            let keys = exec.order_keys(&order_exprs, &synthetic, &out, &out_schema, &ext_ctx)?;
            sort_keys.push(keys);
        }
        out_rows.push(out);
    }

    if query.distinct {
        let (rows, keys) = dedupe_with_keys(out_rows, sort_keys);
        out_rows = rows;
        sort_keys = keys;
    }
    if !query.order_by.is_empty() {
        out_rows = sort_by_keys(out_rows, sort_keys, &query.order_by);
    }
    let mut frame = Frame::from_rows(out_schema, out_rows);
    finalise_types(&mut frame);
    apply_limit_offset_frame(&mut frame, query);
    Ok(frame)
}

fn compute_aggregate_rows(
    call: &FunctionCall,
    row_indices: &[usize],
    rows: &[Row],
    ctx: &EvalContext<'_>,
) -> EngineResult<Value> {
    let kind = AggKind::from_name(&call.name)
        .ok_or_else(|| EngineError::UnknownFunction(call.name.clone()))?;
    if call.args.len() != kind.arity() {
        return Err(EngineError::WrongArity {
            function: call.name.clone(),
            expected: kind.arity().to_string(),
            got: call.args.len(),
        });
    }
    let mut acc = Accumulator::new(kind, call.distinct);
    for &ri in row_indices {
        let row = &rows[ri];
        let mut args = Vec::with_capacity(call.args.len());
        for a in &call.args {
            match a {
                Expr::Wildcard => args.push(Value::Int(1)),
                other => args.push(eval_expr(other, row, ctx)?),
            }
        }
        acc.update(&args)?;
    }
    Ok(acc.finish())
}
