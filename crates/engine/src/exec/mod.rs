//! The query executor.
//!
//! Pipeline per `SELECT` block (SQL logical order):
//! `FROM` → `WHERE` → `GROUP BY`+aggregates → `HAVING` → window functions
//! → projection → `DISTINCT` → `ORDER BY` → `LIMIT`/`OFFSET` → `UNION`.
//!
//! ## Compiled vs. columnar vs. row-at-a-time execution
//!
//! The default engine ([`ExecMode::Compiled`]) compiles the query into
//! a physical plan first (see [`crate::plan`]): ordinals pre-resolved,
//! expressions lowered to flat instruction programs, strategies
//! pre-selected — then executes the plan. Continuous queries compile
//! once and re-run the plan every tick.
//!
//! [`ExecMode::Columnar`] interprets the AST directly but still runs
//! the hot operators column-at-a-time over the typed buffers of
//! [`Frame`]: predicates become masks
//! ([`crate::eval::eval_predicate_mask`]), projections of plain columns
//! share buffers zero-copy, and grouped aggregation / window
//! partitioning read their keys and arguments from batch-evaluated
//! columns instead of cloning `Value`s cell-by-cell.
//!
//! [`ExecMode::RowAtATime`] keeps the original row-major operators (see
//! [`rows`]) as the executable reference semantics; the equivalence
//! suite runs every corpus query through all three modes and asserts
//! identical frames.
//!
//! ## Lenient vs. strict GROUP BY
//!
//! The paper's rewritten query projects `t` while grouping by `x, y`
//! (§4.2). In **lenient** mode (the default, matching the paper) such
//! columns take their value from the first row of each group. **Strict**
//! mode rejects them like `ONLY_FULL_GROUP_BY`.

pub mod aggregate;
pub mod rows;
pub mod window;

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use paradise_sql::analysis::is_aggregate_function;
use paradise_sql::ast::{
    expr_has_aggregate, Expr, FunctionCall, Query, SelectItem, SortOrder, TableRef,
};
use paradise_sql::visit::transform_expr;

use crate::catalog::Catalog;
use crate::column::ColumnData;
use crate::error::{EngineError, EngineResult};
use crate::eval::{
    eval_expr, eval_expr_batch, eval_predicate, eval_predicate_mask, Batch, EvalContext,
};
use crate::frame::{Frame, Row};
use crate::schema::{Column, Schema};
use crate::value::{DataType, GroupKey, Value};

use aggregate::{AggKind, Accumulator};

/// Which operator implementations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Compile the query to a physical plan (pre-resolved ordinals,
    /// expression programs, pre-selected strategies) and run that — the
    /// fast default. Queries the planner cannot compile fall back to
    /// the columnar interpreter transparently.
    #[default]
    Compiled,
    /// Column-at-a-time interpretation directly over the AST; kept as
    /// executable reference semantics for the compiled path.
    Columnar,
    /// The original row-major operators, kept as the executable
    /// reference semantics for equivalence testing.
    RowAtATime,
}

/// Execution options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Reject non-grouped, non-aggregated columns (ONLY_FULL_GROUP_BY).
    pub strict_group_by: bool,
    /// Safety valve for joins: maximum produced rows before aborting.
    /// `0` means the default of 10 million.
    pub max_rows: usize,
    /// Operator implementation to use.
    pub mode: ExecMode,
}

impl ExecOptions {
    fn effective_max_rows(&self) -> usize {
        if self.max_rows == 0 {
            10_000_000
        } else {
            self.max_rows
        }
    }
}

/// Query executor bound to a catalog.
pub struct Executor<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) options: ExecOptions,
}

impl<'a> Executor<'a> {
    /// Executor with default (lenient, paper-compatible, columnar)
    /// options.
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor { catalog, options: ExecOptions::default() }
    }

    /// Executor with explicit options.
    pub fn with_options(catalog: &'a Catalog, options: ExecOptions) -> Self {
        Executor { catalog, options }
    }

    /// Execute a query to a materialised [`Frame`].
    ///
    /// In [`ExecMode::Compiled`] (the default) the query is compiled to
    /// a physical plan first (see [`crate::plan`]); anything the
    /// planner cannot compile — or any compile-time resolution error —
    /// falls back to the AST interpreter, which reproduces the
    /// reference behaviour (including which error surfaces).
    pub fn execute(&self, query: &Query) -> EngineResult<Frame> {
        if self.options.mode == ExecMode::Compiled {
            if let Ok(plan) = self.compile(query) {
                return self.run_plan(&plan);
            }
        }
        self.execute_ast(query)
    }

    /// Execute by direct AST interpretation (columnar or row-at-a-time
    /// per the options), bypassing the planner.
    pub(crate) fn execute_ast(&self, query: &Query) -> EngineResult<Frame> {
        let mut result = self.execute_block(query)?;
        for (all, q) in &query.unions {
            let next = self.execute_block(q)?;
            if next.schema.len() != result.schema.len() {
                return Err(EngineError::Unsupported(format!(
                    "UNION branches have different widths ({} vs {})",
                    result.schema.len(),
                    next.schema.len()
                )));
            }
            result.append(next)?;
            if !all {
                result = dedupe_frame(&result);
            }
        }
        Ok(result)
    }

    fn execute_block(&self, query: &Query) -> EngineResult<Frame> {
        // FROM
        let input = match &query.from {
            Some(table) => self.eval_table(table)?,
            None => Frame::new(Schema::default(), vec![vec![]])?, // one empty row
        };

        if self.options.mode == ExecMode::RowAtATime {
            return rows::execute_block_rows(self, query, input);
        }

        // WHERE (columnar: predicate mask + bulk gather)
        let subquery_fn = |q: &Query| self.execute(q);
        let filtered = match &query.where_clause {
            Some(pred) => {
                let ctx = EvalContext { schema: &input.schema, subquery: Some(&subquery_fn) };
                let mask = eval_predicate_mask(pred, &input, &ctx)?;
                input.filter_rows(&mask)
            }
            None => input,
        };

        if query_aggregates(query) {
            self.execute_aggregation(query, filtered)
        } else {
            self.execute_plain(query, filtered)
        }
    }

    // ------------------------------------------------------------------
    // FROM evaluation (shared by both modes)
    // ------------------------------------------------------------------

    pub(crate) fn eval_table(&self, table: &TableRef) -> EngineResult<Frame> {
        match table {
            TableRef::Table { name, alias } => {
                let frame = self.catalog.get(name)?;
                let source = alias.as_deref().unwrap_or(name);
                // requalified schema over *shared* column buffers: a scan
                // copies pointers, not cells
                let columns = (0..frame.schema.len()).map(|c| frame.column_arc(c)).collect();
                Frame::from_arc_columns(frame.schema.with_source(source), columns)
            }
            TableRef::Subquery { query, alias } => {
                let frame = self.execute(query)?;
                match alias {
                    Some(a) => {
                        let schema = frame.schema.with_source(a);
                        let columns =
                            (0..frame.schema.len()).map(|c| frame.column_arc(c)).collect();
                        Frame::from_arc_columns(schema, columns)
                    }
                    None => Ok(frame),
                }
            }
            TableRef::Join { left, right, kind, on } => {
                let l = self.eval_table(left)?;
                let r = self.eval_table(right)?;
                // strategy selection: recognise the single-equality ON
                // shape here (the compiled plan pre-selects this once)
                let equi = if matches!(kind, paradise_sql::ast::JoinKind::Cross) {
                    None
                } else {
                    on.as_ref().and_then(|p| equi_join_columns(p, &l.schema, &r.schema))
                };
                self.join_frames(l, r, *kind, on.as_ref(), equi)
            }
        }
    }

    /// Join two materialised frames. `equi` carries the pre-selected
    /// hash-join candidate (left, right) key columns; the hash path is
    /// taken only when the actual buffers are [`hash_joinable`],
    /// otherwise the nested loop runs.
    pub(crate) fn join_frames(
        &self,
        left: Frame,
        right: Frame,
        kind: paradise_sql::ast::JoinKind,
        on: Option<&Expr>,
        equi: Option<(usize, usize)>,
    ) -> EngineResult<Frame> {
        use paradise_sql::ast::JoinKind;
        if let Some((li, ri)) = equi {
            if hash_joinable(left.column(li), right.column(ri)) {
                return self.hash_equi_join(left, right, kind, li, ri);
            }
        }
        let schema = left.schema.join(&right.schema);
        let subquery_fn = |q: &Query| self.execute(q);
        let ctx = EvalContext { schema: &schema, subquery: Some(&subquery_fn) };
        let max_rows = self.options.effective_max_rows();
        let left_rows = left.to_rows();
        let right_rows = right.to_rows();
        let mut out: Vec<Row> = Vec::new();
        let null_right: Row = vec![Value::Null; right.schema.len()];
        let null_left: Row = vec![Value::Null; left.schema.len()];
        let mut right_matched = vec![false; right_rows.len()];

        for lrow in &left_rows {
            let mut matched = false;
            for (ri, rrow) in right_rows.iter().enumerate() {
                let mut combined = Vec::with_capacity(schema.len());
                combined.extend(lrow.iter().cloned());
                combined.extend(rrow.iter().cloned());
                let keep = match (kind, on) {
                    (JoinKind::Cross, _) => true,
                    (_, Some(pred)) => eval_predicate(pred, &combined, &ctx)?,
                    (_, None) => true,
                };
                if keep {
                    matched = true;
                    right_matched[ri] = true;
                    out.push(combined);
                    if out.len() > max_rows {
                        return Err(EngineError::Unsupported(format!(
                            "join exceeded {max_rows} rows"
                        )));
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                let mut combined = Vec::with_capacity(schema.len());
                combined.extend(lrow.iter().cloned());
                combined.extend(null_right.iter().cloned());
                out.push(combined);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in right_rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut combined = Vec::with_capacity(schema.len());
                    combined.extend(null_left.iter().cloned());
                    combined.extend(rrow.iter().cloned());
                    out.push(combined);
                }
            }
        }
        Ok(Frame::from_rows(schema, out))
    }

    /// Hash join on one equality: build an index over the right key
    /// column, probe with the left one. Emits rows in the same order as
    /// the nested loop (left order, then right order per left row).
    fn hash_equi_join(
        &self,
        left: Frame,
        right: Frame,
        kind: paradise_sql::ast::JoinKind,
        left_key: usize,
        right_key: usize,
    ) -> EngineResult<Frame> {
        use paradise_sql::ast::JoinKind;
        let schema = left.schema.join(&right.schema);
        let max_rows = self.options.effective_max_rows();
        let rk = right.column(right_key);
        let mut index: HashMap<GroupKey, Vec<usize>> = HashMap::new();
        for j in 0..right.len() {
            // SQL equality: NULL keys never match
            if !rk.is_null(j) {
                index.entry(rk.group_key_at(j)).or_default().push(j);
            }
        }

        let lk = left.column(left_key);
        let mut out: Vec<Row> = Vec::new();
        let null_right: Row = vec![Value::Null; right.schema.len()];
        let null_left: Row = vec![Value::Null; left.schema.len()];
        let mut right_matched = vec![false; right.len()];

        for i in 0..left.len() {
            let matches = if lk.is_null(i) {
                None
            } else {
                index.get(&lk.group_key_at(i))
            };
            match matches {
                Some(js) => {
                    let lrow = left.row(i);
                    for &j in js {
                        right_matched[j] = true;
                        let mut combined = Vec::with_capacity(schema.len());
                        combined.extend(lrow.iter().cloned());
                        combined.extend(right.row(j));
                        out.push(combined);
                        if out.len() > max_rows {
                            return Err(EngineError::Unsupported(format!(
                                "join exceeded {max_rows} rows"
                            )));
                        }
                    }
                }
                None if matches!(kind, JoinKind::Left | JoinKind::Full) => {
                    let mut combined = left.row(i);
                    combined.extend(null_right.iter().cloned());
                    out.push(combined);
                }
                None => {}
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (j, matched) in right_matched.iter().enumerate() {
                if !matched {
                    let mut combined = null_left.clone();
                    combined.extend(right.row(j));
                    out.push(combined);
                }
            }
        }
        Ok(Frame::from_rows(schema, out))
    }

    // ------------------------------------------------------------------
    // non-aggregated path (columnar)
    // ------------------------------------------------------------------

    fn execute_plain(&self, query: &Query, input: Frame) -> EngineResult<Frame> {
        // window functions over the filtered input
        let mut window_calls: Vec<FunctionCall> = Vec::new();
        for item in &query.items {
            if let SelectItem::Expr { expr, .. } = item {
                window::collect_window_calls(expr, &mut window_calls);
            }
        }
        for o in &query.order_by {
            window::collect_window_calls(&o.expr, &mut window_calls);
        }

        let (work, rewrite_map) = if window_calls.is_empty() {
            (input, Vec::new())
        } else {
            window::attach_window_columns(self, input, window_calls)?
        };

        let rewrite = |expr: &Expr| -> Expr {
            if rewrite_map.is_empty() {
                return expr.clone();
            }
            window::replace_window_calls(expr.clone(), &rewrite_map)
        };

        let subquery_fn = |q: &Query| self.execute(q);
        let ctx = EvalContext { schema: &work.schema, subquery: Some(&subquery_fn) };
        let n = work.len();

        // projection: wildcard splices share buffers, expressions are
        // batch-evaluated once per column
        let (out_schema, item_exprs) = self.projection_plan(query, &work.schema, &rewrite)?;
        let mut out_cols: Vec<Arc<ColumnData>> = Vec::with_capacity(out_schema.len());
        for plan in &item_exprs {
            match plan {
                ProjPlan::Splice(indices) => {
                    for &i in indices {
                        out_cols.push(work.column_arc(i));
                    }
                }
                ProjPlan::Expr(e) => {
                    let batch = eval_expr_batch(e, &work, &ctx)?;
                    out_cols.push(batch.into_column_arc(n));
                }
            }
        }
        let mut frame = Frame::from_arc_columns(out_schema, out_cols)?;
        finalise_types(&mut frame);

        // ORDER BY keys: aliases resolve against the projected output,
        // everything else against the input (batch-evaluated once)
        let mut key_cols: Vec<Arc<ColumnData>> = Vec::with_capacity(query.order_by.len());
        for o in &query.order_by {
            let e = rewrite(&o.expr);
            key_cols.push(match order_key_source(&e, &frame.schema, ctx.schema)? {
                KeySource::OutCol(idx) => frame.column_arc(idx),
                KeySource::Input => eval_expr_batch(&e, &work, &ctx)?.into_column_arc(n),
            });
        }

        if query.distinct {
            // DISTINCT applies before ORDER BY; keep first occurrences
            let kept = distinct_indices(&frame);
            if kept.len() < frame.len() {
                frame = frame.select_rows(&kept);
                key_cols = key_cols.iter().map(|c| Arc::new(c.gather(&kept))).collect();
            }
        }

        if !query.order_by.is_empty() {
            // LIMIT/OFFSET pushdown: slice the permutation, gather only
            // the surviving rows
            let orders: Vec<SortOrder> = query.order_by.iter().map(|o| o.order).collect();
            let mut perm = sort_permutation(&key_cols, &orders, frame.len());
            if let Some(offset) = query.offset {
                let offset = (offset as usize).min(perm.len());
                perm.drain(..offset);
            }
            if let Some(limit) = query.limit {
                perm.truncate(limit as usize);
            }
            frame = frame.select_rows(&perm);
        } else {
            apply_limit_offset_frame(&mut frame, query);
        }
        Ok(frame)
    }

    /// Compute ORDER BY key values for one row: aliases resolve against
    /// the projected output, everything else against the input row.
    /// (Used by the aggregation tail and the row-at-a-time path.)
    pub(crate) fn order_keys(
        &self,
        order_exprs: &[Expr],
        input_row: &Row,
        out_row: &Row,
        out_schema: &Schema,
        ctx: &EvalContext<'_>,
    ) -> EngineResult<Vec<Value>> {
        let mut keys = Vec::with_capacity(order_exprs.len());
        for e in order_exprs {
            match order_key_source(e, out_schema, ctx.schema)? {
                KeySource::OutCol(idx) => keys.push(out_row[idx].clone()),
                KeySource::Input => keys.push(eval_expr(e, input_row, ctx)?),
            }
        }
        Ok(keys)
    }

    /// Build the output schema and per-item evaluation plan.
    pub(crate) fn projection_plan(
        &self,
        query: &Query,
        input: &Schema,
        rewrite: &dyn Fn(&Expr) -> Expr,
    ) -> EngineResult<(Schema, Vec<ProjPlan>)> {
        let mut out = Schema::default();
        let mut plans = Vec::with_capacity(query.items.len());
        for item in &query.items {
            match item {
                SelectItem::Wildcard => {
                    let indices: Vec<usize> = (0..input.len()).collect();
                    for c in input.columns() {
                        out.push(Column::new(c.name.clone(), c.data_type));
                    }
                    plans.push(ProjPlan::Splice(indices));
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut indices = Vec::new();
                    for (i, c) in input.columns().iter().enumerate() {
                        if c.source.as_deref().is_some_and(|s| s.eq_ignore_ascii_case(q)) {
                            indices.push(i);
                            out.push(Column::new(c.name.clone(), c.data_type));
                        }
                    }
                    if indices.is_empty() {
                        return Err(EngineError::UnknownTable(q.clone()));
                    }
                    plans.push(ProjPlan::Splice(indices));
                }
                SelectItem::Expr { expr, alias } => {
                    let rewritten = rewrite(expr);
                    let name = match alias {
                        Some(a) => a.clone(),
                        None => match expr {
                            Expr::Column(c) => c.name.clone(),
                            other => format!("{other}").to_lowercase(),
                        },
                    };
                    let dtype = match &rewritten {
                        Expr::Column(c) => {
                            let idx = input.resolve(c.qualifier.as_deref(), &c.name)?;
                            input.columns()[idx].data_type
                        }
                        _ => DataType::Float, // refined by finalise_types
                    };
                    out.push(Column::new(name, dtype));
                    plans.push(ProjPlan::Expr(rewritten));
                }
            }
        }
        Ok((out, plans))
    }

    // ------------------------------------------------------------------
    // aggregation path (columnar keys and arguments)
    // ------------------------------------------------------------------

    fn execute_aggregation(&self, query: &Query, input: Frame) -> EngineResult<Frame> {
        if query.has_wildcard() {
            return Err(EngineError::Unsupported("SELECT * with GROUP BY/aggregates".into()));
        }
        let subquery_fn = |q: &Query| self.execute(q);
        let ctx = EvalContext { schema: &input.schema, subquery: Some(&subquery_fn) };
        let n = input.len();

        // 1. group rows: keys evaluated column-at-a-time
        let grouped: Vec<Vec<usize>> = if query.group_by.is_empty() {
            vec![(0..n).collect()]
        } else {
            let key_cols: Vec<Arc<ColumnData>> = query
                .group_by
                .iter()
                .map(|g| Ok(eval_expr_batch(g, &input, &ctx)?.into_column_arc(n)))
                .collect::<EngineResult<_>>()?;
            group_indices(&key_cols, n)
        };

        // 2. collect aggregate calls from items, HAVING and ORDER BY
        let mut agg_calls: Vec<FunctionCall> = Vec::new();
        for item in &query.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggregate_calls(expr, &mut agg_calls);
            }
        }
        if let Some(h) = &query.having {
            collect_aggregate_calls(h, &mut agg_calls);
        }
        for o in &query.order_by {
            collect_aggregate_calls(&o.expr, &mut agg_calls);
        }

        // batch-evaluate every aggregate argument once over the input;
        // with zero groups nothing would consume them (and the row path
        // never checks the calls either), so skip the prep entirely
        let mut call_kinds: Vec<AggKind> = Vec::with_capacity(agg_calls.len());
        let mut call_args: Vec<Vec<Batch>> = Vec::with_capacity(agg_calls.len());
        let live_calls: &[FunctionCall] = if grouped.is_empty() { &[] } else { &agg_calls };
        for call in live_calls {
            let kind = AggKind::from_name(&call.name)
                .ok_or_else(|| EngineError::UnknownFunction(call.name.clone()))?;
            if call.args.len() != kind.arity() {
                return Err(EngineError::WrongArity {
                    function: call.name.clone(),
                    expected: kind.arity().to_string(),
                    got: call.args.len(),
                });
            }
            let args: Vec<Batch> = call
                .args
                .iter()
                .map(|a| match a {
                    Expr::Wildcard => Ok(Batch::Const(Value::Int(1))),
                    other => eval_expr_batch(other, &input, &ctx),
                })
                .collect::<EngineResult<_>>()?;
            call_kinds.push(kind);
            call_args.push(args);
        }

        // 3. per group: synthetic row = representative row ++ agg values
        let mut ext_schema = input.schema.clone();
        let agg_col_names: Vec<String> =
            (0..agg_calls.len()).map(|i| format!("__agg{i}")).collect();
        for name in &agg_col_names {
            ext_schema.push(Column::new(name.clone(), DataType::Float));
        }

        // strict-mode check: bare columns outside aggregates must be grouped
        if self.options.strict_group_by {
            let grouped: HashSet<String> = query
                .group_by
                .iter()
                .filter_map(|g| match g {
                    Expr::Column(c) => Some(c.name.to_ascii_lowercase()),
                    _ => None,
                })
                .collect();
            for item in &query.items {
                if let SelectItem::Expr { expr, .. } = item {
                    check_strict_grouping(expr, &grouped, &query.group_by)?;
                }
            }
        }

        let rewrite = |expr: &Expr| -> Expr {
            replace_aggregate_calls(expr.clone(), &agg_calls, &agg_col_names)
        };

        let ext_ctx_schema = ext_schema.clone();
        let ext_ctx = EvalContext { schema: &ext_ctx_schema, subquery: Some(&subquery_fn) };

        let having_rewritten = query.having.as_ref().map(&rewrite);

        // projection plan over the extended schema
        let mut out_schema = Schema::default();
        let mut item_exprs: Vec<Expr> = Vec::with_capacity(query.items.len());
        for item in &query.items {
            let SelectItem::Expr { expr, alias } = item else { unreachable!() };
            let name = match alias {
                Some(a) => a.clone(),
                None => match expr {
                    Expr::Column(c) => c.name.clone(),
                    other => format!("{other}").to_lowercase(),
                },
            };
            out_schema.push(Column::new(name, DataType::Float));
            item_exprs.push(rewrite(expr));
        }
        // precompile plain column items (including the synthetic __aggN
        // references) to indices, so per-group projection is a lookup
        // instead of a name resolution
        let item_plans: Vec<AggItemPlan> = item_exprs
            .into_iter()
            .map(|e| match &e {
                Expr::Column(c) => match ext_schema.try_resolve(c.qualifier.as_deref(), &c.name)
                {
                    Some(idx) => AggItemPlan::Col(idx),
                    None => AggItemPlan::Expr(e),
                },
                _ => AggItemPlan::Expr(e),
            })
            .collect();
        let order_exprs: Vec<Expr> = query.order_by.iter().map(|o| rewrite(&o.expr)).collect();

        let mut out_rows: Vec<Row> = Vec::with_capacity(grouped.len());
        let mut sort_keys: Vec<Vec<Value>> = Vec::new();
        let mut arg_buf: Vec<Value> = Vec::new();
        for indices in &grouped {
            // representative row: first of group, or all-NULL for the
            // global empty group
            let mut synthetic: Row = match indices.first() {
                Some(&i) => input.row(i),
                None => vec![Value::Null; input.schema.len()],
            };
            for (ci, call) in agg_calls.iter().enumerate() {
                let mut acc = Accumulator::new(call_kinds[ci], call.distinct);
                for &ri in indices {
                    arg_buf.clear();
                    arg_buf.extend(call_args[ci].iter().map(|b| b.value(ri)));
                    acc.update(&arg_buf)?;
                }
                synthetic.push(acc.finish());
            }
            if let Some(h) = &having_rewritten {
                if !eval_predicate(h, &synthetic, &ext_ctx)? {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(item_plans.len());
            for plan in &item_plans {
                match plan {
                    AggItemPlan::Col(idx) => out.push(synthetic[*idx].clone()),
                    AggItemPlan::Expr(e) => out.push(eval_expr(e, &synthetic, &ext_ctx)?),
                }
            }
            if !order_exprs.is_empty() {
                let keys =
                    self.order_keys(&order_exprs, &synthetic, &out, &out_schema, &ext_ctx)?;
                sort_keys.push(keys);
            }
            out_rows.push(out);
        }

        if query.distinct {
            let (rows, keys) = dedupe_with_keys(out_rows, sort_keys);
            out_rows = rows;
            sort_keys = keys;
        }
        if !query.order_by.is_empty() {
            out_rows = sort_by_keys(out_rows, sort_keys, &query.order_by);
        }
        let mut frame = Frame::from_rows(out_schema, out_rows);
        finalise_types(&mut frame);
        apply_limit_offset_frame(&mut frame, query);
        Ok(frame)
    }
}

/// Does the query need the aggregation path?
pub(crate) fn query_aggregates(query: &Query) -> bool {
    !query.group_by.is_empty()
        || query.having.is_some()
        || query
            .items
            .iter()
            .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr_has_aggregate(expr, &is_aggregate_function)))
}

/// Per-item projection plan.
pub(crate) enum ProjPlan {
    /// Copy these input column indices (wildcards).
    Splice(Vec<usize>),
    /// Evaluate this (window-rewritten) expression.
    Expr(Expr),
}

/// Per-item plan of the aggregation projection (over the extended
/// schema of representative row ++ synthetic aggregate columns).
pub(crate) enum AggItemPlan {
    /// A plain column of the extended row.
    Col(usize),
    /// A compound expression, evaluated per group.
    Expr(Expr),
}

/// Partition `0..n` by the grouping key columns, groups in
/// first-appearance order. Single-key grouping avoids the per-row
/// `Vec<GroupKey>` allocation of the general case.
pub(crate) fn group_indices(key_cols: &[Arc<ColumnData>], n: usize) -> Vec<Vec<usize>> {
    use std::collections::hash_map::Entry;
    let mut out: Vec<Vec<usize>> = Vec::new();
    match key_cols {
        [] => out.push((0..n).collect()),
        [col] => {
            let mut slots: HashMap<GroupKey, usize> = HashMap::new();
            for ri in 0..n {
                match slots.entry(col.group_key_at(ri)) {
                    Entry::Occupied(e) => out[*e.get()].push(ri),
                    Entry::Vacant(e) => {
                        e.insert(out.len());
                        out.push(vec![ri]);
                    }
                }
            }
        }
        cols => {
            let mut slots: HashMap<Vec<GroupKey>, usize> = HashMap::new();
            for ri in 0..n {
                let key: Vec<GroupKey> = cols.iter().map(|c| c.group_key_at(ri)).collect();
                match slots.entry(key) {
                    Entry::Occupied(e) => out[*e.get()].push(ri),
                    Entry::Vacant(e) => {
                        e.insert(out.len());
                        out.push(vec![ri]);
                    }
                }
            }
        }
    }
    out
}

/// Recognise `left_col = right_col` ON conditions: returns the column
/// indices in the (left, right) schemas, trying both orientations.
pub(crate) fn equi_join_columns(
    on: &Expr,
    left: &Schema,
    right: &Schema,
) -> Option<(usize, usize)> {
    let Expr::Binary { left: l, op: paradise_sql::ast::BinaryOp::Eq, right: r } = on else {
        return None;
    };
    let (Expr::Column(a), Expr::Column(b)) = (l.as_ref(), r.as_ref()) else {
        return None;
    };
    let resolve = |schema: &Schema, c: &paradise_sql::ast::ColumnRef| {
        schema.try_resolve(c.qualifier.as_deref(), &c.name)
    };
    if let (Some(li), Some(ri)) = (resolve(left, a), resolve(right, b)) {
        // the name must not also resolve on the other side, otherwise the
        // combined-schema resolution the nested loop uses could differ
        if resolve(right, a).is_none() && resolve(left, b).is_none() {
            return Some((li, ri));
        }
    }
    if let (Some(li), Some(ri)) = (resolve(left, b), resolve(right, a)) {
        if resolve(right, b).is_none() && resolve(left, a).is_none() {
            return Some((li, ri));
        }
    }
    None
}

/// The hash path is taken only when `GroupKey` equality provably
/// coincides with the nested loop's `sql_eq`: both sides must be the
/// *same* typed buffer. Int×Float pairs fall back (f64 comparison and
/// integer key folding disagree beyond 2^53), as do float keys
/// containing NaN (`sql_eq` treats NaN as equal to everything, group
/// keys compare by bits) and `Mixed` columns.
pub(crate) fn hash_joinable(a: &ColumnData, b: &ColumnData) -> bool {
    if a.int_slice().is_some() && b.int_slice().is_some() {
        return true;
    }
    if a.bool_slice().is_some() && b.bool_slice().is_some() {
        return true;
    }
    if a.str_slice().is_some() && b.str_slice().is_some() {
        return true;
    }
    if let (Some(x), Some(y)) = (a.float_slice(), b.float_slice()) {
        let no_nan =
            |s: &[Option<f64>]| s.iter().all(|v| !v.is_some_and(|x| x.is_nan()));
        return no_nan(x) && no_nan(y);
    }
    false
}

/// Where an ORDER BY key comes from.
pub(crate) enum KeySource {
    /// A projected output column (pure alias or positional reference).
    OutCol(usize),
    /// Evaluated against the input.
    Input,
}

/// Decide how one ORDER BY expression resolves (schema-driven, so it is
/// computed once, not per row).
pub(crate) fn order_key_source(
    e: &Expr,
    out_schema: &Schema,
    input_schema: &Schema,
) -> EngineResult<KeySource> {
    if let Expr::Column(c) = e {
        if c.qualifier.is_none() {
            if let Some(idx) = out_schema.try_resolve(None, &c.name) {
                // prefer the projected value when the name is not
                // resolvable in the input (pure alias)
                if input_schema.try_resolve(None, &c.name).is_none() {
                    return Ok(KeySource::OutCol(idx));
                }
            }
        }
    }
    // positional reference: ORDER BY 1
    if let Expr::Literal(paradise_sql::ast::Literal::Integer(i)) = e {
        let idx = (*i - 1) as usize;
        if *i >= 1 && idx < out_schema.len() {
            return Ok(KeySource::OutCol(idx));
        }
    }
    Ok(KeySource::Input)
}

/// Collect non-windowed aggregate calls (deduplicated structurally).
pub(crate) fn collect_aggregate_calls(expr: &Expr, out: &mut Vec<FunctionCall>) {
    match expr {
        // aggregates cannot nest; no recursion into their args
        Expr::Function(f)
            if f.over.is_none() && is_aggregate_function(&f.name) && !out.contains(f) =>
        {
            out.push(f.clone());
        }
        Expr::Function(f) if f.over.is_none() && is_aggregate_function(&f.name) => {}
        Expr::Function(f) => {
            for a in &f.args {
                collect_aggregate_calls(a, out);
            }
        }
        Expr::Unary { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_aggregate_calls(left, out);
            collect_aggregate_calls(right, out);
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                collect_aggregate_calls(op, out);
            }
            for b in branches {
                collect_aggregate_calls(&b.when, out);
                collect_aggregate_calls(&b.then, out);
            }
            if let Some(e) = else_result {
                collect_aggregate_calls(e, out);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(low, out);
            collect_aggregate_calls(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregate_calls(expr, out);
            for e in list {
                collect_aggregate_calls(e, out);
            }
        }
        Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => collect_aggregate_calls(expr, out),
        _ => {}
    }
}

/// Replace aggregate calls by references to their synthetic columns.
pub(crate) fn replace_aggregate_calls(expr: Expr, calls: &[FunctionCall], names: &[String]) -> Expr {
    transform_expr(expr, &mut |e| match &e {
        Expr::Function(f) if f.over.is_none() && is_aggregate_function(&f.name) => calls
            .iter()
            .position(|c| c == f)
            .map(|i| Expr::Column(paradise_sql::ast::ColumnRef::bare(names[i].clone()))),
        _ => None,
    })
}

/// Strict-mode check: columns outside aggregates must be grouped.
pub(crate) fn check_strict_grouping(
    expr: &Expr,
    grouped: &HashSet<String>,
    group_exprs: &[Expr],
) -> EngineResult<()> {
    // whole expression equals a grouping expression → fine
    if group_exprs.iter().any(|g| g == expr) {
        return Ok(());
    }
    match expr {
        Expr::Column(c) => {
            if grouped.contains(&c.name.to_ascii_lowercase()) {
                Ok(())
            } else {
                Err(EngineError::NotGrouped(c.name.clone()))
            }
        }
        Expr::Function(f) if f.over.is_none() && is_aggregate_function(&f.name) => Ok(()),
        Expr::Function(f) => {
            for a in &f.args {
                check_strict_grouping(a, grouped, group_exprs)?;
            }
            Ok(())
        }
        Expr::Unary { expr, .. } => check_strict_grouping(expr, grouped, group_exprs),
        Expr::Binary { left, right, .. } => {
            check_strict_grouping(left, grouped, group_exprs)?;
            check_strict_grouping(right, grouped, group_exprs)
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                check_strict_grouping(op, grouped, group_exprs)?;
            }
            for b in branches {
                check_strict_grouping(&b.when, grouped, group_exprs)?;
                check_strict_grouping(&b.then, grouped, group_exprs)?;
            }
            if let Some(e) = else_result {
                check_strict_grouping(e, grouped, group_exprs)?;
            }
            Ok(())
        }
        Expr::Between { expr, low, high, .. } => {
            check_strict_grouping(expr, grouped, group_exprs)?;
            check_strict_grouping(low, grouped, group_exprs)?;
            check_strict_grouping(high, grouped, group_exprs)
        }
        Expr::InList { expr, list, .. } => {
            check_strict_grouping(expr, grouped, group_exprs)?;
            for e in list {
                check_strict_grouping(e, grouped, group_exprs)?;
            }
            Ok(())
        }
        Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            check_strict_grouping(expr, grouped, group_exprs)
        }
        _ => Ok(()),
    }
}

/// Infer better output types from the materialised columns (projection
/// plans default non-column expressions to FLOAT). O(1) per typed
/// column: the buffer knows its runtime type.
pub(crate) fn finalise_types(frame: &mut Frame) {
    let mut schema = Schema::default();
    for (i, c) in frame.schema.columns().iter().enumerate() {
        let dt = frame.column(i).data_type().unwrap_or(c.data_type);
        schema.push(Column { name: c.name.clone(), source: c.source.clone(), data_type: dt });
    }
    frame.schema = schema;
}

/// Indices of the first occurrence of every distinct row, in order.
pub(crate) fn distinct_indices(frame: &Frame) -> Vec<usize> {
    let mut seen: HashSet<Vec<GroupKey>> = HashSet::with_capacity(frame.len());
    let width = frame.schema.len();
    let mut kept = Vec::with_capacity(frame.len());
    for i in 0..frame.len() {
        let key: Vec<GroupKey> =
            (0..width).map(|c| frame.column(c).group_key_at(i)).collect();
        if seen.insert(key) {
            kept.push(i);
        }
    }
    kept
}

/// `UNION` deduplication: keep the first occurrence of every row.
pub(crate) fn dedupe_frame(frame: &Frame) -> Frame {
    let kept = distinct_indices(frame);
    if kept.len() == frame.len() {
        frame.clone()
    } else {
        frame.select_rows(&kept)
    }
}

/// Stable permutation of `0..n` ordering rows by the key columns.
/// Single typed key columns sort over the dense buffer directly.
pub(crate) fn sort_permutation(
    key_cols: &[Arc<ColumnData>],
    orders: &[SortOrder],
    n: usize,
) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    if let [col] = key_cols {
        let desc = orders[0] == SortOrder::Desc;
        let directed = |ord: std::cmp::Ordering| if desc { ord.reverse() } else { ord };
        if let Some(ints) = col.int_slice() {
            // Option<i64>'s ordering puts NULL first, like total_cmp
            perm.sort_by(|&a, &b| directed(ints[a].cmp(&ints[b])));
            return perm;
        }
        if let Some(floats) = col.float_slice() {
            perm.sort_by(|&a, &b| {
                directed(match (floats[a], floats[b]) {
                    (None, None) => std::cmp::Ordering::Equal,
                    (None, Some(_)) => std::cmp::Ordering::Less,
                    (Some(_), None) => std::cmp::Ordering::Greater,
                    (Some(x), Some(y)) => {
                        x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
                    }
                })
            });
            return perm;
        }
    }
    perm.sort_by(|&a, &b| {
        for (col, order) in key_cols.iter().zip(orders) {
            let ord = col.cmp_at(a, col, b);
            let ord = if *order == SortOrder::Desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    perm
}

pub(crate) fn dedupe_with_keys(
    rows: Vec<Row>,
    keys: Vec<Vec<Value>>,
) -> (Vec<Row>, Vec<Vec<Value>>) {
    let mut seen: HashSet<Vec<GroupKey>> = HashSet::with_capacity(rows.len());
    let has_keys = !keys.is_empty();
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut out_keys = Vec::with_capacity(keys.len());
    for (i, row) in rows.into_iter().enumerate() {
        if seen.insert(row.iter().map(Value::group_key).collect()) {
            if has_keys {
                out_keys.push(keys[i].clone());
            }
            out_rows.push(row);
        }
    }
    (out_rows, out_keys)
}

pub(crate) fn sort_by_keys(
    rows: Vec<Row>,
    keys: Vec<Vec<Value>>,
    order: &[paradise_sql::ast::OrderByItem],
) -> Vec<Row> {
    let mut paired: Vec<(Vec<Value>, Row)> = keys.into_iter().zip(rows).collect();
    paired.sort_by(|(ka, _), (kb, _)| {
        for (i, item) in order.iter().enumerate() {
            let ord = ka[i].total_cmp(&kb[i]);
            let ord = if item.order == SortOrder::Desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    paired.into_iter().map(|(_, r)| r).collect()
}

pub(crate) fn apply_limit_offset_frame(frame: &mut Frame, query: &Query) {
    if let Some(offset) = query.offset {
        frame.skip_rows(offset as usize);
    }
    if let Some(limit) = query.limit {
        frame.truncate(limit as usize);
    }
}
