//! The query executor: a straightforward tree-walking interpreter over
//! the `paradise-sql` AST.
//!
//! Pipeline per `SELECT` block (SQL logical order):
//! `FROM` → `WHERE` → `GROUP BY`+aggregates → `HAVING` → window functions
//! → projection → `DISTINCT` → `ORDER BY` → `LIMIT`/`OFFSET` → `UNION`.
//!
//! ## Lenient vs. strict GROUP BY
//!
//! The paper's rewritten query projects `t` while grouping by `x, y`
//! (§4.2). In **lenient** mode (the default, matching the paper) such
//! columns take their value from the first row of each group. **Strict**
//! mode rejects them like `ONLY_FULL_GROUP_BY`.

pub mod aggregate;
pub mod window;

use std::collections::HashSet;

use paradise_sql::analysis::is_aggregate_function;
use paradise_sql::ast::{
    expr_has_aggregate, Expr, FunctionCall, Query, SelectItem, SortOrder, TableRef,
};
use paradise_sql::visit::transform_expr;

use crate::catalog::Catalog;
use crate::error::{EngineError, EngineResult};
use crate::eval::{eval_expr, eval_predicate, EvalContext};
use crate::frame::{Frame, Row};
use crate::schema::{Column, Schema};
use crate::value::{DataType, GroupKey, Value};

use aggregate::{AggKind, Accumulator};

/// Execution options.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Reject non-grouped, non-aggregated columns (ONLY_FULL_GROUP_BY).
    pub strict_group_by: bool,
    /// Safety valve for joins: maximum produced rows before aborting.
    pub max_rows: usize,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions { strict_group_by: false, max_rows: 10_000_000 }
    }
}

/// Query executor bound to a catalog.
pub struct Executor<'a> {
    catalog: &'a Catalog,
    options: ExecOptions,
}

impl<'a> Executor<'a> {
    /// Executor with default (lenient, paper-compatible) options.
    pub fn new(catalog: &'a Catalog) -> Self {
        Executor { catalog, options: ExecOptions::default() }
    }

    /// Executor with explicit options.
    pub fn with_options(catalog: &'a Catalog, options: ExecOptions) -> Self {
        Executor { catalog, options }
    }

    /// Execute a query to a materialised [`Frame`].
    pub fn execute(&self, query: &Query) -> EngineResult<Frame> {
        let mut result = self.execute_block(query)?;
        for (all, q) in &query.unions {
            let next = self.execute_block(q)?;
            if next.schema.len() != result.schema.len() {
                return Err(EngineError::Unsupported(format!(
                    "UNION branches have different widths ({} vs {})",
                    result.schema.len(),
                    next.schema.len()
                )));
            }
            result.rows.extend(next.rows);
            if !all {
                dedupe_rows(&mut result.rows);
            }
        }
        Ok(result)
    }

    fn execute_block(&self, query: &Query) -> EngineResult<Frame> {
        // FROM
        let input = match &query.from {
            Some(table) => self.eval_table(table)?,
            None => Frame::new(Schema::default(), vec![vec![]])?, // one empty row
        };

        // WHERE
        let subquery_fn = |q: &Query| self.execute(q);
        let filtered = match &query.where_clause {
            Some(pred) => {
                let ctx = EvalContext { schema: &input.schema, subquery: Some(&subquery_fn) };
                let mut rows = Vec::with_capacity(input.rows.len());
                for row in input.rows {
                    if eval_predicate(pred, &row, &ctx)? {
                        rows.push(row);
                    }
                }
                Frame { schema: input.schema, rows }
            }
            None => input,
        };

        let aggregating = !query.group_by.is_empty()
            || query.having.is_some()
            || query
                .items
                .iter()
                .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr_has_aggregate(expr, &is_aggregate_function)));

        if aggregating {
            self.execute_aggregation(query, filtered)
        } else {
            self.execute_plain(query, filtered)
        }
    }

    // ------------------------------------------------------------------
    // FROM evaluation
    // ------------------------------------------------------------------

    fn eval_table(&self, table: &TableRef) -> EngineResult<Frame> {
        match table {
            TableRef::Table { name, alias } => {
                let frame = self.catalog.get(name)?;
                let source = alias.as_deref().unwrap_or(name);
                Ok(Frame {
                    schema: frame.schema.with_source(source),
                    rows: frame.rows.clone(),
                })
            }
            TableRef::Subquery { query, alias } => {
                let frame = self.execute(query)?;
                match alias {
                    Some(a) => Ok(Frame { schema: frame.schema.with_source(a), rows: frame.rows }),
                    None => Ok(frame),
                }
            }
            TableRef::Join { left, right, kind, on } => {
                let l = self.eval_table(left)?;
                let r = self.eval_table(right)?;
                self.join(l, r, *kind, on.as_ref())
            }
        }
    }

    fn join(
        &self,
        left: Frame,
        right: Frame,
        kind: paradise_sql::ast::JoinKind,
        on: Option<&Expr>,
    ) -> EngineResult<Frame> {
        use paradise_sql::ast::JoinKind;
        let schema = left.schema.join(&right.schema);
        let subquery_fn = |q: &Query| self.execute(q);
        let ctx = EvalContext { schema: &schema, subquery: Some(&subquery_fn) };
        let mut rows: Vec<Row> = Vec::new();
        let null_right: Row = vec![Value::Null; right.schema.len()];
        let null_left: Row = vec![Value::Null; left.schema.len()];
        let mut right_matched = vec![false; right.rows.len()];

        for lrow in &left.rows {
            let mut matched = false;
            for (ri, rrow) in right.rows.iter().enumerate() {
                let mut combined = Vec::with_capacity(schema.len());
                combined.extend(lrow.iter().cloned());
                combined.extend(rrow.iter().cloned());
                let keep = match (kind, on) {
                    (JoinKind::Cross, _) => true,
                    (_, Some(pred)) => eval_predicate(pred, &combined, &ctx)?,
                    (_, None) => true,
                };
                if keep {
                    matched = true;
                    right_matched[ri] = true;
                    rows.push(combined);
                    if rows.len() > self.options.max_rows {
                        return Err(EngineError::Unsupported(format!(
                            "join exceeded {} rows",
                            self.options.max_rows
                        )));
                    }
                }
            }
            if !matched && matches!(kind, JoinKind::Left | JoinKind::Full) {
                let mut combined = Vec::with_capacity(schema.len());
                combined.extend(lrow.iter().cloned());
                combined.extend(null_right.iter().cloned());
                rows.push(combined);
            }
        }
        if matches!(kind, JoinKind::Right | JoinKind::Full) {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if !right_matched[ri] {
                    let mut combined = Vec::with_capacity(schema.len());
                    combined.extend(null_left.iter().cloned());
                    combined.extend(rrow.iter().cloned());
                    rows.push(combined);
                }
            }
        }
        Ok(Frame { schema, rows })
    }

    // ------------------------------------------------------------------
    // non-aggregated path
    // ------------------------------------------------------------------

    fn execute_plain(&self, query: &Query, input: Frame) -> EngineResult<Frame> {
        // window functions over the filtered input
        let mut window_calls: Vec<FunctionCall> = Vec::new();
        for item in &query.items {
            if let SelectItem::Expr { expr, .. } = item {
                window::collect_window_calls(expr, &mut window_calls);
            }
        }
        for o in &query.order_by {
            window::collect_window_calls(&o.expr, &mut window_calls);
        }

        let (work_frame, rewrite_map) = if window_calls.is_empty() {
            (input, Vec::new())
        } else {
            window::attach_window_columns(self, input, window_calls)?
        };

        let rewrite = |expr: &Expr| -> Expr {
            if rewrite_map.is_empty() {
                return expr.clone();
            }
            window::replace_window_calls(expr.clone(), &rewrite_map)
        };

        let subquery_fn = |q: &Query| self.execute(q);
        let ctx = EvalContext { schema: &work_frame.schema, subquery: Some(&subquery_fn) };

        // projection
        let (out_schema, item_exprs) =
            self.projection_plan(query, &work_frame.schema, &rewrite)?;
        let mut projected: Vec<Row> = Vec::with_capacity(work_frame.rows.len());
        let mut sort_keys: Vec<Vec<Value>> = Vec::new();
        let order_exprs: Vec<Expr> = query.order_by.iter().map(|o| rewrite(&o.expr)).collect();

        for row in &work_frame.rows {
            let mut out = Vec::with_capacity(item_exprs.len());
            for plan in &item_exprs {
                match plan {
                    ProjPlan::Splice(indices) => {
                        for &i in indices {
                            out.push(row[i].clone());
                        }
                    }
                    ProjPlan::Expr(e) => out.push(eval_expr(e, row, &ctx)?),
                }
            }
            if !order_exprs.is_empty() {
                let keys = self.order_keys(&order_exprs, query, row, &out, &out_schema, &ctx)?;
                sort_keys.push(keys);
            }
            projected.push(out);
        }

        let mut frame = Frame { schema: out_schema, rows: projected };
        finalise_types(&mut frame);

        if query.distinct {
            // DISTINCT applies before ORDER BY; drop sort keys of removed rows.
            let (rows, keys) = dedupe_with_keys(frame.rows, sort_keys);
            frame.rows = rows;
            sort_keys = keys;
        }

        if !query.order_by.is_empty() {
            frame.rows = sort_by_keys(frame.rows, sort_keys, &query.order_by);
        }
        apply_limit_offset(&mut frame, query);
        Ok(frame)
    }

    /// Compute ORDER BY key values for one row: aliases resolve against
    /// the projected output, everything else against the input row.
    fn order_keys(
        &self,
        order_exprs: &[Expr],
        query: &Query,
        input_row: &Row,
        out_row: &Row,
        out_schema: &Schema,
        ctx: &EvalContext<'_>,
    ) -> EngineResult<Vec<Value>> {
        let mut keys = Vec::with_capacity(order_exprs.len());
        for e in order_exprs {
            // alias / output-column reference?
            if let Expr::Column(c) = e {
                if c.qualifier.is_none() {
                    if let Some(idx) = out_schema.try_resolve(None, &c.name) {
                        // prefer the projected value when the name is not
                        // resolvable in the input (pure alias), or when the
                        // query projects it directly
                        if ctx.schema.try_resolve(None, &c.name).is_none() {
                            keys.push(out_row[idx].clone());
                            continue;
                        }
                    }
                }
            }
            // positional reference: ORDER BY 1
            if let Expr::Literal(paradise_sql::ast::Literal::Integer(i)) = e {
                let idx = (*i - 1) as usize;
                if *i >= 1 && idx < out_row.len() {
                    keys.push(out_row[idx].clone());
                    continue;
                }
            }
            let _ = query;
            keys.push(eval_expr(e, input_row, ctx)?);
        }
        Ok(keys)
    }

    /// Build the output schema and per-item evaluation plan.
    fn projection_plan(
        &self,
        query: &Query,
        input: &Schema,
        rewrite: &dyn Fn(&Expr) -> Expr,
    ) -> EngineResult<(Schema, Vec<ProjPlan>)> {
        let mut out = Schema::default();
        let mut plans = Vec::with_capacity(query.items.len());
        for item in &query.items {
            match item {
                SelectItem::Wildcard => {
                    let indices: Vec<usize> = (0..input.len()).collect();
                    for c in input.columns() {
                        out.push(Column::new(c.name.clone(), c.data_type));
                    }
                    plans.push(ProjPlan::Splice(indices));
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut indices = Vec::new();
                    for (i, c) in input.columns().iter().enumerate() {
                        if c.source.as_deref().is_some_and(|s| s.eq_ignore_ascii_case(q)) {
                            indices.push(i);
                            out.push(Column::new(c.name.clone(), c.data_type));
                        }
                    }
                    if indices.is_empty() {
                        return Err(EngineError::UnknownTable(q.clone()));
                    }
                    plans.push(ProjPlan::Splice(indices));
                }
                SelectItem::Expr { expr, alias } => {
                    let rewritten = rewrite(expr);
                    let name = match alias {
                        Some(a) => a.clone(),
                        None => match expr {
                            Expr::Column(c) => c.name.clone(),
                            other => format!("{other}").to_lowercase(),
                        },
                    };
                    let dtype = match &rewritten {
                        Expr::Column(c) => {
                            let idx = input.resolve(c.qualifier.as_deref(), &c.name)?;
                            input.columns()[idx].data_type
                        }
                        _ => DataType::Float, // refined by finalise_types
                    };
                    out.push(Column::new(name, dtype));
                    plans.push(ProjPlan::Expr(rewritten));
                }
            }
        }
        Ok((out, plans))
    }

    // ------------------------------------------------------------------
    // aggregation path
    // ------------------------------------------------------------------

    fn execute_aggregation(&self, query: &Query, input: Frame) -> EngineResult<Frame> {
        if query.has_wildcard() {
            return Err(EngineError::Unsupported("SELECT * with GROUP BY/aggregates".into()));
        }
        let subquery_fn = |q: &Query| self.execute(q);
        let ctx = EvalContext { schema: &input.schema, subquery: Some(&subquery_fn) };

        // 1. group rows
        let mut group_order: Vec<Vec<GroupKey>> = Vec::new();
        let mut groups: std::collections::HashMap<Vec<GroupKey>, Vec<usize>> =
            std::collections::HashMap::new();
        if query.group_by.is_empty() {
            group_order.push(Vec::new());
            groups.insert(Vec::new(), (0..input.rows.len()).collect());
        } else {
            for (ri, row) in input.rows.iter().enumerate() {
                let mut key = Vec::with_capacity(query.group_by.len());
                for g in &query.group_by {
                    key.push(eval_expr(g, row, &ctx)?.group_key());
                }
                if !groups.contains_key(&key) {
                    group_order.push(key.clone());
                }
                groups.entry(key).or_default().push(ri);
            }
        }

        // 2. collect aggregate calls from items, HAVING and ORDER BY
        let mut agg_calls: Vec<FunctionCall> = Vec::new();
        for item in &query.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggregate_calls(expr, &mut agg_calls);
            }
        }
        if let Some(h) = &query.having {
            collect_aggregate_calls(h, &mut agg_calls);
        }
        for o in &query.order_by {
            collect_aggregate_calls(&o.expr, &mut agg_calls);
        }

        // 3. per group: synthetic row = representative row ++ agg values
        let mut ext_schema = input.schema.clone();
        let agg_col_names: Vec<String> =
            (0..agg_calls.len()).map(|i| format!("__agg{i}")).collect();
        for name in &agg_col_names {
            ext_schema.push(Column::new(name.clone(), DataType::Float));
        }

        // strict-mode check: bare columns outside aggregates must be grouped
        if self.options.strict_group_by {
            let grouped: HashSet<String> = query
                .group_by
                .iter()
                .filter_map(|g| match g {
                    Expr::Column(c) => Some(c.name.to_ascii_lowercase()),
                    _ => None,
                })
                .collect();
            for item in &query.items {
                if let SelectItem::Expr { expr, .. } = item {
                    check_strict_grouping(expr, &grouped, &query.group_by)?;
                }
            }
        }

        let rewrite = |expr: &Expr| -> Expr {
            replace_aggregate_calls(expr.clone(), &agg_calls, &agg_col_names)
        };

        let ext_ctx_schema = ext_schema.clone();
        let ext_ctx = EvalContext { schema: &ext_ctx_schema, subquery: Some(&subquery_fn) };

        let having_rewritten = query.having.as_ref().map(&rewrite);

        // projection plan over the extended schema
        let mut out_schema = Schema::default();
        let mut item_exprs: Vec<Expr> = Vec::with_capacity(query.items.len());
        for item in &query.items {
            let SelectItem::Expr { expr, alias } = item else { unreachable!() };
            let name = match alias {
                Some(a) => a.clone(),
                None => match expr {
                    Expr::Column(c) => c.name.clone(),
                    other => format!("{other}").to_lowercase(),
                },
            };
            out_schema.push(Column::new(name, DataType::Float));
            item_exprs.push(rewrite(expr));
        }
        let order_exprs: Vec<Expr> = query.order_by.iter().map(|o| rewrite(&o.expr)).collect();

        let mut rows: Vec<Row> = Vec::with_capacity(group_order.len());
        let mut sort_keys: Vec<Vec<Value>> = Vec::new();
        for key in &group_order {
            let indices = &groups[key];
            // representative row: first of group, or all-NULL for the
            // global empty group
            let mut synthetic: Row = match indices.first() {
                Some(&i) => input.rows[i].clone(),
                None => vec![Value::Null; input.schema.len()],
            };
            for call in &agg_calls {
                let v = self.compute_aggregate(call, indices, &input, &ctx)?;
                synthetic.push(v);
            }
            if let Some(h) = &having_rewritten {
                if !eval_predicate(h, &synthetic, &ext_ctx)? {
                    continue;
                }
            }
            let mut out = Vec::with_capacity(item_exprs.len());
            for e in &item_exprs {
                out.push(eval_expr(e, &synthetic, &ext_ctx)?);
            }
            if !order_exprs.is_empty() {
                let keys =
                    self.order_keys(&order_exprs, query, &synthetic, &out, &out_schema, &ext_ctx)?;
                sort_keys.push(keys);
            }
            rows.push(out);
        }

        let mut frame = Frame { schema: out_schema, rows };
        finalise_types(&mut frame);
        if query.distinct {
            let (rows, keys) = dedupe_with_keys(frame.rows, sort_keys);
            frame.rows = rows;
            sort_keys = keys;
        }
        if !query.order_by.is_empty() {
            frame.rows = sort_by_keys(frame.rows, sort_keys, &query.order_by);
        }
        apply_limit_offset(&mut frame, query);
        Ok(frame)
    }

    fn compute_aggregate(
        &self,
        call: &FunctionCall,
        row_indices: &[usize],
        input: &Frame,
        ctx: &EvalContext<'_>,
    ) -> EngineResult<Value> {
        let kind = AggKind::from_name(&call.name)
            .ok_or_else(|| EngineError::UnknownFunction(call.name.clone()))?;
        if call.args.len() != kind.arity() {
            return Err(EngineError::WrongArity {
                function: call.name.clone(),
                expected: kind.arity().to_string(),
                got: call.args.len(),
            });
        }
        let mut acc = Accumulator::new(kind, call.distinct);
        for &ri in row_indices {
            let row = &input.rows[ri];
            let mut args = Vec::with_capacity(call.args.len());
            for a in &call.args {
                match a {
                    Expr::Wildcard => args.push(Value::Int(1)),
                    other => args.push(eval_expr(other, row, ctx)?),
                }
            }
            acc.update(&args)?;
        }
        Ok(acc.finish())
    }
}

/// Per-item projection plan.
enum ProjPlan {
    /// Copy these input column indices (wildcards).
    Splice(Vec<usize>),
    /// Evaluate this (window-rewritten) expression.
    Expr(Expr),
}

/// Collect non-windowed aggregate calls (deduplicated structurally).
fn collect_aggregate_calls(expr: &Expr, out: &mut Vec<FunctionCall>) {
    match expr {
        // aggregates cannot nest; no recursion into their args
        Expr::Function(f)
            if f.over.is_none() && is_aggregate_function(&f.name) && !out.contains(f) =>
        {
            out.push(f.clone());
        }
        Expr::Function(f) if f.over.is_none() && is_aggregate_function(&f.name) => {}
        Expr::Function(f) => {
            for a in &f.args {
                collect_aggregate_calls(a, out);
            }
        }
        Expr::Unary { expr, .. } => collect_aggregate_calls(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_aggregate_calls(left, out);
            collect_aggregate_calls(right, out);
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                collect_aggregate_calls(op, out);
            }
            for b in branches {
                collect_aggregate_calls(&b.when, out);
                collect_aggregate_calls(&b.then, out);
            }
            if let Some(e) = else_result {
                collect_aggregate_calls(e, out);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            collect_aggregate_calls(expr, out);
            collect_aggregate_calls(low, out);
            collect_aggregate_calls(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregate_calls(expr, out);
            for e in list {
                collect_aggregate_calls(e, out);
            }
        }
        Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => collect_aggregate_calls(expr, out),
        _ => {}
    }
}

/// Replace aggregate calls by references to their synthetic columns.
fn replace_aggregate_calls(expr: Expr, calls: &[FunctionCall], names: &[String]) -> Expr {
    transform_expr(expr, &mut |e| match &e {
        Expr::Function(f) if f.over.is_none() && is_aggregate_function(&f.name) => calls
            .iter()
            .position(|c| c == f)
            .map(|i| Expr::Column(paradise_sql::ast::ColumnRef::bare(names[i].clone()))),
        _ => None,
    })
}

/// Strict-mode check: columns outside aggregates must be grouped.
fn check_strict_grouping(
    expr: &Expr,
    grouped: &HashSet<String>,
    group_exprs: &[Expr],
) -> EngineResult<()> {
    // whole expression equals a grouping expression → fine
    if group_exprs.iter().any(|g| g == expr) {
        return Ok(());
    }
    match expr {
        Expr::Column(c) => {
            if grouped.contains(&c.name.to_ascii_lowercase()) {
                Ok(())
            } else {
                Err(EngineError::NotGrouped(c.name.clone()))
            }
        }
        Expr::Function(f) if f.over.is_none() && is_aggregate_function(&f.name) => Ok(()),
        Expr::Function(f) => {
            for a in &f.args {
                check_strict_grouping(a, grouped, group_exprs)?;
            }
            Ok(())
        }
        Expr::Unary { expr, .. } => check_strict_grouping(expr, grouped, group_exprs),
        Expr::Binary { left, right, .. } => {
            check_strict_grouping(left, grouped, group_exprs)?;
            check_strict_grouping(right, grouped, group_exprs)
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                check_strict_grouping(op, grouped, group_exprs)?;
            }
            for b in branches {
                check_strict_grouping(&b.when, grouped, group_exprs)?;
                check_strict_grouping(&b.then, grouped, group_exprs)?;
            }
            if let Some(e) = else_result {
                check_strict_grouping(e, grouped, group_exprs)?;
            }
            Ok(())
        }
        Expr::Between { expr, low, high, .. } => {
            check_strict_grouping(expr, grouped, group_exprs)?;
            check_strict_grouping(low, grouped, group_exprs)?;
            check_strict_grouping(high, grouped, group_exprs)
        }
        Expr::InList { expr, list, .. } => {
            check_strict_grouping(expr, grouped, group_exprs)?;
            for e in list {
                check_strict_grouping(e, grouped, group_exprs)?;
            }
            Ok(())
        }
        Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            check_strict_grouping(expr, grouped, group_exprs)
        }
        _ => Ok(()),
    }
}

/// Infer better output types from the materialised values (projection
/// plans default non-column expressions to FLOAT).
fn finalise_types(frame: &mut Frame) {
    let mut types: Vec<Option<DataType>> = vec![None; frame.schema.len()];
    for row in &frame.rows {
        for (i, v) in row.iter().enumerate() {
            if types[i].is_none() {
                types[i] = v.data_type();
            }
        }
        if types.iter().all(Option::is_some) {
            break;
        }
    }
    let mut schema = Schema::default();
    for (i, c) in frame.schema.columns().iter().enumerate() {
        let dt = types[i].unwrap_or(c.data_type);
        schema.push(Column { name: c.name.clone(), source: c.source.clone(), data_type: dt });
    }
    frame.schema = schema;
}

fn dedupe_rows(rows: &mut Vec<Row>) {
    let mut seen: HashSet<Vec<GroupKey>> = HashSet::with_capacity(rows.len());
    rows.retain(|row| seen.insert(row.iter().map(Value::group_key).collect()));
}

fn dedupe_with_keys(rows: Vec<Row>, keys: Vec<Vec<Value>>) -> (Vec<Row>, Vec<Vec<Value>>) {
    let mut seen: HashSet<Vec<GroupKey>> = HashSet::with_capacity(rows.len());
    let has_keys = !keys.is_empty();
    let mut out_rows = Vec::with_capacity(rows.len());
    let mut out_keys = Vec::with_capacity(keys.len());
    for (i, row) in rows.into_iter().enumerate() {
        if seen.insert(row.iter().map(Value::group_key).collect()) {
            if has_keys {
                out_keys.push(keys[i].clone());
            }
            out_rows.push(row);
        }
    }
    (out_rows, out_keys)
}

fn sort_by_keys(
    rows: Vec<Row>,
    keys: Vec<Vec<Value>>,
    order: &[paradise_sql::ast::OrderByItem],
) -> Vec<Row> {
    let mut paired: Vec<(Vec<Value>, Row)> = keys.into_iter().zip(rows).collect();
    paired.sort_by(|(ka, _), (kb, _)| {
        for (i, item) in order.iter().enumerate() {
            let ord = ka[i].total_cmp(&kb[i]);
            let ord = if item.order == SortOrder::Desc { ord.reverse() } else { ord };
            if !ord.is_eq() {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    paired.into_iter().map(|(_, r)| r).collect()
}

fn apply_limit_offset(frame: &mut Frame, query: &Query) {
    if let Some(offset) = query.offset {
        let offset = offset as usize;
        if offset >= frame.rows.len() {
            frame.rows.clear();
        } else {
            frame.rows.drain(..offset);
        }
    }
    if let Some(limit) = query.limit {
        frame.rows.truncate(limit as usize);
    }
}
