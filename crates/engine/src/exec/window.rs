//! Window function evaluation.
//!
//! Semantics follow the SQL default frame:
//! * `OVER (PARTITION BY p ORDER BY s)` — running aggregate from the
//!   partition start to the current row **including peers** (rows with an
//!   equal sort key), i.e. `RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT
//!   ROW`;
//! * `OVER (PARTITION BY p)` / `OVER ()` — the whole partition for every
//!   row.
//!
//! Besides the aggregate kinds, `ROW_NUMBER()` and `RANK()` are supported.
//!
//! Partition keys, sort keys and aggregate arguments are evaluated
//! column-at-a-time over the input frame (one batch per expression, not
//! one `eval_expr` per row); each computed window lands in the frame as
//! a fresh column buffer via [`Frame::push_column`].

use std::collections::HashMap;
use std::sync::Arc;

use paradise_sql::ast::{ColumnRef, Expr, FunctionCall, SortOrder};
use paradise_sql::visit::transform_expr;

use crate::column::ColumnData;
use crate::error::{EngineError, EngineResult};
use crate::eval::{eval_expr_batch, Batch, EvalContext};
use crate::frame::Frame;
use crate::schema::Column;
use crate::value::{DataType, GroupKey, Value};

use super::aggregate::{AggKind, Accumulator};
use super::Executor;

/// Collect window function calls (structurally deduplicated).
pub fn collect_window_calls(expr: &Expr, out: &mut Vec<FunctionCall>) {
    match expr {
        Expr::Function(f) if f.over.is_some() && !out.contains(f) => {
            out.push(f.clone());
        }
        Expr::Function(f) if f.over.is_some() => {}
        Expr::Function(f) => {
            for a in &f.args {
                collect_window_calls(a, out);
            }
        }
        Expr::Unary { expr, .. } => collect_window_calls(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_window_calls(left, out);
            collect_window_calls(right, out);
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(op) = operand {
                collect_window_calls(op, out);
            }
            for b in branches {
                collect_window_calls(&b.when, out);
                collect_window_calls(&b.then, out);
            }
            if let Some(e) = else_result {
                collect_window_calls(e, out);
            }
        }
        Expr::Between { expr, low, high, .. } => {
            collect_window_calls(expr, out);
            collect_window_calls(low, out);
            collect_window_calls(high, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_window_calls(expr, out);
            for e in list {
                collect_window_calls(e, out);
            }
        }
        Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => collect_window_calls(expr, out),
        _ => {}
    }
}

/// Compute every window call over `input` and return the frame extended
/// with one synthetic column per call, plus the (call → column name) map
/// used to rewrite expressions.
pub fn attach_window_columns(
    executor: &Executor<'_>,
    input: Frame,
    calls: Vec<FunctionCall>,
) -> EngineResult<(Frame, Vec<(FunctionCall, String)>)> {
    let mut frame = input;
    let mut map = Vec::with_capacity(calls.len());
    for (i, call) in calls.into_iter().enumerate() {
        let name = format!("__win{i}");
        let values = compute_window(executor, &frame, &call)?;
        frame.push_column(Column::new(name.clone(), DataType::Float), values)?;
        map.push((call, name));
    }
    Ok((frame, map))
}

/// Replace window calls with their synthetic column references.
pub fn replace_window_calls(expr: Expr, map: &[(FunctionCall, String)]) -> Expr {
    transform_expr(expr, &mut |e| match &e {
        Expr::Function(f) if f.over.is_some() => map
            .iter()
            .find(|(c, _)| c == f)
            .map(|(_, name)| Expr::Column(ColumnRef::bare(name.clone()))),
        _ => None,
    })
}

/// Compute one window call: one output value per input row, in input
/// row order.
fn compute_window(
    executor: &Executor<'_>,
    input: &Frame,
    call: &FunctionCall,
) -> EngineResult<ColumnData> {
    let over = call.over.as_ref().expect("window call");
    let subquery_fn = |q: &paradise_sql::ast::Query| executor.execute(q);
    let ctx = EvalContext { schema: &input.schema, subquery: Some(&subquery_fn) };
    let n = input.len();

    // partition rows (keys batch-evaluated, one column per expression)
    let part_cols: Vec<Arc<ColumnData>> = over
        .partition_by
        .iter()
        .map(|p| Ok(eval_expr_batch(p, input, &ctx)?.into_column_arc(n)))
        .collect::<EngineResult<_>>()?;
    let mut partitions: HashMap<Vec<GroupKey>, Vec<usize>> = HashMap::new();
    for ri in 0..n {
        let key: Vec<GroupKey> = part_cols.iter().map(|c| c.group_key_at(ri)).collect();
        partitions.entry(key).or_default().push(ri);
    }

    let mut out = vec![Value::Null; n];
    let upper = call.name.to_ascii_uppercase();
    let ranking = matches!(upper.as_str(), "ROW_NUMBER" | "RANK" | "DENSE_RANK");
    let agg_kind = AggKind::from_name(&call.name);
    if !ranking && agg_kind.is_none() {
        return Err(EngineError::UnknownFunction(format!("{} OVER", call.name)));
    }

    // sort keys and aggregate arguments, batch-evaluated globally
    let key_cols: Vec<Arc<ColumnData>> = over
        .order_by
        .iter()
        .map(|o| Ok(eval_expr_batch(&o.expr, input, &ctx)?.into_column_arc(n)))
        .collect::<EngineResult<_>>()?;
    let arg_batches: Vec<Batch> = if ranking {
        Vec::new()
    } else {
        call.args
            .iter()
            .map(|a| match a {
                Expr::Wildcard => Ok(Batch::Const(Value::Int(1))),
                other => eval_expr_batch(other, input, &ctx),
            })
            .collect::<EngineResult<_>>()?
    };
    // equal sort keys ⇒ peers
    let peers_eq = |a: usize, b: usize| -> bool {
        key_cols.iter().all(|c| c.cmp_at(a, c, b).is_eq())
    };

    let mut arg_buf: Vec<Value> = Vec::with_capacity(arg_batches.len());
    for indices in partitions.values() {
        // sort partition by ORDER BY keys (stable on input order)
        let mut ordered: Vec<usize> = (0..indices.len()).collect();
        if !over.order_by.is_empty() {
            ordered.sort_by(|&a, &b| {
                for (col, o) in key_cols.iter().zip(&over.order_by) {
                    let ord = col.cmp_at(indices[a], col, indices[b]);
                    let ord = if o.order == SortOrder::Desc { ord.reverse() } else { ord };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }

        if ranking {
            compute_ranking(&upper, indices, &ordered, &over.order_by, &peers_eq, &mut out);
            continue;
        }
        let kind = agg_kind.expect("checked above");

        if over.order_by.is_empty() {
            // whole-partition value
            let mut acc = Accumulator::new(kind, call.distinct);
            for &pos in &ordered {
                let ri = indices[pos];
                arg_buf.clear();
                arg_buf.extend(arg_batches.iter().map(|b| b.value(ri)));
                acc.update(&arg_buf)?;
            }
            let v = acc.finish();
            for &pos in &ordered {
                out[indices[pos]] = v.clone();
            }
        } else {
            // running aggregate with peer groups
            let mut acc = Accumulator::new(kind, call.distinct);
            let mut i = 0;
            while i < ordered.len() {
                // find the peer group [i, j)
                let mut j = i + 1;
                while j < ordered.len() && peers_eq(indices[ordered[i]], indices[ordered[j]]) {
                    j += 1;
                }
                for &pos in &ordered[i..j] {
                    let ri = indices[pos];
                    arg_buf.clear();
                    arg_buf.extend(arg_batches.iter().map(|b| b.value(ri)));
                    acc.update(&arg_buf)?;
                }
                let v = acc.finish();
                for &pos in &ordered[i..j] {
                    out[indices[pos]] = v.clone();
                }
                i = j;
            }
        }
    }
    Ok(ColumnData::from_values(out))
}

fn compute_ranking(
    name: &str,
    indices: &[usize],
    ordered: &[usize],
    order_by: &[paradise_sql::ast::OrderByItem],
    peers_eq: &dyn Fn(usize, usize) -> bool,
    out: &mut [Value],
) {
    let mut rank = 0u64;
    let mut dense = 0u64;
    for (i, &pos) in ordered.iter().enumerate() {
        let new_peer_group = i == 0
            || order_by.is_empty()
            || !peers_eq(indices[ordered[i - 1]], indices[pos]);
        if new_peer_group {
            rank = (i + 1) as u64;
            dense += 1;
        }
        let v = match name {
            "ROW_NUMBER" => (i + 1) as i64,
            "RANK" => rank as i64,
            _ => dense as i64,
        };
        out[indices[pos]] = Value::Int(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::schema::Schema;
    use paradise_sql::parse_query;

    fn catalog() -> Catalog {
        let schema = Schema::from_pairs(&[
            ("g", DataType::Text),
            ("t", DataType::Integer),
            ("v", DataType::Integer),
        ]);
        let rows = vec![
            vec![Value::Str("a".into()), Value::Int(1), Value::Int(10)],
            vec![Value::Str("a".into()), Value::Int(2), Value::Int(20)],
            vec![Value::Str("b".into()), Value::Int(1), Value::Int(5)],
            vec![Value::Str("a".into()), Value::Int(3), Value::Int(30)],
            vec![Value::Str("b".into()), Value::Int(2), Value::Int(7)],
        ];
        let mut c = Catalog::new();
        c.register("d", Frame::new(schema, rows).unwrap()).unwrap();
        c
    }

    fn run(sql: &str) -> Frame {
        let c = catalog();
        let e = Executor::new(&c);
        e.execute(&parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn running_sum_per_partition() {
        let f = run("SELECT g, t, SUM(v) OVER (PARTITION BY g ORDER BY t) AS rs FROM d");
        // input order preserved
        let rs: Vec<Value> = f.column_values(2).collect();
        assert_eq!(
            rs,
            vec![Value::Int(10), Value::Int(30), Value::Int(5), Value::Int(60), Value::Int(12)]
        );
    }

    #[test]
    fn whole_partition_without_order() {
        let f = run("SELECT g, SUM(v) OVER (PARTITION BY g) AS total FROM d");
        let totals: Vec<Value> = f.column_values(1).collect();
        assert_eq!(
            totals,
            vec![Value::Int(60), Value::Int(60), Value::Int(12), Value::Int(60), Value::Int(12)]
        );
    }

    #[test]
    fn global_window() {
        let f = run("SELECT COUNT(*) OVER () AS n FROM d");
        assert!(f.column_values(0).all(|v| v == Value::Int(5)));
    }

    #[test]
    fn peers_share_running_value() {
        let c = {
            let schema = Schema::from_pairs(&[("k", DataType::Integer), ("v", DataType::Integer)]);
            let rows = vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(1), Value::Int(20)],
                vec![Value::Int(2), Value::Int(30)],
            ];
            let mut c = Catalog::new();
            c.register("d", Frame::new(schema, rows).unwrap()).unwrap();
            c
        };
        let e = Executor::new(&c);
        let f = e
            .execute(&parse_query("SELECT SUM(v) OVER (ORDER BY k) AS rs FROM d").unwrap())
            .unwrap();
        let rs: Vec<Value> = f.column_values(0).collect();
        // k=1 rows are peers: both see 30; k=2 sees 60
        assert_eq!(rs, vec![Value::Int(30), Value::Int(30), Value::Int(60)]);
    }

    #[test]
    fn row_number_and_rank() {
        let f = run(
            "SELECT g, v, ROW_NUMBER() OVER (PARTITION BY g ORDER BY v DESC) AS rn FROM d \
             ORDER BY g, rn",
        );
        let first = f.row(0);
        assert_eq!(first[0], Value::Str("a".into()));
        assert_eq!(first[1], Value::Int(30));
        assert_eq!(first[2], Value::Int(1));
    }

    #[test]
    fn rank_with_ties() {
        let c = {
            let schema = Schema::from_pairs(&[("v", DataType::Integer)]);
            let rows = vec![
                vec![Value::Int(10)],
                vec![Value::Int(10)],
                vec![Value::Int(20)],
            ];
            let mut c = Catalog::new();
            c.register("d", Frame::new(schema, rows).unwrap()).unwrap();
            c
        };
        let e = Executor::new(&c);
        let f = e
            .execute(&parse_query("SELECT RANK() OVER (ORDER BY v) AS r FROM d").unwrap())
            .unwrap();
        let rs: Vec<Value> = f.column_values(0).collect();
        assert_eq!(rs, vec![Value::Int(1), Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn regr_intercept_window_like_the_paper() {
        // regression y over x, running per partition
        let c = {
            let schema = Schema::from_pairs(&[
                ("x", DataType::Float),
                ("y", DataType::Float),
                ("p", DataType::Integer),
                ("t", DataType::Integer),
            ]);
            // y = 3x + 2 exactly
            let rows = (1..=4)
                .map(|i| {
                    vec![
                        Value::Float(i as f64),
                        Value::Float(3.0 * i as f64 + 2.0),
                        Value::Int(1),
                        Value::Int(i),
                    ]
                })
                .collect();
            let mut c = Catalog::new();
            c.register("d3", Frame::new(schema, rows).unwrap()).unwrap();
            c
        };
        let e = Executor::new(&c);
        let f = e
            .execute(
                &parse_query(
                    "SELECT regr_intercept(y, x) OVER (PARTITION BY p ORDER BY t) AS i FROM d3",
                )
                .unwrap(),
            )
            .unwrap();
        // first row: single point → NULL (sxx = 0); afterwards intercept = 2
        assert_eq!(f.value(0, 0), Value::Null);
        let Value::Float(i2) = f.value(1, 0) else { panic!() };
        assert!((i2 - 2.0).abs() < 1e-9);
        let Value::Float(i4) = f.value(3, 0) else { panic!() };
        assert!((i4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_window_function_errors() {
        let c = catalog();
        let e = Executor::new(&c);
        let err = e
            .execute(&parse_query("SELECT nope(v) OVER () FROM d").unwrap())
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownFunction(_)));
    }

    #[test]
    fn both_modes_agree_on_windows() {
        let c = catalog();
        let sql = "SELECT g, SUM(v) OVER (PARTITION BY g ORDER BY t) AS rs FROM d";
        let q = parse_query(sql).unwrap();
        let columnar = Executor::new(&c).execute(&q).unwrap();
        let row_mode = Executor::with_options(
            &c,
            crate::exec::ExecOptions { mode: crate::exec::ExecMode::RowAtATime, ..Default::default() },
        )
        .execute(&q)
        .unwrap();
        assert_eq!(columnar, row_mode);
    }
}
