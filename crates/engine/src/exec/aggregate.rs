//! Aggregate function accumulators, including the SQL:2011 linear
//! regression aggregates used by the paper's running example.

use std::collections::HashSet;

use crate::error::{EngineError, EngineResult};
use crate::value::{GroupKey, Value};

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AggKind {
    Count,
    Sum,
    Avg,
    Min,
    Max,
    Stddev,
    VarSamp,
    RegrIntercept,
    RegrSlope,
    RegrR2,
    RegrCount,
}

impl AggKind {
    /// Resolve a function name to an aggregate kind.
    pub fn from_name(name: &str) -> Option<AggKind> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggKind::Count),
            "SUM" => Some(AggKind::Sum),
            "AVG" => Some(AggKind::Avg),
            "MIN" => Some(AggKind::Min),
            "MAX" => Some(AggKind::Max),
            "STDDEV" => Some(AggKind::Stddev),
            "VAR_SAMP" => Some(AggKind::VarSamp),
            "REGR_INTERCEPT" => Some(AggKind::RegrIntercept),
            "REGR_SLOPE" => Some(AggKind::RegrSlope),
            "REGR_R2" => Some(AggKind::RegrR2),
            "REGR_COUNT" => Some(AggKind::RegrCount),
            _ => None,
        }
    }

    /// Number of arguments the aggregate takes (`COUNT(*)` counts as 1 —
    /// the wildcard argument).
    pub fn arity(&self) -> usize {
        match self {
            AggKind::RegrIntercept | AggKind::RegrSlope | AggKind::RegrR2 | AggKind::RegrCount => 2,
            _ => 1,
        }
    }

    /// Is this one of the two-argument regression aggregates?
    pub fn is_regression(&self) -> bool {
        self.arity() == 2
    }
}

/// Incremental accumulator for one aggregate call over one group/window.
#[derive(Debug, Clone)]
pub struct Accumulator {
    kind: AggKind,
    distinct: bool,
    seen: HashSet<Vec<GroupKey>>,
    /// COUNT of processed (non-null) inputs.
    n: u64,
    /// Σx (single-argument aggregates), Σy for regression.
    sum: f64,
    /// Σx² (single-argument), Σy² for regression.
    sum_sq: f64,
    /// Regression: Σx, Σx², Σxy (x is the *second* argument per SQL).
    rx_sum: f64,
    rx_sum_sq: f64,
    rxy_sum: f64,
    /// MIN/MAX carrier.
    extremum: Option<Value>,
    /// Whether all non-null inputs were integers (drives SUM typing).
    all_int: bool,
}

impl Accumulator {
    /// Fresh accumulator.
    pub fn new(kind: AggKind, distinct: bool) -> Self {
        Accumulator {
            kind,
            distinct,
            seen: HashSet::new(),
            n: 0,
            sum: 0.0,
            sum_sq: 0.0,
            rx_sum: 0.0,
            rx_sum_sq: 0.0,
            rxy_sum: 0.0,
            extremum: None,
            all_int: true,
        }
    }

    /// Feed one row's argument values. For `COUNT(*)` pass a single
    /// non-null placeholder (e.g. `Value::Int(1)`).
    pub fn update(&mut self, args: &[Value]) -> EngineResult<()> {
        if args.len() != self.kind.arity() {
            return Err(EngineError::WrongArity {
                function: format!("{:?}", self.kind),
                expected: self.kind.arity().to_string(),
                got: args.len(),
            });
        }
        // SQL semantics: rows where any aggregate input is NULL are skipped
        // (COUNT(*) callers never pass NULL).
        if args.iter().any(Value::is_null) {
            return Ok(());
        }
        if self.distinct {
            let key: Vec<GroupKey> = args.iter().map(Value::group_key).collect();
            if !self.seen.insert(key) {
                return Ok(());
            }
        }
        match self.kind {
            AggKind::Count => {
                self.n += 1;
            }
            AggKind::Sum | AggKind::Avg | AggKind::Stddev | AggKind::VarSamp => {
                let x = args[0].as_f64().ok_or_else(|| {
                    EngineError::TypeMismatch(format!(
                        "aggregate over non-numeric value {}",
                        args[0]
                    ))
                })?;
                if !matches!(args[0], Value::Int(_)) {
                    self.all_int = false;
                }
                self.n += 1;
                self.sum += x;
                self.sum_sq += x * x;
            }
            AggKind::Min => {
                let better = match &self.extremum {
                    None => true,
                    Some(cur) => args[0].total_cmp(cur).is_lt(),
                };
                if better {
                    self.extremum = Some(args[0].clone());
                }
                self.n += 1;
            }
            AggKind::Max => {
                let better = match &self.extremum {
                    None => true,
                    Some(cur) => args[0].total_cmp(cur).is_gt(),
                };
                if better {
                    self.extremum = Some(args[0].clone());
                }
                self.n += 1;
            }
            AggKind::RegrIntercept | AggKind::RegrSlope | AggKind::RegrR2 | AggKind::RegrCount => {
                // SQL: regr_*(y, x) — dependent first, independent second.
                let y = args[0].as_f64().ok_or_else(|| {
                    EngineError::TypeMismatch("regression over non-numeric y".into())
                })?;
                let x = args[1].as_f64().ok_or_else(|| {
                    EngineError::TypeMismatch("regression over non-numeric x".into())
                })?;
                self.n += 1;
                self.sum += y;
                self.sum_sq += y * y;
                self.rx_sum += x;
                self.rx_sum_sq += x * x;
                self.rxy_sum += x * y;
            }
        }
        Ok(())
    }

    /// Reset to the freshly-constructed state, keeping the allocated
    /// DISTINCT set. Lets one accumulator be reused across thousands of
    /// groups/partitions without re-initialising per group.
    pub(crate) fn reset(&mut self) {
        self.seen.clear();
        self.n = 0;
        self.sum = 0.0;
        self.sum_sq = 0.0;
        self.rx_sum = 0.0;
        self.rx_sum_sq = 0.0;
        self.rxy_sum = 0.0;
        self.extremum = None;
        self.all_int = true;
    }

    /// Fast path of [`Accumulator::update`] for the single-argument
    /// numeric kinds (SUM/AVG/STDDEV/VAR_SAMP) when the caller already
    /// holds a non-null numeric (skip NULLs before calling). Bypasses
    /// the `Value` round-trip of the generic path; the sums are updated
    /// in the same order, so results are bit-identical.
    pub(crate) fn update_num_fast(&mut self, x: f64, from_int: bool) {
        debug_assert!(matches!(
            self.kind,
            AggKind::Sum | AggKind::Avg | AggKind::Stddev | AggKind::VarSamp
        ));
        if !from_int {
            self.all_int = false;
        }
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Fast path of [`Accumulator::update`] for the two-argument
    /// regression kinds over non-null numeric pairs (`regr_*(y, x)`).
    pub(crate) fn update_pair_fast(&mut self, y: f64, x: f64) {
        debug_assert!(self.kind.is_regression());
        self.n += 1;
        self.sum += y;
        self.sum_sq += y * y;
        self.rx_sum += x;
        self.rx_sum_sq += x * x;
        self.rxy_sum += x * y;
    }

    /// Fast path for COUNT over `by` non-null inputs.
    pub(crate) fn bump_count(&mut self, by: u64) {
        debug_assert!(matches!(self.kind, AggKind::Count));
        self.n += by;
    }

    /// Merge `other` into `self`: the result equals folding the
    /// concatenation of both inputs (`self`'s rows first). All kinds
    /// carry mergeable moments — counts and sums add, extrema compare
    /// via [`Value::total_cmp`] (ties keep `self`, matching the
    /// sequential fold which only replaces on a strict improvement) —
    /// **except** DISTINCT, whose de-duplication is only correct within
    /// one accumulator; merging a DISTINCT accumulator is an error.
    ///
    /// Exact for integer-fed inputs (integer sums are exact in `f64`
    /// well past any realistic window); for float data the merged sums
    /// are a re-association of the sequential ones.
    pub fn merge(&mut self, other: &Accumulator) -> EngineResult<()> {
        if self.kind != other.kind {
            return Err(EngineError::TypeMismatch(format!(
                "cannot merge {:?} accumulator into {:?}",
                other.kind, self.kind
            )));
        }
        if self.distinct || other.distinct {
            return Err(EngineError::Unsupported(
                "DISTINCT aggregates are not mergeable across partitions".into(),
            ));
        }
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.rx_sum += other.rx_sum;
        self.rx_sum_sq += other.rx_sum_sq;
        self.rxy_sum += other.rxy_sum;
        self.all_int &= other.all_int;
        if let Some(theirs) = &other.extremum {
            let better = match &self.extremum {
                None => true,
                Some(cur) => match self.kind {
                    AggKind::Min => theirs.total_cmp(cur).is_lt(),
                    AggKind::Max => theirs.total_cmp(cur).is_gt(),
                    _ => false,
                },
            };
            if better {
                self.extremum = Some(theirs.clone());
            }
        }
        Ok(())
    }

    /// Final value of the aggregate.
    pub fn finish(&self) -> Value {
        let n = self.n as f64;
        match self.kind {
            AggKind::Count => Value::Int(self.n as i64),
            AggKind::Sum => {
                if self.n == 0 {
                    Value::Null
                } else if self.all_int {
                    Value::Int(self.sum as i64)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggKind::Avg => {
                if self.n == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / n)
                }
            }
            AggKind::Min | AggKind::Max => self.extremum.clone().unwrap_or(Value::Null),
            AggKind::VarSamp | AggKind::Stddev => {
                if self.n < 2 {
                    return Value::Null;
                }
                let var = (self.sum_sq - self.sum * self.sum / n) / (n - 1.0);
                let var = var.max(0.0); // clamp tiny negative fp noise
                match self.kind {
                    AggKind::VarSamp => Value::Float(var),
                    _ => Value::Float(var.sqrt()),
                }
            }
            AggKind::RegrCount => Value::Int(self.n as i64),
            AggKind::RegrSlope | AggKind::RegrIntercept | AggKind::RegrR2 => {
                if self.n == 0 {
                    return Value::Null;
                }
                let sxx = self.rx_sum_sq - self.rx_sum * self.rx_sum / n;
                let sxy = self.rxy_sum - self.rx_sum * self.sum / n;
                let syy = self.sum_sq - self.sum * self.sum / n;
                match self.kind {
                    AggKind::RegrSlope => {
                        if sxx == 0.0 {
                            Value::Null
                        } else {
                            Value::Float(sxy / sxx)
                        }
                    }
                    AggKind::RegrIntercept => {
                        if sxx == 0.0 {
                            Value::Null
                        } else {
                            let slope = sxy / sxx;
                            Value::Float((self.sum - slope * self.rx_sum) / n)
                        }
                    }
                    AggKind::RegrR2 => {
                        if sxx == 0.0 {
                            Value::Null
                        } else if syy == 0.0 {
                            Value::Float(1.0)
                        } else {
                            Value::Float((sxy * sxy) / (sxx * syy))
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AggKind, distinct: bool, rows: &[Vec<Value>]) -> Value {
        let mut acc = Accumulator::new(kind, distinct);
        for r in rows {
            acc.update(r).unwrap();
        }
        acc.finish()
    }

    fn ints(vals: &[i64]) -> Vec<Vec<Value>> {
        vals.iter().map(|v| vec![Value::Int(*v)]).collect()
    }

    #[test]
    fn count_ignores_nulls() {
        let rows = vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(2)]];
        assert_eq!(run(AggKind::Count, false, &rows), Value::Int(2));
    }

    #[test]
    fn count_distinct() {
        let rows = ints(&[1, 1, 2, 2, 3]);
        assert_eq!(run(AggKind::Count, true, &rows), Value::Int(3));
    }

    #[test]
    fn sum_typing() {
        assert_eq!(run(AggKind::Sum, false, &ints(&[1, 2, 3])), Value::Int(6));
        let rows = vec![vec![Value::Int(1)], vec![Value::Float(0.5)]];
        assert_eq!(run(AggKind::Sum, false, &rows), Value::Float(1.5));
        assert_eq!(run(AggKind::Sum, false, &[]), Value::Null);
    }

    #[test]
    fn avg_is_float() {
        assert_eq!(run(AggKind::Avg, false, &ints(&[1, 2])), Value::Float(1.5));
        assert_eq!(run(AggKind::Avg, false, &[]), Value::Null);
    }

    #[test]
    fn min_max() {
        assert_eq!(run(AggKind::Min, false, &ints(&[3, 1, 2])), Value::Int(1));
        assert_eq!(run(AggKind::Max, false, &ints(&[3, 1, 2])), Value::Int(3));
        assert_eq!(run(AggKind::Min, false, &[]), Value::Null);
        let strs = vec![vec![Value::Str("b".into())], vec![Value::Str("a".into())]];
        assert_eq!(run(AggKind::Min, false, &strs), Value::Str("a".into()));
    }

    #[test]
    fn stddev_and_variance() {
        // variance of 1..=5 (sample) = 2.5
        let v = run(AggKind::VarSamp, false, &ints(&[1, 2, 3, 4, 5]));
        let Value::Float(var) = v else { panic!() };
        assert!((var - 2.5).abs() < 1e-9);
        let s = run(AggKind::Stddev, false, &ints(&[1, 2, 3, 4, 5]));
        let Value::Float(sd) = s else { panic!() };
        assert!((sd - 2.5f64.sqrt()).abs() < 1e-9);
        assert_eq!(run(AggKind::Stddev, false, &ints(&[7])), Value::Null);
    }

    fn xy_pairs(pairs: &[(f64, f64)]) -> Vec<Vec<Value>> {
        // regr_*(y, x)
        pairs.iter().map(|(y, x)| vec![Value::Float(*y), Value::Float(*x)]).collect()
    }

    #[test]
    fn regression_on_perfect_line() {
        // y = 2x + 1
        let rows = xy_pairs(&[(3.0, 1.0), (5.0, 2.0), (7.0, 3.0), (9.0, 4.0)]);
        let Value::Float(slope) = run(AggKind::RegrSlope, false, &rows) else { panic!() };
        assert!((slope - 2.0).abs() < 1e-9);
        let Value::Float(icpt) = run(AggKind::RegrIntercept, false, &rows) else { panic!() };
        assert!((icpt - 1.0).abs() < 1e-9);
        let Value::Float(r2) = run(AggKind::RegrR2, false, &rows) else { panic!() };
        assert!((r2 - 1.0).abs() < 1e-9);
        assert_eq!(run(AggKind::RegrCount, false, &rows), Value::Int(4));
    }

    #[test]
    fn regression_skips_null_pairs() {
        let mut rows = xy_pairs(&[(3.0, 1.0), (5.0, 2.0)]);
        rows.push(vec![Value::Null, Value::Float(9.0)]);
        assert_eq!(run(AggKind::RegrCount, false, &rows), Value::Int(2));
    }

    #[test]
    fn regression_degenerate_x_is_null() {
        let rows = xy_pairs(&[(1.0, 2.0), (3.0, 2.0)]);
        assert_eq!(run(AggKind::RegrSlope, false, &rows), Value::Null);
        assert_eq!(run(AggKind::RegrIntercept, false, &rows), Value::Null);
    }

    #[test]
    fn regression_flat_y_r2_is_one() {
        let rows = xy_pairs(&[(5.0, 1.0), (5.0, 2.0), (5.0, 3.0)]);
        assert_eq!(run(AggKind::RegrR2, false, &rows), Value::Float(1.0));
    }

    #[test]
    fn from_name_resolution() {
        assert_eq!(AggKind::from_name("avg"), Some(AggKind::Avg));
        assert_eq!(AggKind::from_name("REGR_INTERCEPT"), Some(AggKind::RegrIntercept));
        assert_eq!(AggKind::from_name("abs"), None);
    }

    #[test]
    fn sum_distinct() {
        assert_eq!(run(AggKind::Sum, true, &ints(&[2, 2, 3])), Value::Int(5));
    }

    #[test]
    fn aggregate_over_text_errors() {
        let mut acc = Accumulator::new(AggKind::Sum, false);
        assert!(acc.update(&[Value::Str("x".into())]).is_err());
    }

    /// For every non-DISTINCT kind: splitting an input at any point and
    /// merging the two partial accumulators equals the sequential fold.
    #[test]
    fn merge_equals_sequential_fold() {
        let kinds = [
            AggKind::Count,
            AggKind::Sum,
            AggKind::Avg,
            AggKind::Min,
            AggKind::Max,
            AggKind::Stddev,
            AggKind::VarSamp,
        ];
        let rows = ints(&[5, -3, 9, 9, 0, 7, -3, 12]);
        for kind in kinds {
            for split in 0..=rows.len() {
                let mut seq = Accumulator::new(kind, false);
                for r in &rows {
                    seq.update(r).unwrap();
                }
                let (mut left, mut right) =
                    (Accumulator::new(kind, false), Accumulator::new(kind, false));
                for r in &rows[..split] {
                    left.update(r).unwrap();
                }
                for r in &rows[split..] {
                    right.update(r).unwrap();
                }
                left.merge(&right).unwrap();
                assert_eq!(left.finish(), seq.finish(), "{kind:?} split at {split}");
            }
        }
    }

    #[test]
    fn merge_regression_kinds() {
        // y = 2x + 1 split across two accumulators
        let rows = xy_pairs(&[(3.0, 1.0), (5.0, 2.0), (7.0, 3.0), (9.0, 4.0)]);
        for kind in
            [AggKind::RegrSlope, AggKind::RegrIntercept, AggKind::RegrR2, AggKind::RegrCount]
        {
            let mut seq = Accumulator::new(kind, false);
            let (mut a, mut b) = (Accumulator::new(kind, false), Accumulator::new(kind, false));
            for (i, r) in rows.iter().enumerate() {
                seq.update(r).unwrap();
                if i < 2 { a.update(r).unwrap() } else { b.update(r).unwrap() };
            }
            a.merge(&b).unwrap();
            assert_eq!(a.finish(), seq.finish(), "{kind:?}");
        }
    }

    #[test]
    fn merge_preserves_sum_typing_and_empty_sides() {
        // int + float side → Float result
        let mut a = Accumulator::new(AggKind::Sum, false);
        a.update(&[Value::Int(1)]).unwrap();
        let mut b = Accumulator::new(AggKind::Sum, false);
        b.update(&[Value::Float(0.5)]).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.finish(), Value::Float(1.5));
        // merging an empty accumulator changes nothing
        let mut c = Accumulator::new(AggKind::Min, false);
        c.update(&[Value::Int(4)]).unwrap();
        c.merge(&Accumulator::new(AggKind::Min, false)).unwrap();
        assert_eq!(c.finish(), Value::Int(4));
        // an empty left side adopts the right side wholesale
        let mut d = Accumulator::new(AggKind::Min, false);
        d.merge(&c).unwrap();
        assert_eq!(d.finish(), Value::Int(4));
    }

    #[test]
    fn merge_rejects_distinct_and_kind_mismatch() {
        let mut a = Accumulator::new(AggKind::Count, true);
        let b = Accumulator::new(AggKind::Count, true);
        assert!(a.merge(&b).is_err());
        let mut c = Accumulator::new(AggKind::Sum, false);
        assert!(c.merge(&Accumulator::new(AggKind::Avg, false)).is_err());
    }
}
