//! Columnar storage: one [`ColumnData`] per frame column.
//!
//! Values of a column live in a typed buffer (`Vec<Option<i64>>`,
//! `Vec<Option<f64>>`, …) instead of row-major `Vec<Vec<Value>>`, so the
//! hot operators of the executor (filter, projection, aggregation,
//! window partitioning) can run column-at-a-time over dense memory. A
//! column whose values mix runtime types (legal — the engine is
//! dynamically typed) falls back to an exact [`Value`] buffer.
//!
//! Every column caches its wire size, which makes
//! [`crate::frame::Frame::size_bytes`] O(columns) instead of a rescan of
//! every cell per traffic hop.

use std::cmp::Ordering;

use crate::value::{DataType, GroupKey, Value};

/// The typed buffer behind one column.
#[derive(Debug, Clone)]
enum ColumnBuf {
    /// 64-bit integers, `None` = NULL.
    Int(Vec<Option<i64>>),
    /// 64-bit floats, `None` = NULL.
    Float(Vec<Option<f64>>),
    /// Booleans, `None` = NULL.
    Bool(Vec<Option<bool>>),
    /// Text, `None` = NULL.
    Str(Vec<Option<String>>),
    /// Exact fallback for columns mixing runtime types.
    Mixed(Vec<Value>),
}

/// One column of a [`crate::frame::Frame`]: a typed value buffer plus
/// cached size accounting.
#[derive(Debug, Clone)]
pub struct ColumnData {
    buf: ColumnBuf,
    /// Cached wire size (sum of [`Value::size_bytes`] over all cells),
    /// maintained incrementally by every mutation.
    bytes: usize,
}

impl ColumnData {
    /// An empty column typed after `data_type`. The type is a starting
    /// hint: pushes of other types retype or promote the buffer.
    pub fn empty(data_type: DataType) -> Self {
        Self::with_capacity(data_type, 0)
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(data_type: DataType, capacity: usize) -> Self {
        let buf = match data_type {
            DataType::Integer => ColumnBuf::Int(Vec::with_capacity(capacity)),
            DataType::Float => ColumnBuf::Float(Vec::with_capacity(capacity)),
            DataType::Boolean => ColumnBuf::Bool(Vec::with_capacity(capacity)),
            DataType::Text => ColumnBuf::Str(Vec::with_capacity(capacity)),
        };
        ColumnData { buf, bytes: 0 }
    }

    /// Build from owned values; the buffer type follows the first
    /// non-null value, mixing promotes to the exact representation.
    pub fn from_values(values: Vec<Value>) -> Self {
        let hint = values
            .iter()
            .find_map(Value::data_type)
            .unwrap_or(DataType::Float);
        let mut col = Self::with_capacity(hint, values.len());
        for v in values {
            col.push(v);
        }
        col
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        match &self.buf {
            ColumnBuf::Int(v) => v.len(),
            ColumnBuf::Float(v) => v.len(),
            ColumnBuf::Bool(v) => v.len(),
            ColumnBuf::Str(v) => v.len(),
            ColumnBuf::Mixed(v) => v.len(),
        }
    }

    /// No cells?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cached wire size of all cells (see [`Value::size_bytes`]).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The runtime type of the first non-null cell, if any.
    pub fn data_type(&self) -> Option<DataType> {
        match &self.buf {
            ColumnBuf::Int(v) => v.iter().find_map(|x| x.map(|_| DataType::Integer)),
            ColumnBuf::Float(v) => v.iter().find_map(|x| x.map(|_| DataType::Float)),
            ColumnBuf::Bool(v) => v.iter().find_map(|x| x.map(|_| DataType::Boolean)),
            ColumnBuf::Str(v) => v.iter().find_map(|x| x.as_ref().map(|_| DataType::Text)),
            ColumnBuf::Mixed(v) => v.iter().find_map(Value::data_type),
        }
    }

    /// Is cell `i` NULL?
    pub fn is_null(&self, i: usize) -> bool {
        match &self.buf {
            ColumnBuf::Int(v) => v[i].is_none(),
            ColumnBuf::Float(v) => v[i].is_none(),
            ColumnBuf::Bool(v) => v[i].is_none(),
            ColumnBuf::Str(v) => v[i].is_none(),
            ColumnBuf::Mixed(v) => v[i].is_null(),
        }
    }

    /// Materialise cell `i` as a [`Value`] (clones text).
    pub fn value(&self, i: usize) -> Value {
        match &self.buf {
            ColumnBuf::Int(v) => v[i].map(Value::Int).unwrap_or(Value::Null),
            ColumnBuf::Float(v) => v[i].map(Value::Float).unwrap_or(Value::Null),
            ColumnBuf::Bool(v) => v[i].map(Value::Bool).unwrap_or(Value::Null),
            ColumnBuf::Str(v) => {
                v[i].as_ref().map(|s| Value::Str(s.clone())).unwrap_or(Value::Null)
            }
            ColumnBuf::Mixed(v) => v[i].clone(),
        }
    }

    /// Numeric view of cell `i` (NULL and non-numbers are `None`).
    pub fn as_f64(&self, i: usize) -> Option<f64> {
        match &self.buf {
            ColumnBuf::Int(v) => v[i].map(|x| x as f64),
            ColumnBuf::Float(v) => v[i],
            ColumnBuf::Bool(_) | ColumnBuf::Str(_) => None,
            ColumnBuf::Mixed(v) => v[i].as_f64(),
        }
    }

    /// Direct access to the integer buffer when this column is dense
    /// integers (for batch kernels).
    pub fn int_slice(&self) -> Option<&[Option<i64>]> {
        match &self.buf {
            ColumnBuf::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to the float buffer when this column is dense
    /// floats (for batch kernels).
    pub fn float_slice(&self) -> Option<&[Option<f64>]> {
        match &self.buf {
            ColumnBuf::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to the boolean buffer when this column is dense
    /// booleans (for predicate masks).
    pub fn bool_slice(&self) -> Option<&[Option<bool>]> {
        match &self.buf {
            ColumnBuf::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Direct access to the text buffer when this column is dense
    /// strings.
    pub fn str_slice(&self) -> Option<&[Option<String>]> {
        match &self.buf {
            ColumnBuf::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Grouping key of cell `i`, consistent with [`Value::group_key`].
    pub fn group_key_at(&self, i: usize) -> GroupKey {
        match &self.buf {
            ColumnBuf::Int(v) => v[i].map(GroupKey::Int).unwrap_or(GroupKey::Null),
            ColumnBuf::Float(v) => v[i].map(float_group_key).unwrap_or(GroupKey::Null),
            ColumnBuf::Bool(v) => v[i].map(GroupKey::Bool).unwrap_or(GroupKey::Null),
            ColumnBuf::Str(v) => {
                v[i].as_ref().map(|s| GroupKey::Str(s.clone())).unwrap_or(GroupKey::Null)
            }
            ColumnBuf::Mixed(v) => v[i].group_key(),
        }
    }

    /// A borrowed, allocation-free view of cell `i`.
    fn cell_ref(&self, i: usize) -> CellRef<'_> {
        match &self.buf {
            ColumnBuf::Int(v) => v[i].map(CellRef::Int).unwrap_or(CellRef::Null),
            ColumnBuf::Float(v) => v[i].map(CellRef::Float).unwrap_or(CellRef::Null),
            ColumnBuf::Bool(v) => v[i].map(CellRef::Bool).unwrap_or(CellRef::Null),
            ColumnBuf::Str(v) => {
                v[i].as_deref().map(CellRef::Str).unwrap_or(CellRef::Null)
            }
            ColumnBuf::Mixed(v) => match &v[i] {
                Value::Null => CellRef::Null,
                Value::Bool(b) => CellRef::Bool(*b),
                Value::Int(x) => CellRef::Int(*x),
                Value::Float(x) => CellRef::Float(*x),
                Value::Str(s) => CellRef::Str(s),
            },
        }
    }

    /// Compare cell `i` of `self` with cell `j` of `other` under the
    /// total order of [`Value::total_cmp`], without materialising (or
    /// cloning) any value.
    pub fn cmp_at(&self, i: usize, other: &ColumnData, j: usize) -> Ordering {
        cmp_cells(self.cell_ref(i), other.cell_ref(j))
    }

    /// Structural equality of two cells, consistent with `Value`'s
    /// `PartialEq` (NULL == NULL, `Int(3) == Float(3.0)`).
    pub fn eq_at(&self, i: usize, other: &ColumnData, j: usize) -> bool {
        let a = self.cell_ref(i);
        let b = other.cell_ref(j);
        matches!(a, CellRef::Null) == matches!(b, CellRef::Null)
            && cmp_cells(a, b) == Ordering::Equal
    }

    /// Number of cell positions where the two equally-long columns
    /// differ (per [`ColumnData::eq_at`] semantics), with dense slice
    /// kernels for matching buffer types.
    pub fn count_diffs(&self, other: &ColumnData) -> usize {
        use ColumnBuf::*;
        debug_assert_eq!(self.len(), other.len());
        fn diff<T: PartialEq>(a: &[Option<T>], b: &[Option<T>]) -> usize {
            a.iter().zip(b).filter(|(x, y)| x != y).count()
        }
        match (&self.buf, &other.buf) {
            (Int(a), Int(b)) => diff(a, b),
            (Bool(a), Bool(b)) => diff(a, b),
            (Str(a), Str(b)) => diff(a, b),
            (Float(a), Float(b)) => a
                .iter()
                .zip(b)
                .filter(|(x, y)| match (x, y) {
                    (None, None) => false,
                    // NaN-tolerant equality, as in Value::total_cmp
                    (Some(x), Some(y)) => {
                        x.partial_cmp(y).unwrap_or(Ordering::Equal) != Ordering::Equal
                    }
                    _ => true,
                })
                .count(),
            _ => (0..self.len()).filter(|&i| !self.eq_at(i, other, i)).count(),
        }
    }

    /// Are all cells numeric or NULL (i.e. usable as a numeric QID)?
    pub fn all_numeric_or_null(&self) -> bool {
        match &self.buf {
            ColumnBuf::Int(_) | ColumnBuf::Float(_) => true,
            ColumnBuf::Bool(v) => v.iter().all(Option::is_none),
            ColumnBuf::Str(v) => v.iter().all(Option::is_none),
            ColumnBuf::Mixed(v) => v.iter().all(|x| x.as_f64().is_some() || x.is_null()),
        }
    }

    /// Wire size of cell `i`.
    fn size_at(&self, i: usize) -> usize {
        match &self.buf {
            ColumnBuf::Int(v) => v[i].map_or(1, |_| 8),
            ColumnBuf::Float(v) => v[i].map_or(1, |_| 8),
            ColumnBuf::Bool(v) => v[i].map_or(1, |_| 1),
            ColumnBuf::Str(v) => v[i].as_ref().map_or(1, |s| s.len() + 4),
            ColumnBuf::Mixed(v) => v[i].size_bytes(),
        }
    }

    /// Append one value, retyping an all-null buffer or promoting to the
    /// exact representation when types mix.
    pub fn push(&mut self, v: Value) {
        self.bytes += v.size_bytes();
        match (&mut self.buf, v) {
            (ColumnBuf::Int(b), Value::Int(x)) => b.push(Some(x)),
            (ColumnBuf::Float(b), Value::Float(x)) => b.push(Some(x)),
            (ColumnBuf::Bool(b), Value::Bool(x)) => b.push(Some(x)),
            (ColumnBuf::Str(b), Value::Str(x)) => b.push(Some(x)),
            (ColumnBuf::Mixed(b), v) => b.push(v),
            (ColumnBuf::Int(b), Value::Null) => b.push(None),
            (ColumnBuf::Float(b), Value::Null) => b.push(None),
            (ColumnBuf::Bool(b), Value::Null) => b.push(None),
            (ColumnBuf::Str(b), Value::Null) => b.push(None),
            (_, v) => {
                self.adapt_for(&v);
                // one recursion at most: the buffer now accepts `v`
                self.bytes -= v.size_bytes();
                self.push(v);
            }
        }
    }

    /// Retype an all-null buffer to `v`'s type, or promote to `Mixed`.
    fn adapt_for(&mut self, v: &Value) {
        let len = self.len();
        let all_null = (0..len).all(|i| self.is_null(i));
        if all_null {
            let dt = v.data_type().expect("adapt_for is never called with NULL");
            self.buf = match dt {
                DataType::Integer => ColumnBuf::Int(vec![None; len]),
                DataType::Float => ColumnBuf::Float(vec![None; len]),
                DataType::Boolean => ColumnBuf::Bool(vec![None; len]),
                DataType::Text => ColumnBuf::Str(vec![None; len]),
            };
        } else {
            let values: Vec<Value> = (0..len).map(|i| self.value(i)).collect();
            self.buf = ColumnBuf::Mixed(values);
        }
    }

    /// Overwrite cell `i`, promoting the buffer if needed.
    pub fn set(&mut self, i: usize, v: Value) {
        self.bytes -= self.size_at(i);
        self.bytes += v.size_bytes();
        match (&mut self.buf, v) {
            (ColumnBuf::Int(b), Value::Int(x)) => b[i] = Some(x),
            (ColumnBuf::Float(b), Value::Float(x)) => b[i] = Some(x),
            (ColumnBuf::Bool(b), Value::Bool(x)) => b[i] = Some(x),
            (ColumnBuf::Str(b), Value::Str(x)) => b[i] = Some(x),
            (ColumnBuf::Mixed(b), v) => b[i] = v,
            (ColumnBuf::Int(b), Value::Null) => b[i] = None,
            (ColumnBuf::Float(b), Value::Null) => b[i] = None,
            (ColumnBuf::Bool(b), Value::Null) => b[i] = None,
            (ColumnBuf::Str(b), Value::Null) => b[i] = None,
            (_, v) => {
                let values: Vec<Value> = (0..self.len()).map(|k| self.value(k)).collect();
                self.buf = ColumnBuf::Mixed(values);
                let ColumnBuf::Mixed(b) = &mut self.buf else { unreachable!() };
                b[i] = v;
            }
        }
    }

    /// New column holding `indices.iter().map(|&i| self[i])`.
    pub fn gather(&self, indices: &[usize]) -> ColumnData {
        fn pick<T: Clone>(v: &[Option<T>], indices: &[usize]) -> Vec<Option<T>> {
            indices.iter().map(|&i| v[i].clone()).collect()
        }
        let buf = match &self.buf {
            ColumnBuf::Int(v) => ColumnBuf::Int(pick(v, indices)),
            ColumnBuf::Float(v) => ColumnBuf::Float(pick(v, indices)),
            ColumnBuf::Bool(v) => ColumnBuf::Bool(pick(v, indices)),
            ColumnBuf::Str(v) => ColumnBuf::Str(pick(v, indices)),
            ColumnBuf::Mixed(v) => ColumnBuf::Mixed(indices.iter().map(|&i| v[i].clone()).collect()),
        };
        let mut out = ColumnData { buf, bytes: 0 };
        out.bytes = (0..out.len()).map(|i| out.size_at(i)).sum();
        out
    }

    /// New column keeping the cells where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> ColumnData {
        fn keep<T: Clone>(v: &[Option<T>], mask: &[bool]) -> Vec<Option<T>> {
            v.iter()
                .zip(mask)
                .filter(|(_, &m)| m)
                .map(|(x, _)| x.clone())
                .collect()
        }
        let buf = match &self.buf {
            ColumnBuf::Int(v) => ColumnBuf::Int(keep(v, mask)),
            ColumnBuf::Float(v) => ColumnBuf::Float(keep(v, mask)),
            ColumnBuf::Bool(v) => ColumnBuf::Bool(keep(v, mask)),
            ColumnBuf::Str(v) => ColumnBuf::Str(keep(v, mask)),
            ColumnBuf::Mixed(v) => ColumnBuf::Mixed(
                v.iter().zip(mask).filter(|(_, &m)| m).map(|(x, _)| x.clone()).collect(),
            ),
        };
        let mut out = ColumnData { buf, bytes: 0 };
        out.bytes = (0..out.len()).map(|i| out.size_at(i)).sum();
        out
    }

    /// New column holding the cells from `start` to the end (bulk
    /// suffix copy; the typed buffers clone their slice directly).
    pub fn slice_tail(&self, start: usize) -> ColumnData {
        let start = start.min(self.len());
        let buf = match &self.buf {
            ColumnBuf::Int(v) => ColumnBuf::Int(v[start..].to_vec()),
            ColumnBuf::Float(v) => ColumnBuf::Float(v[start..].to_vec()),
            ColumnBuf::Bool(v) => ColumnBuf::Bool(v[start..].to_vec()),
            ColumnBuf::Str(v) => ColumnBuf::Str(v[start..].to_vec()),
            ColumnBuf::Mixed(v) => ColumnBuf::Mixed(v[start..].to_vec()),
        };
        let mut out = ColumnData { buf, bytes: 0 };
        out.bytes = (0..out.len()).map(|i| out.size_at(i)).sum();
        out
    }

    /// Keep the first `n` cells.
    pub fn truncate(&mut self, n: usize) {
        for i in n..self.len() {
            self.bytes -= self.size_at(i);
        }
        match &mut self.buf {
            ColumnBuf::Int(v) => v.truncate(n),
            ColumnBuf::Float(v) => v.truncate(n),
            ColumnBuf::Bool(v) => v.truncate(n),
            ColumnBuf::Str(v) => v.truncate(n),
            ColumnBuf::Mixed(v) => v.truncate(n),
        }
    }

    /// Drop the first `n` cells.
    pub fn skip_front(&mut self, n: usize) {
        let n = n.min(self.len());
        for i in 0..n {
            self.bytes -= self.size_at(i);
        }
        match &mut self.buf {
            ColumnBuf::Int(v) => drop(v.drain(..n)),
            ColumnBuf::Float(v) => drop(v.drain(..n)),
            ColumnBuf::Bool(v) => drop(v.drain(..n)),
            ColumnBuf::Str(v) => drop(v.drain(..n)),
            ColumnBuf::Mixed(v) => drop(v.drain(..n)),
        }
    }

    /// Append all cells of `other` by reference (bulk slice extension
    /// when representations match). One copy — unlike cloning `other`
    /// first and handing it to [`ColumnData::append_owned`], which pays
    /// a second copy when the source stays alive (e.g. the ingest path
    /// retaining the batch as the table's last delta).
    pub fn append_from(&mut self, other: &ColumnData) {
        use ColumnBuf::*;
        match (&mut self.buf, &other.buf) {
            (Int(a), Int(b)) => a.extend_from_slice(b),
            (Float(a), Float(b)) => a.extend_from_slice(b),
            (Bool(a), Bool(b)) => a.extend_from_slice(b),
            (Str(a), Str(b)) => a.extend_from_slice(b),
            (Mixed(a), Mixed(b)) => a.extend_from_slice(b),
            _ => {
                // representation mismatch: push cell-wise (push
                // maintains the byte accounting itself)
                for i in 0..other.len() {
                    self.push(other.value(i));
                }
                return;
            }
        }
        self.bytes += other.bytes;
    }

    /// Append all cells of `other` (bulk when representations match).
    pub fn append_owned(&mut self, other: ColumnData) {
        use ColumnBuf::*;
        let ColumnData { buf: obuf, bytes: obytes } = other;
        match (&mut self.buf, obuf) {
            (Int(a), Int(mut b)) => {
                a.append(&mut b);
                self.bytes += obytes;
            }
            (Float(a), Float(mut b)) => {
                a.append(&mut b);
                self.bytes += obytes;
            }
            (Bool(a), Bool(mut b)) => {
                a.append(&mut b);
                self.bytes += obytes;
            }
            (Str(a), Str(mut b)) => {
                a.append(&mut b);
                self.bytes += obytes;
            }
            (Mixed(a), Mixed(mut b)) => {
                a.append(&mut b);
                self.bytes += obytes;
            }
            (_, obuf) => {
                // representation mismatch: push cell-wise (push maintains
                // the byte accounting itself)
                let other = ColumnData { buf: obuf, bytes: obytes };
                for i in 0..other.len() {
                    self.push(other.value(i));
                }
            }
        }
    }

    /// Iterate all cells as materialised values.
    pub fn iter_values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i))
    }

    /// Consume into owned values (moves strings out instead of cloning).
    pub fn into_values(self) -> Vec<Value> {
        match self.buf {
            ColumnBuf::Int(v) => {
                v.into_iter().map(|x| x.map(Value::Int).unwrap_or(Value::Null)).collect()
            }
            ColumnBuf::Float(v) => {
                v.into_iter().map(|x| x.map(Value::Float).unwrap_or(Value::Null)).collect()
            }
            ColumnBuf::Bool(v) => {
                v.into_iter().map(|x| x.map(Value::Bool).unwrap_or(Value::Null)).collect()
            }
            ColumnBuf::Str(v) => {
                v.into_iter().map(|x| x.map(Value::Str).unwrap_or(Value::Null)).collect()
            }
            ColumnBuf::Mixed(v) => v,
        }
    }
}

impl PartialEq for ColumnData {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.eq_at(i, other, i))
    }
}

/// A borrowed cell: the non-owning counterpart of [`Value`].
#[derive(Clone, Copy)]
enum CellRef<'a> {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(&'a str),
}

/// [`Value::total_cmp`] over borrowed cells: NULL < Bool < numbers <
/// Str; integers compare exactly, mixed numerics as f64.
fn cmp_cells(a: CellRef<'_>, b: CellRef<'_>) -> Ordering {
    fn rank(c: &CellRef<'_>) -> u8 {
        match c {
            CellRef::Null => 0,
            CellRef::Bool(_) => 1,
            CellRef::Int(_) | CellRef::Float(_) => 2,
            CellRef::Str(_) => 3,
        }
    }
    match rank(&a).cmp(&rank(&b)) {
        Ordering::Equal => match (a, b) {
            (CellRef::Null, CellRef::Null) => Ordering::Equal,
            (CellRef::Bool(x), CellRef::Bool(y)) => x.cmp(&y),
            (CellRef::Int(x), CellRef::Int(y)) => x.cmp(&y),
            (CellRef::Str(x), CellRef::Str(y)) => x.cmp(y),
            (a, b) => {
                let x = match a {
                    CellRef::Int(v) => v as f64,
                    CellRef::Float(v) => v,
                    _ => unreachable!("equal rank implies numeric"),
                };
                let y = match b {
                    CellRef::Int(v) => v as f64,
                    CellRef::Float(v) => v,
                    _ => unreachable!("equal rank implies numeric"),
                };
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
        },
        ord => ord,
    }
}

/// Grouping key for a float, consistent with [`Value::group_key`]
/// (integral floats fold onto integer keys; -0.0 normalised).
fn float_group_key(v: f64) -> GroupKey {
    let v = if v == 0.0 { 0.0 } else { v };
    if v.fract() == 0.0 && v.abs() < (i64::MAX as f64) {
        GroupKey::Int(v as i64)
    } else {
        GroupKey::Float(v.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_push_and_value_roundtrip() {
        let mut c = ColumnData::empty(DataType::Integer);
        c.push(Value::Int(1));
        c.push(Value::Null);
        c.push(Value::Int(3));
        assert_eq!(c.len(), 3);
        assert_eq!(c.value(0), Value::Int(1));
        assert!(c.is_null(1));
        assert_eq!(c.as_f64(2), Some(3.0));
        assert!(c.int_slice().is_some());
    }

    #[test]
    fn bytes_accounting_tracks_mutations() {
        let mut c = ColumnData::empty(DataType::Text);
        c.push(Value::Str("abc".into())); // 3 + 4
        c.push(Value::Null); // 1
        assert_eq!(c.bytes(), 8);
        c.set(0, Value::Str("a".into())); // 1 + 4
        assert_eq!(c.bytes(), 6);
        c.truncate(1);
        assert_eq!(c.bytes(), 5);
    }

    #[test]
    fn retypes_all_null_buffer() {
        let mut c = ColumnData::empty(DataType::Integer);
        c.push(Value::Null);
        c.push(Value::Str("x".into()));
        assert_eq!(c.value(0), Value::Null);
        assert_eq!(c.value(1), Value::Str("x".into()));
        assert!(c.data_type() == Some(DataType::Text));
    }

    #[test]
    fn mixing_types_promotes_exactly() {
        let mut c = ColumnData::empty(DataType::Integer);
        c.push(Value::Int(3));
        c.push(Value::Float(2.5));
        // exact values preserved, not coerced
        assert_eq!(c.value(0), Value::Int(3));
        assert_eq!(c.value(1), Value::Float(2.5));
        assert_eq!(c.bytes(), 16);
    }

    #[test]
    fn gather_filter_and_append() {
        let c = ColumnData::from_values(vec![
            Value::Int(0),
            Value::Int(1),
            Value::Int(2),
            Value::Null,
        ]);
        let g = c.gather(&[3, 1]);
        assert_eq!(g.value(0), Value::Null);
        assert_eq!(g.value(1), Value::Int(1));
        assert_eq!(g.bytes(), 9);
        let f = c.filter(&[true, false, true, false]);
        assert_eq!(f.len(), 2);
        assert_eq!(f.value(1), Value::Int(2));
        let mut a = c.clone();
        a.append_owned(f);
        assert_eq!(a.len(), 6);
        assert_eq!(a.bytes(), c.bytes() + 16);
    }

    #[test]
    fn cross_type_comparison_matches_value_semantics() {
        let ints = ColumnData::from_values(vec![Value::Int(3)]);
        let floats = ColumnData::from_values(vec![Value::Float(3.0), Value::Float(2.5)]);
        assert!(ints.eq_at(0, &floats, 0));
        assert_eq!(ints.cmp_at(0, &floats, 1), Ordering::Greater);
        // NULLs sort first and equal each other, as in Value::total_cmp
        let nulls = ColumnData::from_values(vec![Value::Null]);
        assert_eq!(nulls.cmp_at(0, &ints, 0), Ordering::Less);
        assert!(nulls.eq_at(0, &nulls, 0));
    }

    #[test]
    fn group_keys_fold_like_values() {
        let c = ColumnData::from_values(vec![Value::Float(2.0), Value::Float(2.5)]);
        assert_eq!(c.group_key_at(0), Value::Int(2).group_key());
        assert_eq!(c.group_key_at(1), Value::Float(2.5).group_key());
    }

    #[test]
    fn numeric_or_null_detection() {
        assert!(ColumnData::from_values(vec![Value::Int(1), Value::Null]).all_numeric_or_null());
        assert!(!ColumnData::from_values(vec![Value::Str("x".into())]).all_numeric_or_null());
        assert!(ColumnData::empty(DataType::Text).all_numeric_or_null());
        let mixed = ColumnData::from_values(vec![Value::Int(1), Value::Str("x".into())]);
        assert!(!mixed.all_numeric_or_null());
    }

    #[test]
    fn skip_front_drops_prefix() {
        let mut c = ColumnData::from_values(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        c.skip_front(2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.value(0), Value::Int(3));
        assert_eq!(c.bytes(), 8);
    }
}
