//! The catalog: named tables/streams available to the executor, with
//! per-table **row watermarks** for delta-aware (incremental) execution.
//!
//! Every table tracks how many rows were ever appended to it and how
//! many were evicted from the front (stream retention). A consumer that
//! remembers the [`Watermark`] of its last read can ask for
//! [`Catalog::delta_since`] — the appended suffix — instead of
//! rescanning the whole retained window. Appends keep a handle on the
//! most recent batch, so the common one-ingest-per-tick case hands the
//! delta back as zero-copy column shares; anything else falls back to
//! an `O(delta)` suffix slice. Replacing a table (or mutating it
//! through [`Catalog::get_mut`]) bumps the table's *epoch*, which
//! invalidates every outstanding watermark — delta consumers then
//! rescan once and re-anchor.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use minipool::ThreadPool;

use crate::error::{EngineError, EngineResult};
use crate::frame::Frame;

/// Process-global epoch allocator: every table (re)registration gets a
/// fresh epoch, so watermarks stay unambiguous even across catalog
/// clones (handle chains mirror the runtime chain's entries wholesale).
static EPOCH: AtomicU64 = AtomicU64::new(1);

fn next_epoch() -> u64 {
    EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// A consumer's position in a stream table: which incarnation of the
/// table it read (`epoch`), how many rows had been evicted from the
/// front at that point, and how many rows it has processed in total.
///
/// Obtained from [`Catalog::watermark`], redeemed at
/// [`Catalog::delta_since`]. A watermark is only a position marker —
/// it holds no data and is `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Watermark {
    epoch: u64,
    evicted: u64,
    rows: u64,
}

impl Watermark {
    /// Total rows ever appended up to this mark (monotonic per epoch).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Rows evicted from the front of the stream up to this mark. The
    /// durability layer persists this so a recovered table resumes at
    /// the same absolute stream positions the write-ahead log recorded.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// One catalog table plus its stream-position accounting.
#[derive(Debug, Clone)]
struct TableEntry {
    frame: Frame,
    /// Bumped whenever the table is replaced or mutably borrowed:
    /// outstanding watermarks become invalid.
    epoch: u64,
    /// Rows evicted from the front since registration (retention).
    evicted: u64,
    /// The most recent appended batch and its absolute start row —
    /// the zero-copy fast path of [`Catalog::delta_since`].
    last_batch: Option<(u64, Frame)>,
    /// Per-shard row buckets of `last_batch`, computed eagerly at
    /// append time when the catalog has a partitioning policy — the
    /// sharded incremental path then routes the delta without
    /// re-hashing the key column. Lives and dies with `last_batch`.
    last_split: Option<(u64, Arc<Vec<Vec<u32>>>)>,
}

impl TableEntry {
    fn new(frame: Frame) -> Self {
        TableEntry { frame, epoch: next_epoch(), evicted: 0, last_batch: None, last_split: None }
    }

    /// Total rows ever appended (absolute high mark).
    fn high(&self) -> u64 {
        self.evicted + self.frame.len() as u64
    }

    fn watermark(&self) -> Watermark {
        Watermark { epoch: self.epoch, evicted: self.evicted, rows: self.high() }
    }
}

/// A named collection of frames. Table names are case-insensitive.
///
/// In PArADISE terms, every node of the vertical hierarchy holds its own
/// catalog: the sensor's catalog has the raw `stream`, intermediate nodes
/// register the shipped results of lower fragments (`d1`, `d2`, …) before
/// running their own fragment.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, TableEntry>,
    /// Stream partitioning policy: `(key column, shard count)`. When
    /// set (and the shard count is > 1), every appended batch is
    /// eagerly split into per-shard row buckets by a hash of the key,
    /// cached alongside the batch for the sharded incremental path.
    partitioning: Option<(String, usize)>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Declare the stream partitioning policy (see [`Catalog`] docs).
    /// Applies to batches appended from now on; tables whose schema
    /// lacks the key column are simply never split.
    pub fn set_partitioning(&mut self, key: &str, shards: usize) {
        self.partitioning = if shards > 1 { Some((key.to_string(), shards)) } else { None };
    }

    /// Register a table. Fails if the name is taken.
    pub fn register(&mut self, name: &str, frame: Frame) -> EngineResult<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(EngineError::DuplicateTable(name.to_string()));
        }
        self.tables.insert(key, TableEntry::new(frame));
        Ok(())
    }

    /// Register or replace a table. Replacing starts a fresh epoch:
    /// watermarks taken against the previous contents are invalidated.
    pub fn register_or_replace(&mut self, name: &str, frame: Frame) {
        self.tables.insert(name.to_ascii_lowercase(), TableEntry::new(frame));
    }

    /// Register or replace a table *at a recovered stream position*: the
    /// table starts a fresh epoch (in-memory delta consumers rescan
    /// once, as after any replacement) but keeps the given
    /// front-eviction count, so the absolute row positions of
    /// [`Catalog::watermark`] line up with what a write-ahead log
    /// recorded before a restart. This is the crash-recovery
    /// counterpart of [`Catalog::register_or_replace`].
    pub fn restore(&mut self, name: &str, frame: Frame, evicted: u64) {
        let mut entry = TableEntry::new(frame);
        entry.evicted = evicted;
        self.tables.insert(name.to_ascii_lowercase(), entry);
    }

    /// Append a batch of rows to a registered table — the ingest path of
    /// continuous queries over sensor streams. The table must already be
    /// registered (a typo'd stream name must fail loudly, not misroute
    /// data into a table nobody queries) and the batch schema must equal
    /// the installed schema exactly, so compiled plans keyed by schema
    /// fingerprint stay valid. The batch is remembered (by `Arc` bump)
    /// as the table's most recent delta for [`Catalog::delta_since`].
    pub fn append(&mut self, name: &str, batch: Frame) -> EngineResult<()> {
        let entry = self
            .tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        if entry.frame.schema != batch.schema {
            return Err(EngineError::Unsupported(format!(
                "cannot append batch to table {name:?}: schemas differ"
            )));
        }
        let start = entry.high();
        entry.frame.append_copy(&batch)?;
        entry.last_split = match &self.partitioning {
            Some((key, shards)) if *shards > 1 => {
                batch.schema.try_resolve(None, key).map(|ci| {
                    let split = crate::plan::sharded::split_indices(
                        batch.column(ci),
                        *shards,
                        ThreadPool::global(),
                    );
                    (start, Arc::new(split))
                })
            }
            _ => None,
        };
        entry.last_batch = Some((start, batch));
        Ok(())
    }

    /// The cached per-shard split of a table's most recent batch, when
    /// one was computed under a matching partitioning policy: the
    /// batch's absolute start row plus one row-index bucket per shard.
    /// `None` whenever the policy differs or no split is cached — the
    /// caller then hashes the delta itself.
    pub(crate) fn last_batch_split(
        &self,
        name: &str,
        key: &str,
        shards: usize,
    ) -> Option<(u64, Arc<Vec<Vec<u32>>>)> {
        let (pkey, pshards) = self.partitioning.as_ref()?;
        if !pkey.eq_ignore_ascii_case(key) || *pshards != shards {
            return None;
        }
        let entry = self.tables.get(&name.to_ascii_lowercase())?;
        let (start, split) = entry.last_split.as_ref()?;
        let (bstart, batch) = entry.last_batch.as_ref()?;
        // the split must describe exactly the cached last batch
        if bstart != start || split.iter().map(Vec::len).sum::<usize>() != batch.len() {
            return None;
        }
        Some((*start, Arc::clone(split)))
    }

    /// Evict the oldest `rows` rows of a table (stream retention). The
    /// epoch is kept — only the *evicted* count moves, so watermark
    /// arithmetic stays O(1) — but any delta consumer whose state was
    /// built over the evicted rows will observe the move and rescan.
    pub fn evict_front(&mut self, name: &str, rows: usize) -> EngineResult<()> {
        let entry = self
            .tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        let rows = rows.min(entry.frame.len());
        entry.frame.skip_rows(rows);
        entry.evicted += rows as u64;
        if let Some((start, _)) = entry.last_batch {
            if start < entry.evicted {
                entry.last_batch = None;
                entry.last_split = None;
            }
        }
        Ok(())
    }

    /// The current stream position of a table (see [`Watermark`]).
    pub fn watermark(&self, name: &str) -> EngineResult<Watermark> {
        self.entry(name).map(TableEntry::watermark)
    }

    /// The rows appended since `since`, oldest first — or `None` when
    /// the delta is not derivable (the table was replaced or mutably
    /// borrowed since, or rows were evicted past the consumer's
    /// position) and the consumer must rescan the full table.
    ///
    /// When the delta is exactly the most recently appended batch, the
    /// batch frame is returned as-is (zero-copy column shares);
    /// otherwise the suffix is sliced out, `O(delta)`.
    pub fn delta_since(&self, name: &str, since: Watermark) -> EngineResult<Option<Frame>> {
        let entry = self.entry(name)?;
        let high = entry.high();
        if since.epoch != entry.epoch
            || since.evicted != entry.evicted
            || since.rows < entry.evicted
            || since.rows > high
        {
            return Ok(None);
        }
        if since.rows == high {
            return Ok(Some(Frame::empty(entry.frame.schema.clone())));
        }
        if let Some((start, batch)) = &entry.last_batch {
            if *start == since.rows && start + batch.len() as u64 == high {
                return Ok(Some(batch.clone()));
            }
        }
        Ok(Some(entry.frame.slice_tail((since.rows - entry.evicted) as usize)))
    }

    /// Copy every table of `other` into `self` **including** its stream
    /// position (epoch, eviction count, last appended batch). The
    /// per-handle execution chains of the continuous-query runtime are
    /// refreshed with this before every tick, so delta consumers on a
    /// handle chain see exactly the source-of-record's watermarks.
    /// Frames are shared by `Arc` bumps — no cell is copied. Tables of
    /// `self` that `other` does not know (e.g. installed intermediate
    /// fragment results) are left untouched.
    pub fn mirror_from(&mut self, other: &Catalog) {
        for (name, entry) in &other.tables {
            self.tables.insert(name.clone(), entry.clone());
        }
    }

    /// Replace every table that `other` also holds with an empty,
    /// schema-only husk, releasing the shared data buffers — the
    /// counterpart of [`Catalog::mirror_from`]. A mirror that held on
    /// to the source's column `Arc`s between ticks would force the
    /// source's next append into a copy-on-write rescan of the whole
    /// retained window; releasing after use keeps appends O(batch).
    /// Watermark bookkeeping is left as-is (the next mirror overwrites
    /// it wholesale).
    pub fn release_mirrors(&mut self, other: &Catalog) {
        for name in other.tables.keys() {
            if let Some(entry) = self.tables.get_mut(name) {
                entry.frame = Frame::empty(entry.frame.schema.clone());
                entry.last_batch = None;
                entry.last_split = None;
            }
        }
    }

    /// Remove a table, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Frame> {
        self.tables.remove(&name.to_ascii_lowercase()).map(|e| e.frame)
    }

    fn entry(&self, name: &str) -> EngineResult<&TableEntry> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Look a table up.
    pub fn get(&self, name: &str) -> EngineResult<&Frame> {
        self.entry(name).map(|e| &e.frame)
    }

    /// Mutable table lookup. Starts a fresh epoch for the table: the
    /// borrower may rewrite anything, so outstanding watermarks (and the
    /// cached last batch) are conservatively invalidated.
    pub fn get_mut(&mut self, name: &str) -> EngineResult<&mut Frame> {
        let entry = self
            .tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        entry.epoch = next_epoch();
        entry.evicted = 0;
        entry.last_batch = None;
        entry.last_split = None;
        Ok(&mut entry.frame)
    }

    /// Does the catalog know this name?
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// No tables?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    fn tiny() -> Frame {
        Frame::empty(Schema::from_pairs(&[("x", DataType::Integer)]))
    }

    fn batch(vals: &[i64]) -> Frame {
        let schema = Schema::from_pairs(&[("x", DataType::Integer)]);
        Frame::new(schema, vals.iter().map(|v| vec![Value::Int(*v)]).collect()).unwrap()
    }

    fn col(frame: &Frame) -> Vec<Value> {
        frame.column_values(0).collect()
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.register("Stream", tiny()).unwrap();
        assert!(c.get("stream").is_ok());
        assert!(c.get("STREAM").is_ok());
        assert!(c.contains("StReAm"));
        assert!(matches!(c.get("other"), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut c = Catalog::new();
        c.register("d", tiny()).unwrap();
        assert!(matches!(c.register("D", tiny()), Err(EngineError::DuplicateTable(_))));
        c.register_or_replace("d", tiny());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn append_accumulates_and_checks_schema() {
        let mut c = Catalog::new();
        // an absent table is an error, not an implicit registration —
        // a typo'd stream name must not silently swallow batches
        assert!(matches!(c.append("s", batch(&[1, 2])), Err(EngineError::UnknownTable(_))));
        c.register("s", batch(&[1, 2])).unwrap();
        c.append("S", batch(&[3])).unwrap();
        assert_eq!(c.get("s").unwrap().len(), 3);
        let other = Frame::empty(Schema::from_pairs(&[("y", DataType::Integer)]));
        assert!(matches!(c.append("s", other), Err(EngineError::Unsupported(_))));
        assert_eq!(c.get("s").unwrap().len(), 3, "failed append must not corrupt");
    }

    #[test]
    fn remove_returns_frame() {
        let mut c = Catalog::new();
        c.register("d", tiny()).unwrap();
        assert!(c.remove("D").is_some());
        assert!(c.is_empty());
        assert!(c.remove("d").is_none());
    }

    #[test]
    fn delta_since_returns_appended_suffix() {
        let mut c = Catalog::new();
        c.register("s", batch(&[1, 2])).unwrap();
        let mark = c.watermark("s").unwrap();
        assert_eq!(mark.rows(), 2);

        // nothing appended yet: an empty delta, not a rescan
        let empty = c.delta_since("s", mark).unwrap().unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.schema, c.get("s").unwrap().schema);

        // the single-batch fast path shares the batch's buffers
        let b = batch(&[3, 4]);
        c.append("s", b.clone()).unwrap();
        let delta = c.delta_since("s", mark).unwrap().unwrap();
        assert_eq!(col(&delta), vec![Value::Int(3), Value::Int(4)]);
        assert!(delta.shares_columns(&b), "one-batch delta must be zero-copy");

        // two appends since the mark: the suffix is sliced instead
        c.append("s", batch(&[5])).unwrap();
        let delta = c.delta_since("s", mark).unwrap().unwrap();
        assert_eq!(col(&delta), vec![Value::Int(3), Value::Int(4), Value::Int(5)]);

        // a newer mark narrows the delta to the last batch again
        let mid = c.watermark("s").unwrap();
        c.append("s", batch(&[6])).unwrap();
        assert_eq!(col(&c.delta_since("s", mid).unwrap().unwrap()), vec![Value::Int(6)]);
    }

    #[test]
    fn delta_survives_eviction_behind_the_mark_only() {
        let mut c = Catalog::new();
        c.register("s", batch(&[1, 2, 3, 4])).unwrap();
        let mark = c.watermark("s").unwrap();
        c.append("s", batch(&[5, 6])).unwrap();

        // evicting rows the consumer has seen still invalidates: the
        // consumer's *state* covers them, so it must rescan once …
        c.evict_front("s", 2).unwrap();
        assert_eq!(c.get("s").unwrap().len(), 4);
        assert!(c.delta_since("s", mark).unwrap().is_none(), "eviction forces a rescan");

        // … and after re-anchoring, deltas work again with adjusted
        // offsets (evicted=2 now)
        let mark = c.watermark("s").unwrap();
        assert_eq!(mark.rows(), 6);
        c.append("s", batch(&[7])).unwrap();
        assert_eq!(col(&c.delta_since("s", mark).unwrap().unwrap()), vec![Value::Int(7)]);
    }

    #[test]
    fn replace_and_get_mut_invalidate_watermarks() {
        let mut c = Catalog::new();
        c.register("s", batch(&[1])).unwrap();
        let mark = c.watermark("s").unwrap();
        c.register_or_replace("s", batch(&[1]));
        assert!(c.delta_since("s", mark).unwrap().is_none(), "replace bumps the epoch");

        let mark = c.watermark("s").unwrap();
        c.get_mut("s").unwrap().skip_rows(1);
        assert!(c.delta_since("s", mark).unwrap().is_none(), "get_mut bumps the epoch");
    }

    #[test]
    fn mirror_from_preserves_watermarks() {
        let mut src = Catalog::new();
        src.register("s", batch(&[1, 2])).unwrap();
        let mut dst = Catalog::new();
        dst.register("local", tiny()).unwrap();
        dst.mirror_from(&src);

        // a consumer anchored on the mirror …
        let mark = dst.watermark("s").unwrap();
        // … follows appends made at the source after the next mirror
        src.append("s", batch(&[3])).unwrap();
        dst.mirror_from(&src);
        let delta = dst.delta_since("s", mark).unwrap().unwrap();
        assert_eq!(col(&delta), vec![Value::Int(3)]);
        // mirroring leaves unrelated local tables alone
        assert!(dst.contains("local"));
    }

    #[test]
    fn stale_marks_never_alias_new_data() {
        let mut c = Catalog::new();
        c.register("s", batch(&[1, 2, 3])).unwrap();
        let mark = c.watermark("s").unwrap();
        // a mark from a *different* incarnation with coincidentally
        // plausible row numbers must not be honoured
        c.register_or_replace("s", batch(&[9, 9, 9, 9]));
        assert!(c.delta_since("s", mark).unwrap().is_none());
        // a mark "from the future" is equally invalid
        let future = Watermark { epoch: c.watermark("s").unwrap().epoch, evicted: 0, rows: 99 };
        assert!(c.delta_since("s", future).unwrap().is_none());
    }
}
