//! The catalog: named tables/streams available to the executor.

use std::collections::HashMap;

use crate::error::{EngineError, EngineResult};
use crate::frame::Frame;

/// A named collection of frames. Table names are case-insensitive.
///
/// In PArADISE terms, every node of the vertical hierarchy holds its own
/// catalog: the sensor's catalog has the raw `stream`, intermediate nodes
/// register the shipped results of lower fragments (`d1`, `d2`, …) before
/// running their own fragment.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, Frame>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table. Fails if the name is taken.
    pub fn register(&mut self, name: &str, frame: Frame) -> EngineResult<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(EngineError::DuplicateTable(name.to_string()));
        }
        self.tables.insert(key, frame);
        Ok(())
    }

    /// Register or replace a table.
    pub fn register_or_replace(&mut self, name: &str, frame: Frame) {
        self.tables.insert(name.to_ascii_lowercase(), frame);
    }

    /// Append a batch of rows to a registered table — the ingest path of
    /// continuous queries over sensor streams. The table must already be
    /// registered (a typo'd stream name must fail loudly, not misroute
    /// data into a table nobody queries) and the batch schema must equal
    /// the installed schema exactly, so compiled plans keyed by schema
    /// fingerprint stay valid.
    pub fn append(&mut self, name: &str, batch: Frame) -> EngineResult<()> {
        let frame = self
            .tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))?;
        if frame.schema != batch.schema {
            return Err(EngineError::Unsupported(format!(
                "cannot append batch to table {name:?}: schemas differ"
            )));
        }
        frame.append(batch)
    }

    /// Remove a table, returning it if present.
    pub fn remove(&mut self, name: &str) -> Option<Frame> {
        self.tables.remove(&name.to_ascii_lowercase())
    }

    /// Look a table up.
    pub fn get(&self, name: &str) -> EngineResult<&Frame> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Mutable table lookup (e.g. to trim a stream's retention window).
    pub fn get_mut(&mut self, name: &str) -> EngineResult<&mut Frame> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Does the catalog know this name?
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// No tables?
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn tiny() -> Frame {
        Frame::empty(Schema::from_pairs(&[("x", DataType::Integer)]))
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.register("Stream", tiny()).unwrap();
        assert!(c.get("stream").is_ok());
        assert!(c.get("STREAM").is_ok());
        assert!(c.contains("StReAm"));
        assert!(matches!(c.get("other"), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut c = Catalog::new();
        c.register("d", tiny()).unwrap();
        assert!(matches!(c.register("D", tiny()), Err(EngineError::DuplicateTable(_))));
        c.register_or_replace("d", tiny());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn append_accumulates_and_checks_schema() {
        use crate::value::Value;
        let schema = Schema::from_pairs(&[("x", DataType::Integer)]);
        let batch = |vals: &[i64]| {
            Frame::new(schema.clone(), vals.iter().map(|v| vec![Value::Int(*v)]).collect())
                .unwrap()
        };
        let mut c = Catalog::new();
        // an absent table is an error, not an implicit registration —
        // a typo'd stream name must not silently swallow batches
        assert!(matches!(c.append("s", batch(&[1, 2])), Err(EngineError::UnknownTable(_))));
        c.register("s", batch(&[1, 2])).unwrap();
        c.append("S", batch(&[3])).unwrap();
        assert_eq!(c.get("s").unwrap().len(), 3);
        let other = Frame::empty(Schema::from_pairs(&[("y", DataType::Integer)]));
        assert!(matches!(c.append("s", other), Err(EngineError::Unsupported(_))));
        assert_eq!(c.get("s").unwrap().len(), 3, "failed append must not corrupt");
    }

    #[test]
    fn remove_returns_frame() {
        let mut c = Catalog::new();
        c.register("d", tiny()).unwrap();
        assert!(c.remove("D").is_some());
        assert!(c.is_empty());
        assert!(c.remove("d").is_none());
    }
}
