//! # paradise-engine
//!
//! An in-memory relational execution engine for the PArADISE
//! reproduction. It interprets the `paradise-sql` AST directly: scans,
//! filters, joins, grouping/aggregation (including the SQL:2011
//! regression aggregates), window functions, sorting and set operations —
//! everything the paper's vertical hierarchy of query processors needs,
//! at every level from "cloud DBMS" down to "sensor firmware filter".
//!
//! Frames are stored **column-major** ([`column::ColumnData`] buffers
//! behind copy-on-write [`std::sync::Arc`]s), so the hot operators run
//! column-at-a-time and frame clones are O(columns).
//!
//! ```
//! use paradise_engine::{Catalog, Executor, Frame, Schema, DataType, Value};
//! use paradise_sql::parse_query;
//!
//! let schema = Schema::from_pairs(&[("x", DataType::Integer)]);
//! let frame = Frame::new(schema, vec![vec![Value::Int(1)], vec![Value::Int(5)]]).unwrap();
//! let mut catalog = Catalog::new();
//! catalog.register("d", frame).unwrap();
//!
//! let q = parse_query("SELECT x FROM d WHERE x > 2").unwrap();
//! let result = Executor::new(&catalog).execute(&q).unwrap();
//! assert_eq!(result.to_rows(), vec![vec![Value::Int(5)]]);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod column;
pub mod error;
pub mod eval;
pub mod exec;
pub mod frame;
pub mod noise;
pub mod plan;
pub mod schema;
pub mod stream;
pub mod value;

pub use catalog::{Catalog, Watermark};
pub use column::ColumnData;
pub use error::{EngineError, EngineResult};
pub use exec::aggregate::AggKind;
pub use exec::{ExecMode, ExecOptions, Executor};
pub use frame::{Frame, Row};
pub use noise::{apply_laplace, NoiseKind, NoiseSpec};
pub use plan::{
    CompiledPlan, DeltaInput, ExprProgram, IncrementalPlan, IncrementalRun, IncrementalState,
    PlanCache, PlanCacheStats, ShardSpec,
};
pub use schema::{Column, Schema};
pub use stream::{SensorFilter, SlidingWindow, WindowSpec};
pub use value::{DataType, GroupKey, Value};
