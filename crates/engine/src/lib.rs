//! # paradise-engine
//!
//! An in-memory relational execution engine for the PArADISE
//! reproduction. It interprets the `paradise-sql` AST directly: scans,
//! filters, joins, grouping/aggregation (including the SQL:2011
//! regression aggregates), window functions, sorting and set operations —
//! everything the paper's vertical hierarchy of query processors needs,
//! at every level from "cloud DBMS" down to "sensor firmware filter".
//!
//! ```
//! use paradise_engine::{Catalog, Executor, Frame, Schema, DataType, Value};
//! use paradise_sql::parse_query;
//!
//! let schema = Schema::from_pairs(&[("x", DataType::Integer)]);
//! let frame = Frame::new(schema, vec![vec![Value::Int(1)], vec![Value::Int(5)]]).unwrap();
//! let mut catalog = Catalog::new();
//! catalog.register("d", frame).unwrap();
//!
//! let q = parse_query("SELECT x FROM d WHERE x > 2").unwrap();
//! let result = Executor::new(&catalog).execute(&q).unwrap();
//! assert_eq!(result.rows, vec![vec![Value::Int(5)]]);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod eval;
pub mod exec;
pub mod frame;
pub mod schema;
pub mod stream;
pub mod value;

pub use catalog::Catalog;
pub use error::{EngineError, EngineResult};
pub use exec::aggregate::AggKind;
pub use exec::{ExecOptions, Executor};
pub use frame::{Frame, Row};
pub use schema::{Column, Schema};
pub use stream::{SensorFilter, SlidingWindow, WindowSpec};
pub use value::{DataType, GroupKey, Value};
