//! Incremental execution equivalence: over randomized-ish schedules of
//! appends, evictions and replacements, the delta-aware path must
//! produce frames **identical** (schema and cells) to the compiled
//! full-rescan plan and to the columnar AST interpreter.

use paradise_engine::{
    Catalog, DataType, DeltaInput, ExecMode, ExecOptions, Executor, Frame, IncrementalState,
    Schema, Value,
};
use paradise_sql::parse_query;

/// Queries that must compile incrementally (stateless + grouped).
const MAINTAINABLE: &[&str] = &[
    "SELECT * FROM stream",
    "SELECT * FROM stream WHERE z < 2",
    "SELECT x, t FROM stream WHERE z < 2 AND x > y",
    "SELECT x + y AS s, z FROM stream",
    "SELECT COUNT(*) FROM stream",
    "SELECT COUNT(*) AS n, SUM(z) AS sz, AVG(z) AS az, MIN(t) AS lo, MAX(t) AS hi FROM stream",
    "SELECT x, AVG(z) AS za FROM stream GROUP BY x",
    "SELECT x, y, AVG(z) AS za, t FROM stream WHERE x > y GROUP BY x, y HAVING SUM(z) > 3",
    "SELECT x, COUNT(DISTINCT y) AS dy FROM stream GROUP BY x",
    "SELECT x, SUM(z) AS sz FROM stream GROUP BY x ORDER BY sz DESC LIMIT 3",
    "SELECT x, STDDEV(z) AS sd, regr_slope(y, x) AS sl FROM stream GROUP BY x",
    "SELECT x + y AS s, AVG(z) AS za FROM stream GROUP BY x + y",
];

/// Shapes that must *refuse* incremental compilation (fall back).
const NOT_MAINTAINABLE: &[&str] = &[
    "SELECT x FROM stream ORDER BY t",
    "SELECT DISTINCT x FROM stream",
    "SELECT x FROM stream LIMIT 5",
    "SELECT SUM(z) OVER (PARTITION BY x ORDER BY t) FROM stream",
    "SELECT a.x FROM stream a JOIN stream b ON a.t = b.t",
    "SELECT x FROM (SELECT x FROM stream)",
    "SELECT x FROM stream UNION SELECT y FROM stream",
];

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("x", DataType::Float),
        ("y", DataType::Float),
        ("z", DataType::Float),
        ("t", DataType::Integer),
    ])
}

/// Deterministic pseudo-random batch: values vary with `seed` so group
/// populations, NULL placement and filter selectivity all move.
fn batch(seed: u64, rows: usize) -> Frame {
    let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let rows = (0..rows)
        .map(|i| {
            let r = next();
            let x = (r % 7) as f64;
            let y = ((r >> 8) % 5) as f64;
            let z = ((r >> 16) % 30) as f64 / 10.0;
            let t = (seed * 1000 + i as u64) as i64;
            let z = if r % 13 == 0 { Value::Null } else { Value::Float(z) };
            vec![Value::Float(x), Value::Float(y), z, Value::Int(t)]
        })
        .collect();
    Frame::new(schema(), rows).unwrap()
}

/// One step of the ingest schedule.
enum Step {
    Append(u64, usize),
    Evict(usize),
    Replace(u64, usize),
}

fn run_schedule(sql: &str, steps: &[Step]) {
    let mut catalog = Catalog::new();
    catalog.register("stream", batch(0, 17)).unwrap();
    let query = parse_query(sql).unwrap();
    let plan = {
        let exec = Executor::new(&catalog);
        exec.compile_incremental(&query)
            .unwrap()
            .unwrap_or_else(|| panic!("{sql} should be incrementally maintainable"))
    };
    let mut state = IncrementalState::new();
    let mut resets = 0usize;

    for (tick, step) in steps.iter().enumerate() {
        match step {
            Step::Append(seed, rows) => catalog.append("stream", batch(*seed, *rows)).unwrap(),
            Step::Evict(rows) => catalog.evict_front("stream", *rows).unwrap(),
            Step::Replace(seed, rows) => catalog.register_or_replace("stream", batch(*seed, *rows)),
        }
        let exec = Executor::new(&catalog);
        let run = exec.run_incremental(&plan, &mut state, DeltaInput::Source).unwrap();
        if run.reset {
            resets += 1;
        }

        let compiled = {
            let full = exec.compile(&query).unwrap();
            exec.run_plan(&full).unwrap()
        };
        let columnar = Executor::with_options(
            &catalog,
            ExecOptions { mode: ExecMode::Columnar, ..Default::default() },
        )
        .execute(&query)
        .unwrap();

        assert_eq!(run.result.schema, compiled.schema, "{sql}: schema diverges at tick {tick}");
        assert_eq!(
            run.result.to_rows(),
            compiled.to_rows(),
            "{sql}: incremental != compiled at tick {tick}"
        );
        assert_eq!(
            compiled.to_rows(),
            columnar.to_rows(),
            "{sql}: compiled != columnar at tick {tick}"
        );
    }
    // the schedule below evicts/replaces, so some resets must occur;
    // pure-append prefixes must not reset after the first tick
    assert!(resets >= 1, "{sql}: at least the first tick rebuilds");
}

fn schedule() -> Vec<Step> {
    vec![
        Step::Append(1, 9),
        Step::Append(2, 4),
        Step::Append(3, 0), // empty tick
        Step::Append(4, 13),
        Step::Evict(10), // retention: forces one rebuild
        Step::Append(5, 6),
        Step::Append(6, 8),
        Step::Replace(7, 21), // table replaced wholesale
        Step::Append(8, 5),
        Step::Evict(3),
        Step::Append(9, 7),
    ]
}

#[test]
fn incremental_matches_rescan_and_interpreter_over_schedules() {
    for sql in MAINTAINABLE {
        run_schedule(sql, &schedule());
    }
}

#[test]
fn steady_appends_never_reset_after_the_first_tick() {
    let mut catalog = Catalog::new();
    catalog.register("stream", batch(0, 50)).unwrap();
    let query = parse_query("SELECT x, AVG(z) AS za FROM stream GROUP BY x").unwrap();
    let plan = Executor::new(&catalog).compile_incremental(&query).unwrap().unwrap();
    let mut state = IncrementalState::new();

    let first = Executor::new(&catalog)
        .run_incremental(&plan, &mut state, DeltaInput::Source)
        .unwrap();
    assert!(first.reset, "first run rebuilds from the full window");

    for seed in 1..6u64 {
        catalog.append("stream", batch(seed, 20)).unwrap();
        let run = Executor::new(&catalog)
            .run_incremental(&plan, &mut state, DeltaInput::Source)
            .unwrap();
        assert!(!run.reset, "steady appends fold deltas only");
    }
    assert_eq!(state.rows_seen(), 50 + 5 * 20);
}

#[test]
fn unmaintainable_shapes_refuse_incremental_compilation() {
    let mut catalog = Catalog::new();
    catalog.register("stream", batch(0, 10)).unwrap();
    let exec = Executor::new(&catalog);
    for sql in NOT_MAINTAINABLE {
        let q = parse_query(sql).unwrap();
        assert!(
            exec.compile_incremental(&q).unwrap().is_none(),
            "{sql} must fall back to the rescan path"
        );
    }
    for sql in MAINTAINABLE {
        let q = parse_query(sql).unwrap();
        assert!(
            exec.compile_incremental(&q).unwrap().is_some(),
            "{sql} must compile incrementally"
        );
    }
}

#[test]
fn pushed_deltas_chain_stages() {
    // stage 1 (stateless filter) feeds stage 2 (grouped aggregation)
    // through pushed deltas, like the fragment pipeline does
    let mut catalog = Catalog::new();
    catalog.register("stream", batch(0, 30)).unwrap();
    let q1 = parse_query("SELECT * FROM stream WHERE z < 2").unwrap();

    let plan1 = Executor::new(&catalog).compile_incremental(&q1).unwrap().unwrap();
    let mut st1 = IncrementalState::new();

    // stage 2 compiles against a catalog holding stage 1's output shape
    let mut mid = Catalog::new();
    let first = {
        let exec = Executor::new(&catalog);
        exec.run_incremental(&plan1, &mut st1, DeltaInput::Source).unwrap()
    };
    mid.register("d1", first.result.clone()).unwrap();
    let q2 = parse_query("SELECT x, AVG(z) AS za FROM d1 GROUP BY x").unwrap();
    let plan2 = Executor::new(&mid).compile_incremental(&q2).unwrap().unwrap();
    let mut st2 = IncrementalState::new();
    {
        let exec = Executor::new(&mid);
        let delta = first.delta.clone().unwrap();
        let run2 = exec
            .run_incremental(&plan2, &mut st2, DeltaInput::Pushed { delta: &delta, reset: true })
            .unwrap();
        assert_eq!(run2.result.to_rows(), exec.execute(&q2).unwrap().to_rows());
    }

    for seed in 1..5u64 {
        catalog.append("stream", batch(seed, 12)).unwrap();
        let run1 = {
            let exec = Executor::new(&catalog);
            exec.run_incremental(&plan1, &mut st1, DeltaInput::Source).unwrap()
        };
        assert!(!run1.reset);
        let delta = run1.delta.clone().unwrap();
        let run2 = {
            let exec = Executor::new(&mid);
            exec.run_incremental(
                &plan2,
                &mut st2,
                DeltaInput::Pushed { delta: &delta, reset: run1.reset },
            )
            .unwrap()
        };
        // reference: the full rescan of stage 2 over stage 1's full output
        let mut reference = Catalog::new();
        reference.register("d1", run1.result.clone()).unwrap();
        let expect = Executor::new(&reference).execute(&q2).unwrap();
        assert_eq!(run2.result.to_rows(), expect.to_rows(), "chained stage diverges at {seed}");
    }
}
