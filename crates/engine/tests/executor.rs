//! End-to-end executor tests, including the paper's §4.2 query fragments.

use paradise_engine::{
    Catalog, DataType, EngineError, ExecOptions, Executor, Frame, Schema, Value,
};
use paradise_sql::parse_query;

fn sensor_catalog() -> Catalog {
    // ubisense-style stream: x, y, z coordinates and timestamp t
    let schema = Schema::from_pairs(&[
        ("x", DataType::Float),
        ("y", DataType::Float),
        ("z", DataType::Float),
        ("t", DataType::Integer),
    ]);
    let rows = vec![
        // x, y, z, t
        vec![Value::Float(3.0), Value::Float(1.0), Value::Float(1.5), Value::Int(1)],
        vec![Value::Float(2.0), Value::Float(4.0), Value::Float(1.0), Value::Int(2)], // x<y
        vec![Value::Float(5.0), Value::Float(2.0), Value::Float(2.5), Value::Int(3)], // z>=2
        vec![Value::Float(4.0), Value::Float(3.0), Value::Float(0.5), Value::Int(4)],
        vec![Value::Float(6.0), Value::Float(1.0), Value::Float(1.8), Value::Int(5)],
    ];
    let mut c = Catalog::new();
    c.register("stream", Frame::new(schema, rows).unwrap()).unwrap();
    c
}

fn run(catalog: &Catalog, sql: &str) -> Frame {
    Executor::new(catalog).execute(&parse_query(sql).unwrap()).unwrap()
}

#[test]
fn sensor_fragment_select_star_with_constant_filter() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT * FROM stream WHERE z < 2");
    assert_eq!(f.len(), 4);
    assert_eq!(f.schema.names(), vec!["x", "y", "z", "t"]);
}

#[test]
fn appliance_fragment_projection_and_attr_comparison() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT x, y, z, t FROM stream WHERE x > y");
    assert_eq!(f.len(), 4); // row 2 has x<y
}

#[test]
fn media_center_fragment_group_by_having() {
    let schema = Schema::from_pairs(&[
        ("x", DataType::Integer),
        ("y", DataType::Integer),
        ("z", DataType::Float),
        ("t", DataType::Integer),
    ]);
    // two groups: (1,1) with z sum 150, (2,2) with z sum 30
    let rows = vec![
        vec![Value::Int(1), Value::Int(1), Value::Float(70.0), Value::Int(1)],
        vec![Value::Int(1), Value::Int(1), Value::Float(80.0), Value::Int(2)],
        vec![Value::Int(2), Value::Int(2), Value::Float(30.0), Value::Int(3)],
    ];
    let mut c = Catalog::new();
    c.register("d2", Frame::new(schema, rows).unwrap()).unwrap();
    let f = run(&c, "SELECT x, y, AVG(z) AS zAVG, t FROM d2 GROUP BY x, y HAVING SUM(z) > 100");
    assert_eq!(f.len(), 1);
    assert_eq!(f.schema.names(), vec!["x", "y", "zAVG", "t"]);
    assert_eq!(f.value(0, 2), Value::Float(75.0));
    // lenient group-by: t comes from the group's first row
    assert_eq!(f.value(0, 3), Value::Int(1));
}

#[test]
fn strict_mode_rejects_ungrouped_column() {
    let c = sensor_catalog();
    let opts = ExecOptions { strict_group_by: true, ..ExecOptions::default() };
    let e = Executor::with_options(&c, opts);
    let err = e
        .execute(&parse_query("SELECT x, t, AVG(z) FROM stream GROUP BY x").unwrap())
        .unwrap_err();
    assert!(matches!(err, EngineError::NotGrouped(name) if name == "t"));
}

#[test]
fn full_nested_paper_query() {
    let c = sensor_catalog();
    let f = run(
        &c,
        "SELECT regr_intercept(y, x) OVER (PARTITION BY zAVG ORDER BY t) \
         FROM (SELECT x, y, AVG(z) AS zAVG, t FROM stream \
               WHERE x > y AND z < 2 GROUP BY x, y HAVING SUM(z) > 0)",
    );
    // rows surviving the inner query: (3,1),(4,3),(6,1) → 3 groups of 1
    assert_eq!(f.len(), 3);
}

#[test]
fn count_star_and_aliases() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT COUNT(*) AS n, MIN(t) AS lo, MAX(t) AS hi FROM stream");
    assert_eq!(f.row(0), vec![Value::Int(5), Value::Int(1), Value::Int(5)]);
}

#[test]
fn global_aggregate_over_empty_input() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT COUNT(*) AS n, AVG(z) AS a FROM stream WHERE z > 100");
    assert_eq!(f.len(), 1);
    assert_eq!(f.value(0, 0), Value::Int(0));
    assert_eq!(f.value(0, 1), Value::Null);
}

#[test]
fn group_by_on_empty_input_produces_no_groups() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT x, COUNT(*) FROM stream WHERE z > 100 GROUP BY x");
    assert!(f.is_empty());
}

#[test]
fn order_by_desc_and_limit_offset() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT t FROM stream ORDER BY t DESC LIMIT 2 OFFSET 1");
    let ts: Vec<Value> = f.column_values(0).collect();
    assert_eq!(ts, vec![Value::Int(4), Value::Int(3)]);
}

#[test]
fn order_by_alias() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT x + y AS s FROM stream ORDER BY s");
    let first = f.value(0, 0).as_f64().unwrap();
    let last = f.value(f.len() - 1, 0).as_f64().unwrap();
    assert!(first <= last);
}

#[test]
fn order_by_positional() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT t FROM stream ORDER BY 1 DESC");
    assert_eq!(f.value(0, 0), Value::Int(5));
}

#[test]
fn distinct_removes_duplicates() {
    let schema = Schema::from_pairs(&[("v", DataType::Integer)]);
    let rows = vec![vec![Value::Int(1)], vec![Value::Int(1)], vec![Value::Int(2)]];
    let mut c = Catalog::new();
    c.register("d", Frame::new(schema, rows).unwrap()).unwrap();
    let f = run(&c, "SELECT DISTINCT v FROM d");
    assert_eq!(f.len(), 2);
}

#[test]
fn inner_join_and_qualifiers() {
    let mut c = Catalog::new();
    c.register(
        "u",
        Frame::new(
            Schema::from_pairs(&[("k", DataType::Integer), ("x", DataType::Float)]),
            vec![
                vec![Value::Int(1), Value::Float(10.0)],
                vec![Value::Int(2), Value::Float(20.0)],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(
        "s",
        Frame::new(
            Schema::from_pairs(&[("k", DataType::Integer), ("p", DataType::Float)]),
            vec![
                vec![Value::Int(2), Value::Float(0.5)],
                vec![Value::Int(3), Value::Float(0.7)],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    let f = run(&c, "SELECT u.x, s.p FROM u JOIN s ON u.k = s.k");
    assert_eq!(f.len(), 1);
    assert_eq!(f.row(0), vec![Value::Float(20.0), Value::Float(0.5)]);

    let lf = run(&c, "SELECT u.k, s.p FROM u LEFT JOIN s ON u.k = s.k ORDER BY u.k");
    assert_eq!(lf.len(), 2);
    assert_eq!(lf.value(0, 1), Value::Null); // unmatched left row

    let rf = run(&c, "SELECT u.k, s.k FROM u RIGHT JOIN s ON u.k = s.k ORDER BY s.k");
    assert_eq!(rf.len(), 2);
    assert_eq!(rf.value(1, 0), Value::Null); // unmatched right row

    let ff = run(&c, "SELECT u.k, s.k FROM u FULL JOIN s ON u.k = s.k");
    assert_eq!(ff.len(), 3);

    let cf = run(&c, "SELECT u.k, s.k FROM u CROSS JOIN s");
    assert_eq!(cf.len(), 4);
}

#[test]
fn join_using_desugars() {
    let mut c = Catalog::new();
    for name in ["a", "b"] {
        c.register(
            name,
            Frame::new(
                Schema::from_pairs(&[("k", DataType::Integer)]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            )
            .unwrap(),
        )
        .unwrap();
    }
    let f = run(&c, "SELECT a.k FROM a JOIN b USING (k)");
    assert_eq!(f.len(), 2);
}

#[test]
fn derived_table_with_alias() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT s.z FROM (SELECT z FROM stream WHERE z < 2) AS s WHERE s.z > 1");
    assert_eq!(f.len(), 2); // z ∈ {1.5, 1.8}
}

#[test]
fn scalar_subquery_in_where() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT t FROM stream WHERE z > (SELECT AVG(z) FROM stream)");
    // avg z = 1.46; rows with z > 1.46: 1.5, 2.5, 1.8
    assert_eq!(f.len(), 3);
}

#[test]
fn exists_subquery() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT COUNT(*) FROM stream WHERE EXISTS (SELECT 1 FROM stream WHERE z > 2)");
    assert_eq!(f.value(0, 0), Value::Int(5));
}

#[test]
fn union_and_union_all() {
    let c = sensor_catalog();
    let all = run(&c, "SELECT t FROM stream UNION ALL SELECT t FROM stream");
    assert_eq!(all.len(), 10);
    let dedup = run(&c, "SELECT t FROM stream UNION SELECT t FROM stream");
    assert_eq!(dedup.len(), 5);
}

#[test]
fn union_width_mismatch_errors() {
    let c = sensor_catalog();
    let err = Executor::new(&c)
        .execute(&parse_query("SELECT t FROM stream UNION SELECT t, z FROM stream").unwrap())
        .unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)));
}

#[test]
fn select_without_from() {
    let c = Catalog::new();
    let f = run(&c, "SELECT 1 + 1 AS two, 'hi' AS greeting");
    assert_eq!(f.row(0), vec![Value::Int(2), Value::Str("hi".into())]);
}

#[test]
fn qualified_wildcard_projection() {
    let mut c = Catalog::new();
    c.register(
        "a",
        Frame::new(
            Schema::from_pairs(&[("x", DataType::Integer)]),
            vec![vec![Value::Int(1)]],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(
        "b",
        Frame::new(
            Schema::from_pairs(&[("y", DataType::Integer)]),
            vec![vec![Value::Int(2)]],
        )
        .unwrap(),
    )
    .unwrap();
    let f = run(&c, "SELECT b.* FROM a CROSS JOIN b");
    assert_eq!(f.schema.names(), vec!["y"]);
    assert_eq!(f.row(0), vec![Value::Int(2)]);
}

#[test]
fn wildcard_with_group_by_is_unsupported() {
    let c = sensor_catalog();
    let err = Executor::new(&c)
        .execute(&parse_query("SELECT * FROM stream GROUP BY x").unwrap())
        .unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)));
}

#[test]
fn unknown_table_errors() {
    let c = Catalog::new();
    let err =
        Executor::new(&c).execute(&parse_query("SELECT * FROM nope").unwrap()).unwrap_err();
    assert!(matches!(err, EngineError::UnknownTable(name) if name == "nope"));
}

#[test]
fn aggregate_inside_expression() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT SUM(z) / COUNT(*) AS manual_avg, AVG(z) AS real_avg FROM stream");
    let manual = f.value(0, 0).as_f64().unwrap();
    let real = f.value(0, 1).as_f64().unwrap();
    assert!((manual - real).abs() < 1e-9);
}

#[test]
fn having_without_group_by() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT COUNT(*) AS n FROM stream HAVING COUNT(*) > 3");
    assert_eq!(f.len(), 1);
    let f2 = run(&c, "SELECT COUNT(*) AS n FROM stream HAVING COUNT(*) > 10");
    assert_eq!(f2.len(), 0);
}

#[test]
fn group_key_mixes_int_and_float() {
    let schema = Schema::from_pairs(&[("v", DataType::Float)]);
    let rows = vec![vec![Value::Int(2)], vec![Value::Float(2.0)], vec![Value::Float(3.0)]];
    let mut c = Catalog::new();
    c.register("d", Frame::new(schema, rows).unwrap()).unwrap();
    let f = run(&c, "SELECT v, COUNT(*) AS n FROM d GROUP BY v ORDER BY v");
    assert_eq!(f.len(), 2);
    assert_eq!(f.value(0, 1), Value::Int(2));
}

#[test]
fn output_types_are_inferred() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT t, z, x > y AS gt, 'label' AS lab FROM stream");
    let types: Vec<DataType> =
        f.schema.columns().iter().map(|col| col.data_type).collect();
    assert_eq!(
        types,
        vec![DataType::Integer, DataType::Float, DataType::Boolean, DataType::Text]
    );
}

#[test]
fn where_clause_with_case() {
    let c = sensor_catalog();
    let f = run(
        &c,
        "SELECT t, CASE WHEN z < 1 THEN 'low' WHEN z < 2 THEN 'mid' ELSE 'high' END AS lvl \
         FROM stream ORDER BY t",
    );
    assert_eq!(f.value(0, 1), Value::Str("mid".into()));
    assert_eq!(f.value(2, 1), Value::Str("high".into()));
    assert_eq!(f.value(3, 1), Value::Str("low".into()));
}

#[test]
fn deep_nesting_executes() {
    let c = sensor_catalog();
    let f = run(
        &c,
        "SELECT * FROM (SELECT * FROM (SELECT * FROM (SELECT * FROM stream WHERE z < 2) \
         WHERE x > y) WHERE t > 1) WHERE x > 3",
    );
    assert_eq!(f.len(), 2); // t=4 (4>3) and t=5 (6>1)
}

#[test]
fn order_by_aggregate_in_grouped_query() {
    let schema = Schema::from_pairs(&[("g", DataType::Text), ("v", DataType::Integer)]);
    let rows = vec![
        vec![Value::Str("a".into()), Value::Int(1)],
        vec![Value::Str("b".into()), Value::Int(5)],
        vec![Value::Str("b".into()), Value::Int(5)],
        vec![Value::Str("a".into()), Value::Int(1)],
        vec![Value::Str("a".into()), Value::Int(1)],
    ];
    let mut c = Catalog::new();
    c.register("d", Frame::new(schema, rows).unwrap()).unwrap();
    let f = run(&c, "SELECT g, SUM(v) AS total FROM d GROUP BY g ORDER BY SUM(v) DESC");
    assert_eq!(f.value(0, 0), Value::Str("b".into())); // 10 > 3
    assert_eq!(f.value(0, 1), Value::Int(10));
    assert_eq!(f.value(1, 1), Value::Int(3));
}

#[test]
fn having_with_arithmetic_over_aggregates() {
    let c = sensor_catalog();
    let f = run(
        &c,
        "SELECT COUNT(*) AS n FROM stream HAVING SUM(z) / COUNT(*) > 1",
    );
    // avg z = 1.46 > 1 → the single global group passes
    assert_eq!(f.len(), 1);
}

#[test]
fn union_of_aggregates() {
    let c = sensor_catalog();
    let f = run(
        &c,
        "SELECT MIN(z) FROM stream UNION ALL SELECT MAX(z) FROM stream",
    );
    assert_eq!(f.len(), 2);
    assert_eq!(f.value(0, 0), Value::Float(0.5));
    assert_eq!(f.value(1, 0), Value::Float(2.5));
}

#[test]
fn distinct_aggregate_in_group() {
    let schema = Schema::from_pairs(&[("g", DataType::Integer), ("v", DataType::Integer)]);
    let rows = vec![
        vec![Value::Int(1), Value::Int(7)],
        vec![Value::Int(1), Value::Int(7)],
        vec![Value::Int(1), Value::Int(8)],
    ];
    let mut c = Catalog::new();
    c.register("d", Frame::new(schema, rows).unwrap()).unwrap();
    let f = run(&c, "SELECT COUNT(DISTINCT v) AS dv, COUNT(v) AS av FROM d GROUP BY g");
    assert_eq!(f.row(0), vec![Value::Int(2), Value::Int(3)]);
}

#[test]
fn case_over_aggregates() {
    let c = sensor_catalog();
    let f = run(
        &c,
        "SELECT CASE WHEN AVG(z) > 1 THEN 'high' ELSE 'low' END AS lvl FROM stream",
    );
    assert_eq!(f.value(0, 0), Value::Str("high".into()));
}

#[test]
fn nested_aggregation_blocks() {
    // aggregate of an aggregate via nesting (the legal SQL way)
    let c = sensor_catalog();
    let f = run(
        &c,
        "SELECT MAX(za) FROM (SELECT x, AVG(z) AS za FROM stream GROUP BY x)",
    );
    assert_eq!(f.len(), 1);
    assert!(f.value(0, 0).as_f64().unwrap() > 0.0);
}

#[test]
fn where_on_window_output_requires_nesting() {
    // window calls are select-stage only; filtering needs a derived table
    let c = sensor_catalog();
    let f = run(
        &c,
        "SELECT rs FROM (SELECT SUM(z) OVER (ORDER BY t) AS rs FROM stream) WHERE rs > 3",
    );
    assert!(!f.is_empty());
    assert!(f.column_values(0).all(|v| v.as_f64().unwrap() > 3.0));
}

#[test]
fn offset_beyond_rows_is_empty() {
    let c = sensor_catalog();
    let f = run(&c, "SELECT t FROM stream OFFSET 100");
    assert!(f.is_empty());
}

#[test]
fn like_and_concat_in_queries() {
    let schema = Schema::from_pairs(&[("name", DataType::Text)]);
    let rows = vec![
        vec![Value::Str("walker".into())],
        vec![Value::Str("runner".into())],
    ];
    let mut c = Catalog::new();
    c.register("d", Frame::new(schema, rows).unwrap()).unwrap();
    let f = run(&c, "SELECT name || '!' AS shout FROM d WHERE name LIKE 'w%'");
    assert_eq!(f.to_rows(), vec![vec![Value::Str("walker!".into())]]);
}

#[test]
fn hash_equi_join_matches_nested_loop() {
    // same join expressed as a plain equality (hash path) and as a
    // double inequality (nested loop): identical results, same order
    let schema_a = Schema::from_pairs(&[("t", DataType::Integer), ("x", DataType::Float)]);
    let schema_b = Schema::from_pairs(&[("t", DataType::Integer), ("y", DataType::Float)]);
    let rows_a: Vec<Vec<Value>> = (0..40)
        .map(|i| vec![Value::Int(i % 7), Value::Float(i as f64)])
        .collect();
    let mut rows_b: Vec<Vec<Value>> = (0..30)
        .map(|i| vec![Value::Int(i % 5), Value::Float(-(i as f64))])
        .collect();
    rows_b.push(vec![Value::Null, Value::Float(99.0)]); // NULL keys never match
    let mut c = Catalog::new();
    c.register("a", Frame::new(schema_a, rows_a).unwrap()).unwrap();
    c.register("b", Frame::new(schema_b, rows_b).unwrap()).unwrap();

    for kind in ["JOIN", "LEFT JOIN", "RIGHT JOIN", "FULL JOIN"] {
        let hash = run(&c, &format!("SELECT a.x, b.y FROM a {kind} b ON a.t = b.t"));
        let nested = run(
            &c,
            &format!("SELECT a.x, b.y FROM a {kind} b ON a.t <= b.t AND a.t >= b.t"),
        );
        assert_eq!(hash.to_rows(), nested.to_rows(), "{kind} diverges");
        // swapped orientation hits the hash path too
        let swapped = run(&c, &format!("SELECT a.x, b.y FROM a {kind} b ON b.t = a.t"));
        assert_eq!(hash.to_rows(), swapped.to_rows(), "{kind} swapped diverges");
    }
}

#[test]
fn int_float_join_keys_fall_back_to_sql_eq_semantics() {
    // group-key folding and f64 comparison disagree beyond 2^53, so
    // Int×Float key pairs must not take the hash path
    let schema_l = Schema::from_pairs(&[("a", DataType::Integer)]);
    let schema_r = Schema::from_pairs(&[("b", DataType::Float)]);
    let big = 9_007_199_254_740_993i64; // 2^53 + 1
    let mut c = Catalog::new();
    c.register("l", Frame::new(schema_l, vec![vec![Value::Int(big)]]).unwrap()).unwrap();
    c.register(
        "r",
        Frame::new(schema_r, vec![vec![Value::Float(9_007_199_254_740_992.0)]]).unwrap(),
    )
    .unwrap();
    let eq = run(&c, "SELECT l.a FROM l JOIN r ON l.a = r.b");
    let nested = run(&c, "SELECT l.a FROM l JOIN r ON l.a <= r.b AND l.a >= r.b");
    assert_eq!(eq.to_rows(), nested.to_rows());
    assert_eq!(eq.len(), 1, "sql_eq compares as f64: 2^53+1 == 2^53 there");
}

#[test]
fn predicates_are_not_evaluated_over_empty_relations() {
    // the row interpreter never touches a predicate when there are no
    // rows; the batch path must not surface a type error either
    let empty = Frame::empty(Schema::from_pairs(&[("x", DataType::Integer)]));
    let mut c = Catalog::new();
    c.register("d", empty).unwrap();
    for sql in [
        "SELECT x FROM d WHERE 'abc'",
        "SELECT ABS('nope') FROM d",
        "SELECT x, SUM(x, x) FROM d GROUP BY x",
    ] {
        let f = run(&c, sql);
        assert!(f.is_empty(), "{sql} must yield an empty result, not an error");
        let row_mode = Executor::with_options(
            &c,
            ExecOptions {
                mode: paradise_engine::ExecMode::RowAtATime,
                ..Default::default()
            },
        )
        .execute(&parse_query(sql).unwrap())
        .unwrap();
        assert!(row_mode.is_empty());
    }
}
