//! Query containment check cost — the paper's open-problem component.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use paradise_core::ConjunctiveQuery;
use paradise_sql::parse_query;

fn schemas() -> HashMap<String, Vec<String>> {
    let mut m = HashMap::new();
    m.insert(
        "stream".to_string(),
        vec!["x".to_string(), "y".to_string(), "z".to_string(), "t".to_string()],
    );
    m
}

fn bench_containment(c: &mut Criterion) {
    let schemas = schemas();
    let cq = |sql: &str| {
        ConjunctiveQuery::from_query(&parse_query(sql).unwrap(), &schemas).unwrap()
    };
    let revealed = cq("SELECT x, y, t FROM stream");
    let simple_attack = cq("SELECT x, y, t FROM stream WHERE z = 1");
    // a 4-way self-join makes the homomorphism search non-trivial
    let join_attack = cq(
        "SELECT a.x, a.y, a.t FROM stream a \
         JOIN stream b ON a.t = b.t \
         JOIN stream c ON b.x = c.x \
         JOIN stream d ON c.y = d.y",
    );

    let mut group = c.benchmark_group("containment");
    group.bench_function("convert_spj_to_cq", |b| {
        let q = parse_query("SELECT x, y, t FROM stream WHERE z = 1").unwrap();
        b.iter(|| ConjunctiveQuery::from_query(black_box(&q), &schemas).unwrap())
    });
    group.bench_function("simple_containment", |b| {
        b.iter(|| black_box(&simple_attack).is_contained_in(black_box(&revealed)))
    });
    group.bench_function("four_way_join_containment", |b| {
        b.iter(|| black_box(&join_attack).is_contained_in(black_box(&revealed)))
    });
    group.finish();
}

criterion_group!(benches, bench_containment);
criterion_main!(benches);
