//! Vertical fragmentation and chain-assignment latency — EXP-F3's engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use paradise_bench::paper_rewritten;
use paradise_core::{assign_to_chain, fragment_query, AssignmentPolicy};
use paradise_nodes::ProcessingChain;
use paradise_sql::parse_query;

fn bench_fragmentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fragmentation");
    let rewritten = paper_rewritten();
    group.bench_function("paper_usecase", |b| {
        b.iter(|| fragment_query(black_box(&rewritten)).unwrap())
    });

    let chain = ProcessingChain::apartment();
    let plan = fragment_query(&rewritten).unwrap();
    group.bench_function("assign_spread", |b| {
        b.iter(|| assign_to_chain(black_box(&plan), &chain, AssignmentPolicy::Spread).unwrap())
    });
    group.bench_function("assign_stack", |b| {
        b.iter(|| assign_to_chain(black_box(&plan), &chain, AssignmentPolicy::Stack).unwrap())
    });

    let deep = parse_query(
        "SELECT za FROM (SELECT za FROM (SELECT za FROM \
         (SELECT x, AVG(z) AS za FROM stream WHERE z < 2 AND x > y GROUP BY x)))",
    )
    .unwrap();
    group.bench_function("deep_nesting", |b| {
        b.iter(|| fragment_query(black_box(&deep)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fragmentation);
criterion_main!(benches);
