//! Anonymization scaling — the EXP-GP algorithms under criterion.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use paradise_anon::{
    direct_distance, generalize_to_k, kl_divergence, mondrian, slice, GeneralizeConfig,
    Hierarchy, SlicingConfig,
};
use paradise_nodes::{SmartRoomConfig, SmartRoomSim};

fn bench_anon(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymization");
    for rows in [500usize, 2_000] {
        let config =
            SmartRoomConfig { persons: 5, switch_probability: 0.02, ..Default::default() };
        let frame = SmartRoomSim::with_config(8, config).ubisense_tagged(rows / 5);

        group.bench_with_input(BenchmarkId::new("mondrian_k5", rows), &frame, |b, f| {
            b.iter(|| mondrian(black_box(f), &[1, 2, 4], 5).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("slicing_b8", rows), &frame, |b, f| {
            let cfg = SlicingConfig {
                column_groups: vec![vec![0], vec![1, 2, 3], vec![4, 5]],
                bucket_size: 8,
                seed: 3,
            };
            b.iter(|| slice(black_box(f), &cfg).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("generalize_k3", rows), &frame, |b, f| {
            let cfg = GeneralizeConfig {
                qids: vec![
                    (1, Hierarchy::numeric(&[1.0, 5.0])),
                    (2, Hierarchy::numeric(&[1.0, 5.0])),
                ],
                k: 3,
                max_suppressed: rows / 10,
            };
            b.iter(|| generalize_to_k(black_box(f), &cfg).unwrap())
        });

        let anonymized = mondrian(&frame, &[1, 2, 4], 5).unwrap().frame;
        group.bench_with_input(
            BenchmarkId::new("direct_distance", rows),
            &(frame.clone(), anonymized.clone()),
            |b, (orig, anon)| b.iter(|| direct_distance(black_box(orig), black_box(anon)).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("kl_divergence", rows),
            &(frame, anonymized),
            |b, (orig, anon)| {
                b.iter(|| kl_divergence(black_box(orig), black_box(anon), &[1, 2]).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_anon);
criterion_main!(benches);
