//! Preprocessor (query rewriting) latency — EXP-PRE's engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use paradise_bench::paper_original;
use paradise_core::{preprocess, PreprocessOptions};
use paradise_policy::figure4_policy;
use paradise_sql::parse_query;

fn bench_rewrite(c: &mut Criterion) {
    let policy = figure4_policy();
    let module = policy.module("ActionFilter").unwrap();
    let options = PreprocessOptions::default();

    let mut group = c.benchmark_group("rewrite");
    let original = paper_original();
    group.bench_function("paper_usecase", |b| {
        b.iter(|| preprocess(black_box(&original), module, &options).unwrap())
    });

    let flat = parse_query("SELECT x, y, z, t FROM stream").unwrap();
    group.bench_function("flat_query", |b| {
        b.iter(|| preprocess(black_box(&flat), module, &options).unwrap())
    });

    // deep nesting: rename propagation across 6 levels
    let deep = parse_query(
        "SELECT z FROM (SELECT z FROM (SELECT z FROM (SELECT z FROM \
         (SELECT z FROM (SELECT x, y, z, t FROM stream)))))",
    )
    .unwrap();
    group.bench_function("deep_nesting_6_levels", |b| {
        b.iter(|| preprocess(black_box(&deep), module, &options).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
