//! Parser throughput on the paper's queries and the corpus.
//!
//! These benches track the cache-miss half of query preprocessing
//! (the compile half is `engine/plan_compile`). The lexer scans with
//! an ASCII byte fast path — identifiers, whitespace and operators
//! advance bytewise, falling back to UTF-8 decoding only for
//! non-ASCII input — which took `paper_original` from ~3.3 µs to
//! ~2.4 µs and the corpus sweep from ~15 µs to ~10.5 µs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use paradise_bench::{query_corpus, PAPER_ORIGINAL, PAPER_REWRITTEN};
use paradise_sql::parse_query;

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser");
    group.bench_function("paper_original", |b| {
        b.iter(|| parse_query(black_box(PAPER_ORIGINAL)).unwrap())
    });
    group.bench_function("paper_rewritten", |b| {
        b.iter(|| parse_query(black_box(PAPER_REWRITTEN)).unwrap())
    });
    group.bench_function("corpus_13_queries", |b| {
        b.iter(|| {
            for (_, sql) in query_corpus() {
                black_box(parse_query(black_box(sql)).unwrap());
            }
        })
    });
    // render the rewritten query back to SQL
    let q = parse_query(PAPER_REWRITTEN).unwrap();
    group.bench_function("render", |b| b.iter(|| black_box(&q).to_string()));
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
