//! End-to-end pipeline latency: the whole Figure 2 chain at several
//! data scales, vs. the ship-raw-to-cloud baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use paradise_bench::{paper_original, paper_processor};

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(20);
    for rows in [1_000usize, 5_000, 20_000] {
        group.bench_with_input(BenchmarkId::new("paradise", rows), &rows, |b, &rows| {
            b.iter_batched(
                || paper_processor(42, 10, rows / 10),
                |mut p| p.run("ActionFilter", black_box(&paper_original())).unwrap(),
                criterion::BatchSize::LargeInput,
            )
        });
        // steady-state continuous query: the fragment-plan cache and
        // every node's compiled-plan cache stay warm across ticks
        group.bench_with_input(BenchmarkId::new("paradise_warm", rows), &rows, |b, &rows| {
            let mut p = paper_processor(42, 10, rows / 10);
            let q = paper_original();
            p.run("ActionFilter", &q).unwrap();
            b.iter(|| p.run("ActionFilter", black_box(&q)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cloud_baseline", rows), &rows, |b, &rows| {
            let p = paper_processor(42, 10, rows / 10);
            b.iter(|| p.cloud_baseline(black_box(&paper_original())).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
